"""Deterministic cycle-stamped simulation tracer (Chrome trace export).

A :class:`SimTracer` attaches to one :class:`MemoryController` (mirroring
:class:`repro.sim.audit.CommandAuditor`: construction sets ``mc.tracer``)
and records three event families, all stamped with the *simulated cycle*
— never wall-clock time — so armed traces are bit-identical across
re-runs and across execution backends:

- **commands**: every issue primitive (ACT/PRE/RD/WR/REF/REFSB, HiRA
  pairings, solo refreshes) via hooks with the auditor's signatures;
- **refresh decisions**: postpone, pull-forward, ride, pair, sb-promote,
  reported by the refresh engines;
- **stalls**: when a visited cycle's schedule pass issues nothing while
  demand is queued, the tracer attributes the stall to the binding gate
  (command bus, data bus, tRTW/tWTR turnaround, tRCD/tFAW/tRRD, refresh
  drain/busy windows, row keep-alive) by re-deriving the scheduler's
  legality checks — read-only: arming a tracer never changes scheduling.

Raw events live in a bounded ring buffer (oldest dropped first); the
aggregate counters (per-command counts, stall reasons, decision counts,
queue-depth histogram, per-bank ACT utilization) are never dropped, so
summary statistics stay exact even when the ring overflows.

Export is Chrome trace-event JSON (load in ``chrome://tracing`` or
Perfetto): instant events with ``ts`` = cycle, ``tid`` = channel.  The
canonical byte encoding (:func:`trace_json`) sorts keys and strips
whitespace, so identical runs export identical bytes.

The controller stays zero-cost when disarmed: every hook site is guarded
by ``if self.tracer is not None`` exactly like the auditor hooks.
"""

from __future__ import annotations

import json
from collections import Counter, deque

#: Stall-attribution vocabulary: the timing gate that blocked the pass.
STALL_REASONS = (
    "cmd-bus",      # command bus slot occupied (bus_next in the future)
    "data-bus",     # data bus busy at the burst's start slot
    "turnaround",   # data bus free, but tRTW/tWTR direction change gap
    "trcd",         # row open, column command waiting on tRCD
    "tfaw",         # four-activation window exhausted
    "trrd",         # ACT-to-ACT spacing (tRRD_S / tRRD_L)
    "bank-timing",  # bank's next_act in the future (tRP/tRC/refresh busy)
    "pre-timing",   # conflicting row open, PRE waiting on tRAS/tRTP/tWR
    "ref-drain",    # rank blocked: draining for an imminent REF
    "refsb-drain",  # bank blocked: draining for an imminent REFsb
    "ref-busy",     # rank unavailable (tRFC/tRFC_sb in flight)
    "row-keepalive",  # conflicting open row kept open for queued hits
    "other",        # no single gate identified (e.g. engine back-off)
)

#: Decision vocabulary reported by the refresh engines.
DECISION_KINDS = ("postpone", "pull-forward", "ride", "pair", "sb-promote")

_CATEGORIES = ("cmd", "decision", "stall")


class SimTracer:
    """Ring-buffered deterministic event recorder for one controller."""

    def __init__(self, mc, capacity: int = 65536) -> None:
        self.mc = mc
        mc.tracer = self
        self.channel = mc.channel_id
        self.capacity = capacity
        #: Ring of (cycle, name, category, args) tuples, oldest dropped.
        self._events: deque = deque(maxlen=capacity)
        self.events_total = 0
        self.command_counts: Counter = Counter()
        self.stall_counts: Counter = Counter()
        self.decision_counts: Counter = Counter()
        #: Total queue depth (read + write) sampled at each command issue.
        self.queue_depth_hist: Counter = Counter()
        #: ACT commands per (rank, bank) — the bank-utilization summary.
        self.bank_acts: Counter = Counter()
        self.end_cycle = 0

    # ------------------------------------------------------------------
    def _emit(self, cycle: int, name: str, cat: str, args: dict) -> None:
        self._events.append((cycle, name, cat, args))
        self.events_total += 1

    def _command(self, cycle: int, name: str, args: dict) -> None:
        self.command_counts[name] += 1
        mc = self.mc
        self.queue_depth_hist[len(mc.read_q) + len(mc.write_q)] += 1
        self._emit(cycle, name, "cmd", args)

    # ------------------------------------------------------------------
    # Command hooks (auditor signatures; see sim/controller.py call sites)
    # ------------------------------------------------------------------
    def on_act(self, now: int, rank: int, bank: int, row: int) -> None:
        self.bank_acts[(rank, bank)] += 1
        self._command(now, "ACT", {"rank": rank, "bank": bank, "row": row})

    def on_pre(self, now: int, rank: int, bank: int) -> None:
        self._command(now, "PRE", {"rank": rank, "bank": bank})

    def on_ref(self, now: int, rank: int) -> None:
        self._command(now, "REF", {"rank": rank})

    def on_refsb(self, now: int, rank: int, bank: int) -> None:
        self._command(now, "REFSB", {"rank": rank, "bank": bank})

    def on_col(self, now: int, rank: int, bank: int, is_write: bool) -> None:
        name = "WR" if is_write else "RD"
        self._command(now, name, {"rank": rank, "bank": bank})

    def on_solo_refresh(self, now: int, rank: int, bank: int, close: int) -> None:
        self.bank_acts[(rank, bank)] += 1
        self._command(
            now, "SOLO_REF", {"rank": rank, "bank": bank, "close": close}
        )

    def on_hira_op(
        self,
        now: int,
        rank: int,
        bank: int,
        refresh_row: int | None,
        target_row: int | None,
        eff: int,
        close: int | None = None,
    ) -> None:
        self.bank_acts[(rank, bank)] += 2
        if close is None:
            self._command(
                now,
                "HIRA_ACT",
                {
                    "rank": rank,
                    "bank": bank,
                    "refresh_row": refresh_row,
                    "target_row": target_row,
                    "eff": eff,
                },
            )
        else:
            self._command(
                now, "HIRA_PAIR", {"rank": rank, "bank": bank, "close": close}
            )

    # ------------------------------------------------------------------
    # Refresh-engine decision hook
    # ------------------------------------------------------------------
    def on_decision(
        self, kind: str, now: int, rank: int, bank: int = -1, value: int = 0
    ) -> None:
        self.decision_counts[kind] += 1
        self._emit(
            now, kind, "decision", {"rank": rank, "bank": bank, "value": value}
        )

    # ------------------------------------------------------------------
    # Stall attribution
    # ------------------------------------------------------------------
    def on_stall(self, now: int) -> None:
        """Called when a visited cycle's schedule pass issued nothing.

        Re-derives the scheduler's legality checks for the head window of
        each demand queue (read-only) and records the binding gate with
        the earliest release cycle.  Idle cycles (no demand queued) are
        not stalls and record nothing.
        """
        mc = self.mc
        if not mc.read_q and not mc.write_q:
            return
        if now < mc.bus_next:
            self._stall(now, "cmd-bus", -1, -1, mc.bus_next)
            return
        best = None
        # `_active_queues` mutates the write-drain hysteresis; schedule()
        # already ran it this cycle, so read the flag directly.
        order = mc._writes_first if mc._draining_writes else mc._reads_first
        for queue in order:
            if not queue:
                continue
            found = self._classify_queue(queue, now)
            if found is not None and (best is None or found[0] < best[0]):
                best = found
        if best is None:
            self._stall(now, "other", -1, -1, now + 1)
        else:
            until, reason, rank, bank = best
            self._stall(now, reason, rank, bank, until)

    def _stall(self, now: int, reason: str, rank: int, bank: int, until: int) -> None:
        self.stall_counts[reason] += 1
        self._emit(
            now,
            "stall",
            "stall",
            {"reason": reason, "rank": rank, "bank": bank, "until": until},
        )

    def _classify_queue(self, queue, now: int):
        """Binding gate for the queue's head window: (until, reason, rank,
        bank) of the earliest-releasing blocked candidate, or None."""
        mc = self.mc
        is_write_q = queue is mc.write_q
        burst_offset = mc.tcwl_c if is_write_q else mc.tcl_c
        data_free = mc.data_bus_free_at(is_write_q)
        bus_blocked = now + burst_offset < data_free
        best = None
        seen = 0
        banks_per_rank = mc.banks_per_rank
        for req in list(queue)[:8]:
            addr = req.addr
            rank, bank_id, row = addr.rank, addr.bank, addr.row
            bit = 1 << (rank * banks_per_rank + bank_id)
            if seen & bit:
                continue
            seen |= bit
            found = self._classify_candidate(
                queue, rank, bank_id, row, now, bus_blocked, data_free, burst_offset
            )
            if found is not None and (best is None or found[0] < best[0]):
                best = found
        return best

    def _classify_candidate(
        self, queue, rank, bank_id, row, now, bus_blocked, data_free, burst_offset
    ):
        mc = self.mc
        rank_state = mc.ranks[rank]
        if rank in mc.blocked_ranks:
            until = rank_state.ref_ready if rank_state.ref_ready > now else now + 1
            return (until, "ref-drain", rank, bank_id)
        if (rank, bank_id) in mc.blocked_banks:
            bank = mc.bank(rank, bank_id)
            until = max(now + 1, bank.next_act, rank_state.next_refsb)
            return (until, "refsb-drain", rank, bank_id)
        if now < rank_state.busy_until:
            return (rank_state.busy_until, "ref-busy", rank, bank_id)
        bank = mc.bank(rank, bank_id)
        open_row = bank.open_row
        if open_row == row:
            if bus_blocked:
                reason = (
                    "data-bus" if now + burst_offset < mc.data_bus_next else "turnaround"
                )
                return (data_free - burst_offset, reason, rank, bank_id)
            if now < bank.next_rdwr:
                return (bank.next_rdwr, "trcd", rank, bank_id)
            return None  # issuable row hit: some other gate stalled the pass
        if open_row is None:
            if now < bank.next_act:
                return (bank.next_act, "bank-timing", rank, bank_id)
            if not mc.faw_ok(rank, now):
                return (mc.faw_next(rank), "tfaw", rank, bank_id)
            if not mc.trrd_ok(rank, bank_id, now):
                group = bank_id // mc.banks_per_bankgroup
                until = max(
                    rank_state.next_act_any, rank_state.next_act_group[group]
                )
                return (until, "trrd", rank, bank_id)
            return None  # issuable ACT
        # Conflicting open row.
        if now < bank.next_pre:
            return (bank.next_pre, "pre-timing", rank, bank_id)
        if mc._row_hit_waiting(queue, rank, bank_id, open_row):
            return (now + 1, "row-keepalive", rank, bank_id)
        return None

    # ------------------------------------------------------------------
    # Run-end + export
    # ------------------------------------------------------------------
    def on_run_end(self, end_cycle: int) -> None:
        self.end_cycle = end_cycle

    @property
    def dropped(self) -> int:
        return self.events_total - len(self._events)

    def summary(self) -> dict:
        """Aggregate counters (exact even when the ring overflowed)."""
        return {
            "commands": {k: self.command_counts[k] for k in sorted(self.command_counts)},
            "stalls": {k: self.stall_counts[k] for k in sorted(self.stall_counts)},
            "decisions": {
                k: self.decision_counts[k] for k in sorted(self.decision_counts)
            },
            "queue_depth": {
                str(k): self.queue_depth_hist[k]
                for k in sorted(self.queue_depth_hist)
            },
            "bank_acts": {
                f"{rank}:{bank}": self.bank_acts[(rank, bank)]
                for rank, bank in sorted(self.bank_acts)
            },
        }

    def export(self) -> dict:
        """Chrome trace-event JSON payload (plain dict, JSON-able)."""
        events = [
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "ts": cycle,
                "pid": 0,
                "tid": self.channel,
                "s": "t",
                "args": args,
            }
            for cycle, name, cat, args in self._events
        ]
        other = {
            "kind": "repro-sim-trace",
            "channel": self.channel,
            "capacity": self.capacity,
            "events_total": self.events_total,
            "dropped": self.dropped,
            "end_cycle": self.end_cycle,
        }
        other.update(self.summary())
        return {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": other,
        }


def trace_json(payload: dict) -> str:
    """Canonical byte-stable encoding of a trace payload."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def attach_tracers(system, capacity: int = 65536) -> list[SimTracer]:
    """Arm one :class:`SimTracer` per controller (cf. ``attach_auditors``)."""
    return [SimTracer(mc, capacity=capacity) for mc in system.controllers]


def validate_chrome_trace(payload: dict) -> list[str]:
    """Schema problems in a trace payload (empty list: valid).

    Checks the Chrome trace-event object-format contract (traceEvents
    list of instant events with integer ``ts``) plus this tracer's own
    guarantees: known categories, stall reasons from the fixed
    vocabulary, ``until`` strictly after the stall cycle, and
    non-decreasing timestamps (events are recorded in cycle order).
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        problems.append("traceEvents missing or not a list")
        events = []
    if not isinstance(payload.get("otherData"), dict):
        problems.append("otherData missing or not an object")
    last_ts = None
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: bad name {name!r}")
        if ev.get("ph") != "i":
            problems.append(f"{where}: ph {ev.get('ph')!r} is not an instant event")
        ts = ev.get("ts")
        if not isinstance(ts, int) or isinstance(ts, bool) or ts < 0:
            problems.append(f"{where}: ts {ts!r} is not a non-negative integer")
        else:
            if last_ts is not None and ts < last_ts:
                problems.append(f"{where}: ts {ts} decreases (prev {last_ts})")
            last_ts = ts
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int) or isinstance(ev.get(key), bool):
                problems.append(f"{where}: {key} {ev.get(key)!r} is not an integer")
        cat = ev.get("cat")
        if cat not in _CATEGORIES:
            problems.append(f"{where}: unknown category {cat!r}")
        args = ev.get("args")
        if not isinstance(args, dict):
            problems.append(f"{where}: args missing or not an object")
            continue
        if cat == "stall":
            reason = args.get("reason")
            if reason not in STALL_REASONS:
                problems.append(f"{where}: unknown stall reason {reason!r}")
            until = args.get("until")
            if not isinstance(until, int) or (
                isinstance(ts, int) and not isinstance(ts, bool) and until <= ts
            ):
                problems.append(
                    f"{where}: stall until {until!r} not after cycle {ts!r}"
                )
        elif cat == "decision" and name not in DECISION_KINDS:
            problems.append(f"{where}: unknown decision kind {name!r}")
    return problems
