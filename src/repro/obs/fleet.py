"""Fleet telemetry: live sweep/worker status snapshots for ``repro status``.

A :class:`FleetStatus` collects the orchestrator's job-lifecycle events
(queued → dispatched → retried/speculated/quarantined → done) and worker
heartbeats into a :class:`~repro.obs.metrics.MetricsRegistry`, and
snapshots the whole state to a JSON status file through
:func:`~repro.orchestrator.atomicio.atomic_write_text` — readers (the
``repro status`` subcommand, dashboards, other processes) never observe
a torn file.  Writes are rate-limited so heartbeat chatter cannot turn
the status file into an I/O hotspot; lifecycle edges force a write.

The producer side is wired in two places: :func:`run_sweep` drives the
sweep-level lifecycle and per-point completions for every backend, and
the socket :class:`~repro.orchestrator.backends.server.JobServer`
additionally reports per-worker events (dispatch, heartbeat, retry,
speculation, quarantine) when a status sink is attached.

This module runs on the orchestrator side only — wall-clock use here is
fine (heartbeat *ages* are inherently wall time); the deterministic
cycle-domain surface lives in :mod:`repro.obs.tracer`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.orchestrator.atomicio import atomic_write_text
from repro.orchestrator.journal import SweepJournal

#: Job lifecycle states tracked as labeled counters.
JOB_EVENTS = ("queued", "dispatched", "retried", "speculated", "quarantined", "done")


class FleetStatus:
    """Aggregates fleet events and snapshots them to a status file."""

    def __init__(
        self,
        path: str | Path | None,
        *,
        min_interval_s: float = 0.5,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.min_interval_s = min_interval_s
        self.registry = MetricsRegistry()
        self._jobs = self.registry.counter(
            "fleet_jobs_total", "Job lifecycle events by state"
        )
        self._heartbeat_age = self.registry.gauge(
            "fleet_worker_heartbeat_age_seconds",
            "Seconds since each worker's last heartbeat (at snapshot time)",
        )
        self.sweep: dict = {}
        self.backend: str | None = None
        #: worker label -> last heartbeat wall-clock timestamp.
        self._workers: dict[str, float] = {}
        self._done_labels: set[str] = set()
        self._quarantined: list[str] = []
        self._last_write = 0.0
        self._finished = False

    # ------------------------------------------------------------------
    # Sweep lifecycle (driven by run_sweep)
    # ------------------------------------------------------------------
    def sweep_started(
        self, name: str, points: int, reused: int, todo: int, workers: int
    ) -> None:
        self.sweep = {
            "name": name,
            "points": points,
            "reused": reused,
            "todo": todo,
            "done": 0,
            "workers": workers,
            "state": "running",
        }
        self._finished = False
        self._done_labels = set()
        self._jobs.inc(todo, state="queued")
        self.write(force=True)

    def point_done(self, label: str) -> None:
        """Record one computed point.

        Idempotent per label: a retried or speculated job can complete
        the same point twice (and store replay never reaches here at
        all), so ``done`` counts distinct points and can never exceed
        the ``todo`` reported by :meth:`sweep_started` — the rendered
        ``done/todo`` line stays truthful under ``--resume``.
        """
        if label in self._done_labels:
            return
        self._done_labels.add(label)
        self._jobs.inc(state="done")
        if self.sweep:
            self.sweep["done"] = self.sweep.get("done", 0) + 1
        self.write()

    def sweep_finished(self, backend: str, elapsed_s: float) -> None:
        if self.sweep:
            self.sweep["state"] = "finished"
            self.sweep["elapsed_s"] = round(elapsed_s, 3)
        self.backend = backend
        self._finished = True
        self.write(force=True)

    # ------------------------------------------------------------------
    # Job/worker events (driven by the socket JobServer)
    # ------------------------------------------------------------------
    def job_dispatched(self, label: str, worker: str) -> None:
        self._jobs.inc(state="dispatched")
        self.write()

    def job_retried(self, label: str, attempts: int) -> None:
        self._jobs.inc(state="retried")
        self.write(force=True)

    def job_speculated(self, label: str) -> None:
        self._jobs.inc(state="speculated")
        self.write(force=True)

    def worker_seen(self, worker: str) -> None:
        self._workers.setdefault(worker, time.time())
        self.write()

    def worker_heartbeat(self, worker: str) -> None:
        self._workers[worker] = time.time()
        self.write()

    def worker_quarantined(self, worker: str) -> None:
        self._jobs.inc(state="quarantined")
        if worker not in self._quarantined:
            self._quarantined.append(worker)
        self.write(force=True)

    # ------------------------------------------------------------------
    # Snapshot + persistence
    # ------------------------------------------------------------------
    def job_counts(self) -> dict:
        return {state: int(self._jobs.value(state=state)) for state in JOB_EVENTS}

    def snapshot(self) -> dict:
        now = time.time()
        workers = {}
        for label in sorted(self._workers):
            last = self._workers[label]
            age = max(0.0, now - last)
            self._heartbeat_age.set(round(age, 3), worker=label)
            workers[label] = {
                "last_heartbeat": round(last, 3),
                "age_s": round(age, 3),
            }
        return {
            "kind": "repro-fleet-status",
            "updated_at": round(now, 3),
            "sweep": dict(self.sweep),
            "backend": self.backend,
            "jobs": self.job_counts(),
            "workers": workers,
            "quarantined": list(self._quarantined),
            "metrics": self.registry.snapshot(),
        }

    def write(self, force: bool = False) -> None:
        if self.path is None:
            return
        now = time.monotonic()
        if not force and now - self._last_write < self.min_interval_s:
            return
        self._last_write = now
        try:
            atomic_write_text(self.path, json.dumps(self.snapshot(), indent=2))
        except OSError:
            pass  # status snapshots are best-effort; never break the sweep


def load_status(path: str | Path) -> dict | None:
    """Read a status snapshot; None when absent or unreadable."""
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except (FileNotFoundError, OSError, json.JSONDecodeError):
        return None


def journal_progress(store_root: str | Path) -> list:
    """Journal-derived progress for every sweep sharing a result store."""
    journal_dir = Path(store_root) / "journals"
    if not journal_dir.is_dir():
        return []
    return [
        SweepJournal.load(path) for path in sorted(journal_dir.glob("*.jsonl"))
    ]


def render_status(status: dict | None, journals: list) -> str:
    """Human-readable sweep/fleet dashboard (the ``repro status`` view)."""
    lines: list[str] = []
    if status is None:
        lines.append("no status snapshot found")
    else:
        sweep = status.get("sweep") or {}
        if sweep:
            name = sweep.get("name", "?")
            done = sweep.get("done", 0)
            todo = sweep.get("todo", 0)
            state = sweep.get("state", "?")
            lines.append(
                f"sweep {name}: {state}, {done}/{todo} computed "
                f"({sweep.get('reused', 0)} replayed from the store, "
                f"{sweep.get('points', 0)} points total)"
            )
        backend = status.get("backend")
        if backend:
            lines.append(f"backend: {backend}")
        jobs = status.get("jobs") or {}
        if jobs:
            parts = ", ".join(f"{state} {jobs.get(state, 0)}" for state in JOB_EVENTS)
            lines.append(f"jobs: {parts}")
        workers = status.get("workers") or {}
        if workers:
            lines.append(f"workers ({len(workers)}):")
            for label in sorted(workers):
                info = workers[label]
                lines.append(
                    f"  {label}: last heartbeat {info.get('age_s', '?')}s ago"
                )
        quarantined = status.get("quarantined") or []
        if quarantined:
            lines.append(f"quarantined: {', '.join(quarantined)}")
        updated = status.get("updated_at")
        if updated is not None:
            age = max(0.0, time.time() - updated)
            lines.append(f"snapshot age: {age:.1f}s")
    if journals:
        lines.append("journals:")
        for state in journals:
            lines.append(f"  {state.path.stem}: {state.describe()}")
    return "\n".join(lines)
