"""Kernel phase profiler: where the event loop's wall time actually goes.

``repro perf --profile`` runs each pinned kernel workload once with a
:class:`PhaseProfiler` installed and attributes wall time to the hot-path
phases the SoA-rewrite ROADMAP item needs a target list for:

- ``schedule`` — the per-cycle schedule pass (excluding the sub-phases)
- ``queue-scan`` — the FR-FCFS queue scans inside the pass
- ``next-event`` — the memoized ``next_event`` recomputation
- ``refresh-engine`` — engine hooks (``urgent`` / ``next_deadline`` /
  ``on_act``) across whichever engines the workload instantiates
- ``bus-gating`` — the ``data_bus_free_at`` turnaround/data-bus gate
- ``trace-refill`` — synthetic trace generation (``TraceGenerator``)

Phase times are *exclusive*: a nested timed call (e.g. ``queue-scan``
inside ``schedule``) is subtracted from its parent, so the shares sum to
at most the total and "other" is genuinely unattributed time (core
model, completion heap, Python interpreter overhead).

The profiler wraps methods at *class* level (several hot-path classes
use ``__slots__``, so per-instance monkeypatching is not possible) and
always restores the originals — including on error — so profiled and
unprofiled runs can share a process.  Timer overhead inflates absolute
times; the per-phase *shares* are the actionable output.  The default
``repro perf`` path never installs the profiler, keeping the CI
events/sec floor measurement untouched.
"""

from __future__ import annotations

import time
from collections import Counter

PHASES = (
    "schedule",
    "queue-scan",
    "next-event",
    "refresh-engine",
    "bus-gating",
    "trace-refill",
)


class PhaseProfiler:
    """Exclusive-time phase attribution via class-level method wrapping."""

    def __init__(self) -> None:
        self.exclusive_s: dict[str, float] = {phase: 0.0 for phase in PHASES}
        self.calls: Counter = Counter()
        #: Timer stack entries: [phase, accumulated child time].
        self._stack: list[list] = []
        #: (cls, method name, original function) for restoration.
        self._patched: list[tuple] = []

    # ------------------------------------------------------------------
    def _wrap(self, phase: str, func):
        perf = time.perf_counter
        stack = self._stack
        exclusive = self.exclusive_s
        calls = self.calls

        def wrapper(*args, **kwargs):
            frame = [phase, 0.0]
            stack.append(frame)
            start = perf()
            try:
                return func(*args, **kwargs)
            finally:
                elapsed = perf() - start
                stack.pop()
                exclusive[phase] += elapsed - frame[1]
                calls[phase] += 1
                if stack:
                    stack[-1][1] += elapsed

        wrapper.__name__ = getattr(func, "__name__", phase)
        wrapper.__profiled_phase__ = phase
        return wrapper

    def _patch(self, cls, name: str, phase: str) -> None:
        func = cls.__dict__.get(name)
        if func is None or hasattr(func, "__profiled_phase__"):
            return  # not defined on this class, or already wrapped
        self._patched.append((cls, name, func))
        setattr(cls, name, self._wrap(phase, func))

    def install(self) -> None:
        """Wrap the hot-path methods (idempotent per class/method)."""
        from repro.core.engine import HiraRefreshEngine
        from repro.sim.controller import (
            BaselineRefreshEngine,
            MemoryController,
            NoRefreshEngine,
            RefreshEngine,
        )
        from repro.sim.elastic import ElasticRefreshEngine
        from repro.sim.trace import TraceGenerator

        self._patch(MemoryController, "schedule", "schedule")
        self._patch(MemoryController, "_schedule_queues", "queue-scan")
        self._patch(MemoryController, "next_event", "next-event")
        self._patch(MemoryController, "data_bus_free_at", "bus-gating")
        engines = (
            RefreshEngine,
            NoRefreshEngine,
            BaselineRefreshEngine,
            ElasticRefreshEngine,
            HiraRefreshEngine,
        )
        for cls in engines:
            for name in ("urgent", "next_deadline", "on_act", "urgent_wake"):
                self._patch(cls, name, "refresh-engine")
        self._patch(TraceGenerator, "_refill", "trace-refill")

    def uninstall(self) -> None:
        while self._patched:
            cls, name, func = self._patched.pop()
            setattr(cls, name, func)

    def __enter__(self) -> "PhaseProfiler":
        self.install()
        return self

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    def report(self, wall_s: float) -> dict:
        """Phase breakdown for one profiled run of ``wall_s`` seconds."""
        tracked = sum(self.exclusive_s.values())
        phases = {
            phase: {
                "seconds": round(self.exclusive_s[phase], 4),
                "calls": int(self.calls[phase]),
                "share": round(self.exclusive_s[phase] / wall_s, 4) if wall_s else 0.0,
            }
            for phase in PHASES
        }
        other = max(0.0, wall_s - tracked)
        return {
            "wall_s": round(wall_s, 4),
            "tracked_s": round(tracked, 4),
            "other_s": round(other, 4),
            "other_share": round(other / wall_s, 4) if wall_s else 0.0,
            "phases": phases,
        }


def profile_workload(overrides: dict, instr_budget: int = 200_000) -> dict:
    """One profiled run of a pinned kernel workload (cf. ``measure_workload``).

    Timer overhead makes the absolute wall time slower than the unprofiled
    measurement — the breakdown's *shares* are the comparable signal.
    """
    from repro.sim.config import SystemConfig
    from repro.sim.system import System
    from repro.workloads.mixes import mix_for

    config = SystemConfig(**overrides)
    profiles = mix_for(0, cores=config.cores)
    system = System(config, profiles, seed=100, instr_budget=instr_budget)
    profiler = PhaseProfiler()
    start = time.perf_counter()
    with profiler:
        system.run()
    wall = time.perf_counter() - start
    return profiler.report(wall)
