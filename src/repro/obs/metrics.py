"""Labeled metrics: counters, gauges, histograms, and the stats export map.

The registry is a process-local, dependency-free metrics surface shared
by the two observability consumers:

- simulation results: every :class:`~repro.sim.controller.ControllerStats`
  and :class:`~repro.chip.chip_model.ChipStats` field is exported through
  an explicit field -> metric map (:data:`CONTROLLER_METRICS`,
  :data:`CHIP_METRICS`).  The maps are deliberately spelled out rather
  than derived from ``dataclasses.fields`` at runtime: the
  ``stats-coverage`` lint rule cross-checks the dataclass definitions
  against these maps, so adding a stats counter without deciding its
  metric name (or silently dropping one) fails ``repro lint``.
- fleet telemetry: the orchestrator's job-lifecycle counters and worker
  gauges (see :mod:`repro.obs.fleet`).

Snapshots are plain JSON-able dicts with deterministic key order, so a
snapshot can be embedded byte-stably in status files and ``--json-out``
payloads.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields

_LABEL_SEP = ","


def _label_key(labels: dict) -> str:
    """Canonical string form of a label set (sorted, JSON-safe)."""
    if not labels:
        return ""
    return _LABEL_SEP.join(f"{k}={labels[k]}" for k in sorted(labels))


class Counter:
    """Monotonically increasing value, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self._values: dict[str, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0)

    def total(self) -> float:
        return sum(self._values.values())

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "values": {k: self._values[k] for k in sorted(self._values)},
        }


class Gauge:
    """A value that can go up and down (e.g. heartbeat age, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self._values: dict[str, float] = {}

    def set(self, value: float, **labels) -> None:
        self._values[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def clear(self, **labels) -> None:
        self._values.pop(_label_key(labels), None)

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0)

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "values": {k: self._values[k] for k in sorted(self._values)},
        }


class Histogram:
    """Cumulative-bucket histogram over explicit upper bounds."""

    kind = "histogram"

    def __init__(self, name: str, help: str, buckets: tuple[float, ...]) -> None:
        if tuple(sorted(buckets)) != tuple(buckets) or not buckets:
            raise ValueError(f"histogram {name} needs sorted, non-empty buckets")
        self.name = name
        self.help = help
        self.buckets = tuple(buckets)
        self._counts: dict[str, list[int]] = {}
        self._sums: dict[str, float] = {}
        self._totals: dict[str, int] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        else:
            pass  # above the last bound: counted only in sum/total
        self._sums[key] = self._sums.get(key, 0) + value
        self._totals[key] = self._totals.get(key, 0) + 1

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "values": {
                k: {
                    "counts": list(self._counts[k]),
                    "sum": self._sums[k],
                    "total": self._totals[k],
                }
                for k in sorted(self._counts)
            },
        }


class MetricsRegistry:
    """A named collection of metrics with idempotent registration."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _register(self, metric):
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise ValueError(
                    f"metric {metric.name!r} re-registered as a different kind"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge(name, help))

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)
    ) -> Histogram:
        return self._register(Histogram(name, help, buckets))

    def get(self, name: str):
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """Plain JSON-able snapshot with deterministic key order."""
        return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}


# ----------------------------------------------------------------------
# Simulation stats export
# ----------------------------------------------------------------------
# Field -> (metric name, help) for every counter the simulator reports.
# KEEP COMPLETE: the `stats-coverage` lint rule compares these keys against
# the dataclass fields of ControllerStats / ChipStats; a field missing here
# (a silently dropped counter) or a stale key here (a renamed field) fails
# `repro lint`, and test_obs_metrics asserts the same parity at runtime.

CONTROLLER_METRICS = {
    "reads_served": ("sim_reads_served_total", "Read column accesses served"),
    "writes_served": ("sim_writes_served_total", "Write column accesses served"),
    "row_hits": ("sim_row_hits_total", "Column accesses that hit the open row"),
    "row_misses": ("sim_row_misses_total", "Demand activations (row misses)"),
    "acts": ("sim_acts_total", "ACT commands issued (incl. HiRA/refresh ACTs)"),
    "pres": ("sim_pres_total", "PRE commands issued (incl. refresh closes)"),
    "refs": ("sim_refs_total", "Rank-level REF commands issued"),
    "refs_sb": ("sim_refs_sb_total", "Same-bank REFsb commands issued"),
    "solo_refreshes": ("sim_solo_refreshes_total", "Nominal ACT+PRE row refreshes"),
    "hira_access_parallelized": (
        "sim_hira_access_parallelized_total",
        "Refresh-access HiRA operations (refresh hidden behind a demand ACT)",
    ),
    "hira_refresh_parallelized": (
        "sim_hira_refresh_parallelized_total",
        "Refresh-refresh HiRA operations (two rows per bank-busy window)",
    ),
    "preventive_generated": (
        "sim_preventive_generated_total",
        "PARA preventive refreshes generated",
    ),
    "periodic_generated": (
        "sim_periodic_generated_total",
        "Periodic refresh requests generated",
    ),
    "deadline_misses": (
        "sim_deadline_misses_total",
        "Refresh requests serviced after their deadline",
    ),
    "queue_full_rejections": (
        "sim_queue_full_rejections_total",
        "Demand requests rejected on a full controller queue",
    ),
}

CHIP_METRICS = {
    "acts": ("chip_acts_total", "ACT commands observed by the chip model"),
    "pres": ("chip_pres_total", "PRE commands observed by the chip model"),
    "refs": ("chip_refs_total", "REF commands observed by the chip model"),
    "reads": ("chip_reads_total", "Read bursts observed by the chip model"),
    "writes": ("chip_writes_total", "Write bursts observed by the chip model"),
    "hira_attempts": ("chip_hira_attempts_total", "HiRA sequences attempted"),
    "hira_successes": (
        "chip_hira_successes_total",
        "HiRA sequences honoured by the chip (tRC interval permitted)",
    ),
    "ignored_pre": ("chip_ignored_pre_total", "PRE commands the chip ignored"),
    "ignored_act": ("chip_ignored_act_total", "ACT commands the chip ignored"),
    "corrupted_rows": ("chip_corrupted_rows_total", "Rows decayed past tREFW"),
    "bitflips_injected": (
        "chip_bitflips_injected_total",
        "RowHammer bitflips injected by the chip model",
    ),
}


def _record_fields(registry: MetricsRegistry, stats, table: dict, **labels) -> None:
    missing = [f.name for f in dataclass_fields(stats) if f.name not in table]
    if missing:
        raise KeyError(
            f"{type(stats).__name__} fields missing from the metrics map: {missing}"
        )
    for field_name, (metric_name, help_text) in table.items():
        value = getattr(stats, field_name)
        registry.counter(metric_name, help_text).inc(value, **labels)


def record_controller_stats(
    registry: MetricsRegistry, stats, *, channel: int, **labels
) -> None:
    """Export one ControllerStats into labeled counters (fails on drift)."""
    _record_fields(registry, stats, CONTROLLER_METRICS, channel=channel, **labels)


def record_chip_stats(registry: MetricsRegistry, stats, **labels) -> None:
    """Export one ChipStats into labeled counters (fails on drift)."""
    _record_fields(registry, stats, CHIP_METRICS, **labels)


def metrics_from_result(result) -> MetricsRegistry:
    """Fold a :class:`~repro.sim.system.SimResult`'s per-channel stats into
    a fresh registry (one labeled series per channel)."""
    registry = MetricsRegistry()
    for channel, stats in enumerate(result.controller_stats):
        record_controller_stats(registry, stats, channel=channel)
    return registry
