"""Observability: deterministic sim tracing, fleet metrics, phase profiling.

Three surfaces, all strictly zero-cost when disarmed (the same
discipline as :mod:`repro.orchestrator.faults`): a disarmed run executes
the exact instruction stream of an uninstrumented one, so kernel goldens
and the chaos suite stay bit-identical and the events/sec floor holds.

- :mod:`repro.obs.tracer` — the deterministic cycle-stamped simulation
  tracer: command issues, refresh-engine decisions, and stall-reason
  attribution in a bounded ring buffer, exported as Chrome trace-event
  JSON with exact aggregate summaries.  Armed traces are byte-identical
  across re-runs and across execution backends (timestamps are simulated
  cycles, never wall clock).
- :mod:`repro.obs.metrics` — labeled counters/gauges/histograms plus the
  explicit ``ControllerStats``/``ChipStats`` export maps that the
  ``stats-coverage`` lint rule enforces completeness of.
- :mod:`repro.obs.fleet` — fleet telemetry: job lifecycle counters,
  worker heartbeat ages, and journal-derived progress, snapshotted
  atomically to the status file behind ``repro status``.
- :mod:`repro.obs.profiler` — the kernel phase profiler behind
  ``repro perf --profile`` (schedule pass, ``next_event``, refresh
  engines, trace refill, bus gating).
"""

from repro.obs.fleet import FleetStatus, journal_progress, load_status, render_status
from repro.obs.metrics import (
    CHIP_METRICS,
    CONTROLLER_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_from_result,
    record_chip_stats,
    record_controller_stats,
)
from repro.obs.profiler import PhaseProfiler, profile_workload
from repro.obs.tracer import (
    DECISION_KINDS,
    STALL_REASONS,
    SimTracer,
    attach_tracers,
    trace_json,
    validate_chrome_trace,
)

__all__ = [
    "CHIP_METRICS",
    "CONTROLLER_METRICS",
    "Counter",
    "DECISION_KINDS",
    "FleetStatus",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "STALL_REASONS",
    "SimTracer",
    "attach_tracers",
    "journal_progress",
    "load_status",
    "metrics_from_result",
    "profile_workload",
    "record_chip_stats",
    "record_controller_stats",
    "render_status",
    "trace_json",
    "validate_chrome_trace",
]
