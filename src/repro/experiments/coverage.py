"""Algorithm 1: measuring HiRA's coverage (§4.2).

HiRA's coverage for a row is the fraction of other rows in the bank that
HiRA can activate concurrently with it without corrupting either row's
data, across all four data patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chip.chip_model import DramChip
from repro.dram.geometry import Geometry
from repro.softmc.host import SoftMCHost
from repro.softmc.patterns import ALL_PATTERNS, DataPattern


def tested_row_sample(geometry: Geometry, chunk: int = 2048, stride: int = 1) -> list[int]:
    """The paper's tested-row sample: first, middle, and last ``chunk`` rows.

    ``stride`` subsamples each chunk evenly — the real experiment tested
    every row over days of FPGA time; the simulation benches trade that for
    a uniform subsample (§4 footnote 4 describes the chunking).
    """
    rows_per_bank = geometry.rows_per_bank
    if 3 * chunk > rows_per_bank:
        chunk = rows_per_bank // 3
    middle_start = (rows_per_bank - chunk) // 2
    chunks = (0, middle_start, rows_per_bank - chunk)
    rows: list[int] = []
    for start in chunks:
        rows.extend(range(start, start + chunk, stride))
    return rows


def pair_passes(
    host: SoftMCHost,
    bank: int,
    row_a: int,
    row_b: int,
    t1_ps: int,
    t2_ps: int,
    patterns: tuple[DataPattern, ...] = ALL_PATTERNS,
) -> bool:
    """One Algorithm 1 inner iteration: does HiRA(RowA, RowB) preserve data?

    Initializes the rows with a pattern and its inverse, performs HiRA,
    closes both rows, and reads them back; the pair fails on any bit flip
    under any pattern.
    """
    for pattern in patterns:
        host.initialize(bank, row_a, pattern)
        host.initialize(bank, row_b, pattern.inverse)
        host.hira(bank, row_a, row_b, t1_ps=t1_ps, t2_ps=t2_ps, close=True)
        if host.compare_data(pattern, bank, row_a) > 0:
            return False
        if host.compare_data(pattern.inverse, bank, row_b) > 0:
            return False
    return True


def algorithm1_coverage(
    host: SoftMCHost,
    bank: int,
    row_a: int,
    candidate_rows: list[int],
    t1_ps: int,
    t2_ps: int,
    patterns: tuple[DataPattern, ...] = ALL_PATTERNS,
) -> float:
    """HiRA coverage of ``row_a``: fraction of candidates it can pair with."""
    candidates = [row for row in candidate_rows if row != row_a]
    if not candidates:
        return 0.0
    passed = sum(
        1
        for row_b in candidates
        if pair_passes(host, bank, row_a, row_b, t1_ps, t2_ps, patterns)
    )
    return passed / len(candidates)


@dataclass(frozen=True, slots=True)
class CoverageDistribution:
    """Coverage values across tested rows plus box-whisker summary."""

    t1_ps: int
    t2_ps: int
    coverages: tuple[float, ...]

    @property
    def minimum(self) -> float:
        return min(self.coverages)

    @property
    def maximum(self) -> float:
        return max(self.coverages)

    @property
    def average(self) -> float:
        return sum(self.coverages) / len(self.coverages)


def _coverage_chunk(payload) -> list[float]:
    """Worker-side Algorithm 1 over one chunk of RowA candidates.

    Each worker receives its own pickled copy of the chip, so chunks are
    independent; every Algorithm 1 trial re-initializes the rows it
    touches, which keeps chunked results identical to a serial pass.
    """
    chip, bank, rows_a, tested_rows, t1_ps, t2_ps, patterns = payload
    host = SoftMCHost(chip)
    return [
        algorithm1_coverage(host, bank, row_a, tested_rows, t1_ps, t2_ps, patterns)
        for row_a in rows_a
    ]


def coverage_distribution(
    chip: DramChip,
    bank: int,
    t1_ps: int,
    t2_ps: int,
    tested_rows: list[int] | None = None,
    rows_a: list[int] | None = None,
    patterns: tuple[DataPattern, ...] = ALL_PATTERNS,
    workers: int | None = 1,
) -> CoverageDistribution:
    """Coverage across tested rows for one (t1, t2) configuration.

    ``tested_rows`` is both the RowA population and the RowB candidate set
    (as in the paper); ``rows_a`` optionally restricts which RowAs are
    measured (for subsampled benches).  ``workers`` > 1 shards the RowA
    population across a process pool (order-preserving, same results);
    ``None`` picks the pool's default (``REPRO_WORKERS`` / core count).

    The measurement always runs against a private copy of the chip (the
    parallel path does so inherently — workers receive pickled copies), so
    the caller's chip state is identical afterwards regardless of
    ``workers``; experiments composed after this one see the same device.
    """
    if workers is None:
        from repro.orchestrator.pool import default_workers

        workers = default_workers()
    if tested_rows is None:
        tested_rows = tested_row_sample(chip.geometry)
    if rows_a is None:
        rows_a = tested_rows
    if workers > 1 and len(rows_a) > 1:
        from repro.orchestrator.pool import parallel_map

        shards = min(workers, len(rows_a))
        step = -(-len(rows_a) // shards)
        chunks = [list(rows_a[i : i + step]) for i in range(0, len(rows_a), step)]
        chunk_results = parallel_map(
            _coverage_chunk,
            [(chip, bank, chunk, tested_rows, t1_ps, t2_ps, patterns) for chunk in chunks],
            workers=shards,
        )
        coverages = tuple(value for values in chunk_results for value in values)
    else:
        # Match the parallel path's isolation (workers get pickled copies):
        # measure against a private copy so the caller's chip is untouched.
        import copy

        host = SoftMCHost(copy.deepcopy(chip))
        coverages = tuple(
            algorithm1_coverage(host, bank, row_a, tested_rows, t1_ps, t2_ps, patterns)
            for row_a in rows_a
        )
    return CoverageDistribution(t1_ps=t1_ps, t2_ps=t2_ps, coverages=coverages)
