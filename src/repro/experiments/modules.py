"""The tested DDR4 modules of Tables 1 and 4.

Each entry carries the paper's module metadata plus the calibration target
for the module's HiRA coverage (Table 4's per-module average).  The designs
are all SK Hynix-like — the only vendor class on which HiRA works (§12) —
and the comparison designs :data:`SAMSUNG_LIKE_MODULE` /
:data:`MICRON_LIKE_MODULE` model the 40+40 chips from the other two
manufacturers on which no successful HiRA operation was observed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chip.chip_model import DramChip
from repro.chip.design import ChipDesign, make_design
from repro.chip.vendor import VendorClass
from repro.dram.timing import DDR4_2400, TimingParams


@dataclass(frozen=True)
class TestedModule:
    """Metadata and calibration targets for one tested DDR4 module."""

    label: str
    module_vendor: str
    chip_identifier: str
    module_identifier: str
    freq_mts: int
    date_code: str
    chip_capacity_gbit: int
    die_rev: str
    chip_org: str
    target_coverage: float
    expected_norm_nrh: float
    design_seed: int
    chip_seed: int

    @property
    def subarrays_per_bank(self) -> int:
        """1 KiB rows, 16 banks, 512-row subarrays → 64 SAs per 4 Gbit."""
        return 16 * self.chip_capacity_gbit

    def build_design(self, vendor: VendorClass = VendorClass.HYNIX_LIKE) -> ChipDesign:
        return make_design(
            name=f"{self.label} ({self.chip_identifier})",
            vendor=vendor,
            target_coverage=self.target_coverage,
            design_seed=self.design_seed,
            subarrays_per_bank=self.subarrays_per_bank,
            rows_per_subarray=512,
        )


def build_module_chip(module: TestedModule, timing: TimingParams = DDR4_2400) -> DramChip:
    """Instantiate the module's chip model."""
    return DramChip(module.build_design(), timing=timing, chip_seed=module.chip_seed)


# Table 4 per-module average HiRA coverage and normalized-NRH targets.
TESTED_MODULES: tuple[TestedModule, ...] = (
    TestedModule("A0", "G.SKILL", "DWCW (partial marking)", "F4-2400C17S-8GNT",
                 2400, "42-20", 4, "B", "x8", 0.250, 1.90, design_seed=0xA0, chip_seed=10),
    TestedModule("A1", "G.SKILL", "DWCW (partial marking)", "F4-2400C17S-8GNT",
                 2400, "42-20", 4, "B", "x8", 0.266, 1.94, design_seed=0xA0, chip_seed=11),
    TestedModule("B0", "Kingston", "H5AN8G8NDJR-XNC", "KSM32RD8/16HDR",
                 2400, "48-20", 8, "D", "x8", 0.326, 1.89, design_seed=0xB0, chip_seed=20),
    TestedModule("B1", "Kingston", "H5AN8G8NDJR-XNC", "KSM32RD8/16HDR",
                 2400, "48-20", 8, "D", "x8", 0.316, 1.91, design_seed=0xB0, chip_seed=21),
    TestedModule("C0", "SK Hynix", "H5ANAG8NAJR-XN", "HMAA4GU6AJR8N-XN",
                 2400, "51-20", 4, "F", "x8", 0.353, 1.89, design_seed=0xC0, chip_seed=30),
    TestedModule("C1", "SK Hynix", "H5ANAG8NAJR-XN", "HMAA4GU6AJR8N-XN",
                 2400, "51-20", 4, "F", "x8", 0.384, 1.88, design_seed=0xC0, chip_seed=31),
    TestedModule("C2", "SK Hynix", "H5ANAG8NAJR-XN", "HMAA4GU6AJR8N-XN",
                 2400, "51-20", 4, "F", "x8", 0.361, 1.96, design_seed=0xC0, chip_seed=32),
)

#: Designs on which no successful HiRA operation is observed (§12).
SAMSUNG_LIKE_MODULE = TestedModule(
    "S0", "Samsung-like", "synthetic", "synthetic", 2400, "00-21", 4, "-", "x8",
    0.32, 1.0, design_seed=0x50, chip_seed=40,
)
MICRON_LIKE_MODULE = TestedModule(
    "M0", "Micron-like", "synthetic", "synthetic", 2400, "00-21", 4, "-", "x8",
    0.32, 1.0, design_seed=0x60, chip_seed=50,
)


def build_non_hira_chip(kind: VendorClass, timing: TimingParams = DDR4_2400) -> DramChip:
    """A chip of a vendor class that ignores HiRA's violating commands."""
    if kind is VendorClass.SAMSUNG_LIKE:
        module = SAMSUNG_LIKE_MODULE
    elif kind is VendorClass.MICRON_LIKE:
        module = MICRON_LIKE_MODULE
    else:
        raise ValueError("use build_module_chip for HiRA-capable designs")
    return DramChip(module.build_design(vendor=kind), timing=timing, chip_seed=module.chip_seed)
