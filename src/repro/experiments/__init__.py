"""Drivers for the paper's real-chip experiments (§4).

- :mod:`repro.experiments.modules` — the tested DDR4 modules (Tables 1/4).
- :mod:`repro.experiments.coverage` — Algorithm 1: HiRA's coverage (§4.2).
- :mod:`repro.experiments.second_act` — Algorithm 2: verifying HiRA's
  second row activation via RowHammer thresholds (§4.3).
- :mod:`repro.experiments.bank_variation` — variation across banks (§4.4).
"""

from repro.experiments.coverage import algorithm1_coverage, coverage_distribution, tested_row_sample
from repro.experiments.modules import TESTED_MODULES, TestedModule, build_module_chip
from repro.experiments.second_act import ThresholdResult, characterize_normalized_nrh
from repro.experiments.bank_variation import (
    coverage_identical_across_banks,
    per_bank_normalized_nrh,
)

__all__ = [
    "TESTED_MODULES",
    "TestedModule",
    "ThresholdResult",
    "algorithm1_coverage",
    "build_module_chip",
    "characterize_normalized_nrh",
    "coverage_distribution",
    "coverage_identical_across_banks",
    "per_bank_normalized_nrh",
    "tested_row_sample",
]
