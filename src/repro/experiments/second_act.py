"""Algorithm 2: verifying HiRA's second row activation (§4.3).

A pair passing Algorithm 1 could mean either that HiRA worked or that the
chip silently ignored the second ACT.  This experiment disambiguates: if
the second activation really refreshes the victim row midway through a
double-sided RowHammer attack, the measured RowHammer threshold roughly
doubles (the paper measures 1.9× on average).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chip.chip_model import DramChip
from repro.rowhammer.threshold import HammerTestConfig, normalized_threshold
from repro.softmc.host import SoftMCHost
from repro.softmc.patterns import DataPattern


@dataclass(frozen=True, slots=True)
class ThresholdResult:
    """Measured thresholds for one victim row."""

    bank: int
    victim: int
    threshold_without_hira: int
    threshold_with_hira: int

    @property
    def normalized(self) -> float:
        return self.threshold_with_hira / self.threshold_without_hira


def pick_dummy_row(chip: DramChip, victim: int) -> int | None:
    """A row HiRA can concurrently activate with the victim.

    Uses the chip's isolation map (equivalently discoverable through
    Algorithm 1, which tests cross-validate) and mirrors the victim's
    offset into the first isolated subarray.
    """
    geometry = chip.geometry
    sa_victim = geometry.subarray_of_row(victim)
    partners = chip.isolation.partners(sa_victim)
    if not partners:
        return None
    return geometry.row_of(partners[0], geometry.row_within_subarray(victim))


def characterize_normalized_nrh(
    chip: DramChip,
    bank: int,
    victims: list[int],
    pattern: DataPattern = DataPattern.ALL_ONES,
    lo: int = 1_000,
    hi: int = 400_000,
    resolution: int = 256,
) -> list[ThresholdResult]:
    """Measure RowHammer thresholds with and without HiRA for each victim.

    Victims without two in-subarray physical neighbours (subarray-edge
    rows) or without an isolated dummy partner are skipped, as in the real
    methodology.
    """
    host = SoftMCHost(chip)
    results: list[ThresholdResult] = []
    for victim in victims:
        aggressors = chip.design.aggressors_for_victim(victim)
        if len(aggressors) != 2:
            continue
        dummy = pick_dummy_row(chip, victim)
        if dummy is None:
            continue
        config = HammerTestConfig(
            bank=bank,
            victim=victim,
            aggressors=(aggressors[0], aggressors[1]),
            dummy_row=dummy,
            pattern=pattern,
        )
        without, with_h, __ = normalized_threshold(
            host, config, lo=lo, hi=hi, resolution=resolution
        )
        results.append(
            ThresholdResult(
                bank=bank,
                victim=victim,
                threshold_without_hira=without,
                threshold_with_hira=with_h,
            )
        )
    return results
