"""Variation across DRAM banks (§4.4).

Two findings are reproduced: (1) the row pairs HiRA can concurrently
activate are identical across all 16 banks of a module — the isolation map
is a circuit-design property (§4.4.1) — and (2) HiRA's second row
activation is not ignored in any bank, with per-bank average normalized
RowHammer thresholds between 1.80× and 1.97× (§4.4.2, Fig. 6).
"""

from __future__ import annotations

from repro.chip.chip_model import DramChip
from repro.experiments.coverage import pair_passes
from repro.experiments.second_act import ThresholdResult, characterize_normalized_nrh
from repro.softmc.host import SoftMCHost


def coverage_identical_across_banks(
    chip: DramChip,
    row_pairs: list[tuple[int, int]],
    banks: list[int] | None = None,
    t1_ps: int | None = None,
    t2_ps: int | None = None,
) -> bool:
    """Whether each row pair's HiRA outcome matches across all banks.

    Measures each pair on every bank with Algorithm 1's inner test and
    checks that the pass/fail outcome is bank-independent.
    """
    tp = chip.timing
    t1 = tp.hira_t1 if t1_ps is None else t1_ps
    t2 = tp.hira_t2 if t2_ps is None else t2_ps
    if banks is None:
        banks = list(range(chip.geometry.banks_per_rank))
    host = SoftMCHost(chip)
    for row_a, row_b in row_pairs:
        outcomes = {
            pair_passes(host, bank, row_a, row_b, t1_ps=t1, t2_ps=t2)
            for bank in banks
        }
        if len(outcomes) > 1:
            return False
    return True


def per_bank_normalized_nrh(
    chip: DramChip,
    victims: list[int],
    banks: list[int] | None = None,
    lo: int = 1_000,
    hi: int = 400_000,
    resolution: int = 256,
) -> dict[int, list[ThresholdResult]]:
    """Algorithm 2 repeated on every bank (Fig. 6's data)."""
    if banks is None:
        banks = list(range(chip.geometry.banks_per_rank))
    return {
        bank: characterize_normalized_nrh(
            chip, bank, victims, lo=lo, hi=hi, resolution=resolution
        )
        for bank in banks
    }
