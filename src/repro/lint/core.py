"""Core engine for ``repro lint``: AST loading, suppressions, baseline.

The linter is deliberately self-contained (stdlib ``ast`` only) and runs
on a *source tree*, not on imported modules: checkers receive a
:class:`LintTree` of parsed files keyed by repo-relative POSIX paths
(``sim/controller.py``), which lets the unit tests point the same
checkers at small fixture trees that mirror the real layout.

Three escape hatches, in increasing ceremony:

* a ``# repro-lint: disable=rule1,rule2`` (or ``disable=all``) comment on
  the finding's line suppresses it in place;
* a committed baseline file (``src/repro/lint/baseline.json``)
  grandfathers findings by ``(rule, path, symbol)`` — every entry MUST
  carry a non-empty ``reason`` and every entry MUST still match a live
  finding (stale entries are themselves findings, so the baseline can
  only shrink);
* fixing the code.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

#: JSON report schema revision (see README "Static analysis").
REPORT_VERSION = 1

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")


class LintUsageError(ValueError):
    """Bad invocation (missing root, unknown rule, malformed baseline):
    the CLI maps this to exit code 2, distinct from findings (1)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file/line and a symbol.

    ``symbol`` (e.g. ``"BaselineRefreshEngine.urgent"`` or a
    ``TimingParams`` field name) is the stable half of the baseline key:
    line numbers churn with unrelated edits, symbols don't.
    """

    rule: str
    path: str
    line: int
    message: str
    symbol: str = ""

    def render(self) -> str:
        sym = f" ({self.symbol})" if self.symbol else ""
        return f"{self.path}:{self.line}: [{self.rule}]{sym} {self.message}"


@dataclass
class SourceFile:
    path: str  # repo-relative POSIX path
    tree: ast.Module
    lines: list[str]

    def suppressed_rules(self, line: int) -> set[str]:
        """Rules disabled by a ``# repro-lint:`` comment on ``line``."""
        if not (1 <= line <= len(self.lines)):
            return set()
        match = _SUPPRESS_RE.search(self.lines[line - 1])
        if not match:
            return set()
        return {token.strip() for token in match.group(1).split(",") if token.strip()}


class LintTree:
    """Every parsable ``*.py`` under ``root``, keyed by relative path."""

    def __init__(self, root: Path):
        self.root = Path(root)
        if not self.root.is_dir():
            raise LintUsageError(f"lint root is not a directory: {self.root}")
        self.files: dict[str, SourceFile] = {}
        for path in sorted(self.root.rglob("*.py")):
            rel = path.relative_to(self.root).as_posix()
            text = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(text, filename=str(path))
            except SyntaxError as exc:  # pragma: no cover - defensive
                raise LintUsageError(f"cannot parse {rel}: {exc}") from exc
            self.files[rel] = SourceFile(rel, tree, text.splitlines())

    def get(self, rel: str) -> SourceFile | None:
        return self.files.get(rel)

    def __iter__(self):
        return iter(self.files.values())

    def __len__(self) -> int:
        return len(self.files)


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    symbol: str
    reason: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)


def load_baseline(path: Path | None) -> list[BaselineEntry]:
    """Parse the baseline file; a missing file is an empty baseline."""
    if path is None or not Path(path).exists():
        return []
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise LintUsageError(f"malformed baseline {path}: {exc}") from exc
    entries = []
    for raw in data.get("entries", []):
        entry = BaselineEntry(
            rule=str(raw.get("rule", "")),
            path=str(raw.get("path", "")),
            symbol=str(raw.get("symbol", "")),
            reason=str(raw.get("reason", "")).strip(),
        )
        if not entry.rule or not entry.path:
            raise LintUsageError(
                f"baseline {path}: every entry needs 'rule' and 'path': {raw}"
            )
        if not entry.reason:
            raise LintUsageError(
                f"baseline {path}: entry {entry.key} has no justification "
                "('reason' is mandatory — an unexplained baseline entry is "
                "just a hidden finding)"
            )
        entries.append(entry)
    return entries


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
@dataclass
class LintResult:
    root: str
    rules: list[str]
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_json(self) -> dict:
        return {
            "version": REPORT_VERSION,
            "root": self.root,
            "rules": self.rules,
            "files": self.files,
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "symbol": f.symbol,
                    "message": f.message,
                }
                for f in self.findings
            ],
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "clean": self.clean,
        }


def run_lint(
    root: Path,
    checkers: dict[str, object],
    rules: list[str] | None = None,
    baseline_path: Path | None = None,
) -> LintResult:
    """Run ``rules`` (default: all of ``checkers``) over the tree at
    ``root``, then apply suppressions and the baseline."""
    selected = list(checkers) if rules is None else list(rules)
    for rule in selected:
        if rule not in checkers:
            raise LintUsageError(
                f"unknown rule {rule!r} (have: {', '.join(sorted(checkers))})"
            )
    tree = LintTree(Path(root))
    raw: list[Finding] = []
    for rule in selected:
        raw.extend(checkers[rule].check(tree))
    raw.sort(key=lambda f: (f.path, f.line, f.rule, f.symbol))

    result = LintResult(
        root=str(root), rules=selected, files=len(tree)
    )
    entries = load_baseline(baseline_path)
    matched: set[tuple[str, str, str]] = set()
    by_key = {e.key: e for e in entries}
    for finding in raw:
        src = tree.get(finding.path)
        disabled = src.suppressed_rules(finding.line) if src else set()
        if finding.rule in disabled or "all" in disabled:
            result.suppressed += 1
            continue
        key = (finding.rule, finding.path, finding.symbol)
        if key in by_key:
            matched.add(key)
            result.baselined += 1
            continue
        result.findings.append(finding)
    for entry in entries:
        if entry.key not in matched:
            result.findings.append(
                Finding(
                    rule="stale-baseline",
                    path=entry.path,
                    line=0,
                    symbol=entry.symbol,
                    message=(
                        f"baseline entry for rule '{entry.rule}' no longer "
                        "matches any finding — delete it (the baseline only "
                        "shrinks)"
                    ),
                )
            )
    return result
