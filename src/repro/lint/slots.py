"""Rule ``slots``: slotted classes stay slotted, hot-path classes get slots.

Two sub-rules:

* **Completeness** — in any class that is *fully* slotted (it declares
  ``__slots__`` or ``@dataclass(slots=True)``, and so do all of its
  resolvable bases), every ``self.x = ...`` store must name a slot
  (declared locally, inherited, or a class-level descriptor such as a
  property).  At runtime a stray store raises ``AttributeError`` only on
  the path that executes it; the lint makes it a parse-time error.  A
  class with an unresolvable or unslotted base keeps a ``__dict__``, so
  completeness is unenforceable (and harmless) — those are skipped.
* **Hot-path coverage** — the classes in :data:`HOT_PATH_CLASSES` are
  allocated per-request/per-bank on the kernel hot path (PR 3 measured
  the win); each must declare slots directly so a refactor cannot
  silently regress them to dict-backed instances.
"""

from __future__ import annotations

import ast

from repro.lint.core import Finding, LintTree

NAME = "slots"
DESCRIPTION = (
    "slotted classes must assign only declared slots; hot-path classes "
    "must declare __slots__"
)

#: (path, class) pairs that must stay slotted (kernel hot path, PR 3).
HOT_PATH_CLASSES = (
    ("sim/request.py", "Request"),
    ("sim/core.py", "RobEntry"),
    ("sim/core.py", "CoreModel"),
    ("sim/controller.py", "TimingArrays"),
    ("sim/controller.py", "_FawView"),
    ("sim/controller.py", "_GroupGates"),
    ("sim/controller.py", "_BankState"),
    ("sim/controller.py", "_RankState"),
    ("sim/controller.py", "ControllerStats"),
    ("sim/audit.py", "CommandRecord"),
    ("core/engine.py", "_BankPeriodicState"),
    ("orchestrator/backends/server.py", "_Job"),
)


def _dataclass_slots(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        name = deco.func.attr if isinstance(deco.func, ast.Attribute) else (
            deco.func.id if isinstance(deco.func, ast.Name) else None
        )
        if name != "dataclass":
            continue
        for kw in deco.keywords:
            if (
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    return False


def _declared_slots(node: ast.ClassDef) -> tuple[set[str] | None, int]:
    """(slot names, line) or (None, def line) when the class is unslotted."""
    for item in node.body:
        if isinstance(item, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__slots__" for t in item.targets
        ):
            names: set[str] = set()
            value = item.value
            elements = (
                value.elts if isinstance(value, (ast.Tuple, ast.List)) else [value]
            )
            for element in elements:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.add(element.value)
            return names, item.lineno
    if _dataclass_slots(node):
        fields = {
            item.target.id
            for item in node.body
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name)
        }
        return fields, node.lineno
    return None, node.lineno


def _class_level_names(node: ast.ClassDef) -> set[str]:
    """Methods, properties and class vars — legal targets on a slotted
    class when they are descriptors (properties with setters etc.)."""
    names: set[str] = set()
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(item.name)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
        else:
            names.append("?")
    return names


def check(tree: LintTree) -> list[Finding]:
    registry: dict[str, tuple[str, ast.ClassDef]] = {}
    per_file: dict[str, dict[str, ast.ClassDef]] = {}
    for src in tree:
        classes = {
            node.name: node
            for node in ast.walk(src.tree)
            if isinstance(node, ast.ClassDef)
        }
        per_file[src.path] = classes
        for name, node in classes.items():
            registry.setdefault(name, (src.path, node))

    slots_cache: dict[int, set[str] | None] = {}

    def own_slots(node: ast.ClassDef) -> set[str] | None:
        key = id(node)
        if key not in slots_cache:
            slots_cache[key] = _declared_slots(node)[0]
        return slots_cache[key]

    def resolved_slots(node: ast.ClassDef, seen: set[int]) -> set[str] | None:
        """Union of slots up the (name-resolved) MRO, or None when any
        link is unslotted/unresolvable (=> the class has a __dict__)."""
        if id(node) in seen:
            return None
        seen.add(id(node))
        mine = own_slots(node)
        if mine is None:
            return None
        total = set(mine)
        for base in _base_names(node):
            if base == "object":
                continue
            entry = registry.get(base)
            if entry is None:
                return None  # external base: assume dict-backed
            inherited = resolved_slots(entry[1], seen)
            if inherited is None:
                return None
            total |= inherited
        return total

    findings: list[Finding] = []
    for src in tree:
        for name, node in per_file[src.path].items():
            allowed = resolved_slots(node, set())
            if allowed is None:
                continue
            allowed = allowed | _class_level_names(node)
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                args = item.args
                params = [*args.posonlyargs, *args.args]
                self_name = params[0].arg if params else "self"
                for sub in ast.walk(item):
                    if not isinstance(sub, ast.Attribute):
                        continue
                    if not isinstance(sub.ctx, (ast.Store, ast.Del)):
                        continue
                    if (
                        isinstance(sub.value, ast.Name)
                        and sub.value.id == self_name
                        and sub.attr not in allowed
                    ):
                        findings.append(
                            Finding(
                                rule=NAME,
                                path=src.path,
                                line=sub.lineno,
                                symbol=f"{name}.{sub.attr}",
                                message=(
                                    f"'{sub.attr}' assigned on slotted class "
                                    f"{name} but absent from its (inherited) "
                                    "__slots__ — this raises AttributeError "
                                    "on the first path that executes it"
                                ),
                            )
                        )

    for path, cls_name in HOT_PATH_CLASSES:
        classes = per_file.get(path)
        if classes is None:
            continue  # fixture trees only carry a subset of files
        node = classes.get(cls_name)
        if node is None:
            findings.append(
                Finding(
                    rule=NAME,
                    path=path,
                    line=1,
                    symbol=cls_name,
                    message=(
                        f"hot-path class {cls_name} not found — update "
                        "HOT_PATH_CLASSES if it moved or was renamed"
                    ),
                )
            )
            continue
        if own_slots(node) is None:
            findings.append(
                Finding(
                    rule=NAME,
                    path=path,
                    line=node.lineno,
                    symbol=cls_name,
                    message=(
                        f"hot-path class {cls_name} must declare __slots__ "
                        "(or @dataclass(slots=True)): it is allocated on "
                        "the kernel hot path (see PR 3 measurements)"
                    ),
                )
            )
    return findings
