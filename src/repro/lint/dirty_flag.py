"""Rule ``dirty-flag``: scheduling-state mutations must invalidate the
``next_event`` memo.

``MemoryController.next_event`` is memoized behind ``_dirty`` (PR 3); the
memo's contract is that *every* mutation of deadline-bearing scheduling
state sets the flag (``mark_dirty()`` / ``self._dirty = True``).  A
forgotten mark is the repo's nastiest latent-bug class: the simulator
stays plausible but wakes at stale cycles, silently reordering deep-queue
scheduling.  This checker makes the contract statically enforced over
``sim/controller.py`` plus the refresh engines.

How it works (intra-procedural abstract interpretation + a call-graph
fixpoint):

* **Watched attributes** (:data:`WATCHED`) name the scheduling state, by
  attribute name, independent of receiver — ``bank.open_row`` and
  ``self._preventive`` both count.  Mutations are direct stores
  (``x.attr = ...``, ``x.attr += ...``), container stores/deletes
  (``x[k] = ...``, ``del x[k]``) through a watched attribute or a tainted
  local alias, mutating method calls (``.append()``, ``.pop()``,
  ``heapq.heappush(...)``) on the same, and parameter aliases (any
  non-``self`` parameter is conservatively assumed to alias state).
* **Marks** are ``mark_dirty(...)`` calls and ``x._dirty = True`` stores.
* Each method body is walked **path-sensitively**: branch states carry
  ``(mutated, marked)`` plus the values of boolean-literal locals, so the
  house idiom ``promoted = True ... if promoted: mark_dirty()`` is
  understood exactly.  Loops are joined over {0, 1, 2} executions; within
  a path the mutate/mark *order* is irrelevant (nothing in these methods
  re-reads the memo mid-flight).
* Method calls contribute their callee's fixpoint summary — ``residual``
  (some exit path mutates without marking) taints the caller's path, and
  ``always_marks`` (every exit path marks) clears it.  Summaries are
  merged across classes by method name, which is exactly right for the
  dynamic dispatch through ``self.engine``.
* A **private** method (leading underscore) with a residual path is
  excused when an analyzed method calls it — the obligation propagates to
  the call sites (e.g. ``_record_act`` is covered because every issue
  primitive that calls it marks).  Public methods must discharge the
  obligation themselves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.core import Finding, LintTree

NAME = "dirty-flag"
DESCRIPTION = (
    "every mutation of scheduling state must set the next_event dirty flag "
    "on all paths (mark_dirty / self._dirty = True)"
)

#: Files holding the controller and the refresh engines.
TARGET_FILES = ("sim/controller.py", "sim/elastic.py", "core/engine.py")

#: Scheduling-state attribute names (receiver-independent).
WATCHED = frozenset(
    {
        # MemoryController
        "bus_next",
        "data_bus_next",
        "_data_bus_last_write",
        "read_q",
        "write_q",
        "blocked_ranks",
        "blocked_banks",
        "_scheduled_closes",
        "_bank_demand",
        # TimingArrays columns (also the _BankState/_RankState property
        # names, so stores through either surface are caught)
        "open_row",
        "next_act",
        "next_pre",
        "next_rdwr",
        "busy_until",
        "faw",
        "ref_due",
        "ref_ready",
        "next_act_any",
        "act_floor",
        "group_gate",
        "next_refsb",
        # refresh engines
        "_preventive",
        "_sb_due",
        "_sb_heap",
        "_sb_draining",
        "_debt",
        "_committed",
        "_sb_debt",
        "_sb_deferred",
        "_periodic",
        "_gen_heap",
        "_active",
        "_bank_deadline",
        "_sb_blocked",
        "pr",
        "pending",
        "credit",
        "next_gen",
        "sa_ptr",
    }
)

#: Deliberately NOT watched, with the reason each is excluded:
#:   _dirty / _next_event_cache   — the memo itself;
#:   _epoch / _progress_at        — the schedule() wake memo: _epoch is
#:                                  bumped alongside every mark and
#:                                  _progress_at stores the memoized
#:                                  bound, so watching them would flag
#:                                  the memo machinery itself;
#:   _struct_dirty / _min_deadline / _sb_forced_min
#:                                — engine-internal memos *over* watched
#:                                  state, never read by next_event;
#:   _draining_writes             — write-drain hysteresis: changes which
#:                                  queue schedule() tries first, never a
#:                                  wake time;
#:   _row_q_read / _row_q_write /
#:   _hit_read / _hit_write       — scheduler indexes over read_q and
#:                                  write_q, mutated only at marking
#:                                  chokepoints (enqueue / issue /
#:                                  open_row write);
#:   _seq                         — monotonic arrival-stamp counter, only
#:                                  advanced by enqueue (which marks);
#:   stats / completions          — telemetry, not scheduling state.
EXCLUDED = frozenset(
    {
        "_dirty",
        "_next_event_cache",
        "_epoch",
        "_progress_at",
        "_struct_dirty",
        "_min_deadline",
        "_sb_forced_min",
        "_draining_writes",
        "_row_q_read",
        "_row_q_write",
        "_hit_read",
        "_hit_write",
        "_seq",
        "stats",
        "completions",
    }
)

#: Constructors/attach run before the controller loop exists; their
#: mutations are by definition pre-memo.
EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "attach"})

#: Method names that mutate their receiver in place.
MUTATOR_CALLS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "discard",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "extend",
        "extendleft",
        "update",
        "insert",
        "setdefault",
        "push",
    }
)

#: ``heapq`` module functions whose first argument is mutated.
HEAPQ_FUNCS = frozenset(
    {"heappush", "heappop", "heappushpop", "heapreplace", "heapify"}
)

#: States kept per branch point before flag tracking is dropped.
_STATE_CAP = 128


# ----------------------------------------------------------------------
# Per-path abstract state
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _State:
    mutated: bool
    marked: bool
    flags: frozenset  # of (name, bool) pairs with known values

    def with_flags(self, updates: dict) -> "_State":
        kept = {name: val for name, val in self.flags if name not in updates}
        kept.update(updates)
        return _State(self.mutated, self.marked, frozenset(kept.items()))

    def flag(self, name: str):
        for key, val in self.flags:
            if key == name:
                return val
        return None


@dataclass
class _Summary:
    residual: bool = False  # some exit path mutates without marking
    always_marks: bool = False  # every exit path marks


def _contains_watched(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Attribute) and sub.attr in WATCHED
        for sub in ast.walk(node)
    )


def _first_watched_attr(node: ast.AST) -> str:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in WATCHED:
            return sub.attr
    return "?"


class _MethodAnalyzer:
    """Path-sensitive walk of one method body."""

    def __init__(self, func, summaries: dict[str, _Summary]):
        self.func = func
        self.summaries = summaries
        self.flag_names = self._boolean_flags(func)
        self.tainted = self._taint(func)
        self.exit_states: set[_State] = set()
        self.sites: list[tuple[int, str]] = []  # (line, attr) mutation sites
        self.calls: set[str] = set()

    # -- pre-passes -----------------------------------------------------
    @staticmethod
    def _boolean_flags(func) -> set[str]:
        """Locals assigned *only* literal booleans (trackable flags)."""
        candidates: dict[str, bool] = {}
        for node in ast.walk(func):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                ok = isinstance(node.value, ast.Constant) and isinstance(
                    node.value.value, bool
                )
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
                ok = False
            elif isinstance(node, (ast.For, ast.comprehension)):
                targets = [node.target]
                ok = False
            else:
                continue
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        prev = candidates.get(sub.id, True)
                        candidates[sub.id] = prev and ok
        return {name for name, is_flag in candidates.items() if is_flag}

    def _taint(self, func) -> set[str]:
        """Locals that may alias watched containers (fixpoint over
        assignments, order-insensitively — an over-approximation)."""
        args = func.args
        tainted = {
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        }
        tainted.discard("self")
        for _ in range(3):
            grew = False
            for node in ast.walk(func):
                if isinstance(node, ast.Assign):
                    value, targets = node.value, node.targets
                elif isinstance(node, ast.For):
                    value, targets = node.iter, [node.target]
                elif isinstance(node, ast.comprehension):
                    value, targets = node.iter, [node.target]
                else:
                    continue
                if not (
                    _contains_watched(value)
                    or any(
                        isinstance(sub, ast.Name) and sub.id in tainted
                        for sub in ast.walk(value)
                    )
                ):
                    continue
                for target in targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name) and sub.id not in tainted:
                            tainted.add(sub.id)
                            grew = True
            if not grew:
                break
        return tainted

    def _is_tainted(self, node: ast.AST) -> bool:
        return _contains_watched(node) or any(
            isinstance(sub, ast.Name) and sub.id in self.tainted
            for sub in ast.walk(node)
        )

    # -- statement effects ----------------------------------------------
    def _effects(self, node: ast.AST):
        """(mutation sites, marks?) of one statement/expression subtree,
        not descending into nested function definitions."""
        sites: list[tuple[int, str]] = []
        marked = False
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(sub, ast.Assign):
                if (
                    isinstance(sub.value, ast.Constant)
                    and sub.value.value is True
                    and any(
                        isinstance(t, ast.Attribute) and t.attr == "_dirty"
                        for t in sub.targets
                    )
                ):
                    marked = True
                for target in sub.targets:
                    sites.extend(self._store_sites(target))
            elif isinstance(sub, ast.AugAssign):
                sites.extend(self._store_sites(sub.target))
            elif isinstance(sub, ast.Delete):
                for target in sub.targets:
                    sites.extend(self._store_sites(target))
            elif isinstance(sub, ast.Call):
                func = sub.func
                if isinstance(func, ast.Attribute):
                    if func.attr == "mark_dirty":
                        marked = True
                    elif func.attr in MUTATOR_CALLS and self._is_tainted(
                        func.value
                    ):
                        sites.append(
                            (sub.lineno, _first_watched_attr(func.value))
                        )
                    elif (
                        func.attr in HEAPQ_FUNCS
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "heapq"
                        and sub.args
                        and self._is_tainted(sub.args[0])
                    ):
                        sites.append(
                            (sub.lineno, _first_watched_attr(sub.args[0]))
                        )
                    self.calls.add(func.attr)
                elif isinstance(func, ast.Name):
                    self.calls.add(func.id)
        return sites, marked

    def _store_sites(self, target: ast.AST) -> list[tuple[int, str]]:
        sites = []
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                sites.extend(self._store_sites(element))
        elif isinstance(target, ast.Attribute):
            if target.attr in WATCHED:
                sites.append((target.lineno, target.attr))
        elif isinstance(target, ast.Subscript):
            if self._is_tainted(target.value):
                sites.append((target.lineno, _first_watched_attr(target.value)))
        return sites

    def _apply(self, node: ast.AST, states: set[_State]) -> set[_State]:
        sites, marked = self._effects(node)
        call_mutates = False
        call_marks = False
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                name = None
                if isinstance(sub.func, ast.Attribute):
                    name = sub.func.attr
                elif isinstance(sub.func, ast.Name):
                    name = sub.func.id
                summary = self.summaries.get(name)
                if summary is not None:
                    call_mutates = call_mutates or summary.residual
                    call_marks = call_marks or summary.always_marks
        if sites:
            self.sites.extend(sites)
        mutated = bool(sites) or call_mutates
        mark = marked or call_marks
        if not mutated and not mark:
            return states
        return {
            _State(s.mutated or mutated, s.marked or mark, s.flags)
            for s in states
        }

    # -- control flow ---------------------------------------------------
    def run(self):
        initial = {_State(False, False, frozenset())}
        fallthrough = self._walk(self.func.body, initial)
        self.exit_states |= fallthrough
        residual = any(s.mutated and not s.marked for s in self.exit_states)
        always = bool(self.exit_states) and all(
            s.marked for s in self.exit_states
        )
        return residual, always

    def _cap(self, states: set[_State]) -> set[_State]:
        if len(states) <= _STATE_CAP:
            return states
        return {
            _State(s.mutated, s.marked, frozenset()) for s in states
        }

    def _walk(self, body, states: set[_State]) -> set[_State]:
        for stmt in body:
            if not states:
                return states
            states = self._cap(states)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.Return, ast.Raise)):
                self.exit_states |= self._apply(stmt, states)
                return set()
            if isinstance(stmt, ast.Assign):
                states = self._apply(stmt, states)
                if (
                    len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id in self.flag_names
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, bool)
                ):
                    name, val = stmt.targets[0].id, stmt.value.value
                    states = {s.with_flags({name: val}) for s in states}
                continue
            if isinstance(stmt, ast.If):
                states = self._apply(stmt.test, states)
                then_in, else_in = self._split_on_flag(stmt.test, states)
                then_out = self._walk(stmt.body, then_in)
                else_out = self._walk(stmt.orelse, else_in)
                states = then_out | else_out
                continue
            if isinstance(stmt, (ast.For, ast.While)):
                header = stmt.iter if isinstance(stmt, ast.For) else stmt.test
                states = self._apply(header, states)
                joined = set(states)
                current = set(states)
                for _ in range(2):
                    out = self._walk(stmt.body, current)
                    new = (out | self._apply(header, out)) - joined
                    if not new:
                        break
                    joined |= new
                    current = set(joined)
                states = self._walk(stmt.orelse, joined) if stmt.orelse else joined
                continue
            if isinstance(stmt, ast.Try):
                body_out = self._walk(stmt.body, states)
                handler_in = states | body_out
                outs = body_out
                for handler in stmt.handlers:
                    outs |= self._walk(handler.body, handler_in)
                if stmt.orelse:
                    outs |= self._walk(stmt.orelse, body_out)
                if stmt.finalbody:
                    outs = self._walk(stmt.finalbody, outs)
                states = outs
                continue
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    states = self._apply(item.context_expr, states)
                states = self._walk(stmt.body, states)
                continue
            if isinstance(stmt, (ast.Break, ast.Continue)):
                # Joined loop states already cover early exits (the loop
                # result is the union over 0/1/2 executions).
                return states
            states = self._apply(stmt, states)
        return states

    def _split_on_flag(self, test: ast.AST, states: set[_State]):
        name, truthy = None, True
        if isinstance(test, ast.Name):
            name = test.id
        elif (
            isinstance(test, ast.UnaryOp)
            and isinstance(test.op, ast.Not)
            and isinstance(test.operand, ast.Name)
        ):
            name, truthy = test.operand.id, False
        if name is None or name not in self.flag_names:
            return set(states), set(states)
        then_in = {
            s.with_flags({name: truthy})
            for s in states
            if s.flag(name) in (None, truthy)
        }
        else_in = {
            s.with_flags({name: not truthy})
            for s in states
            if s.flag(name) in (None, not truthy)
        }
        return then_in, else_in


# ----------------------------------------------------------------------
# Checker entry point
# ----------------------------------------------------------------------
def _collect_methods(tree: LintTree):
    """All class methods in the target files: (path, class, funcdef)."""
    methods = []
    for rel in TARGET_FILES:
        src = tree.get(rel)
        if src is None:
            continue
        for node in src.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    methods.append((rel, node.name, item))
    return methods


def check(tree: LintTree) -> list[Finding]:
    methods = _collect_methods(tree)
    analyzed = [
        m for m in methods if m[2].name not in EXEMPT_METHODS
    ]
    names = {func.name for _, _, func in analyzed}
    summaries: dict[str, _Summary] = {name: _Summary() for name in names}

    results: dict[tuple[str, str, str], tuple] = {}
    callers: dict[str, set[str]] = {name: set() for name in names}
    for _ in range(len(names) + 4):
        changed = False
        merged: dict[str, _Summary] = {
            name: _Summary(residual=False, always_marks=True) for name in names
        }
        for rel, cls, func in analyzed:
            analyzer = _MethodAnalyzer(func, summaries)
            residual, always = analyzer.run()
            results[(rel, cls, func.name)] = (residual, analyzer)
            target = merged[func.name]
            target.residual = target.residual or residual
            target.always_marks = target.always_marks and always
            for callee in analyzer.calls:
                if callee in callers and callee != func.name:
                    callers[callee].add(func.name)
        for name in names:
            new = merged[name]
            old = summaries[name]
            if (new.residual, new.always_marks) != (
                old.residual,
                old.always_marks,
            ):
                summaries[name] = new
                changed = True
        if not changed:
            break

    findings = []
    for (rel, cls, name), (residual, analyzer) in sorted(results.items()):
        if not residual:
            continue
        if name.startswith("_") and callers.get(name):
            # Private helper with analyzed callers: the marking obligation
            # propagates to the call sites, which are checked above.
            continue
        if analyzer.sites:
            line, attr = analyzer.sites[0]
            detail = f"mutates scheduling state ('{attr}', line {line})"
        else:
            line = analyzer.func.lineno
            detail = "reaches scheduling-state mutations through calls"
        findings.append(
            Finding(
                rule=NAME,
                path=rel,
                line=line,
                symbol=f"{cls}.{name}",
                message=(
                    f"{detail} on a path that never sets the next_event "
                    "dirty flag (mark_dirty() / self._dirty = True)"
                ),
            )
        )
    return findings
