"""``repro lint``: AST-based invariant linting for the simulator.

Seven repo-specific rules guard the invariants the runtime layers
(controller gates → auditor → oracle) cannot see:

========================  ==============================================
rule                      invariant
========================  ==============================================
``dirty-flag``            scheduling-state mutations set the
                          ``next_event`` memo's dirty flag on all paths
``timing-coverage``       every ``TimingParams`` field is enforced by
                          controller gating, the auditor, and the oracle
``determinism``           no wall clocks, unseeded RNGs, ``id()``/
                          ``hash()`` ordering, or raw set iteration in
                          simulation logic
``slots``                 slotted classes only assign declared slots;
                          hot-path classes declare ``__slots__``
``protocol-dispatch``     every socket-protocol message type is sent and
                          dispatched on by the right endpoints
``protocol-timeouts``     every protocol receive is bounded by a socket
                          timeout / timeout handler, or carries a
                          ``blocking-ok:`` justification
``stats-coverage``        every ``ControllerStats``/``ChipStats`` field
                          is exported through the obs metrics tables,
                          and no table entry is stale
========================  ==============================================

Run ``repro lint`` (or ``python -m repro.cli lint``); see README
"Static analysis" for suppressions and the baseline workflow, and
``tools/check_lint.py`` for the planted-mutation guards that prove each
rule is non-vacuous.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import (
    determinism,
    dirty_flag,
    protocol_dispatch,
    protocol_timeouts,
    slots,
    stats_coverage,
    timing_coverage,
)
from repro.lint.core import (  # noqa: F401  (re-exported API)
    Finding,
    LintResult,
    LintTree,
    LintUsageError,
    run_lint,
)

#: Rule name -> checker module (each exposes NAME/DESCRIPTION/check).
CHECKERS = {
    module.NAME: module
    for module in (
        dirty_flag,
        timing_coverage,
        determinism,
        slots,
        protocol_dispatch,
        protocol_timeouts,
        stats_coverage,
    )
}

#: The installed ``src/repro`` tree — the default lint root.
DEFAULT_ROOT = Path(__file__).resolve().parent.parent

#: The committed baseline for grandfathered findings (kept empty: the
#: first clean run fixed every real finding instead of baselining it).
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def lint_tree(
    root: Path | None = None,
    rules: list[str] | None = None,
    baseline: Path | None | str = "auto",
) -> LintResult:
    """Run the registered checkers; ``baseline="auto"`` uses the committed
    baseline only when linting the default root."""
    root = Path(root) if root is not None else DEFAULT_ROOT
    if baseline == "auto":
        baseline = DEFAULT_BASELINE if root == DEFAULT_ROOT else None
    return run_lint(root, CHECKERS, rules=rules, baseline_path=baseline)
