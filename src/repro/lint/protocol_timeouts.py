"""Rule ``protocol-timeouts``: no unbounded waits on protocol sockets.

Every ``recv_msg`` call site in the socket endpoints (``server.py``,
``worker.py``) must be provably bounded, because an unbounded receive is
how the distributed layer's worst bugs present: the PR 5 truncated-frame
hang and the "server accepts but never welcomes" strand both blocked in
a bare ``recv``.  A call site is accepted when, in lexical order inside
its enclosing function, one of these holds:

1. the *last* ``.settimeout(...)`` call before it passes a non-``None``
   bound (the socket wakes with ``socket.timeout``);
2. the call sits inside a ``try`` whose handlers catch ``socket.timeout``
   / ``TimeoutError`` (the function is written for a bound that an
   earlier layer armed — e.g. the server arms ``heartbeat_timeout`` at
   registration and ``_await_result`` handles the expiry);
3. a ``blocking-ok:`` comment earlier in the function documents why an
   unbounded wait is safe (e.g. TCP keepalive bounds a vanished peer).

New protocol messages therefore cannot reintroduce an unbounded wait
without either bounding it or writing down the justification where the
next reader will look.
"""

from __future__ import annotations

import ast

from repro.lint.core import Finding, LintTree, SourceFile

NAME = "protocol-timeouts"
DESCRIPTION = (
    "every recv_msg call in the socket endpoints needs a socket timeout, "
    "a socket.timeout handler, or a 'blocking-ok:' justification"
)

ENDPOINT_FILES = (
    "orchestrator/backends/server.py",
    "orchestrator/backends/worker.py",
)

#: Exception names that prove the function expects a timeout to fire.
_TIMEOUT_HANDLERS = {"timeout", "TimeoutError"}


def _exception_names(handler: ast.ExceptHandler) -> set[str]:
    """Leaf names of the exception types an ``except`` clause catches."""
    names: set[str] = set()
    node = handler.type
    if node is None:
        return names
    parts = node.elts if isinstance(node, ast.Tuple) else [node]
    for part in parts:
        if isinstance(part, ast.Attribute):
            names.add(part.attr)
        elif isinstance(part, ast.Name):
            names.add(part.id)
    return names


def _recv_calls(func: ast.AST) -> list[ast.Call]:
    calls = []
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "recv_msg"
        ):
            calls.append(node)
    return calls


def _last_settimeout_arg(func: ast.AST, before_line: int) -> ast.AST | None:
    """The argument of the last ``.settimeout(...)`` call before the line
    (``None`` when the function never sets one that early)."""
    best_line = -1
    best_arg: ast.AST | None = None
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "settimeout"
            and node.args
            and node.lineno <= before_line
            and node.lineno > best_line
        ):
            best_line = node.lineno
            best_arg = node.args[0]
    return best_arg


def _in_timeout_try(func: ast.AST, call: ast.Call) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Try):
            continue
        if not any(call is sub for sub in ast.walk(node)):
            continue
        for handler in node.handlers:
            if _exception_names(handler) & _TIMEOUT_HANDLERS:
                return True
    return False


def _has_blocking_ok(src: SourceFile, func: ast.AST, before_line: int) -> bool:
    start = getattr(func, "lineno", 1)
    for line in src.lines[start - 1 : before_line]:
        if "blocking-ok:" in line:
            return True
    return False


def check(tree: LintTree) -> list[Finding]:
    findings: list[Finding] = []
    for rel in ENDPOINT_FILES:
        src = tree.get(rel)
        if src is None:
            continue
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for call in _recv_calls(node):
                bound = _last_settimeout_arg(node, call.lineno)
                if bound is not None and not (
                    isinstance(bound, ast.Constant) and bound.value is None
                ):
                    continue  # a live non-None socket timeout governs it
                if _in_timeout_try(node, call):
                    continue  # the function handles the timeout expiry
                if _has_blocking_ok(src, node, call.lineno):
                    continue  # documented deliberate blocking wait
                findings.append(
                    Finding(
                        rule=NAME,
                        path=rel,
                        line=call.lineno,
                        symbol=node.name,
                        message=(
                            "unbounded recv_msg: set a socket timeout "
                            "(`.settimeout(bound)`), handle socket.timeout, "
                            "or justify with a 'blocking-ok: <reason>' "
                            "comment earlier in the function"
                        ),
                    )
                )
    return findings
