"""Rule ``determinism``: simulation logic must be bit-reproducible.

The distributed sweep backend (PR 4) promises that every backend —
serial, local pool, socket workers on other hosts — produces
bit-identical results, and the result cache keys on content hashes that
assume it.  That guarantee dies quietly if simulation logic ever consults
a wall clock, an unseeded RNG, process-dependent identity (``id()``,
``hash()`` under ``PYTHONHASHSEED``), or iterates a ``set`` whose order
feeds scheduling decisions.

Scope (:data:`SCOPE_DIRS` + :data:`SCOPE_FILES`): the simulator proper
plus the orchestrator modules whose *output* must be deterministic.
Deliberately out of scope, because wall-clock use there is legitimate
telemetry/timeouts and never feeds results: ``perf.py``,
``orchestrator/runner.py`` (elapsed-seconds telemetry; grid assembly is
index-keyed), ``orchestrator/backends/server.py`` and ``worker.py``
(heartbeat/timeout plumbing).

The set-iteration sub-rule allows :data:`INT_KEYED_SETS`: sets keyed by
ints/int-tuples iterate in a reproducible order on CPython because
``PYTHONHASHSEED`` only perturbs ``str``/``bytes`` hashing — and each
allowlisted consumer is order-insensitive anyway (min-scans, or
mutate-and-return-immediately loops).  Iterating any *other* set (or a
future string-keyed one) must go through ``sorted(...)``.
"""

from __future__ import annotations

import ast

from repro.lint.core import Finding, LintTree

NAME = "determinism"
DESCRIPTION = (
    "no wall-clock reads, unseeded RNGs, id()/hash() ordering, or raw set "
    "iteration in simulation logic"
)

SCOPE_DIRS = ("sim/", "core/", "dram/", "chip/", "rowhammer/", "workloads/")
SCOPE_FILES = (
    "orchestrator/hashing.py",
    "orchestrator/sweep.py",
    "orchestrator/execute.py",
    "orchestrator/backends/protocol.py",
    # The sim tracer's exports must be byte-identical across runs and
    # backends; wall-clock telemetry lives in obs/fleet.py, out of scope.
    "obs/tracer.py",
)

WALLCLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "thread_time",
    }
)
DATETIME_CTORS = frozenset({"now", "today", "utcnow"})
FORBIDDEN_MODULES = {
    "random": "use a seeded numpy Generator (np.random.default_rng(seed))",
    "uuid": "uuids are host/time-derived",
    "secrets": "cryptographic randomness is never reproducible",
}
#: ``np.random.X`` attributes that are fine (explicitly seeded machinery).
NP_RANDOM_OK = frozenset(
    {"default_rng", "Generator", "SeedSequence", "Philox", "PCG64", "MT19937",
     "BitGenerator"}
)

#: Sets safe to iterate raw: int/int-tuple keyed (PYTHONHASHSEED only
#: perturbs str/bytes on CPython) *and* consumed order-insensitively.
INT_KEYED_SETS = frozenset(
    {
        "blocked_ranks",
        "blocked_banks",
        "_sb_draining",
        "_sb_blocked",
        "_active",
        # Row-hit bank indexes: int-keyed, and consumed via a min-seq
        # reduction over per-bank deque heads — order-insensitive.
        "_hit_read",
        "_hit_write",
    }
)


def _in_scope(rel: str) -> bool:
    return rel in SCOPE_FILES or any(rel.startswith(d) for d in SCOPE_DIRS)


def _dotted(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"] (best effort)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def _set_attrs(module: ast.Module) -> set[str]:
    """Attribute names assigned a set value anywhere in the module."""
    attrs: set[str] = set()
    for node in ast.walk(module):
        value = None
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.target is not None:
            targets = [node.target]
            ann = node.annotation
            ann_parts = _dotted(ann.value if isinstance(ann, ast.Subscript) else ann)
            if ann_parts and ann_parts[-1] in ("set", "Set", "frozenset"):
                for target in targets:
                    if isinstance(target, ast.Attribute):
                        attrs.add(target.attr)
            value = node.value
        else:
            continue
        is_set = isinstance(value, (ast.Set, ast.SetComp)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset")
        )
        if not is_set:
            continue
        for target in targets:
            if isinstance(target, ast.Attribute):
                attrs.add(target.attr)
    return attrs


def _check_file(src) -> list[Finding]:
    findings: list[Finding] = []
    module = src.tree

    def add(node, symbol, message):
        findings.append(
            Finding(
                rule=NAME,
                path=src.path,
                line=node.lineno,
                symbol=symbol,
                message=message,
            )
        )

    # Track local aliases of the time/datetime/os/numpy modules.
    aliases = {"time": "time", "datetime": "datetime", "os": "os"}
    for node in ast.walk(module):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in FORBIDDEN_MODULES:
                    add(
                        node,
                        root,
                        f"import of '{root}' in simulation logic: "
                        f"{FORBIDDEN_MODULES[root]}",
                    )
                if root in ("time", "datetime", "os"):
                    aliases[alias.asname or root] = root
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in FORBIDDEN_MODULES:
                add(
                    node,
                    root,
                    f"import from '{root}' in simulation logic: "
                    f"{FORBIDDEN_MODULES[root]}",
                )

    for node in ast.walk(module):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        parts = _dotted(func)
        canon = [aliases.get(parts[0], parts[0])] + parts[1:] if parts else []
        if (
            len(canon) >= 2
            and canon[0] == "time"
            and canon[-1] in WALLCLOCK_TIME_ATTRS
        ):
            add(
                node,
                ".".join(parts),
                "wall-clock read in simulation logic; results must not "
                "depend on real time",
            )
        elif canon and canon[0] == "datetime" and canon[-1] in DATETIME_CTORS:
            add(node, ".".join(parts), "wall-clock date read in simulation logic")
        elif canon[-2:] == ["os", "urandom"] or canon == ["os", "urandom"]:
            add(node, "os.urandom", "os.urandom is unseedable randomness")
        elif isinstance(func, ast.Name) and func.id in ("id", "hash") and node.args:
            add(
                node,
                func.id,
                f"builtin {func.id}() is process-dependent "
                "(PYTHONHASHSEED / allocator addresses); never let it feed "
                "ordering or results",
            )
        elif len(canon) >= 2 and canon[-2] == "random" and canon[0] in (
            "np",
            "numpy",
        ):
            attr = canon[-1]
            if attr not in NP_RANDOM_OK:
                add(
                    node,
                    ".".join(parts),
                    "legacy global numpy RNG; use an explicitly seeded "
                    "np.random.default_rng(seed)",
                )
            elif attr == "default_rng" and not node.args and not node.keywords:
                add(
                    node,
                    ".".join(parts),
                    "default_rng() without a seed is entropy-seeded; pass "
                    "an explicit seed",
                )

    set_attrs = _set_attrs(module) - INT_KEYED_SETS
    iter_exprs = [
        node.iter
        for node in ast.walk(module)
        if isinstance(node, (ast.For, ast.comprehension))
    ]
    for iter_expr in iter_exprs:
        if isinstance(iter_expr, ast.Attribute) and iter_expr.attr in set_attrs:
            findings.append(
                Finding(
                    rule=NAME,
                    path=src.path,
                    line=iter_expr.lineno,
                    symbol=iter_expr.attr,
                    message=(
                        f"iteration over set attribute '{iter_expr.attr}': "
                        "set order is hash-dependent for str keys and easy "
                        "to destabilize — wrap in sorted(...) or, if the "
                        "keys are ints/int-tuples and the consumer is "
                        "order-insensitive, add it to INT_KEYED_SETS"
                    ),
                )
            )
    return findings


def check(tree: LintTree) -> list[Finding]:
    findings: list[Finding] = []
    for src in tree:
        if _in_scope(src.path):
            findings.extend(_check_file(src))
    return findings
