"""Rule ``stats-coverage``: every stats counter must reach the metrics
registry.

The observability layer exports :class:`ControllerStats` and
:class:`ChipStats` through the explicit field→metric tables in
``obs/metrics.py`` (``CONTROLLER_METRICS`` / ``CHIP_METRICS``).  A
counter someone adds to a stats dataclass but not to its table would
silently vanish from fleet telemetry and ``repro status`` — the runtime
guard (:func:`repro.obs.metrics._record_fields`) only fires when a
snapshot is actually recorded, so a forgotten field can survive every
test that doesn't exercise the exporter.  This rule makes the parity a
static property, in both directions:

* a stats field missing from its metrics table is a finding on the
  dataclass line that added it;
* a table key naming no live field is a finding on the table (stale
  entries misreport zeros forever).
"""

from __future__ import annotations

import ast

from repro.lint.core import Finding, LintTree

NAME = "stats-coverage"
DESCRIPTION = (
    "every ControllerStats/ChipStats field must be exported through the "
    "obs metrics tables (and every table entry must name a live field)"
)

METRICS_FILE = "obs/metrics.py"

#: (stats file, stats dataclass, metrics-table name in METRICS_FILE).
SURFACES = (
    ("sim/controller.py", "ControllerStats", "CONTROLLER_METRICS"),
    ("chip/chip_model.py", "ChipStats", "CHIP_METRICS"),
)


def _dataclass_fields(src, class_name: str) -> dict[str, int] | None:
    """Annotated field name -> line for ``class_name``; None if absent."""
    for node in src.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields = {}
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    fields[item.target.id] = item.lineno
            return fields
    return None


def _table_keys(src, table_name: str) -> dict[str, int] | None:
    """String keys -> line of the module-level dict ``table_name``."""
    for node in src.tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == table_name:
                if not isinstance(value, ast.Dict):
                    return {}
                keys = {}
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        keys[key.value] = key.lineno
                return keys
    return None


def check(tree: LintTree) -> list[Finding]:
    findings: list[Finding] = []
    metrics_src = tree.get(METRICS_FILE)
    for stats_file, class_name, table_name in SURFACES:
        src = tree.get(stats_file)
        if src is None:
            continue  # fixture trees may carry only one surface
        fields = _dataclass_fields(src, class_name)
        if fields is None:
            findings.append(
                Finding(
                    rule=NAME,
                    path=stats_file,
                    line=1,
                    symbol=class_name,
                    message=f"class {class_name} not found",
                )
            )
            continue
        if metrics_src is None:
            findings.append(
                Finding(
                    rule=NAME,
                    path=stats_file,
                    line=1,
                    symbol=class_name,
                    message=(
                        f"{class_name} has no metrics export: {METRICS_FILE} "
                        f"(defining {table_name}) is missing from the tree"
                    ),
                )
            )
            continue
        keys = _table_keys(metrics_src, table_name)
        if keys is None:
            findings.append(
                Finding(
                    rule=NAME,
                    path=METRICS_FILE,
                    line=1,
                    symbol=table_name,
                    message=(
                        f"metrics table {table_name} not found, so "
                        f"{class_name} fields are not exported to the "
                        "metrics registry"
                    ),
                )
            )
            continue
        for name, line in sorted(fields.items()):
            if name in keys:
                continue
            findings.append(
                Finding(
                    rule=NAME,
                    path=stats_file,
                    line=line,
                    symbol=f"{class_name}.{name}",
                    message=(
                        f"{class_name}.{name} is missing from "
                        f"{METRICS_FILE}:{table_name} — the counter would "
                        "silently vanish from fleet telemetry; add a "
                        "(metric name, help) entry for it"
                    ),
                )
            )
        for key, line in sorted(keys.items()):
            if key in fields:
                continue
            findings.append(
                Finding(
                    rule=NAME,
                    path=METRICS_FILE,
                    line=line,
                    symbol=f"{table_name}[{key!r}]",
                    message=(
                        f"{table_name} entry {key!r} names no "
                        f"{class_name} field — stale entries report "
                        "zeros forever; delete or rename it"
                    ),
                )
            )
    return findings
