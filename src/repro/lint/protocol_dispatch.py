"""Rule ``protocol-dispatch``: every wire message type has both endpoints.

``orchestrator/backends/protocol.py`` declares the socket backend's
message registry (:data:`MESSAGE_TYPES`: type -> direction).  For each
type, the *sending* side must actually build a ``{"type": X, ...}`` dict
literal and the *receiving* side must dispatch on the literal somewhere
in a comparison (``== "X"``, ``!= "X"``, ``in ("X", ...)``).  A message
added to the protocol without both endpoints is exactly the kind of gap
that survives happy-path tests: the worker's missing ``welcome`` check
(fixed alongside this rule) meant any garbage registration reply started
the job loop.

The check is syntactic on purpose: dict literals and string comparisons
are how both endpoints are written today, and keeping the rule dumb means
a refactor to something cleverer (a dispatch table) must update the lint
— a feature, since the lint then re-verifies exhaustiveness of the new
shape.
"""

from __future__ import annotations

import ast

from repro.lint.core import Finding, LintTree

NAME = "protocol-dispatch"
DESCRIPTION = (
    "every MESSAGE_TYPES entry must be sent (dict literal) and dispatched "
    "on (string comparison) by the correct endpoints"
)

PROTOCOL_FILE = "orchestrator/backends/protocol.py"
SERVER_FILE = "orchestrator/backends/server.py"
WORKER_FILE = "orchestrator/backends/worker.py"
DIRECTIONS = ("worker->server", "server->worker")


def _message_types(tree: LintTree):
    src = tree.get(PROTOCOL_FILE)
    if src is None:
        return None, None
    for node in ast.walk(src.tree):
        targets = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == "MESSAGE_TYPES" for t in targets
        ):
            continue
        if not isinstance(value, ast.Dict):
            return None, node.lineno
        registry = {}
        for key, val in zip(value.keys, value.values):
            if isinstance(key, ast.Constant) and isinstance(val, ast.Constant):
                registry[str(key.value)] = (str(val.value), key.lineno)
        return registry, node.lineno
    return None, 1


def _compared_literals(src) -> set[str]:
    """String constants used in comparisons (dispatch arms)."""
    literals: set[str] = set()
    if src is None:
        return literals
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Compare):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                literals.add(sub.value)
    return literals


def _sent_types(src) -> set[str]:
    """Values of ``"type"`` keys in dict literals (messages built)."""
    types: set[str] = set()
    if src is None:
        return types
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "type"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                types.add(value.value)
    return types


def check(tree: LintTree) -> list[Finding]:
    registry, lineno = _message_types(tree)
    if registry is None and lineno is None:
        return []  # tree without the protocol module: nothing to check
    if registry is None:
        return [
            Finding(
                rule=NAME,
                path=PROTOCOL_FILE,
                line=lineno or 1,
                symbol="MESSAGE_TYPES",
                message=(
                    "MESSAGE_TYPES must be a literal dict of "
                    "{type: direction} so the linter (and readers) can "
                    "enumerate the protocol"
                ),
            )
        ]
    server, worker = tree.get(SERVER_FILE), tree.get(WORKER_FILE)
    endpoints = {
        "worker->server": (worker, WORKER_FILE, server, SERVER_FILE),
        "server->worker": (server, SERVER_FILE, worker, WORKER_FILE),
    }
    sent_cache = {SERVER_FILE: _sent_types(server), WORKER_FILE: _sent_types(worker)}
    recv_cache = {
        SERVER_FILE: _compared_literals(server),
        WORKER_FILE: _compared_literals(worker),
    }
    findings: list[Finding] = []
    for msg_type, (direction, line) in sorted(registry.items()):
        if direction not in DIRECTIONS:
            findings.append(
                Finding(
                    rule=NAME,
                    path=PROTOCOL_FILE,
                    line=line,
                    symbol=msg_type,
                    message=(
                        f"unknown direction {direction!r} for message "
                        f"'{msg_type}' (expected one of {DIRECTIONS})"
                    ),
                )
            )
            continue
        sender, sender_path, receiver, receiver_path = endpoints[direction]
        if sender is not None and msg_type not in sent_cache[sender_path]:
            findings.append(
                Finding(
                    rule=NAME,
                    path=sender_path,
                    line=1,
                    symbol=msg_type,
                    message=(
                        f"message '{msg_type}' ({direction}) is never built "
                        f"in {sender_path} — no "
                        f'{{"type": "{msg_type}", ...}} dict literal'
                    ),
                )
            )
        if receiver is not None and msg_type not in recv_cache[receiver_path]:
            findings.append(
                Finding(
                    rule=NAME,
                    path=receiver_path,
                    line=1,
                    symbol=msg_type,
                    message=(
                        f"message '{msg_type}' ({direction}) has no dispatch "
                        f"arm in {receiver_path} — an unhandled type is "
                        "silently dropped (or worse, misread) at runtime"
                    ),
                )
            )
    return findings
