"""Rule ``timing-coverage``: every ``TimingParams`` field must be enforced
three times.

PR 6's fuzzing found tRCD and REF-busy column checks missing from the
auditor *by accident*.  This rule makes the three-layer enforcement story
(controller issue gates → ``CommandAuditor`` → oracle rule generation) a
static property: a timing knob someone adds to ``TimingParams`` is a lint
error until

* (a) the controller/engine gating code reads it (as ``field`` or its
  cycle-domain twin ``field_c``) outside ``__init__`` — a read that only
  happens in the constructor's ps→cycle conversion is dead gating;
* (b) ``CommandAuditor`` re-checks it outside its own ``__init__``;
* (c) ``build_rule_table`` feeds it into the oracle's rule table.

Derived names count: ``hira_t1``/``hira_t2`` are enforced via the
combined ``hira_gap``/``hira_gap_c``.  Two fields are exempt by design
(:data:`EXEMPT_FIELDS`) — each with its reason, surfaced in the finding
text so the exemption list can't silently grow.
"""

from __future__ import annotations

import ast

from repro.lint.core import Finding, LintTree

NAME = "timing-coverage"
DESCRIPTION = (
    "every TimingParams field must be read by controller gating, an "
    "auditor check, and oracle rule generation"
)

TIMING_FILE = "dram/timing.py"
TIMING_CLASS = "TimingParams"

#: (a) controller/engine issue-gating surfaces.
GATING_FILES = ("sim/controller.py", "sim/elastic.py", "core/engine.py")
#: (b) the auditor's independent re-check.
AUDITOR_FILE = "sim/audit.py"
AUDITOR_CLASS = "CommandAuditor"
#: (c) oracle rule generation.
ORACLE_FILE = "sim/oracle.py"
ORACLE_FUNC = "build_rule_table"

#: Fields enforced through a derived quantity rather than by name.
DERIVED = {"hira_t1": ("hira_gap",), "hira_t2": ("hira_gap",)}

#: Fields exempt from enforcement coverage, each with its justification.
EXEMPT_FIELDS = {
    "tck": (
        "defines the cycle domain itself (every *_c conversion divides "
        "by it); there is no per-command tCK check to make"
    ),
    "trefw": (
        "the retention window feeds the periodic generation *rate* "
        "(SystemConfig.per_bank_refresh_interval_cycles), not any "
        "command-to-command legality rule"
    ),
}


def _timing_fields(tree: LintTree):
    src = tree.get(TIMING_FILE)
    if src is None:
        return None, None
    for node in src.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == TIMING_CLASS:
            fields = {}
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    fields[item.target.id] = item.lineno
            return fields, src
    return None, src


def _attr_loads(nodes, skip_init: bool) -> set[str]:
    """All attribute names read in ``nodes``; optionally ignoring any
    reads inside a function named ``__init__``."""
    names: set[str] = set()

    def visit(node, in_init: bool):
        for child in ast.iter_child_nodes(node):
            child_in_init = in_init
            if isinstance(child, ast.FunctionDef):
                child_in_init = in_init or (skip_init and child.name == "__init__")
            if isinstance(child, ast.Attribute) and not child_in_init:
                names.add(child.attr)
            visit(child, child_in_init)

    for node in nodes:
        visit(node, False)
    return names


def _surface_reads(tree: LintTree):
    gating: set[str] = set()
    missing: list[str] = []
    for rel in GATING_FILES:
        src = tree.get(rel)
        if src is None:
            continue
        gating |= _attr_loads([src.tree], skip_init=True)
    if not any(tree.get(rel) for rel in GATING_FILES):
        missing.append("gating files " + "/".join(GATING_FILES))

    auditor: set[str] = set()
    src = tree.get(AUDITOR_FILE)
    found = False
    if src is not None:
        for node in src.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == AUDITOR_CLASS:
                auditor = _attr_loads([node], skip_init=True)
                found = True
    if not found:
        missing.append(f"{AUDITOR_FILE}:{AUDITOR_CLASS}")

    oracle: set[str] = set()
    src = tree.get(ORACLE_FILE)
    found = False
    if src is not None:
        for node in src.tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == ORACLE_FUNC:
                oracle = _attr_loads([node], skip_init=False)
                found = True
    if not found:
        missing.append(f"{ORACLE_FILE}:{ORACLE_FUNC}")
    return gating, auditor, oracle, missing


def check(tree: LintTree) -> list[Finding]:
    fields, src = _timing_fields(tree)
    if src is None:
        return []  # tree without dram/timing.py: nothing to check
    if fields is None:
        return [
            Finding(
                rule=NAME,
                path=TIMING_FILE,
                line=1,
                symbol=TIMING_CLASS,
                message=f"class {TIMING_CLASS} not found",
            )
        ]
    gating, auditor, oracle, missing = _surface_reads(tree)
    findings = [
        Finding(
            rule=NAME,
            path=TIMING_FILE,
            line=1,
            symbol=anchor,
            message=f"enforcement surface missing from tree: {anchor}",
        )
        for anchor in missing
    ]
    surfaces = (
        ("controller gating", gating),
        ("auditor check", auditor),
        ("oracle rule generation", oracle),
    )
    for name, line in sorted(fields.items()):
        if name in EXEMPT_FIELDS:
            continue
        accepted = {name, name + "_c"}
        for derived in DERIVED.get(name, ()):
            accepted |= {derived, derived + "_c"}
        for surface_name, reads in surfaces:
            if accepted & reads:
                continue
            findings.append(
                Finding(
                    rule=NAME,
                    path=TIMING_FILE,
                    line=line,
                    symbol=name,
                    message=(
                        f"TimingParams.{name} is never read by {surface_name} "
                        f"(expected one of: {', '.join(sorted(accepted))}); "
                        "an unenforced knob silently un-checks every run — "
                        "wire it through or add it to EXEMPT_FIELDS with a "
                        "justification"
                    ),
                )
            )
    return findings
