"""HiRA: Hidden Row Activation (MICRO 2022) — full-system reproduction.

Public entry points:

- :mod:`repro.dram` — DDR4 commands, timing, geometry.
- :mod:`repro.chip` — circuit-level behavioural chip model.
- :mod:`repro.softmc` — SoftMC-style characterization host.
- :mod:`repro.rowhammer` — thresholds, PARA, security analysis.
- :mod:`repro.experiments` — §4 experiment drivers.
- :mod:`repro.sim` — cycle-level DRAM system simulator.
- :mod:`repro.core` — the HiRA operation and HiRA-MC.
- :mod:`repro.workloads` — SPEC-like synthetic workloads and mixes.
- :mod:`repro.hwcost` — SRAM area/latency model (Table 2).
- :mod:`repro.analysis` — result summarization helpers.
"""

__version__ = "1.0.0"
