"""A functional set-associative last-level cache.

The performance simulator consumes LLC-miss traces directly (the standard
Ramulator methodology, see DESIGN.md); this cache exists to *derive* miss
streams from raw access streams and for unit/property testing of the
LRU/writeback invariants the derivation relies on.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry of the cache (paper Table 3: 8 MiB, 8-way, 64 B lines)."""

    size_bytes: int = 8 * 1024 * 1024
    ways: int = 8
    line_bytes: int = 64

    @property
    def sets(self) -> int:
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if sets < 1:
            raise ValueError("cache too small for its associativity")
        return sets


class Cache:
    """LRU set-associative cache over flat line addresses.

    ``access`` returns the list of memory-side transactions the access
    produced: an optional dirty writeback and an optional line fill.
    """

    def __init__(self, config: CacheConfig | None = None):
        self.config = config or CacheConfig()
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for __ in range(self.config.sets)
        ]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _set_of(self, line: int) -> OrderedDict[int, bool]:
        return self._sets[line % self.config.sets]

    def access(self, line: int, is_write: bool) -> list[tuple[int, bool]]:
        """Access a line; returns [(line, is_write_to_memory), ...].

        A hit returns no transactions.  A miss returns a fill read, plus a
        dirty-victim writeback when an eviction is needed.
        """
        cache_set = self._set_of(line)
        if line in cache_set:
            self.hits += 1
            dirty = cache_set.pop(line)
            cache_set[line] = dirty or is_write
            return []
        self.misses += 1
        transactions: list[tuple[int, bool]] = []
        if len(cache_set) >= self.config.ways:
            victim, dirty = cache_set.popitem(last=False)
            if dirty:
                self.writebacks += 1
                transactions.append((victim, True))
        cache_set[line] = is_write
        transactions.append((line, False))
        return transactions

    def contains(self, line: int) -> bool:
        return line in self._set_of(line)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
