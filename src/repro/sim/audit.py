"""Command-stream auditing: check DRAM timing invariants after the fact.

A :class:`CommandAuditor` attaches to one :class:`MemoryController` and
records the logical command stream (ACT/PRE/REF plus HiRA compound
operations) as the scheduler issues it.  :meth:`violations` then replays
the stream in cycle order and checks the invariants the paper's
parallelization must never break:

- **tRC** — back-to-back ACTs to the same bank, *except* the engineered
  second activation inside a HiRA operation (that off-spec gap is the
  paper's contribution; everything around it must still be nominal).
- **tRRD_S / tRRD_L** — ACT-to-ACT spacing across banks of a rank: the
  short parameter between different bank groups, the long one within a
  bank group (same-group banks share local I/O and charge pumps).
- **tFAW** — at most four ACTs per rank in any tFAW window (HiRA's two
  ACTs both count, §5.2).
- **tRP / tRAS** — ACT after PRE, PRE after ACT, outside HiRA internals.
- **tRCD** — no column command until tRCD after the row's ACT.
- **tWR** — write recovery: no PRE until tWR after a write burst lands.
- **tRTP** — read-to-precharge: no PRE until tRTP after a RD command.
- **Data bus** — RD/WR data bursts (tBL long, starting tCL/tCWL after
  the column command) must never overlap on a channel's data bus.
- **tRTW / tWTR** — bus turnaround: a burst in the opposite direction to
  its predecessor additionally leaves the turnaround gap after the
  previous burst's end (tRTW after a read, tWTR after a write).
- **tRFC** — no command to a rank while a REF is in flight, and REF only
  with all banks precharged.
- **tRFC_sb / tREFSB_GAP** — same-bank refresh: REFsb only to a
  precharged bank (tRP after its PRE), no command to that bank for
  tRFC_sb afterwards, no rank-level REF while a REFsb is in flight, and
  consecutive REFsb commands on a rank at least tREFSB_GAP apart.
- **Refresh deadline** — REF cadence never exceeds DDR4's nine-tREFI
  postponement debit limit (baseline and elastic engines); in same-bank
  mode the same nine-interval limit applies to every bank's REFsb
  cadence individually.

The auditor is pure observation: attaching one never changes scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Maximum REF-to-REF gap DDR4 allows (8 postponed commands ⇒ 9 × tREFI).
REF_DEBIT_LIMIT = 9


@dataclass(frozen=True, slots=True)
class CommandRecord:
    """One audited command: ``kind`` ∈ {ACT, PRE, REF, REFSB, RD, WR}.

    ``tag`` marks scheduling context: ``"demand"`` for normal commands,
    ``"hira2"`` for the engineered second ACT of a HiRA operation,
    ``"hira-pre"`` for its internal PRE, ``"refresh"`` for refresh ACTs,
    and ``"close"`` for the deferred PRE closing a refresh operation.
    ``RD``/``WR`` column accesses feed the tRTP/tWR and data-bus checks.
    """

    cycle: int
    kind: str
    rank: int
    bank: int | None = None
    row: int | None = None
    tag: str = "demand"


@dataclass
class _BankTrack:
    open_row: int | None = None
    last_act: int = -1 << 60
    last_pre: int = -1 << 60
    #: Cycle of the most recent RD command (for tRTP).
    last_rd: int = -1 << 60
    #: Cycle the most recent write data burst finishes landing (WR+CWL+BL).
    wr_done: int = -1 << 60
    #: Cycle the bank's most recent same-bank refresh completes.
    refsb_busy_until: int = -1 << 60
    #: Cycles of the bank's first/most recent REFSB (cadence + endpoints).
    first_refsb: int | None = None
    last_refsb: int | None = None


class CommandAuditor:
    """Records one controller's command stream and checks timing invariants."""

    def __init__(self, mc):
        self.mc = mc
        mc.auditor = self
        self.trc_c = mc.trc_c
        self.trcd_c = mc.trcd_c
        self.trp_c = mc.trp_c
        self.tras_c = mc.tras_c
        self.trrd_s_c = mc.trrd_s_c
        self.trrd_l_c = mc.trrd_l_c
        self.tfaw_c = mc.tfaw_c
        self.trfc_c = mc.trfc_c
        self.trefi_c = mc.trefi_c
        self.twr_c = mc.twr_c
        self.trtp_c = mc.trtp_c
        self.tcwl_c = mc.tcwl_c
        self.tcl_c = mc.tcl_c
        self.tbl_c = mc.tbl_c
        self.trtw_c = mc.trtw_c
        self.twtr_c = mc.twtr_c
        self.trfc_sb_c = mc.trfc_sb_c
        self.trefsb_gap_c = mc.trefsb_gap_c
        self.hira_gap_c = mc.hira_gap_c
        self.banks_per_bankgroup = mc.config.geometry.banks_per_bankgroup
        self.banks_per_rank = mc.banks_per_rank
        self.refresh_mode = mc.config.refresh_mode
        self.refresh_granularity = mc.config.refresh_granularity
        self.n_ranks = mc.config.ranks_per_channel
        self.records: list[CommandRecord] = []

    # ------------------------------------------------------------------
    # Hooks called by the controller's issue primitives
    # ------------------------------------------------------------------
    def on_act(self, now: int, rank: int, bank: int, row: int) -> None:
        self.records.append(CommandRecord(now, "ACT", rank, bank, row))

    def on_pre(self, now: int, rank: int, bank: int) -> None:
        self.records.append(CommandRecord(now, "PRE", rank, bank))

    def on_ref(self, now: int, rank: int) -> None:
        self.records.append(CommandRecord(now, "REF", rank))

    def on_refsb(self, now: int, rank: int, bank: int) -> None:
        self.records.append(CommandRecord(now, "REFSB", rank, bank))

    def on_col(self, now: int, rank: int, bank: int, is_write: bool) -> None:
        # Both directions are recorded: WR feeds the tWR check, RD feeds
        # tRTP, and both feed the channel data-bus occupancy check.
        self.records.append(CommandRecord(now, "WR" if is_write else "RD", rank, bank))

    def on_solo_refresh(self, now: int, rank: int, bank: int, close: int) -> None:
        self.records.append(CommandRecord(now, "ACT", rank, bank, tag="refresh"))
        self.records.append(CommandRecord(close, "PRE", rank, bank, tag="close"))

    def on_hira_op(
        self,
        now: int,
        rank: int,
        bank: int,
        refresh_row: int | None,
        target_row: int | None,
        eff: int,
        close: int | None = None,
    ) -> None:
        """One ACT-PRE-ACT HiRA sequence (refresh-access or refresh-refresh)."""
        self.records.append(CommandRecord(now, "ACT", rank, bank, refresh_row, "refresh"))
        self.records.append(CommandRecord(now, "PRE", rank, bank, tag="hira-pre"))
        self.records.append(CommandRecord(eff, "ACT", rank, bank, target_row, "hira2"))
        if close is not None:
            self.records.append(CommandRecord(close, "PRE", rank, bank, tag="close"))

    # ------------------------------------------------------------------
    # Interchange
    # ------------------------------------------------------------------
    def export_log(self) -> dict:
        """The recorded stream plus everything needed to re-verify it.

        The payload is plain JSON: the cycle-domain timing parameters,
        the geometry, and the records.  ``repro.sim.oracle.table_for_log``
        rebuilds a rule table from ``timing_cycles``/``geometry`` alone,
        so an exported log is re-checkable anywhere — no simulator, no
        ``TimingParams`` — which makes it the interchange format between
        runs, CI jobs, and external checkers.
        """
        return {
            "version": 1,
            "refresh_mode": self.refresh_mode,
            "refresh_granularity": self.refresh_granularity,
            "geometry": {
                "banks_per_bankgroup": self.banks_per_bankgroup,
                "banks_per_rank": self.banks_per_rank,
                "n_ranks": self.n_ranks,
            },
            "timing_cycles": {
                "trcd": self.trcd_c,
                "tras": self.tras_c,
                "trp": self.trp_c,
                "trc": self.trc_c,
                "trfc": self.trfc_c,
                "trefi": self.trefi_c,
                "tfaw": self.tfaw_c,
                "trrd_s": self.trrd_s_c,
                "trrd_l": self.trrd_l_c,
                "twr": self.twr_c,
                "trtp": self.trtp_c,
                "tcl": self.tcl_c,
                "tcwl": self.tcwl_c,
                "tbl": self.tbl_c,
                "trtw": self.trtw_c,
                "twtr": self.twtr_c,
                "trfc_sb": self.trfc_sb_c,
                "trefsb_gap": self.trefsb_gap_c,
                "hira_gap": self.hira_gap_c,
            },
            "records": [
                [r.cycle, r.kind, r.rank, r.bank, r.row, r.tag]
                for r in self.records
            ],
        }

    # ------------------------------------------------------------------
    # Invariant replay
    # ------------------------------------------------------------------
    def violations(self) -> list[str]:
        """Replay the stream in cycle order; one message per violation."""
        problems: list[str] = []
        #: (burst start cycle, column record) for the data-bus occupancy
        #: check; the controller is one channel, so all bursts share a bus.
        bus_bursts: list[tuple[int, CommandRecord]] = []
        banks: dict[tuple[int, int], _BankTrack] = {}
        rank_acts: dict[int, list[int]] = {}
        #: (rank, bank group) -> cycle of the group's most recent ACT.
        group_acts: dict[tuple[int, int], int] = {}
        ref_busy_until: dict[int, int] = {}
        last_ref: dict[int, int] = {}
        #: rank -> cycle of the rank's most recent REFSB (tREFSB_GAP).
        last_refsb_rank: dict[int, int] = {}

        def bank_of(record: CommandRecord) -> _BankTrack:
            return banks.setdefault((record.rank, record.bank), _BankTrack())

        def group_of(record: CommandRecord) -> tuple[int, int]:
            return (record.rank, record.bank // self.banks_per_bankgroup)

        for rec in sorted(self.records, key=lambda r: r.cycle):
            if rec.kind == "ACT":
                track = bank_of(rec)
                if rec.cycle < ref_busy_until.get(rec.rank, -1):
                    problems.append(
                        f"@{rec.cycle}: ACT to rank {rec.rank} during REF "
                        f"(busy until {ref_busy_until[rec.rank]})"
                    )
                if rec.cycle < track.refsb_busy_until:
                    problems.append(
                        f"@{rec.cycle}: ACT to bank ({rec.rank},{rec.bank}) "
                        f"during REFsb (busy until {track.refsb_busy_until})"
                    )
                if rec.tag == "hira2":
                    gap = rec.cycle - track.last_act
                    if gap != self.hira_gap_c:
                        problems.append(
                            f"@{rec.cycle}: HiRA second ACT gap {gap} != "
                            f"t1+t2 ({self.hira_gap_c})"
                        )
                else:
                    if rec.cycle - track.last_act < self.trc_c:
                        problems.append(
                            f"@{rec.cycle}: tRC violation on bank "
                            f"({rec.rank},{rec.bank}): ACT "
                            f"{rec.cycle - track.last_act} < {self.trc_c} "
                            f"cycles after previous ACT"
                        )
                    if rec.cycle - track.last_pre < self.trp_c:
                        problems.append(
                            f"@{rec.cycle}: tRP violation on bank "
                            f"({rec.rank},{rec.bank}): ACT "
                            f"{rec.cycle - track.last_pre} < {self.trp_c} "
                            f"cycles after PRE"
                        )
                    # tRRD: the engineered hira2 gap is checked exactly above;
                    # every other ACT must keep tRRD_S to any bank of the
                    # rank and tRRD_L to banks of its own bank group.
                    acts = rank_acts.setdefault(rec.rank, [])
                    if acts and rec.cycle - acts[-1] < self.trrd_s_c:
                        problems.append(
                            f"@{rec.cycle}: tRRD_S violation on rank {rec.rank}: "
                            f"ACT {rec.cycle - acts[-1]} < {self.trrd_s_c} "
                            f"cycles after previous ACT"
                        )
                    last_group_act = group_acts.get(group_of(rec))
                    if (
                        last_group_act is not None
                        and rec.cycle - last_group_act < self.trrd_l_c
                    ):
                        problems.append(
                            f"@{rec.cycle}: tRRD_L violation on rank {rec.rank} "
                            f"bank group {rec.bank // self.banks_per_bankgroup}: "
                            f"ACT {rec.cycle - last_group_act} < {self.trrd_l_c} "
                            f"cycles after previous same-group ACT"
                        )
                acts = rank_acts.setdefault(rec.rank, [])
                acts.append(rec.cycle)
                if len(acts) > 5:
                    acts.pop(0)
                # tFAW bounds the FIFTH activation: any five consecutive
                # ACTs to a rank must span at least tFAW.
                if len(acts) == 5 and acts[-1] - acts[0] < self.tfaw_c:
                    problems.append(
                        f"@{rec.cycle}: tFAW violation on rank {rec.rank}: "
                        f"5 ACTs within {acts[-1] - acts[0]} < {self.tfaw_c} cycles"
                    )
                track.last_act = rec.cycle
                track.open_row = rec.row if rec.row is not None else -1
                group_acts[group_of(rec)] = rec.cycle
            elif rec.kind in ("RD", "WR"):
                track = bank_of(rec)
                if rec.cycle < ref_busy_until.get(rec.rank, -1):
                    problems.append(
                        f"@{rec.cycle}: {rec.kind} to rank {rec.rank} during "
                        f"REF (busy until {ref_busy_until[rec.rank]})"
                    )
                if rec.cycle < track.refsb_busy_until:
                    problems.append(
                        f"@{rec.cycle}: {rec.kind} to bank "
                        f"({rec.rank},{rec.bank}) during REFsb "
                        f"(busy until {track.refsb_busy_until})"
                    )
                if rec.cycle - track.last_act < self.trcd_c:
                    problems.append(
                        f"@{rec.cycle}: tRCD violation on bank "
                        f"({rec.rank},{rec.bank}): {rec.kind} "
                        f"{rec.cycle - track.last_act} < {self.trcd_c} "
                        f"cycles after ACT"
                    )
                if rec.kind == "WR":
                    track.wr_done = rec.cycle + self.tcwl_c + self.tbl_c
                    bus_bursts.append((rec.cycle + self.tcwl_c, rec))
                else:
                    track.last_rd = rec.cycle
                    bus_bursts.append((rec.cycle + self.tcl_c, rec))
            elif rec.kind == "PRE":
                track = bank_of(rec)
                if rec.tag != "hira-pre" and rec.cycle - track.last_act < self.tras_c:
                    # HiRA's internal PRE interrupts charge restoration by
                    # design; every other PRE must wait out tRAS.
                    problems.append(
                        f"@{rec.cycle}: tRAS violation on bank "
                        f"({rec.rank},{rec.bank}): PRE "
                        f"{rec.cycle - track.last_act} < {self.tras_c} "
                        f"cycles after ACT"
                    )
                if rec.cycle - track.wr_done < self.twr_c:
                    problems.append(
                        f"@{rec.cycle}: tWR violation on bank "
                        f"({rec.rank},{rec.bank}): PRE "
                        f"{rec.cycle - track.wr_done} < {self.twr_c} "
                        f"cycles after write burst end"
                    )
                if rec.cycle - track.last_rd < self.trtp_c:
                    problems.append(
                        f"@{rec.cycle}: tRTP violation on bank "
                        f"({rec.rank},{rec.bank}): PRE "
                        f"{rec.cycle - track.last_rd} < {self.trtp_c} "
                        f"cycles after RD"
                    )
                track.last_pre = rec.cycle
                track.open_row = None
            elif rec.kind == "REFSB":
                track = bank_of(rec)
                if rec.cycle < ref_busy_until.get(rec.rank, -1):
                    problems.append(
                        f"@{rec.cycle}: REFsb to rank {rec.rank} during REF "
                        f"(busy until {ref_busy_until[rec.rank]})"
                    )
                if track.open_row is not None:
                    problems.append(
                        f"@{rec.cycle}: REFsb to open bank "
                        f"({rec.rank},{rec.bank})"
                    )
                if rec.cycle - track.last_pre < self.trp_c:
                    problems.append(
                        f"@{rec.cycle}: REFsb to bank ({rec.rank},{rec.bank}) "
                        f"only {rec.cycle - track.last_pre} < {self.trp_c} "
                        f"cycles after PRE"
                    )
                if rec.cycle < track.refsb_busy_until:
                    problems.append(
                        f"@{rec.cycle}: REFsb to bank ({rec.rank},{rec.bank}) "
                        f"during REFsb (busy until {track.refsb_busy_until})"
                    )
                previous_rank = last_refsb_rank.get(rec.rank)
                if (
                    previous_rank is not None
                    and rec.cycle - previous_rank < self.trefsb_gap_c
                ):
                    problems.append(
                        f"@{rec.cycle}: tREFSB_GAP violation on rank "
                        f"{rec.rank}: REFsb {rec.cycle - previous_rank} < "
                        f"{self.trefsb_gap_c} cycles after previous REFsb"
                    )
                if (
                    track.last_refsb is not None
                    and rec.cycle - track.last_refsb
                    > REF_DEBIT_LIMIT * self.trefi_c + self.trfc_sb_c
                ):
                    problems.append(
                        f"@{rec.cycle}: refresh deadline violation on bank "
                        f"({rec.rank},{rec.bank}): {rec.cycle - track.last_refsb} "
                        f"cycles since last REFsb (limit {REF_DEBIT_LIMIT} x tREFI)"
                    )
                last_refsb_rank[rec.rank] = rec.cycle
                if track.first_refsb is None:
                    track.first_refsb = rec.cycle
                track.last_refsb = rec.cycle
                track.refsb_busy_until = rec.cycle + self.trfc_sb_c
            elif rec.kind == "REF":
                open_banks = [
                    key
                    for key, track in banks.items()
                    if key[0] == rec.rank and track.open_row is not None
                ]
                if open_banks:
                    problems.append(
                        f"@{rec.cycle}: REF to rank {rec.rank} with open banks "
                        f"{open_banks}"
                    )
                refsb_busy = [
                    key
                    for key, track in banks.items()
                    if key[0] == rec.rank and rec.cycle < track.refsb_busy_until
                ]
                if refsb_busy:
                    problems.append(
                        f"@{rec.cycle}: REF to rank {rec.rank} with REFsb in "
                        f"flight on banks {refsb_busy}"
                    )
                last_pre = max(
                    (t.last_pre for k, t in banks.items() if k[0] == rec.rank),
                    default=-1 << 60,
                )
                if rec.cycle - last_pre < self.trp_c:
                    problems.append(
                        f"@{rec.cycle}: REF to rank {rec.rank} only "
                        f"{rec.cycle - last_pre} < {self.trp_c} cycles after PRE"
                    )
                previous = last_ref.get(rec.rank)
                if (
                    previous is not None
                    and rec.cycle - previous > REF_DEBIT_LIMIT * self.trefi_c + self.trfc_c
                ):
                    problems.append(
                        f"@{rec.cycle}: refresh deadline violation on rank "
                        f"{rec.rank}: {rec.cycle - previous} cycles since last "
                        f"REF (limit {REF_DEBIT_LIMIT} x tREFI)"
                    )
                last_ref[rec.rank] = rec.cycle
                ref_busy_until[rec.rank] = rec.cycle + self.trfc_c
                for key, track in banks.items():
                    if key[0] == rec.rank:
                        track.open_row = None
                        track.last_pre = max(track.last_pre, rec.cycle)

        # Data-bus occupancy: each burst holds the channel's data bus for
        # tBL starting tCL (RD) / tCWL (WR) after its column command; two
        # bursts on one channel must never overlap.  Sorted by burst start
        # (command order is not burst order: tCL > tCWL means a WR issued
        # just after a RD would burst *earlier*), so adjacent-pair checking
        # catches every overlap.
        bus_bursts.sort(key=lambda item: item[0])
        for (start, rec), (prev_start, prev) in zip(bus_bursts[1:], bus_bursts):
            prev_end = prev_start + self.tbl_c
            if start < prev_end:
                problems.append(
                    f"@{rec.cycle}: data-bus conflict: {rec.kind} burst on bank "
                    f"({rec.rank},{rec.bank}) starts @{start}, before the "
                    f"{prev.kind} burst from bank ({prev.rank},{prev.bank}) "
                    f"ends @{prev_end}"
                )
            elif prev.kind != rec.kind:
                # Bus turnaround: a direction change additionally leaves
                # tRTW (after a read) / tWTR (after a write) of idle bus.
                name, gap = (
                    ("tRTW", self.trtw_c) if prev.kind == "RD"
                    else ("tWTR", self.twtr_c)
                )
                if start < prev_end + gap:
                    problems.append(
                        f"@{rec.cycle}: {name} violation: {rec.kind} burst on "
                        f"bank ({rec.rank},{rec.bank}) starts @{start}, only "
                        f"{start - prev_end} < {gap} cycles after the "
                        f"{prev.kind} burst from bank ({prev.rank},{prev.bank}) "
                        f"ends @{prev_end}"
                    )

        # Endpoint refresh-deadline checks for REF-based engines: the gap
        # rule above only fires between two REFs, so a rank that is never
        # (or no longer) refreshed must be flagged from the stream bounds.
        # Same-bank mode applies the analogous per-bank REFsb bounds to
        # every engine that owes a periodic cadence (baseline, elastic,
        # and HiRA's tRefSlack-scheduled REFsb stream).
        if (
            self.refresh_granularity == "same_bank"
            and self.refresh_mode in ("baseline", "elastic", "hira")
            and self.records
        ):
            end = max(r.cycle for r in self.records)
            limit = REF_DEBIT_LIMIT * self.trefi_c + self.trfc_sb_c
            for rank in range(self.n_ranks):
                for bank in range(self.banks_per_rank):
                    track = banks.get((rank, bank))
                    last = track.last_refsb if track is not None else None
                    if last is None:
                        if end > limit:
                            problems.append(
                                f"bank ({rank},{bank}): no REFsb issued in "
                                f"{end} cycles (limit {REF_DEBIT_LIMIT} x tREFI)"
                            )
                        continue
                    first = track.first_refsb
                    if first > limit:
                        problems.append(
                            f"bank ({rank},{bank}): first REFsb only at {first} "
                            f"cycles (limit {REF_DEBIT_LIMIT} x tREFI)"
                        )
                    if end - last > limit:
                        problems.append(
                            f"bank ({rank},{bank}): no REFsb in the last "
                            f"{end - last} cycles of the stream "
                            f"(limit {REF_DEBIT_LIMIT} x tREFI)"
                        )
        elif self.refresh_mode in ("baseline", "elastic") and self.records:
            end = max(r.cycle for r in self.records)
            limit = REF_DEBIT_LIMIT * self.trefi_c + self.trfc_c
            for rank in range(self.n_ranks):
                first = min(
                    (r.cycle for r in self.records if r.kind == "REF" and r.rank == rank),
                    default=None,
                )
                if first is None:
                    if end > limit:
                        problems.append(
                            f"rank {rank}: no REF issued in {end} cycles "
                            f"(limit {REF_DEBIT_LIMIT} x tREFI)"
                        )
                    continue
                if first > limit:
                    problems.append(
                        f"rank {rank}: first REF only at {first} cycles "
                        f"(limit {REF_DEBIT_LIMIT} x tREFI)"
                    )
                if end - last_ref[rank] > limit:
                    problems.append(
                        f"rank {rank}: no REF in the last {end - last_ref[rank]} "
                        f"cycles of the stream (limit {REF_DEBIT_LIMIT} x tREFI)"
                    )
        return problems

    def check(self) -> None:
        """Raise ``AssertionError`` with every violation, if any."""
        problems = self.violations()
        if problems:
            raise AssertionError(
                f"{len(problems)} timing violations:\n" + "\n".join(problems[:20])
            )


def records_from_log(payload: dict) -> list[CommandRecord]:
    """Rebuild :class:`CommandRecord` objects from an exported log."""
    return [
        CommandRecord(cycle, kind, rank, bank, row, tag)
        for cycle, kind, rank, bank, row, tag in payload["records"]
    ]


def attach_auditors(system) -> list[CommandAuditor]:
    """One auditor per memory controller of a built ``System``."""
    return [CommandAuditor(mc) for mc in system.controllers]
