"""Elastic refresh: a scheduling-only baseline from the related work.

§13 contrasts HiRA with memory-access-scheduling techniques [161] that
delay REF commands into DRAM idle time: DDR4 allows postponing up to eight
REF commands (the 9 × tREFI debit limit).  This engine implements that
policy so benchmarks can compare HiRA against the strongest scheduling-only
baseline: REF is deferred while demand requests are pending, but never
beyond the postponement budget.

With ``refresh_granularity="same_bank"`` the same policy applies per bank:
each bank's REFsb may be postponed up to eight tREFI intervals while reads
are queued, tracked by a per-bank debt counter.
"""

from __future__ import annotations

import heapq

from repro.sim.controller import BaselineRefreshEngine, _FAR_FUTURE


class ElasticRefreshEngine(BaselineRefreshEngine):
    """Defer REF into idle time, within DDR4's 8-REF postponement budget."""

    def __init__(self, max_postponed: int = 8):
        super().__init__()
        if max_postponed < 0:
            raise ValueError("max_postponed must be non-negative")
        self.max_postponed = max_postponed
        self._debt: list[int] = []

    def attach(self, mc) -> None:
        super().attach(mc)
        self._debt = [0] * len(mc.ranks)
        #: Ranks that have started a REF sequence (precharge + tRP wait);
        #: once committed, newly arriving reads no longer cancel it.
        self._committed = [False] * len(mc.ranks)
        if self._same_bank:
            #: Per-bank postponement debt (same_bank granularity).
            self._sb_debt = dict.fromkeys(self._sb_due, 0)
            #: Due-but-postponed banks: key -> forced-promotion cycle (the
            #: cycle the bank's postponement budget runs out).  Kept out of
            #: ``_sb_heap`` so the per-cycle promote check never re-heapifies
            #: deferred entries; the memoized minimum makes the check O(1)
            #: while demand is queued and nothing has hit its limit.
            self._sb_deferred: dict[tuple[int, int], int] = {}
            self._sb_forced_min = _FAR_FUTURE

    # -- Same-bank (REFsb) overrides ---------------------------------------
    def _sb_promote(self, now: int) -> None:
        """Promote a due bank only at the postponement limit or when no
        latency-critical demand is queued (the elastic policy, per bank).

        A promoted bank is committed exactly like a committed rank in the
        all-bank path: demand to it is deferred until its REFsb issues.
        """
        mc = self.mc
        heap = self._sb_heap
        trefi = mc.trefi_c
        deferred = self._sb_deferred
        # Newly due banks move off the heap into the deferred pool with a
        # precomputed forced-promotion cycle (debt only changes at issue,
        # so the budget is fixed for the entry's deferred lifetime).
        moved = False
        while heap and heap[0][0] <= now:
            due, rank_id, bank_id = heapq.heappop(heap)
            key = (rank_id, bank_id)
            budget = max(0, self.max_postponed - self._sb_debt[key])
            forced = due + budget * trefi
            deferred[key] = forced
            if forced < self._sb_forced_min:
                self._sb_forced_min = forced
            moved = True
        if moved:
            # Heap -> deferred moves leave the wake formula unchanged (both
            # sides price the entry at due + budget * tREFI), but they do
            # mutate scheduling containers; keep the memo contract uniform.
            mc.mark_dirty()
        if not deferred:
            return
        idle = not mc.read_q
        if not idle and now < self._sb_forced_min:
            return  # every due bank still has budget and demand is queued
        promoted = False
        for key, forced in list(deferred.items()):
            if idle or forced <= now:
                del deferred[key]
                self._sb_draining.add(key)
                mc.blocked_banks.add(key)
                promoted = True
                if mc.tracer is not None:
                    mc.tracer.on_decision("sb-promote", now, key[0], key[1], forced)
        if promoted:
            self._sb_forced_min = min(deferred.values(), default=_FAR_FUTURE)
            mc.mark_dirty()

    def _sb_account(self, key: tuple[int, int], now: int, due: int) -> None:
        missed = max(0, (now - due) // self.mc.trefi_c)
        self._sb_debt[key] = max(0, self._sb_debt[key] + missed - 1)
        if missed and self.mc.tracer is not None:
            self.mc.tracer.on_decision("postpone", now, key[0], key[1], missed)

    def _sb_next_deadline(self, now: int) -> int:
        soonest = self._sb_drain_wake(now, self._preventive_deadline(now))
        mc = self.mc
        trefi = mc.trefi_c
        read_q = bool(mc.read_q)
        draining = self._sb_draining
        for key, due in self._sb_due.items():
            if key in draining:
                continue
            if read_q:
                budget_left = self.max_postponed - self._sb_debt[key]
                wake = due + max(0, budget_left) * trefi
            else:
                wake = due  # idle opportunity: refresh early
            if wake < soonest:
                soonest = wake
        return soonest

    def _sb_urgent_wake(self, now: int) -> int:
        """Mirror of ``_sb_urgent``'s gates for the schedule memo.

        Valid only for a mutation-free call (the memo contract): due heap
        entries would have moved to the deferred pool (a marking
        mutation), and idle promotion would have fired, so here the heap
        head is in the future and every deferred bank waits on its
        forced-promotion cycle.
        """
        wake = self._sb_drain_wake(now, self._preventive_deadline(now))
        heap = self._sb_heap
        if heap and heap[0][0] < wake:
            wake = heap[0][0]
        if self._sb_deferred:
            if not self.mc.read_q:
                return now  # defensive: idle promotion fires immediately
            if self._sb_forced_min < wake:
                wake = self._sb_forced_min
        return wake

    def _rank_must_refresh(self, rank_id: int, now: int) -> bool:
        due = self.mc._ta.ref_due[rank_id]
        if now < due:
            return False
        overdue = (now - due) // self.mc.trefi_c
        if self._debt[rank_id] + overdue >= self.max_postponed:
            return True
        # Refresh early when no latency-critical demand is queued: reads
        # stall cores, writes drain lazily and can absorb a REF.
        return not self.mc.read_q

    def urgent(self, now: int) -> bool:
        if self._same_bank:
            return self._sb_urgent(now)
        if self._service_preventive(now):
            return True
        mc = self.mc
        ta = mc._ta
        committed = self._committed
        for rank_id in range(len(committed)):
            due = ta.ref_due[rank_id]
            if now < ta.busy_until[rank_id] or now < due:
                continue
            if not committed[rank_id] and not self._rank_must_refresh(rank_id, now):
                # Postpone: account the debt once per elapsed interval.
                continue
            # Commit and block demand to the rank: newly arriving reads can
            # no longer cancel the drain or push tRP-readiness away.  The
            # commit switches next_deadline to the drain-gate formula, so
            # the transition invalidates the memoized next_event.
            if not committed[rank_id]:
                committed[rank_id] = True
                mc.mark_dirty()
            if rank_id not in mc.blocked_ranks:
                mc.blocked_ranks.add(rank_id)
                mc.mark_dirty()
            open_bank = mc.first_open_bank(rank_id)
            if open_bank is not None:
                g = rank_id * mc.banks_per_rank + open_bank
                if now >= ta.next_pre[g]:
                    mc.issue_pre(rank_id, open_bank, now)
                    return True
                continue
            if now < ta.ref_ready[rank_id]:
                continue  # tRP still elapsing; the rank stays blocked
            committed[rank_id] = False
            mc.blocked_ranks.discard(rank_id)
            mc.issue_ref(rank_id, now)
            missed = max(0, (now - due) // mc.trefi_c)
            self._debt[rank_id] = max(0, self._debt[rank_id] + missed - 1)
            if missed and mc.tracer is not None:
                mc.tracer.on_decision("postpone", now, rank_id, -1, missed)
            ta.ref_due[rank_id] = due + mc.trefi_c
            return True
        return False

    def next_deadline(self, now: int) -> int:
        """Wake at the postponement limit rather than every tREFI."""
        if self._same_bank:
            return self._sb_next_deadline(now)
        mc = self.mc
        ta = mc._ta
        trefi = mc.trefi_c
        read_q = bool(mc.read_q)
        soonest = _FAR_FUTURE
        for rank_id, due in enumerate(ta.ref_due):
            if self._committed[rank_id]:
                # Mid-drain: wake when the next drain step can proceed (a
                # bank precharge or the tRP-after-PRE REF gate).  The true
                # gate is returned even when already past — the controller
                # handles lateness once instead of being spun cycle by cycle.
                gate = ta.busy_until[rank_id]
                c = ta.ref_ready[rank_id]
                if c > gate:
                    gate = c
                open_bank = mc.first_open_bank(rank_id)
                if open_bank is not None:
                    c = ta.next_pre[rank_id * mc.banks_per_rank + open_bank]
                    if c > gate:
                        gate = c
                if gate < soonest:
                    soonest = gate
                continue
            budget_left = self.max_postponed - self._debt[rank_id]
            deadline = due + max(0, budget_left) * trefi
            idle_opportunity = due if not read_q else deadline
            if idle_opportunity < soonest:
                soonest = idle_opportunity
        p = self._preventive_deadline(now)
        return p if p < soonest else soonest

    def urgent_wake(self, now: int) -> int:
        if self._same_bank:
            return self._sb_urgent_wake(now)
        wake = self._preventive_deadline(now)
        mc = self.mc
        ta = mc._ta
        trefi = mc.trefi_c
        read_q = bool(mc.read_q)
        for rank_id, due in enumerate(ta.ref_due):
            busy = ta.busy_until[rank_id]
            if self._committed[rank_id]:
                # Mid-drain (rank already blocked by an earlier, mutating
                # call): next drain step per urgent's branches.
                open_bank = mc.first_open_bank(rank_id)
                if open_bank is not None:
                    gate = ta.next_pre[rank_id * mc.banks_per_rank + open_bank]
                else:
                    gate = ta.ref_ready[rank_id]
            else:
                # Engagement cycle: _rank_must_refresh first holds at the
                # debt-overflow deadline (or at ref_due when idle), and
                # engaging commits the rank — a memo-voiding mutation.
                gate = due
                if read_q:
                    gate += max(0, self.max_postponed - self._debt[rank_id]) * trefi
            if busy > gate:
                gate = busy
            if gate < wake:
                wake = gate
        return wake

    def postponed_total(self) -> int:
        if self._same_bank:
            return sum(self._sb_debt.values())
        return sum(self._debt)
