"""The per-channel memory controller: FR-FCFS, open-row policy, refresh.

One controller owns one channel's command bus, data bus, and bank/rank
timing state.  Refresh behaviour is pluggable through a
:class:`RefreshEngine`; the baseline issues rank-level REF commands every
tREFI (blocking the rank for tRFC), while HiRA-MC (in :mod:`repro.core`)
replaces them with HiRA operations scheduled around demand accesses.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.sim.config import SystemConfig
from repro.sim.request import Request

_FAR_FUTURE = 1 << 60


@dataclass(slots=True)
class _BankState:
    open_row: int | None = None
    next_act: int = 0
    next_pre: int = 0
    next_rdwr: int = 0


@dataclass(slots=True)
class _RankState:
    faw: deque = field(default_factory=deque)
    ref_due: int = 0
    busy_until: int = 0
    #: Earliest cycle the next ACT to *any* bank of this rank may issue
    #: (tRRD_S, the cross-bank-group spacing).
    next_act_any: int = 0
    #: Earliest cycle the next ACT to each *bank group* may issue (tRRD_L,
    #: the same-group spacing); sized per geometry in the controller.
    next_act_group: list = field(default_factory=list)
    #: Earliest cycle a rank-level REF may issue: every bank precharged for
    #: tRP, including the deferred closes of in-flight refresh operations.
    ref_ready: int = 0
    #: Earliest cycle the next same-bank REFsb may issue on this rank
    #: (tREFSB_GAP: consecutive REFsb commands share refresh control).
    next_refsb: int = 0


@dataclass(slots=True)
class ControllerStats:
    """Per-channel event counters."""

    reads_served: int = 0
    writes_served: int = 0
    row_hits: int = 0
    row_misses: int = 0
    acts: int = 0
    pres: int = 0
    refs: int = 0
    refs_sb: int = 0
    solo_refreshes: int = 0
    hira_access_parallelized: int = 0
    hira_refresh_parallelized: int = 0
    preventive_generated: int = 0
    periodic_generated: int = 0
    deadline_misses: int = 0
    queue_full_rejections: int = 0


class RefreshEngine:
    """Interface between the controller and a refresh policy.

    The base class carries the PARA preventive-refresh plumbing shared by
    all engines: when ``para`` is set, every demand activation may generate
    a preventive refresh for a neighbouring victim row.  Without HiRA the
    preventive refresh is performed as a blocking nominal ACT+PRE as soon
    as the bank allows (the original PARA behaviour [84]); HiRA-MC
    overrides :meth:`on_demand_act` to queue it with a deadline instead.
    """

    def __init__(self) -> None:
        self.para = None
        self._preventive: deque = deque()

    def attach(self, mc: "MemoryController") -> None:
        self.mc = mc

    # -- PARA ------------------------------------------------------------
    def para_observe_act(self, rank: int, bank_id: int, row: int, now: int) -> int | None:
        """PARA's Bernoulli draw for one observed activation.

        Applies to demand row activations (the attacker-controllable
        ones).  At low RowHammer thresholds the resulting preventive
        refreshes destroy row-buffer locality — each one closes the open
        row — which multiplies the demand activation count itself and
        compounds PARA's overhead (§9.2's 96% regime).
        """
        if self.para is None:
            return None
        victim = self.para.preventive_refresh_target(
            row, self.mc.config.rows_per_bank, bank_key=(rank, bank_id)
        )
        if victim is not None:
            self.mc.stats.preventive_generated += 1
        return victim

    def on_demand_act(self, req: Request, now: int) -> None:
        """Called after a demand ACT is issued (PARA's observation point)."""
        victim = self.para_observe_act(req.addr.rank, req.addr.bank, req.addr.row, now)
        if victim is not None:
            # Without HiRA the preventive refresh is due immediately.
            self._queue_preventive(req.addr.rank, req.addr.bank, victim, now)

    def _queue_preventive(self, rank: int, bank_id: int, row: int, deadline: int) -> None:
        """Overflow queue for preventive refreshes, keeping each deadline."""
        self._preventive.append((rank, bank_id, row, deadline))
        self.mc.mark_dirty()

    def _service_preventive(self, now: int) -> bool:
        """Perform the oldest feasible queued preventive refresh."""
        pending = self._preventive
        if not pending:
            return False
        mc = self.mc
        banks = mc._banks
        ranks = mc.ranks
        for i, (rank, bank_id, row, __) in enumerate(pending):
            if now < ranks[rank].busy_until:
                continue
            bank = banks[rank][bank_id]
            if bank.open_row is not None:
                if now >= bank.next_pre:
                    mc.issue_pre(rank, bank_id, now)
                    return True
                continue
            if now >= bank.next_act and mc.faw_ok(rank, now) and mc.trrd_ok(rank, bank_id, now):
                del pending[i]
                mc.issue_solo_refresh(rank, bank_id, now)
                return True
        return False

    def _preventive_deadline(self, now: int) -> int:
        pending = self._preventive
        if not pending:
            return _FAR_FUTURE
        mc = self.mc
        banks = mc._banks
        ranks = mc.ranks
        tfaw_c = mc.tfaw_c
        bpg = mc.banks_per_bankgroup
        soonest = _FAR_FUTURE
        for rank, bank_id, __, __dl in pending:
            bank = banks[rank][bank_id]
            rank_state = ranks[rank]
            if bank.open_row is not None:
                gate = bank.next_pre
            else:
                # act_allowed_at, inlined (this scan is on the hot path).
                gate = bank.next_act
                faw = rank_state.faw
                if len(faw) >= 4:
                    faw_gate = faw[0] + tfaw_c
                    if faw_gate > gate:
                        gate = faw_gate
                if rank_state.next_act_any > gate:
                    gate = rank_state.next_act_any
                group_gate = rank_state.next_act_group[bank_id // bpg]
                if group_gate > gate:
                    gate = group_gate
            if rank_state.busy_until > gate:
                gate = rank_state.busy_until
            if gate < soonest:
                soonest = gate
        return soonest

    # -- Policy hooks ------------------------------------------------------
    def urgent(self, now: int) -> bool:
        """Issue due refresh work; returns True if a command was issued."""
        return self._service_preventive(now)

    def next_deadline(self, now: int) -> int:
        """Next cycle at which the engine wants the bus."""
        return self._preventive_deadline(now)

    def on_act(self, req: Request, now: int) -> int | None:
        """Refresh-access hook: row to refresh with a HiRA ACT, or None."""
        return None


class NoRefreshEngine(RefreshEngine):
    """The ideal No-Refresh system of Fig. 9a (still honours PARA if set)."""


class BaselineRefreshEngine(RefreshEngine):
    """Rank-level REF every tREFI, blocking the rank for tRFC (§2.3).

    With ``refresh_granularity="same_bank"`` the engine instead issues a
    DDR5-style REFsb to every bank once per tREFI (staggered across the
    channel's banks): each command blocks only its target bank for
    tRFC_sb, so sibling banks keep serving demand during refresh.
    """

    def attach(self, mc: "MemoryController") -> None:
        super().attach(mc)
        trefi = mc.trefi_c
        self._same_bank = mc.config.refresh_granularity == "same_bank"
        if self._same_bank:
            #: Per-bank REFsb due times (each bank every tREFI), plus a
            #: heap mirror for O(log n) promotion and a draining set for
            #: banks committed to an imminent REFsb.
            self._sb_due: dict[tuple[int, int], int] = {}
            self._sb_heap: list[tuple[int, int, int]] = []
            self._sb_draining: set[tuple[int, int]] = set()
            total = len(mc.ranks) * mc.banks_per_rank
            index = 0
            for rank_id in range(len(mc.ranks)):
                for bank_id in range(mc.banks_per_rank):
                    due = ((index + 1) * trefi) // total
                    self._sb_due[(rank_id, bank_id)] = due
                    heapq.heappush(self._sb_heap, (due, rank_id, bank_id))
                    index += 1
            return
        for i, rank in enumerate(mc.ranks):
            # Stagger REF across ranks so they do not collide on the bus.
            rank.ref_due = trefi + (i * trefi) // max(1, len(mc.ranks))

    # -- Same-bank (REFsb) path --------------------------------------------
    def _sb_promote(self, now: int) -> None:
        """Commit due banks to draining: demand to them is deferred so a
        hot row-hit stream cannot keep the bank open past its REFsb."""
        heap = self._sb_heap
        mc = self.mc
        promoted = False
        while heap and heap[0][0] <= now:
            due, rank_id, bank_id = heapq.heappop(heap)
            key = (rank_id, bank_id)
            self._sb_draining.add(key)
            mc.blocked_banks.add(key)
            promoted = True
            if mc.tracer is not None:
                mc.tracer.on_decision("sb-promote", now, rank_id, bank_id, due)
        if promoted:
            mc.mark_dirty()

    def _sb_account(self, key: tuple[int, int], now: int, due: int) -> None:
        """Postponement bookkeeping hook (elastic overrides)."""

    def _sb_issue_due(self, now: int) -> bool:
        """Progress one draining bank: PRE it, wait tRP, then REFsb."""
        mc = self.mc
        for key in self._sb_draining:
            rank_id, bank_id = key
            rank = mc.ranks[rank_id]
            if now < rank.busy_until:
                continue
            bank = mc.bank(rank_id, bank_id)
            if bank.open_row is not None:
                if now >= bank.next_pre:
                    mc.issue_pre(rank_id, bank_id, now)
                    return True
                continue
            # next_act carries both tRP-after-PRE and the previous REFsb's
            # busy window; next_refsb is the rank's tREFSB_GAP spacing.
            if now < bank.next_act or now < rank.next_refsb:
                continue
            self._sb_draining.discard(key)
            mc.blocked_banks.discard(key)
            mc.issue_refsb(rank_id, bank_id, now)
            due = self._sb_due[key]
            self._sb_account(key, now, due)
            self._sb_due[key] = due + mc.trefi_c
            heapq.heappush(self._sb_heap, (due + mc.trefi_c, rank_id, bank_id))
            return True
        return False

    def _sb_drain_wake(self, now: int, soonest: int) -> int:
        """Fold each draining bank's next drain-step gate into ``soonest``."""
        mc = self.mc
        for key in self._sb_draining:
            rank_id, bank_id = key
            rank = mc.ranks[rank_id]
            bank = mc.bank(rank_id, bank_id)
            gate = rank.busy_until
            if bank.open_row is not None:
                if bank.next_pre > gate:
                    gate = bank.next_pre
            else:
                if bank.next_act > gate:
                    gate = bank.next_act
                if rank.next_refsb > gate:
                    gate = rank.next_refsb
            if gate < soonest:
                soonest = gate
        return soonest

    def _sb_urgent(self, now: int) -> bool:
        if self._service_preventive(now):
            return True
        self._sb_promote(now)
        return self._sb_issue_due(now)

    def _sb_next_deadline(self, now: int) -> int:
        soonest = self._sb_drain_wake(now, self._preventive_deadline(now))
        heap = self._sb_heap
        if heap and heap[0][0] < soonest:
            soonest = heap[0][0]
        return soonest

    # -- All-bank (rank REF) path ------------------------------------------
    def urgent(self, now: int) -> bool:
        if self._same_bank:
            return self._sb_urgent(now)
        if self._service_preventive(now):
            return True
        mc = self.mc
        for rank_id, rank in enumerate(mc.ranks):
            if now < rank.ref_due or now < rank.busy_until:
                continue
            # Drain the rank: defer new demand to it so sustained traffic
            # cannot keep reopening banks (or pushing tRP-readiness away)
            # faster than the tRAS-gated precharges close them — without
            # this, a saturated rank would starve REF forever.
            if rank_id not in mc.blocked_ranks:
                mc.blocked_ranks.add(rank_id)
                mc.mark_dirty()
            # All banks must be precharged before REF.
            open_bank = mc.first_open_bank(rank_id)
            if open_bank is None and now < rank.ref_ready:
                continue  # tRP still elapsing; the rank stays blocked
            if open_bank is not None:
                bank = mc.bank(rank_id, open_bank)
                if now >= bank.next_pre:
                    mc.issue_pre(rank_id, open_bank, now)
                    return True
                continue
            mc.blocked_ranks.discard(rank_id)
            mc.issue_ref(rank_id, now)
            rank.ref_due += mc.trefi_c
            return True
        return False

    def next_deadline(self, now: int) -> int:
        if self._same_bank:
            return self._sb_next_deadline(now)
        soonest = self._preventive_deadline(now)
        for rank in self.mc.ranks:
            due = rank.ref_due
            if rank.ref_ready > due:
                due = rank.ref_ready
            if due < soonest:
                soonest = due
        return soonest


class MemoryController:
    """One channel's scheduler and timing state."""

    def __init__(self, channel_id: int, config: SystemConfig, engine: RefreshEngine):
        self.channel_id = channel_id
        self.config = config
        tp = config.timing
        c = config.cycles
        self.trcd_c = c(tp.trcd)
        self.tras_c = c(tp.tras)
        self.trp_c = c(tp.trp)
        self.trc_c = c(tp.trc)
        self.trfc_c = c(tp.trfc)
        self.trefi_c = c(tp.trefi)
        self.tcl_c = c(tp.tcl)
        self.tbl_c = c(tp.tbl)
        self.tfaw_c = c(tp.tfaw)
        self.trrd_s_c = c(tp.trrd_s)
        self.trrd_l_c = c(tp.trrd_l)
        self.twr_c = c(tp.twr)
        self.trtp_c = c(tp.trtp)
        self.tcwl_c = c(tp.tcwl)
        self.trtw_c = c(tp.trtw) if tp.trtw else 0
        self.twtr_c = c(tp.twtr) if tp.twtr else 0
        self.trfc_sb_c = c(tp.trfc_sb)
        self.trefsb_gap_c = c(tp.trefsb_gap)
        self.hira_gap_c = c(tp.hira_t1 + tp.hira_t2)

        geom = config.geometry
        self.banks_per_rank = geom.banks_per_rank
        self.banks_per_bankgroup = geom.banks_per_bankgroup
        self.ranks = [
            _RankState(next_act_group=[0] * geom.bankgroups_per_rank)
            for __ in range(config.ranks_per_channel)
        ]
        self._banks = [
            [_BankState() for __ in range(self.banks_per_rank)]
            for __ in range(config.ranks_per_channel)
        ]
        self.read_q: list[Request] = []
        self.write_q: list[Request] = []
        self._reads_first = (self.read_q, self.write_q)
        self._writes_first = (self.write_q, self.read_q)
        #: Ranks a refresh engine is draining for an imminent REF; demand
        #: to these ranks is deferred so the drain cannot be starved.
        self.blocked_ranks: set[int] = set()
        #: (rank, bank) pairs a refresh engine is draining for an imminent
        #: same-bank REFsb; demand to these banks is deferred (siblings of
        #: the rank keep scheduling — the point of same-bank refresh).
        self.blocked_banks: set[tuple[int, int]] = set()
        self.bus_next = 0
        self.data_bus_next = 0
        #: Direction of the burst occupying the data bus until
        #: ``data_bus_next`` (None before the first burst): a following
        #: burst in the *other* direction additionally waits out the
        #: tRTW/tWTR turnaround gap.
        self._data_bus_last_write: bool | None = None
        self._draining_writes = False
        #: Deferred single commands (e.g. the PRE closing a refresh-refresh
        #: HiRA pair) as a min-heap of (cycle, rank, bank) bus reservations.
        self._scheduled_closes: list[tuple[int, int, int]] = []
        #: Queued demand requests (both queues) per (rank, bank) — kept
        #: incrementally at enqueue/dequeue so ``demand_waiting`` is O(1).
        self._bank_demand = [
            [0] * self.banks_per_rank for __ in range(config.ranks_per_channel)
        ]
        #: Queued requests per (rank, bank, row), split by queue, so
        #: ``_row_hit_waiting`` is an O(1) lookup.
        self._row_demand_read: dict[tuple[int, int, int], int] = {}
        self._row_demand_write: dict[tuple[int, int, int], int] = {}
        #: ``next_event`` memo: valid while ``_dirty`` is False and the
        #: cached cycle is still in the future.  Every mutation that can
        #: create an earlier event — command issue, enqueue, dequeue, or a
        #: refresh-engine state change — sets ``_dirty``.
        self._dirty = True
        self._next_event_cache = -1
        self.stats = ControllerStats()
        self.completions: list[tuple[int, Request]] = []
        #: Optional :class:`repro.sim.audit.CommandAuditor` observing the
        #: logical command stream (attach via ``CommandAuditor(mc)``).
        self.auditor = None
        #: Optional :class:`repro.obs.tracer.SimTracer` recording the
        #: deterministic cycle-stamped event stream (attach via
        #: ``SimTracer(mc)``); pure observation, like the auditor.
        self.tracer = None
        self.engine = engine
        engine.attach(self)

    # ------------------------------------------------------------------
    # State access helpers (also used by refresh engines)
    # ------------------------------------------------------------------
    def mark_dirty(self) -> None:
        """Invalidate the ``next_event`` memo.

        Called by every command-issue primitive and by refresh engines
        whenever they mutate deadline-bearing state outside an issue (e.g.
        periodic request generation, PR-FIFO re-admission)."""
        self._dirty = True

    def bank(self, rank: int, bank: int) -> _BankState:
        return self._banks[rank][bank]

    def first_open_bank(self, rank: int) -> int | None:
        for bank_id, bank in enumerate(self._banks[rank]):
            if bank.open_row is not None:
                return bank_id
        return None

    def rank_available(self, rank: int, now: int) -> bool:
        return now >= self.ranks[rank].busy_until

    def faw_ok(self, rank: int, now: int) -> bool:
        faw = self.ranks[rank].faw
        return len(faw) < 4 or now - faw[0] >= self.tfaw_c

    def recent_acts(self, rank: int, now: int) -> int:
        """Activations to the rank inside the current tFAW window."""
        faw = self.ranks[rank].faw
        return sum(1 for t in faw if now - t < self.tfaw_c)

    def faw_ok_double(self, rank: int, now: int) -> bool:
        """Room for *two* activations in the four-activation window.

        A HiRA operation issues two ACTs within t1 + t2 (§5.2 counts both
        against tFAW), so replacing a demand ACT with a HiRA sequence is
        only legal when two window slots are free.  This also makes the
        Concurrent Refresh Finder naturally back off from refresh-access
        parallelization in activation-bound phases.
        """
        return self.recent_acts(rank, now) <= 2

    def faw_next(self, rank: int) -> int:
        faw = self.ranks[rank].faw
        return faw[0] + self.tfaw_c if len(faw) >= 4 else 0

    def trrd_ok(self, rank: int, bank_id: int, now: int) -> bool:
        """Whether an ACT to the bank respects tRRD_S (any bank) and
        tRRD_L (same bank group)."""
        rank_state = self.ranks[rank]
        if now < rank_state.next_act_any:
            return False
        group = bank_id // self.banks_per_bankgroup
        return now >= rank_state.next_act_group[group]

    def act_allowed_at(self, rank: int, bank_id: int) -> int:
        """Earliest cycle the bank's next ACT satisfies every rank gate.

        KEEP IN LOCKSTEP: this formula is hand-inlined in two hot scans —
        ``RefreshEngine._preventive_deadline`` and ``next_event`` (both
        marked "act_allowed_at, inlined").  A new ACT gate must be added
        to all three or the event loop's wake times diverge from the
        issue-time legality checks.  (tRTP feeds ``bank.next_pre`` and the
        DDR5 REFsb busy window feeds ``bank.next_act`` directly at issue
        time, so both are already visible to all three scans; the
        tRTW/tWTR turnaround is a *column* gate, carried by
        ``data_bus_free_at`` in the issue path and the queue wake
        candidates.)
        """
        rank_state = self.ranks[rank]
        faw = rank_state.faw
        gate = self._banks[rank][bank_id].next_act
        if len(faw) >= 4:
            faw_gate = faw[0] + self.tfaw_c
            if faw_gate > gate:
                gate = faw_gate
        if rank_state.next_act_any > gate:
            gate = rank_state.next_act_any
        group_gate = rank_state.next_act_group[bank_id // self.banks_per_bankgroup]
        return group_gate if group_gate > gate else gate

    def _record_act(self, rank: int, bank_id: int, now: int) -> None:
        rank_state = self.ranks[rank]
        faw = rank_state.faw
        faw.append(now)
        while len(faw) > 4:
            faw.popleft()
        rank_state.next_act_any = max(rank_state.next_act_any, now + self.trrd_s_c)
        group = bank_id // self.banks_per_bankgroup
        gates = rank_state.next_act_group
        gates[group] = max(gates[group], now + self.trrd_l_c)

    def act_pressure(self, rank: int, now: int) -> float:
        """Fraction of the rank's ACT-issue budget consumed recently.

        Counts activations inside the current tFAW window: 1.0 means the
        four-activation window is exhausted (every new ACT waits on tFAW),
        0.5 means half the budget is spoken for.  The Concurrent Refresh
        Finder uses this as its ACT-bandwidth pressure signal: above
        :attr:`HiraRefreshEngine.pressure_threshold` it prefers
        refresh-refresh pairs (two refreshes per bank-busy window) over
        interleaving refreshes with scarce demand activations.
        """
        return self.recent_acts(rank, now) / 4.0

    def data_bus_free_at(self, is_write: bool) -> int:
        """Earliest cycle a burst in the given direction may start.

        The channel data bus frees at ``data_bus_next``; a burst in the
        opposite direction to the previous one additionally waits out the
        bus turnaround (tRTW after a read, tWTR after a write).  With
        ``trtw = twtr = 0`` this is exactly ``data_bus_next``.
        """
        free = self.data_bus_next
        last_write = self._data_bus_last_write
        if last_write is not None and last_write != is_write:
            free += self.twtr_c if last_write else self.trtw_c
        return free

    def demand_waiting(self, rank: int, bank_id: int) -> bool:
        """Whether any queued demand request targets the bank.

        The Concurrent Refresh Finder uses this to decide if a bank's
        *time* is contended: pairing two refreshes into one bank-busy
        window only pays off when demand is waiting to use the bank.
        O(1): the per-bank counters are maintained at enqueue/dequeue."""
        return self._bank_demand[rank][bank_id] > 0

    # ------------------------------------------------------------------
    # Command issue primitives
    # ------------------------------------------------------------------
    def issue_pre(self, rank: int, bank_id: int, now: int) -> None:
        bank = self.bank(rank, bank_id)
        bank.open_row = None
        bank.next_act = max(bank.next_act, now + self.trp_c)
        rank_state = self.ranks[rank]
        rank_state.ref_ready = max(rank_state.ref_ready, now + self.trp_c)
        self.bus_next = now + 1
        self._dirty = True
        self.stats.pres += 1
        if self.auditor is not None:
            self.auditor.on_pre(now, rank, bank_id)
        if self.tracer is not None:
            self.tracer.on_pre(now, rank, bank_id)

    def issue_act(self, rank: int, bank_id: int, row: int, now: int) -> None:
        bank = self.bank(rank, bank_id)
        bank.open_row = row
        bank.next_rdwr = now + self.trcd_c
        bank.next_pre = now + self.tras_c
        bank.next_act = now + self.trc_c
        self._record_act(rank, bank_id, now)
        self.bus_next = now + 1
        self._dirty = True
        self.stats.acts += 1
        self.stats.row_misses += 1
        if self.auditor is not None:
            self.auditor.on_act(now, rank, bank_id, row)
        if self.tracer is not None:
            self.tracer.on_act(now, rank, bank_id, row)

    def issue_hira_act(self, rank: int, bank_id: int, refresh_row: int, target_row: int, now: int) -> None:
        """ACT(refresh_row), PRE, ACT(target_row): refresh-access HiRA.

        The target row's activation effectively starts t1+t2 later; the
        refresh row's charge restoration overlaps it entirely (§3).  The
        sequence occupies the command bus for its full t1+t2 span.
        """
        bank = self.bank(rank, bank_id)
        eff = now + self.hira_gap_c
        bank.open_row = target_row
        bank.next_rdwr = eff + self.trcd_c
        bank.next_pre = eff + self.tras_c
        bank.next_act = eff + self.trc_c
        self._record_act(rank, bank_id, now)
        self._record_act(rank, bank_id, eff)
        # Three commands (ACT, PRE, ACT) occupy three bus slots; the bus is
        # free between them for other banks.
        self.bus_next = now + 3
        self._dirty = True
        self.stats.acts += 2
        self.stats.pres += 1
        self.stats.hira_access_parallelized += 1
        if self.auditor is not None:
            self.auditor.on_hira_op(now, rank, bank_id, refresh_row, target_row, eff)
        if self.tracer is not None:
            self.tracer.on_hira_op(now, rank, bank_id, refresh_row, target_row, eff)

    def issue_hira_refresh_pair(self, rank: int, bank_id: int, now: int) -> None:
        """Refresh two rows with one HiRA operation (refresh-refresh).

        Bank is busy for t1 + t2 + tRAS + tRP (38 + 14.25 ns at defaults);
        the closing PRE consumes a deferred bus slot.
        """
        bank = self.bank(rank, bank_id)
        close = now + self.hira_gap_c + self.tras_c
        bank.open_row = None
        bank.next_act = close + self.trp_c
        bank.next_pre = close
        rank_state = self.ranks[rank]
        rank_state.ref_ready = max(rank_state.ref_ready, close + self.trp_c)
        self._record_act(rank, bank_id, now)
        self._record_act(rank, bank_id, now + self.hira_gap_c)
        self.bus_next = now + 3
        self._dirty = True
        heapq.heappush(self._scheduled_closes, (close, rank, bank_id))
        self.stats.acts += 2
        self.stats.pres += 2
        self.stats.hira_refresh_parallelized += 1
        if self.auditor is not None:
            self.auditor.on_hira_op(
                now, rank, bank_id, None, None, now + self.hira_gap_c, close=close
            )
        if self.tracer is not None:
            self.tracer.on_hira_op(
                now, rank, bank_id, None, None, now + self.hira_gap_c, close=close
            )

    def issue_solo_refresh(self, rank: int, bank_id: int, now: int) -> None:
        """Refresh one row with a nominal ACT + PRE pair."""
        bank = self.bank(rank, bank_id)
        close = now + self.tras_c
        bank.open_row = None
        bank.next_act = close + self.trp_c
        bank.next_pre = close
        rank_state = self.ranks[rank]
        rank_state.ref_ready = max(rank_state.ref_ready, close + self.trp_c)
        self._record_act(rank, bank_id, now)
        self.bus_next = now + 1
        self._dirty = True
        heapq.heappush(self._scheduled_closes, (close, rank, bank_id))
        self.stats.acts += 1
        self.stats.pres += 1
        self.stats.solo_refreshes += 1
        if self.auditor is not None:
            self.auditor.on_solo_refresh(now, rank, bank_id, close)
        if self.tracer is not None:
            self.tracer.on_solo_refresh(now, rank, bank_id, close)

    def issue_ref(self, rank_id: int, now: int) -> None:
        """Rank-level REF: the whole rank is unavailable for tRFC."""
        rank = self.ranks[rank_id]
        rank.busy_until = now + self.trfc_c
        # A same-bank refresh inside the rank-wide busy window would hit
        # a rank whose refresh control is already occupied.
        rank.next_refsb = max(rank.next_refsb, now + self.trfc_c)
        for bank in self._banks[rank_id]:
            bank.open_row = None
            bank.next_act = max(bank.next_act, now + self.trfc_c)
        self.bus_next = now + 1
        self._dirty = True
        self.stats.refs += 1
        if self.auditor is not None:
            self.auditor.on_ref(now, rank_id)
        if self.tracer is not None:
            self.tracer.on_ref(now, rank_id)

    def issue_refsb(self, rank_id: int, bank_id: int, now: int) -> None:
        """DDR5-style same-bank refresh: one bank unavailable for tRFC_sb.

        The target bank must already be precharged (tRP elapsed since its
        PRE, which ``bank.next_act`` carries); its sibling banks keep
        serving demand — the scheduling advantage of REFsb over the
        rank-wide REF of :meth:`issue_ref`.
        """
        rank = self.ranks[rank_id]
        bank = self._banks[rank_id][bank_id]
        bank.open_row = None
        bank.next_act = max(bank.next_act, now + self.trfc_sb_c)
        rank.next_refsb = now + self.trefsb_gap_c
        # A rank-level REF during the REFsb would hit a busy bank.
        rank.ref_ready = max(rank.ref_ready, now + self.trfc_sb_c)
        self.bus_next = now + 1
        self._dirty = True
        self.stats.refs_sb += 1
        if self.auditor is not None:
            self.auditor.on_refsb(now, rank_id, bank_id)
        if self.tracer is not None:
            self.tracer.on_refsb(now, rank_id, bank_id)

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def enqueue(self, req: Request) -> bool:
        queue = self.write_q if req.is_write else self.read_q
        depth = (
            self.config.write_queue_depth if req.is_write else self.config.read_queue_depth
        )
        if len(queue) >= depth:
            self.stats.queue_full_rejections += 1
            return False
        queue.append(req)
        addr = req.addr
        rank, bank_id, row = addr.rank, addr.bank, addr.row
        self._bank_demand[rank][bank_id] += 1
        rows = self._row_demand_write if req.is_write else self._row_demand_read
        key = (rank, bank_id, row)
        rows[key] = rows.get(key, 0) + 1
        self._dirty = True
        return True

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _active_queues(self) -> tuple[list[Request], list[Request]]:
        if self._draining_writes:
            if len(self.write_q) <= self.config.write_drain_low:
                self._draining_writes = False
        elif len(self.write_q) >= self.config.write_drain_high or (
            not self.read_q and self.write_q
        ):
            self._draining_writes = True
        if self._draining_writes:
            return self._writes_first
        return self._reads_first

    def schedule(self, now: int) -> bool:
        """Try to issue one command at cycle ``now``; True if issued."""
        if now < self.bus_next:
            if self.tracer is not None:
                self.tracer.on_stall(now)
            return False
        # Deferred closing PREs of refresh operations take precedence.
        # The heap keeps the earliest close on top; a due close consumes
        # one bus slot (its bank state was already applied at issue time).
        closes = self._scheduled_closes
        if closes and closes[0][0] <= now:
            heapq.heappop(closes)
            self.bus_next = now + 1
            self._dirty = True
            return True
        if self.engine.urgent(now):
            return True
        for queue in self._active_queues():
            if self._schedule_queue(queue, now):
                return True
        if self.tracer is not None:
            self.tracer.on_stall(now)
        return False

    def _schedule_queue(self, queue: list[Request], now: int) -> bool:
        if not queue:
            return False
        blocked = self.blocked_ranks
        bblocked = self.blocked_banks
        banks = self._banks
        ranks = self.ranks
        # First pass: FR — oldest ready row hit.  Queues are homogeneous
        # (reads or writes), so the data-bus gate hoists out of the scan:
        # bursts start a fixed tCL (reads) / tCWL (writes) after the column
        # command — plus the tRTW/tWTR turnaround when the bus last carried
        # the opposite direction — so when the bus is not free at that
        # offset no request in this queue can issue a column access.
        is_write_q = queue is self.write_q
        burst_offset = self.tcwl_c if is_write_q else self.tcl_c
        if now + burst_offset >= self.data_bus_free_at(is_write_q):
            for idx, req in enumerate(queue):
                addr = req.addr
                rank = addr.rank
                if rank in blocked:
                    continue
                if bblocked and (rank, addr.bank) in bblocked:
                    continue
                bank = banks[rank][addr.bank]
                if (
                    bank.open_row == addr.row
                    and now >= bank.next_rdwr
                    and now >= ranks[rank].busy_until
                ):
                    self._issue_column_access(queue, idx, now)
                    return True
        # Second pass: FCFS — advance the oldest request's bank state.
        # Only the oldest request per (rank, bank) can act: whether an ACT
        # or a PRE is legal depends on bank/rank state alone, and a younger
        # conflicting request is always shadowed by the older one (the
        # open-row keep-alive check spans the whole queue).  Deduplicate
        # banks with a bitmask so the scan is O(distinct banks).
        seen = 0
        banks_per_rank = self.banks_per_rank
        for req in queue:
            addr = req.addr
            rank, bank_id = addr.rank, addr.bank
            bit = 1 << (rank * banks_per_rank + bank_id)
            if seen & bit:
                continue
            seen |= bit
            if rank in blocked or now < ranks[rank].busy_until:
                continue
            if bblocked and (rank, bank_id) in bblocked:
                continue
            bank = banks[rank][bank_id]
            open_row = bank.open_row
            if open_row is None:
                if now >= bank.next_act and self.faw_ok(rank, now) and self.trrd_ok(rank, bank_id, now):
                    refresh_row = None
                    if self.faw_ok_double(rank, now):
                        refresh_row = self.engine.on_act(req, now)
                    if refresh_row is not None:
                        self.issue_hira_act(rank, bank_id, refresh_row, addr.row, now)
                    else:
                        self.issue_act(rank, bank_id, addr.row, now)
                    self.engine.on_demand_act(req, now)
                    return True
            elif open_row != addr.row:
                if now >= bank.next_pre and not self._row_hit_waiting(queue, rank, bank_id, open_row):
                    self.issue_pre(rank, bank_id, now)
                    return True
            # Oldest-first: only consider strictly older requests' banks;
            # but allowing younger requests to different banks improves
            # bank-level parallelism (standard FR-FCFS behaviour).
        return False

    def _row_hit_waiting(self, queue: list[Request], rank: int, bank_id: int, row: int) -> bool:
        """Whether a queued request still targets the open row (keep it open).

        O(1): per-(rank, bank, row) occupancy counters are maintained at
        enqueue/dequeue for each queue."""
        rows = self._row_demand_read if queue is self.read_q else self._row_demand_write
        return (rank, bank_id, row) in rows

    def _issue_column_access(self, queue: list[Request], idx: int, now: int) -> None:
        req = queue.pop(idx)
        addr = req.addr
        rank, bank_id = addr.rank, addr.bank
        self._bank_demand[rank][bank_id] -= 1
        rows = self._row_demand_write if req.is_write else self._row_demand_read
        key = (rank, bank_id, addr.row)
        left = rows[key] - 1
        if left:
            rows[key] = left
        else:
            del rows[key]
        bank = self._banks[rank][bank_id]
        self.bus_next = now + 1
        self._dirty = True
        if req.is_write:
            # Write recovery: the bank may not precharge until tWR after
            # the write data burst (WR + CWL + BL) has fully landed in the
            # sense amplifiers.  The burst occupies the channel's data bus
            # for tBL starting exactly tCWL after the command (the issue
            # gate in `_schedule_queue` guarantees the bus is free then).
            burst_end = now + self.tcwl_c + self.tbl_c
            self.data_bus_next = burst_end
            self._data_bus_last_write = True
            bank.next_pre = max(bank.next_pre, burst_end + self.twr_c)
            req.complete_cycle = burst_end
            self.stats.writes_served += 1
        else:
            # The read burst starts exactly tCL after the command (the
            # data-bus issue gate guarantees the bus is free by then) and
            # the bank may not precharge until tRTP after the command.
            start = now + self.tcl_c
            self.data_bus_next = start + self.tbl_c
            self._data_bus_last_write = False
            bank.next_pre = max(bank.next_pre, now + self.trtp_c)
            req.complete_cycle = start + self.tbl_c
            self.stats.reads_served += 1
            self.completions.append((req.complete_cycle, req))
        self.stats.row_hits += 1
        if self.auditor is not None:
            self.auditor.on_col(now, rank, bank_id, req.is_write)
        if self.tracer is not None:
            self.tracer.on_col(now, rank, bank_id, req.is_write)

    # ------------------------------------------------------------------
    def next_event(self, now: int) -> int:
        """Earliest future cycle at which scheduling could make progress.

        Memoized: the candidate set only changes through mutations that
        set ``_dirty`` (command issues, queue changes, engine updates), and
        every candidate only grows over time otherwise — so while the
        controller is clean, a cached value still in the future is exactly
        what a recomputation would return.
        """
        if not self._dirty and self._next_event_cache > now:
            return self._next_event_cache
        best = _FAR_FUTURE
        have_future = False
        c = self.bus_next
        if c > now:
            best = c
            have_future = True
        closes = self._scheduled_closes
        if closes:
            c = closes[0][0]
            if c > now:
                have_future = True
                if c < best:
                    best = c
        c = self.engine.next_deadline(now)
        if c > now:
            have_future = True
            if c < best:
                best = c
        banks = self._banks
        ranks = self.ranks
        tfaw_c = self.tfaw_c
        bpg = self.banks_per_bankgroup
        for queue in (self.read_q, self.write_q):
            n = len(queue)
            if n > 8:
                n = 8
            if n:
                # Data-bus gate: a column access can issue no earlier than
                # tCL/tCWL before the bus frees for this queue's direction
                # (including any tRTW/tWTR turnaround); wake then.
                c = self.data_bus_free_at(queue is self.write_q) - (
                    self.tcwl_c if queue is self.write_q else self.tcl_c
                )
                if c > now:
                    have_future = True
                    if c < best:
                        best = c
            for qi in range(n):
                addr = queue[qi].addr
                rank, bank_id = addr.rank, addr.bank
                bank = banks[rank][bank_id]
                rank_state = ranks[rank]
                c = rank_state.busy_until
                if c > now:
                    have_future = True
                    if c < best:
                        best = c
                open_row = bank.open_row
                if open_row == addr.row:
                    c = bank.next_rdwr
                elif open_row is None:
                    # act_allowed_at, inlined (hot scan).
                    c = bank.next_act
                    faw = rank_state.faw
                    if len(faw) >= 4:
                        faw_gate = faw[0] + tfaw_c
                        if faw_gate > c:
                            c = faw_gate
                    if rank_state.next_act_any > c:
                        c = rank_state.next_act_any
                    group_gate = rank_state.next_act_group[bank_id // bpg]
                    if group_gate > c:
                        c = group_gate
                else:
                    c = bank.next_pre
                if c > now:
                    have_future = True
                    if c < best:
                        best = c
        result = best if have_future else now + 1
        self._next_event_cache = result
        self._dirty = False
        return result

    @property
    def pending_requests(self) -> int:
        return len(self.read_q) + len(self.write_q)
