"""The per-channel memory controller: FR-FCFS, open-row policy, refresh.

One controller owns one channel's command bus, data bus, and bank/rank
timing state.  Refresh behaviour is pluggable through a
:class:`RefreshEngine`; the baseline issues rank-level REF commands every
tREFI (blocking the rank for tRFC), while HiRA-MC (in :mod:`repro.core`)
replaces them with HiRA operations scheduled around demand accesses.

Hot-path layout (struct of arrays)
----------------------------------
Timing state lives in :class:`TimingArrays`: flat lists indexed by the
global bank id ``g = rank * banks_per_rank + bank`` (bank axes) or by
rank / flattened ``(rank, bankgroup)`` (rank axes), instead of nested
per-object attributes.  The scheduler no longer scans request queues:
per-bank FCFS deques and per-``(bank, row)`` row-hit deques are
maintained at enqueue/dequeue, so command selection visits only banks
that have work.  ``schedule()`` additionally memoizes its own next
useful cycle (``_progress_at``) whenever a call provably issued nothing
and mutated nothing, letting the system loop skip idle controllers
entirely.  All of it is bit-identical to the scan-based kernel — the
kernel A/B goldens and audit-digest goldens in
``tests/test_kernel_equivalence.py`` enforce exactly that.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from dataclasses import dataclass

from repro.sim.config import SystemConfig
from repro.sim.request import Request

_FAR_FUTURE = 1 << 60
#: Sentinel returned by ``_schedule_queues`` when it issued a command (any
#: real wake bound is a non-negative cycle).
_ISSUED = -2


class TimingArrays:
    """Struct-of-arrays timing state for one channel.

    Bank axes (``open_row``, ``next_act``, ``next_pre``, ``next_rdwr``)
    are flat lists of length ``ranks * banks_per_rank`` indexed by the
    global bank id ``g``; rank axes are length-``ranks`` lists; the
    bank-group ACT gate (tRRD_L) is flattened to
    ``rank * bankgroups_per_rank + group``.  ``open_row`` uses ``-1``
    for a precharged bank so every element stays a machine int.

    Plain Python lists, deliberately not numpy: the hot loops make a
    handful of *scalar* accesses per visited cycle, and a measured
    scalar ``ndarray[i]`` read costs ~4x a list index (every read boxes
    a numpy scalar) — numpy pays only where bulk math amortizes, e.g.
    the vectorized trace refill.

    ``act_floor[rank]`` is a maintained derived gate:
    ``max(next_act_any[rank], faw[rank][0] + tFAW)`` (0 while fewer than
    four ACTs are in the window).  It is resynced at every ACT record
    and by the state views whenever ``faw``/``next_act_any`` are poked
    directly, so ``act_allowed_at`` and its inlined copies fold one
    precomputed value instead of re-deriving the tFAW gate per scan.
    """

    __slots__ = (
        "open_row",
        "next_act",
        "next_pre",
        "next_rdwr",
        "busy_until",
        "ref_due",
        "ref_ready",
        "next_refsb",
        "next_act_any",
        "act_floor",
        "faw",
        "group_gate",
    )

    def __init__(self, ranks: int, banks_per_rank: int, groups_per_rank: int):
        nb = ranks * banks_per_rank
        self.open_row = [-1] * nb
        self.next_act = [0] * nb
        self.next_pre = [0] * nb
        self.next_rdwr = [0] * nb
        self.busy_until = [0] * ranks
        self.ref_due = [0] * ranks
        self.ref_ready = [0] * ranks
        self.next_refsb = [0] * ranks
        self.next_act_any = [0] * ranks
        self.act_floor = [0] * ranks
        self.faw = [deque() for __ in range(ranks)]
        self.group_gate = [0] * (ranks * groups_per_rank)


class _FawView:
    """Deque-like view of one rank's tFAW ACT history.

    Mutations resync the rank's derived ``act_floor`` so tests that poke
    the window directly (e.g. ``mc.ranks[0].faw.clear()``) keep the
    maintained gate coherent with the raw deque, and invalidate the
    controller's schedule/next_event memos like any other scheduling-state
    mutation would.
    """

    __slots__ = ("_mc", "_r", "_dq")

    def __init__(self, mc: "MemoryController", rank: int):
        self._mc = mc
        self._r = rank
        self._dq = mc._ta.faw[rank]

    def append(self, value: int) -> None:
        self._dq.append(value)
        self._mc._resync_act_floor(self._r)
        self._mc.mark_dirty()

    def popleft(self) -> int:
        value = self._dq.popleft()
        self._mc._resync_act_floor(self._r)
        self._mc.mark_dirty()
        return value

    def clear(self) -> None:
        self._dq.clear()
        self._mc._resync_act_floor(self._r)
        self._mc.mark_dirty()

    def __len__(self) -> int:
        return len(self._dq)

    def __bool__(self) -> bool:
        return bool(self._dq)

    def __getitem__(self, index):
        return self._dq[index]

    def __iter__(self):
        return iter(self._dq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_FawView({list(self._dq)!r})"


class _GroupGates:
    """List-like view of one rank's bank-group ACT gates (tRRD_L)."""

    __slots__ = ("_mc", "_gates", "_base", "_n")

    def __init__(self, mc: "MemoryController", gates: list, base: int, n: int):
        self._mc = mc
        self._gates = gates
        self._base = base
        self._n = n

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError(index)
        return self._gates[self._base + index]

    def __setitem__(self, index: int, value: int) -> None:
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError(index)
        self._gates[self._base + index] = value
        self._mc.mark_dirty()

    def __iter__(self):
        base = self._base
        return iter(self._gates[base : base + self._n])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_GroupGates({list(self)!r})"


class _BankState:
    """Per-bank view over the :class:`TimingArrays` columns.

    The stable external surface (``mc.bank(rank, bank)``) for tracers,
    tests, and cold paths; hot code indexes the arrays directly.  The
    ``open_row`` setter resyncs the controller's row-hit bank index so
    direct pokes cannot strand a stale FR candidate.
    """

    __slots__ = ("_mc", "_g", "_open", "_act", "_pre", "_rdwr")

    def __init__(self, mc: "MemoryController", g: int):
        self._mc = mc
        self._g = g
        ta = mc._ta
        self._open = ta.open_row
        self._act = ta.next_act
        self._pre = ta.next_pre
        self._rdwr = ta.next_rdwr

    @property
    def open_row(self) -> int | None:
        row = self._open[self._g]
        return None if row < 0 else row

    @open_row.setter
    def open_row(self, row: int | None) -> None:
        g = self._g
        self._open[g] = -1 if row is None else row
        mc = self._mc
        mc._hit_read.discard(g)
        mc._hit_write.discard(g)
        if row is not None:
            if (g, row) in mc._row_q_read:
                mc._hit_read.add(g)
            if (g, row) in mc._row_q_write:
                mc._hit_write.add(g)
        mc.mark_dirty()

    @property
    def next_act(self) -> int:
        return self._act[self._g]

    @next_act.setter
    def next_act(self, value: int) -> None:
        self._act[self._g] = value
        self._mc.mark_dirty()

    @property
    def next_pre(self) -> int:
        return self._pre[self._g]

    @next_pre.setter
    def next_pre(self, value: int) -> None:
        self._pre[self._g] = value
        self._mc.mark_dirty()

    @property
    def next_rdwr(self) -> int:
        return self._rdwr[self._g]

    @next_rdwr.setter
    def next_rdwr(self, value: int) -> None:
        self._rdwr[self._g] = value
        self._mc.mark_dirty()


class _RankState:
    """Per-rank view over the :class:`TimingArrays` columns.

    Writes to ``next_act_any`` (and any ``faw`` mutation through the
    :class:`_FawView`) resync the derived ``act_floor``.
    """

    __slots__ = ("_mc", "_r", "_busy", "_due", "_ready", "_refsb", "_any")

    def __init__(self, mc: "MemoryController", rank: int):
        self._mc = mc
        self._r = rank
        ta = mc._ta
        self._busy = ta.busy_until
        self._due = ta.ref_due
        self._ready = ta.ref_ready
        self._refsb = ta.next_refsb
        self._any = ta.next_act_any

    @property
    def faw(self) -> _FawView:
        return _FawView(self._mc, self._r)

    @property
    def busy_until(self) -> int:
        return self._busy[self._r]

    @busy_until.setter
    def busy_until(self, value: int) -> None:
        self._busy[self._r] = value
        self._mc.mark_dirty()

    @property
    def ref_due(self) -> int:
        return self._due[self._r]

    @ref_due.setter
    def ref_due(self, value: int) -> None:
        self._due[self._r] = value
        self._mc.mark_dirty()

    @property
    def ref_ready(self) -> int:
        return self._ready[self._r]

    @ref_ready.setter
    def ref_ready(self, value: int) -> None:
        self._ready[self._r] = value
        self._mc.mark_dirty()

    @property
    def next_refsb(self) -> int:
        return self._refsb[self._r]

    @next_refsb.setter
    def next_refsb(self, value: int) -> None:
        self._refsb[self._r] = value
        self._mc.mark_dirty()

    @property
    def next_act_any(self) -> int:
        return self._any[self._r]

    @next_act_any.setter
    def next_act_any(self, value: int) -> None:
        self._any[self._r] = value
        self._mc._resync_act_floor(self._r)
        self._mc.mark_dirty()

    @property
    def next_act_group(self) -> _GroupGates:
        mc = self._mc
        n = mc.bankgroups_per_rank
        return _GroupGates(mc, mc._ta.group_gate, self._r * n, n)


@dataclass(slots=True)
class ControllerStats:
    """Per-channel event counters."""

    reads_served: int = 0
    writes_served: int = 0
    row_hits: int = 0
    row_misses: int = 0
    acts: int = 0
    pres: int = 0
    refs: int = 0
    refs_sb: int = 0
    solo_refreshes: int = 0
    hira_access_parallelized: int = 0
    hira_refresh_parallelized: int = 0
    preventive_generated: int = 0
    periodic_generated: int = 0
    deadline_misses: int = 0
    queue_full_rejections: int = 0


class RefreshEngine:
    """Interface between the controller and a refresh policy.

    The base class carries the PARA preventive-refresh plumbing shared by
    all engines: when ``para`` is set, every demand activation may generate
    a preventive refresh for a neighbouring victim row.  Without HiRA the
    preventive refresh is performed as a blocking nominal ACT+PRE as soon
    as the bank allows (the original PARA behaviour [84]); HiRA-MC
    overrides :meth:`on_demand_act` to queue it with a deadline instead.
    """

    def __init__(self) -> None:
        self.para = None
        self._preventive: deque = deque()

    def attach(self, mc: "MemoryController") -> None:
        self.mc = mc

    # -- PARA ------------------------------------------------------------
    def para_observe_act(self, rank: int, bank_id: int, row: int, now: int) -> int | None:
        """PARA's Bernoulli draw for one observed activation.

        Applies to demand row activations (the attacker-controllable
        ones).  At low RowHammer thresholds the resulting preventive
        refreshes destroy row-buffer locality — each one closes the open
        row — which multiplies the demand activation count itself and
        compounds PARA's overhead (§9.2's 96% regime).
        """
        if self.para is None:
            return None
        victim = self.para.preventive_refresh_target(
            row, self.mc.config.rows_per_bank, bank_key=(rank, bank_id)
        )
        if victim is not None:
            self.mc.stats.preventive_generated += 1
        return victim

    def on_demand_act(self, req: Request, now: int) -> None:
        """Called after a demand ACT is issued (PARA's observation point)."""
        victim = self.para_observe_act(req.addr.rank, req.addr.bank, req.addr.row, now)
        if victim is not None:
            # Without HiRA the preventive refresh is due immediately.
            self._queue_preventive(req.addr.rank, req.addr.bank, victim, now)

    def _queue_preventive(self, rank: int, bank_id: int, row: int, deadline: int) -> None:
        """Overflow queue for preventive refreshes, keeping each deadline."""
        self._preventive.append((rank, bank_id, row, deadline))
        self.mc.mark_dirty()

    def _service_preventive(self, now: int) -> bool:
        """Perform the oldest feasible queued preventive refresh."""
        pending = self._preventive
        if not pending:
            return False
        mc = self.mc
        ta = mc._ta
        b_open = ta.open_row
        busy = ta.busy_until
        act_floor = ta.act_floor
        banks_per_rank = mc.banks_per_rank
        for i, (rank, bank_id, row, __) in enumerate(pending):
            if now < busy[rank]:
                continue
            g = rank * banks_per_rank + bank_id
            if b_open[g] >= 0:
                if now >= ta.next_pre[g]:
                    mc.issue_pre(rank, bank_id, now)
                    return True
                continue
            # act_allowed_at, inlined (this scan is on the hot path).
            if (
                now >= ta.next_act[g]
                and now >= act_floor[rank]
                and now >= mc._group_gate_at(rank, bank_id)
            ):
                del pending[i]
                mc.issue_solo_refresh(rank, bank_id, now)
                return True
        return False

    def _preventive_deadline(self, now: int) -> int:
        pending = self._preventive
        if not pending:
            return _FAR_FUTURE
        mc = self.mc
        ta = mc._ta
        b_open = ta.open_row
        busy = ta.busy_until
        act_floor = ta.act_floor
        group_gate = ta.group_gate
        banks_per_rank = mc.banks_per_rank
        groups = mc.bankgroups_per_rank
        bpg = mc.banks_per_bankgroup
        soonest = _FAR_FUTURE
        for rank, bank_id, __, __dl in pending:
            g = rank * banks_per_rank + bank_id
            if b_open[g] >= 0:
                gate = ta.next_pre[g]
            else:
                # act_allowed_at, inlined (this scan is on the hot path).
                gate = ta.next_act[g]
                c = act_floor[rank]
                if c > gate:
                    gate = c
                c = group_gate[rank * groups + bank_id // bpg]
                if c > gate:
                    gate = c
            c = busy[rank]
            if c > gate:
                gate = c
            if gate < soonest:
                soonest = gate
        return soonest

    # -- Policy hooks ------------------------------------------------------
    def urgent(self, now: int) -> bool:
        """Issue due refresh work; returns True if a command was issued."""
        return self._service_preventive(now)

    def next_deadline(self, now: int) -> int:
        """Next cycle at which the engine wants the bus."""
        return self._preventive_deadline(now)

    def urgent_wake(self, now: int) -> int:
        """Never-late bound for the next cycle ``urgent`` could act.

        Consulted only at the end of a failing, mutation-free
        ``schedule`` call (see its memo contract): until the returned
        cycle, calling ``urgent`` again would provably neither issue a
        command nor mutate any scheduling state.  The bound may be early
        (the re-run is then a harmless no-op) but must never be late; a
        bound ``<= now`` simply disables skipping for this controller.
        Any engine mutation in the meantime voids the memo through
        ``mark_dirty``, so the formulas only need to hold while state is
        frozen.
        """
        return self._preventive_deadline(now)

    def on_act(self, req: Request, now: int) -> int | None:
        """Refresh-access hook: row to refresh with a HiRA ACT, or None."""
        return None


class NoRefreshEngine(RefreshEngine):
    """The ideal No-Refresh system of Fig. 9a (still honours PARA if set)."""


class BaselineRefreshEngine(RefreshEngine):
    """Rank-level REF every tREFI, blocking the rank for tRFC (§2.3).

    With ``refresh_granularity="same_bank"`` the engine instead issues a
    DDR5-style REFsb to every bank once per tREFI (staggered across the
    channel's banks): each command blocks only its target bank for
    tRFC_sb, so sibling banks keep serving demand during refresh.
    """

    def attach(self, mc: "MemoryController") -> None:
        super().attach(mc)
        trefi = mc.trefi_c
        self._same_bank = mc.config.refresh_granularity == "same_bank"
        if self._same_bank:
            #: Per-bank REFsb due times (each bank every tREFI), plus a
            #: heap mirror for O(log n) promotion and a draining set for
            #: banks committed to an imminent REFsb.
            self._sb_due: dict[tuple[int, int], int] = {}
            self._sb_heap: list[tuple[int, int, int]] = []
            self._sb_draining: set[tuple[int, int]] = set()
            total = len(mc.ranks) * mc.banks_per_rank
            index = 0
            for rank_id in range(len(mc.ranks)):
                for bank_id in range(mc.banks_per_rank):
                    due = ((index + 1) * trefi) // total
                    self._sb_due[(rank_id, bank_id)] = due
                    heapq.heappush(self._sb_heap, (due, rank_id, bank_id))
                    index += 1
            return
        n_ranks = len(mc.ranks)
        for i in range(n_ranks):
            # Stagger REF across ranks so they do not collide on the bus.
            mc._ta.ref_due[i] = trefi + (i * trefi) // max(1, n_ranks)

    # -- Same-bank (REFsb) path --------------------------------------------
    def _sb_promote(self, now: int) -> None:
        """Commit due banks to draining: demand to them is deferred so a
        hot row-hit stream cannot keep the bank open past its REFsb."""
        heap = self._sb_heap
        mc = self.mc
        promoted = False
        while heap and heap[0][0] <= now:
            due, rank_id, bank_id = heapq.heappop(heap)
            key = (rank_id, bank_id)
            self._sb_draining.add(key)
            mc.blocked_banks.add(key)
            promoted = True
            if mc.tracer is not None:
                mc.tracer.on_decision("sb-promote", now, rank_id, bank_id, due)
        if promoted:
            mc.mark_dirty()

    def _sb_account(self, key: tuple[int, int], now: int, due: int) -> None:
        """Postponement bookkeeping hook (elastic overrides)."""

    def _sb_issue_due(self, now: int) -> bool:
        """Progress one draining bank: PRE it, wait tRP, then REFsb."""
        mc = self.mc
        ta = mc._ta
        banks_per_rank = mc.banks_per_rank
        for key in self._sb_draining:
            rank_id, bank_id = key
            if now < ta.busy_until[rank_id]:
                continue
            g = rank_id * banks_per_rank + bank_id
            if ta.open_row[g] >= 0:
                if now >= ta.next_pre[g]:
                    mc.issue_pre(rank_id, bank_id, now)
                    return True
                continue
            # next_act carries both tRP-after-PRE and the previous REFsb's
            # busy window; next_refsb is the rank's tREFSB_GAP spacing.
            if now < ta.next_act[g] or now < ta.next_refsb[rank_id]:
                continue
            self._sb_draining.discard(key)
            mc.blocked_banks.discard(key)
            mc.issue_refsb(rank_id, bank_id, now)
            due = self._sb_due[key]
            self._sb_account(key, now, due)
            self._sb_due[key] = due + mc.trefi_c
            heapq.heappush(self._sb_heap, (due + mc.trefi_c, rank_id, bank_id))
            return True
        return False

    def _sb_drain_wake(self, now: int, soonest: int) -> int:
        """Fold each draining bank's next drain-step gate into ``soonest``."""
        mc = self.mc
        ta = mc._ta
        banks_per_rank = mc.banks_per_rank
        for rank_id, bank_id in self._sb_draining:
            g = rank_id * banks_per_rank + bank_id
            gate = ta.busy_until[rank_id]
            if ta.open_row[g] >= 0:
                c = ta.next_pre[g]
                if c > gate:
                    gate = c
            else:
                c = ta.next_act[g]
                if c > gate:
                    gate = c
                c = ta.next_refsb[rank_id]
                if c > gate:
                    gate = c
            if gate < soonest:
                soonest = gate
        return soonest

    def _sb_urgent(self, now: int) -> bool:
        if self._service_preventive(now):
            return True
        self._sb_promote(now)
        return self._sb_issue_due(now)

    def _sb_next_deadline(self, now: int) -> int:
        soonest = self._sb_drain_wake(now, self._preventive_deadline(now))
        heap = self._sb_heap
        if heap and heap[0][0] < soonest:
            soonest = heap[0][0]
        return soonest

    def _sb_urgent_wake(self, now: int) -> int:
        """Mirror of ``_sb_urgent``'s gates for the schedule memo."""
        # _sb_drain_wake mirrors _sb_issue_due's per-bank gates exactly;
        # the heap head is the cycle the next promotion (a mutation)
        # fires; _preventive_deadline covers _service_preventive.
        wake = self._sb_drain_wake(now, self._preventive_deadline(now))
        heap = self._sb_heap
        if heap and heap[0][0] < wake:
            wake = heap[0][0]
        return wake

    # -- All-bank (rank REF) path ------------------------------------------
    def urgent(self, now: int) -> bool:
        if self._same_bank:
            return self._sb_urgent(now)
        if self._service_preventive(now):
            return True
        mc = self.mc
        ta = mc._ta
        ref_due = ta.ref_due
        busy = ta.busy_until
        for rank_id in range(len(ref_due)):
            if now < ref_due[rank_id] or now < busy[rank_id]:
                continue
            # Drain the rank: defer new demand to it so sustained traffic
            # cannot keep reopening banks (or pushing tRP-readiness away)
            # faster than the tRAS-gated precharges close them — without
            # this, a saturated rank would starve REF forever.
            if rank_id not in mc.blocked_ranks:
                mc.blocked_ranks.add(rank_id)
                mc.mark_dirty()
            # All banks must be precharged before REF.
            open_bank = mc.first_open_bank(rank_id)
            if open_bank is None and now < ta.ref_ready[rank_id]:
                continue  # tRP still elapsing; the rank stays blocked
            if open_bank is not None:
                g = rank_id * mc.banks_per_rank + open_bank
                if now >= ta.next_pre[g]:
                    mc.issue_pre(rank_id, open_bank, now)
                    return True
                continue
            mc.blocked_ranks.discard(rank_id)
            mc.issue_ref(rank_id, now)
            ta.ref_due[rank_id] += mc.trefi_c
            return True
        return False

    def next_deadline(self, now: int) -> int:
        if self._same_bank:
            return self._sb_next_deadline(now)
        soonest = self._preventive_deadline(now)
        ta = self.mc._ta
        ref_ready = ta.ref_ready
        for rank_id, due in enumerate(ta.ref_due):
            c = ref_ready[rank_id]
            if c > due:
                due = c
            if due < soonest:
                soonest = due
        return soonest

    def urgent_wake(self, now: int) -> int:
        if self._same_bank:
            return self._sb_urgent_wake(now)
        wake = self._preventive_deadline(now)
        mc = self.mc
        ta = mc._ta
        busy = ta.busy_until
        for rank_id, due in enumerate(ta.ref_due):
            gate = busy[rank_id]
            if due > gate:
                gate = due
            if gate > now:
                # Not yet engaged: urgent skips the rank until this cycle.
                if gate < wake:
                    wake = gate
                continue
            # Due and free now: the rank is already blocked and draining
            # (the blocking add happened in an earlier, mutating call).
            # Mirror urgent's drain branches: the first open bank's PRE
            # gate, or the tRP-after-PRE REF-readiness gate.
            open_bank = mc.first_open_bank(rank_id)
            if open_bank is not None:
                c = ta.next_pre[rank_id * mc.banks_per_rank + open_bank]
            else:
                c = ta.ref_ready[rank_id]
            if c > gate:
                gate = c
            if gate < wake:
                wake = gate
        return wake


class MemoryController:
    """One channel's scheduler and timing state."""

    def __init__(self, channel_id: int, config: SystemConfig, engine: RefreshEngine):
        self.channel_id = channel_id
        self.config = config
        tp = config.timing
        c = config.cycles
        self.trcd_c = c(tp.trcd)
        self.tras_c = c(tp.tras)
        self.trp_c = c(tp.trp)
        self.trc_c = c(tp.trc)
        self.trfc_c = c(tp.trfc)
        self.trefi_c = c(tp.trefi)
        self.tcl_c = c(tp.tcl)
        self.tbl_c = c(tp.tbl)
        self.tfaw_c = c(tp.tfaw)
        self.trrd_s_c = c(tp.trrd_s)
        self.trrd_l_c = c(tp.trrd_l)
        self.twr_c = c(tp.twr)
        self.trtp_c = c(tp.trtp)
        self.tcwl_c = c(tp.tcwl)
        self.trtw_c = c(tp.trtw) if tp.trtw else 0
        self.twtr_c = c(tp.twtr) if tp.twtr else 0
        self.trfc_sb_c = c(tp.trfc_sb)
        self.trefsb_gap_c = c(tp.trefsb_gap)
        self.hira_gap_c = c(tp.hira_t1 + tp.hira_t2)

        geom = config.geometry
        self.banks_per_rank = geom.banks_per_rank
        self.banks_per_bankgroup = geom.banks_per_bankgroup
        self.bankgroups_per_rank = geom.bankgroups_per_rank
        n_ranks = config.ranks_per_channel
        #: The struct-of-arrays hot state (see :class:`TimingArrays`).
        self._ta = TimingArrays(
            n_ranks, self.banks_per_rank, self.bankgroups_per_rank
        )
        #: Stable view objects: the object-per-rank/bank external surface.
        self.ranks = [_RankState(self, r) for r in range(n_ranks)]
        self._bank_views = [
            _BankState(self, g) for g in range(n_ranks * self.banks_per_rank)
        ]
        self.read_q: list[Request] = []
        self.write_q: list[Request] = []
        self._reads_first = (self.read_q, self.write_q)
        self._writes_first = (self.write_q, self.read_q)
        #: Ranks a refresh engine is draining for an imminent REF; demand
        #: to these ranks is deferred so the drain cannot be starved.
        self.blocked_ranks: set[int] = set()
        #: (rank, bank) pairs a refresh engine is draining for an imminent
        #: same-bank REFsb; demand to these banks is deferred (siblings of
        #: the rank keep scheduling — the point of same-bank refresh).
        self.blocked_banks: set[tuple[int, int]] = set()
        self.bus_next = 0
        self.data_bus_next = 0
        #: Direction of the burst occupying the data bus until
        #: ``data_bus_next`` (None before the first burst): a following
        #: burst in the *other* direction additionally waits out the
        #: tRTW/tWTR turnaround gap.
        self._data_bus_last_write: bool | None = None
        self._draining_writes = False
        #: Deferred single commands (e.g. the PRE closing a refresh-refresh
        #: HiRA pair) as a min-heap of (cycle, rank, bank) bus reservations.
        self._scheduled_closes: list[tuple[int, int, int]] = []
        #: Queued demand requests (both queues) per global bank id — kept
        #: incrementally at enqueue/dequeue so ``demand_waiting`` is O(1).
        self._bank_demand = [0] * (n_ranks * self.banks_per_rank)
        #: Indexed per-bank scheduler state, per queue: per-(bank, row)
        #: deques of row hits (exactly pruned — a column access always
        #: dequeues its row deque's head) and the set of banks whose
        #: *open* row has queued hits (the FR candidate set).  The FCFS
        #: heads need no extra index: the queue list itself is in arrival
        #: order, so the first occurrence per bank is that bank's head.
        self._row_q_read: dict[tuple[int, int], deque] = {}
        self._row_q_write: dict[tuple[int, int], deque] = {}
        self._hit_read: set[int] = set()
        self._hit_write: set[int] = set()
        #: Monotonic arrival stamp; queue order == ascending ``seq``.
        self._seq = 0
        #: ``next_event`` memo: valid while ``_dirty`` is False and the
        #: cached cycle is still in the future.  Every mutation that can
        #: create an earlier event — command issue, enqueue, dequeue, or a
        #: refresh-engine state change — sets ``_dirty``.
        self._dirty = True
        self._next_event_cache = -1
        #: Mutation epoch: bumped by every state mutation (alongside
        #: ``_dirty``).  ``schedule`` snapshots it to prove a failing call
        #: was mutation-free before trusting its computed wake bound.
        self._epoch = 0
        #: ``schedule`` self-memo: the earliest cycle at which calling
        #: ``schedule`` could do anything (issue or mutate).  The system
        #: loop skips the call entirely while ``cycle < _progress_at``;
        #: every mutation resets it to 0 ("must run").  Exact-by-proof:
        #: only set when a call issued nothing and mutated nothing, from
        #: gates that are frozen until the next (memo-voiding) mutation.
        self._progress_at = 0
        #: Kill switch for A/B debugging: REPRO_NO_SCHED_MEMO=1 keeps
        #: ``_progress_at`` at 0 so schedule runs on every visited cycle.
        self._memo = os.environ.get("REPRO_NO_SCHED_MEMO") != "1"
        self.stats = ControllerStats()
        self.completions: list[tuple[int, Request]] = []
        #: Optional :class:`repro.sim.audit.CommandAuditor` observing the
        #: logical command stream (attach via ``CommandAuditor(mc)``).
        self.auditor = None
        #: Optional :class:`repro.obs.tracer.SimTracer` recording the
        #: deterministic cycle-stamped event stream (attach via
        #: ``SimTracer(mc)``); pure observation, like the auditor.
        self.tracer = None
        self.engine = engine
        engine.attach(self)

    # ------------------------------------------------------------------
    # State access helpers (also used by refresh engines)
    # ------------------------------------------------------------------
    def mark_dirty(self) -> None:
        """Invalidate the ``next_event`` memo and the schedule self-memo.

        Called by every command-issue primitive and by refresh engines
        whenever they mutate deadline-bearing state outside an issue (e.g.
        periodic request generation, PR-FIFO re-admission).  Also bumps
        the mutation epoch so an in-flight ``schedule`` call knows it may
        not record a wake bound."""
        self._dirty = True
        self._epoch += 1
        self._progress_at = 0

    def bank(self, rank: int, bank: int) -> _BankState:
        return self._bank_views[rank * self.banks_per_rank + bank]

    def _resync_act_floor(self, rank: int) -> None:
        """Recompute the derived ACT floor (tRRD_S + tFAW) for one rank."""
        ta = self._ta
        faw = ta.faw[rank]
        fg = faw[0] + self.tfaw_c if len(faw) >= 4 else 0
        any_gate = ta.next_act_any[rank]
        ta.act_floor[rank] = any_gate if any_gate > fg else fg

    def _group_gate_at(self, rank: int, bank_id: int) -> int:
        return self._ta.group_gate[
            rank * self.bankgroups_per_rank + bank_id // self.banks_per_bankgroup
        ]

    def first_open_bank(self, rank: int) -> int | None:
        b_open = self._ta.open_row
        base = rank * self.banks_per_rank
        for bank_id in range(self.banks_per_rank):
            if b_open[base + bank_id] >= 0:
                return bank_id
        return None

    def rank_available(self, rank: int, now: int) -> bool:
        return now >= self._ta.busy_until[rank]

    def faw_ok(self, rank: int, now: int) -> bool:
        faw = self._ta.faw[rank]
        return len(faw) < 4 or now - faw[0] >= self.tfaw_c

    def recent_acts(self, rank: int, now: int) -> int:
        """Activations to the rank inside the current tFAW window."""
        faw = self._ta.faw[rank]
        return sum(1 for t in faw if now - t < self.tfaw_c)

    def faw_ok_double(self, rank: int, now: int) -> bool:
        """Room for *two* activations in the four-activation window.

        A HiRA operation issues two ACTs within t1 + t2 (§5.2 counts both
        against tFAW), so replacing a demand ACT with a HiRA sequence is
        only legal when two window slots are free.  This also makes the
        Concurrent Refresh Finder naturally back off from refresh-access
        parallelization in activation-bound phases.
        """
        return self.recent_acts(rank, now) <= 2

    def faw_next(self, rank: int) -> int:
        faw = self._ta.faw[rank]
        return faw[0] + self.tfaw_c if len(faw) >= 4 else 0

    def trrd_ok(self, rank: int, bank_id: int, now: int) -> bool:
        """Whether an ACT to the bank respects tRRD_S (any bank) and
        tRRD_L (same bank group)."""
        ta = self._ta
        if now < ta.next_act_any[rank]:
            return False
        return now >= ta.group_gate[
            rank * self.bankgroups_per_rank + bank_id // self.banks_per_bankgroup
        ]

    def act_allowed_at(self, rank: int, bank_id: int) -> int:
        """Earliest cycle the bank's next ACT satisfies every rank gate.

        KEEP IN LOCKSTEP: this formula is hand-inlined in four hot scans
        — ``RefreshEngine._service_preventive`` /
        ``_preventive_deadline``, ``next_event``, the FCFS pass of
        ``_schedule_queues``, and the due-scan slow path of the HiRA
        engine's ``_deadline_wake`` (all marked "act_allowed_at,
        inlined").  A
        new ACT gate must be added to all of them or the event loop's
        wake times diverge from the issue-time legality checks.  The
        tFAW and tRRD_S terms are pre-folded into the maintained
        ``act_floor`` (see :class:`TimingArrays`); a gate that cannot
        fold into it must be added to every inline copy.  (tRTP feeds
        ``next_pre`` and the DDR5 REFsb busy window feeds ``next_act``
        directly at issue time, so both are already visible everywhere;
        the tRTW/tWTR turnaround is a *column* gate, carried by
        ``data_bus_free_at`` in the issue path and the queue wake
        candidates.)
        """
        ta = self._ta
        gate = ta.next_act[rank * self.banks_per_rank + bank_id]
        c = ta.act_floor[rank]
        if c > gate:
            gate = c
        c = ta.group_gate[
            rank * self.bankgroups_per_rank + bank_id // self.banks_per_bankgroup
        ]
        return c if c > gate else gate

    def _record_act(self, rank: int, bank_id: int, now: int) -> None:
        ta = self._ta
        faw = ta.faw[rank]
        faw.append(now)
        while len(faw) > 4:
            faw.popleft()
        any_gate = ta.next_act_any[rank]
        c = now + self.trrd_s_c
        if c > any_gate:
            any_gate = c
            ta.next_act_any[rank] = c
        gi = rank * self.bankgroups_per_rank + bank_id // self.banks_per_bankgroup
        c = now + self.trrd_l_c
        if c > ta.group_gate[gi]:
            ta.group_gate[gi] = c
        fg = faw[0] + self.tfaw_c if len(faw) >= 4 else 0
        ta.act_floor[rank] = any_gate if any_gate > fg else fg

    def act_pressure(self, rank: int, now: int) -> float:
        """Fraction of the rank's ACT-issue budget consumed recently.

        Counts activations inside the current tFAW window: 1.0 means the
        four-activation window is exhausted (every new ACT waits on tFAW),
        0.5 means half the budget is spoken for.  The Concurrent Refresh
        Finder uses this as its ACT-bandwidth pressure signal: above
        :attr:`HiraRefreshEngine.pressure_threshold` it prefers
        refresh-refresh pairs (two refreshes per bank-busy window) over
        interleaving refreshes with scarce demand activations.
        """
        return self.recent_acts(rank, now) / 4.0

    def data_bus_free_at(self, is_write: bool) -> int:
        """Earliest cycle a burst in the given direction may start.

        The channel data bus frees at ``data_bus_next``; a burst in the
        opposite direction to the previous one additionally waits out the
        bus turnaround (tRTW after a read, tWTR after a write).  With
        ``trtw = twtr = 0`` this is exactly ``data_bus_next``.
        """
        free = self.data_bus_next
        last_write = self._data_bus_last_write
        if last_write is not None and last_write != is_write:
            free += self.twtr_c if last_write else self.trtw_c
        return free

    def demand_waiting(self, rank: int, bank_id: int) -> bool:
        """Whether any queued demand request targets the bank.

        The Concurrent Refresh Finder uses this to decide if a bank's
        *time* is contended: pairing two refreshes into one bank-busy
        window only pays off when demand is waiting to use the bank.
        O(1): the per-bank counters are maintained at enqueue/dequeue."""
        return self._bank_demand[rank * self.banks_per_rank + bank_id] > 0

    # ------------------------------------------------------------------
    # Command issue primitives
    # ------------------------------------------------------------------
    def issue_pre(self, rank: int, bank_id: int, now: int) -> None:
        ta = self._ta
        g = rank * self.banks_per_rank + bank_id
        ta.open_row[g] = -1
        c = now + self.trp_c
        if c > ta.next_act[g]:
            ta.next_act[g] = c
        if c > ta.ref_ready[rank]:
            ta.ref_ready[rank] = c
        self._hit_read.discard(g)
        self._hit_write.discard(g)
        self.bus_next = now + 1
        self._dirty = True
        self._epoch += 1
        self._progress_at = 0
        self.stats.pres += 1
        if self.auditor is not None:
            self.auditor.on_pre(now, rank, bank_id)
        if self.tracer is not None:
            self.tracer.on_pre(now, rank, bank_id)

    def issue_act(self, rank: int, bank_id: int, row: int, now: int) -> None:
        ta = self._ta
        g = rank * self.banks_per_rank + bank_id
        ta.open_row[g] = row
        ta.next_rdwr[g] = now + self.trcd_c
        ta.next_pre[g] = now + self.tras_c
        ta.next_act[g] = now + self.trc_c
        key = (g, row)
        if key in self._row_q_read:
            self._hit_read.add(g)
        if key in self._row_q_write:
            self._hit_write.add(g)
        self._record_act(rank, bank_id, now)
        self.bus_next = now + 1
        self._dirty = True
        self._epoch += 1
        self._progress_at = 0
        self.stats.acts += 1
        self.stats.row_misses += 1
        if self.auditor is not None:
            self.auditor.on_act(now, rank, bank_id, row)
        if self.tracer is not None:
            self.tracer.on_act(now, rank, bank_id, row)

    def issue_hira_act(self, rank: int, bank_id: int, refresh_row: int, target_row: int, now: int) -> None:
        """ACT(refresh_row), PRE, ACT(target_row): refresh-access HiRA.

        The target row's activation effectively starts t1+t2 later; the
        refresh row's charge restoration overlaps it entirely (§3).  The
        sequence occupies the command bus for its full t1+t2 span.
        """
        ta = self._ta
        g = rank * self.banks_per_rank + bank_id
        eff = now + self.hira_gap_c
        ta.open_row[g] = target_row
        ta.next_rdwr[g] = eff + self.trcd_c
        ta.next_pre[g] = eff + self.tras_c
        ta.next_act[g] = eff + self.trc_c
        key = (g, target_row)
        if key in self._row_q_read:
            self._hit_read.add(g)
        if key in self._row_q_write:
            self._hit_write.add(g)
        self._record_act(rank, bank_id, now)
        self._record_act(rank, bank_id, eff)
        # Three commands (ACT, PRE, ACT) occupy three bus slots; the bus is
        # free between them for other banks.
        self.bus_next = now + 3
        self._dirty = True
        self._epoch += 1
        self._progress_at = 0
        self.stats.acts += 2
        self.stats.pres += 1
        self.stats.hira_access_parallelized += 1
        if self.auditor is not None:
            self.auditor.on_hira_op(now, rank, bank_id, refresh_row, target_row, eff)
        if self.tracer is not None:
            self.tracer.on_hira_op(now, rank, bank_id, refresh_row, target_row, eff)

    def issue_hira_refresh_pair(self, rank: int, bank_id: int, now: int) -> None:
        """Refresh two rows with one HiRA operation (refresh-refresh).

        Bank is busy for t1 + t2 + tRAS + tRP (38 + 14.25 ns at defaults);
        the closing PRE consumes a deferred bus slot.
        """
        ta = self._ta
        g = rank * self.banks_per_rank + bank_id
        close = now + self.hira_gap_c + self.tras_c
        ta.open_row[g] = -1
        ta.next_act[g] = close + self.trp_c
        ta.next_pre[g] = close
        c = close + self.trp_c
        if c > ta.ref_ready[rank]:
            ta.ref_ready[rank] = c
        self._hit_read.discard(g)
        self._hit_write.discard(g)
        self._record_act(rank, bank_id, now)
        self._record_act(rank, bank_id, now + self.hira_gap_c)
        self.bus_next = now + 3
        self._dirty = True
        self._epoch += 1
        self._progress_at = 0
        heapq.heappush(self._scheduled_closes, (close, rank, bank_id))
        self.stats.acts += 2
        self.stats.pres += 2
        self.stats.hira_refresh_parallelized += 1
        if self.auditor is not None:
            self.auditor.on_hira_op(
                now, rank, bank_id, None, None, now + self.hira_gap_c, close=close
            )
        if self.tracer is not None:
            self.tracer.on_hira_op(
                now, rank, bank_id, None, None, now + self.hira_gap_c, close=close
            )

    def issue_solo_refresh(self, rank: int, bank_id: int, now: int) -> None:
        """Refresh one row with a nominal ACT + PRE pair."""
        ta = self._ta
        g = rank * self.banks_per_rank + bank_id
        close = now + self.tras_c
        ta.open_row[g] = -1
        ta.next_act[g] = close + self.trp_c
        ta.next_pre[g] = close
        c = close + self.trp_c
        if c > ta.ref_ready[rank]:
            ta.ref_ready[rank] = c
        self._hit_read.discard(g)
        self._hit_write.discard(g)
        self._record_act(rank, bank_id, now)
        self.bus_next = now + 1
        self._dirty = True
        self._epoch += 1
        self._progress_at = 0
        heapq.heappush(self._scheduled_closes, (close, rank, bank_id))
        self.stats.acts += 1
        self.stats.pres += 1
        self.stats.solo_refreshes += 1
        if self.auditor is not None:
            self.auditor.on_solo_refresh(now, rank, bank_id, close)
        if self.tracer is not None:
            self.tracer.on_solo_refresh(now, rank, bank_id, close)

    def issue_ref(self, rank_id: int, now: int) -> None:
        """Rank-level REF: the whole rank is unavailable for tRFC."""
        ta = self._ta
        ta.busy_until[rank_id] = now + self.trfc_c
        # A same-bank refresh inside the rank-wide busy window would hit
        # a rank whose refresh control is already occupied.
        c = now + self.trfc_c
        if c > ta.next_refsb[rank_id]:
            ta.next_refsb[rank_id] = c
        b_open = ta.open_row
        b_act = ta.next_act
        hit_read = self._hit_read
        hit_write = self._hit_write
        base = rank_id * self.banks_per_rank
        for g in range(base, base + self.banks_per_rank):
            b_open[g] = -1
            if c > b_act[g]:
                b_act[g] = c
            hit_read.discard(g)
            hit_write.discard(g)
        self.bus_next = now + 1
        self._dirty = True
        self._epoch += 1
        self._progress_at = 0
        self.stats.refs += 1
        if self.auditor is not None:
            self.auditor.on_ref(now, rank_id)
        if self.tracer is not None:
            self.tracer.on_ref(now, rank_id)

    def issue_refsb(self, rank_id: int, bank_id: int, now: int) -> None:
        """DDR5-style same-bank refresh: one bank unavailable for tRFC_sb.

        The target bank must already be precharged (tRP elapsed since its
        PRE, which ``next_act`` carries); its sibling banks keep serving
        demand — the scheduling advantage of REFsb over the rank-wide REF
        of :meth:`issue_ref`.
        """
        ta = self._ta
        g = rank_id * self.banks_per_rank + bank_id
        ta.open_row[g] = -1
        c = now + self.trfc_sb_c
        if c > ta.next_act[g]:
            ta.next_act[g] = c
        ta.next_refsb[rank_id] = now + self.trefsb_gap_c
        # A rank-level REF during the REFsb would hit a busy bank.
        if c > ta.ref_ready[rank_id]:
            ta.ref_ready[rank_id] = c
        self._hit_read.discard(g)
        self._hit_write.discard(g)
        self.bus_next = now + 1
        self._dirty = True
        self._epoch += 1
        self._progress_at = 0
        self.stats.refs_sb += 1
        if self.auditor is not None:
            self.auditor.on_refsb(now, rank_id, bank_id)
        if self.tracer is not None:
            self.tracer.on_refsb(now, rank_id, bank_id)

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def enqueue(self, req: Request) -> bool:
        is_write = req.is_write
        queue = self.write_q if is_write else self.read_q
        depth = (
            self.config.write_queue_depth if is_write else self.config.read_queue_depth
        )
        if len(queue) >= depth:
            self.stats.queue_full_rejections += 1
            return False
        queue.append(req)
        addr = req.addr
        rank = addr.rank
        g = rank * self.banks_per_rank + addr.bank
        req.gbank = g
        req.rank = rank
        req.row = addr.row
        req.ggroup = rank * self.bankgroups_per_rank + addr.bank // self.banks_per_bankgroup
        req.seq = self._seq
        self._seq += 1
        self._bank_demand[g] += 1
        if is_write:
            row_q = self._row_q_write
            hit = self._hit_write
        else:
            row_q = self._row_q_read
            hit = self._hit_read
        key = (g, addr.row)
        dq = row_q.get(key)
        if dq is None:
            row_q[key] = deque((req,))
        else:
            dq.append(req)
        if self._ta.open_row[g] == addr.row:
            hit.add(g)
        self._dirty = True
        self._epoch += 1
        self._progress_at = 0
        return True

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _active_queues(self) -> tuple[list[Request], list[Request]]:
        if self._draining_writes:
            if len(self.write_q) <= self.config.write_drain_low:
                self._draining_writes = False
                # A priority flip is a scheduling-state mutation: bump the
                # epoch so this call records no wake bound (the flip, and
                # any flip-every-call hysteresis parity, replays exactly).
                self._epoch += 1
        elif len(self.write_q) >= self.config.write_drain_high or (
            not self.read_q and self.write_q
        ):
            self._draining_writes = True
            self._epoch += 1
        if self._draining_writes:
            return self._writes_first
        return self._reads_first

    def schedule(self, now: int) -> bool:
        """Try to issue one command at cycle ``now``; True if issued.

        Self-memoizing: when a call issues nothing and — proven by an
        unchanged ``_epoch`` — mutates nothing, every sub-pass's exact
        gate fold is recorded in ``_progress_at`` and the system loop
        skips the controller until that cycle.  The bound is never late:
        all gates are frozen until the next mutation, and every mutation
        path resets ``_progress_at`` to 0.  ``next_event`` is untouched
        by this memo (its candidate set stays value-identical; it is the
        *visit* schedule, this is the *per-visit* work filter).
        """
        if now < self.bus_next:
            if self.tracer is not None:
                self.tracer.on_stall(now)
            elif self._memo:
                # Nothing below the bus gate can run or mutate: this call
                # is provably a no-op until the command bus frees.
                self._progress_at = self.bus_next
            return False
        epoch = self._epoch
        wake = _FAR_FUTURE
        # Deferred closing PREs of refresh operations take precedence.
        # The heap keeps the earliest close on top; a due close consumes
        # one bus slot (its bank state was already applied at issue time).
        closes = self._scheduled_closes
        if closes:
            c = closes[0][0]
            if c <= now:
                heapq.heappop(closes)
                self.bus_next = now + 1
                self._dirty = True
                self._epoch = epoch + 1
                self._progress_at = 0
                return True
            wake = c
        if self.engine.urgent(now):
            return True
        queue_a, queue_b = self._active_queues()
        w = self._schedule_queues(queue_a, queue_b, now)
        if w == _ISSUED:
            return True
        if w < wake:
            wake = w
        if self.tracer is not None:
            self.tracer.on_stall(now)
        elif self._memo and self._epoch == epoch:
            # Issued nothing, mutated nothing: the folded queue gates plus
            # the engine's never-late wake bound hold until the next
            # mutation (which resets _progress_at).  A bound <= now just
            # means no skipping.
            w = self.engine.urgent_wake(now)
            if w < wake:
                wake = w
            self._progress_at = wake
        return False

    def _schedule_queues(self, queue_a: list[Request], queue_b: list[Request], now: int) -> int:
        """Try to issue from the two demand queues, in priority order.

        Returns ``_ISSUED`` on success; otherwise a never-late wake bound
        over both queues (the earliest cycle any of their banks could
        issue, valid while the enclosing ``schedule`` call stays
        mutation-free — see its memo contract).  Bit-identical to the
        former O(queue) scans: queue order equals ascending ``seq``, so
        "first matching queue entry" and "minimum head ``seq`` over
        candidate banks" select the same request, and the per-bank gate
        folds replicate the per-entry checks exactly.  One call handles
        both queues so the array locals are hoisted once per schedule
        visit instead of once per queue.
        """
        wake = _FAR_FUTURE
        ta = self._ta
        b_open = ta.open_row
        r_busy = ta.busy_until
        banks_per_rank = self.banks_per_rank
        blocked = self.blocked_ranks
        bblocked = self.blocked_banks
        b_rdwr = ta.next_rdwr
        b_act = ta.next_act
        b_pre = ta.next_pre
        act_floor = ta.act_floor
        group_gate = ta.group_gate
        data_bus_next = self.data_bus_next
        last_write = self._data_bus_last_write
        write_q = self.write_q
        for queue in (queue_a, queue_b):
            if not queue:
                continue
            is_write_q = queue is write_q
            if is_write_q:
                hit = self._hit_write
                row_q = self._row_q_write
                burst_offset = self.tcwl_c
            else:
                hit = self._hit_read
                row_q = self._row_q_read
                burst_offset = self.tcl_c
            # First pass: FR — oldest ready row hit, via the hit-bank
            # index.  Queues are homogeneous (reads or writes), so the
            # data-bus gate is one value for every candidate: bursts start
            # a fixed tCL (reads) / tCWL (writes) after the column command
            # — plus the tRTW/tWTR turnaround when the bus last carried
            # the opposite direction.  Each hit bank's row deque head is
            # its oldest hit, so the min-seq head over ready banks is the
            # queue-order pick.
            if hit:
                # data_bus_free_at, inlined (hot scan).
                free = data_bus_next
                if last_write is not None and last_write != is_write_q:
                    free += self.twtr_c if last_write else self.trtw_c
                dbus_gate = free - burst_offset
                best = None
                best_seq = _FAR_FUTURE
                for g in hit:
                    rank = g // banks_per_rank
                    if rank in blocked:
                        continue
                    if bblocked and (rank, g - rank * banks_per_rank) in bblocked:
                        continue
                    gate = dbus_gate
                    c = b_rdwr[g]
                    if c > gate:
                        gate = c
                    c = r_busy[rank]
                    if c > gate:
                        gate = c
                    if gate > now:
                        if gate < wake:
                            wake = gate
                        continue
                    req = row_q[(g, b_open[g])][0]
                    if req.seq < best_seq:
                        best_seq = req.seq
                        best = req
                if best is not None:
                    self._issue_column_access(queue, best, now)
                    return _ISSUED
            # Second pass: FCFS — advance the oldest request's bank state.
            # Only the oldest request per bank can act: whether an ACT or
            # a PRE is legal depends on bank/rank state alone, and a
            # younger conflicting request is always shadowed by the older
            # one (the open-row keep-alive check spans the whole queue).
            # The queue list is in arrival order and holds exactly the
            # live requests, so its first occurrence per bank IS that
            # bank's FCFS head — the scan visits heads in ascending seq
            # and exits at the first issuable one, touching no more
            # entries than it must.
            seen = set()
            seen_add = seen.add
            for head in queue:
                g = head.gbank
                if g in seen:
                    continue
                seen_add(g)
                rank = head.rank
                if rank in blocked:
                    continue
                if bblocked and (rank, g - rank * banks_per_rank) in bblocked:
                    continue
                busy = r_busy[rank]
                orow = b_open[g]
                if orow < 0:
                    # act_allowed_at, inlined (hot scan), plus the
                    # rank-busy gate; <= now replicates
                    # next_act/faw_ok/trrd_ok/busy.
                    gate = b_act[g]
                    c = act_floor[rank]
                    if c > gate:
                        gate = c
                    c = group_gate[head.ggroup]
                    if c > gate:
                        gate = c
                    if busy > gate:
                        gate = busy
                    if gate <= now:
                        bank_id = g - rank * banks_per_rank
                        row = head.row
                        refresh_row = None
                        if self.faw_ok_double(rank, now):
                            refresh_row = self.engine.on_act(head, now)
                        if refresh_row is not None:
                            self.issue_hira_act(rank, bank_id, refresh_row, row, now)
                        else:
                            self.issue_act(rank, bank_id, row, now)
                        self.engine.on_demand_act(head, now)
                        return _ISSUED
                    if gate < wake:
                        wake = gate
                elif orow != head.row:
                    if g in hit:
                        # Keep-alive: a queued hit still targets the open
                        # row; its wake is covered by the FR pass above.
                        continue
                    gate = b_pre[g]
                    if busy > gate:
                        gate = busy
                    if gate <= now:
                        self.issue_pre(rank, g - rank * banks_per_rank, now)
                        return _ISSUED
                    if gate < wake:
                        wake = gate
                # else: the head targets the open row — the FR pass owns
                # it (and folds its wake through the hit set).
        return wake

    def _row_hit_waiting(self, queue: list[Request], rank: int, bank_id: int, row: int) -> bool:
        """Whether a queued request still targets the open row (keep it open).

        O(1): per-(bank, row) hit deques are maintained at
        enqueue/dequeue for each queue."""
        row_q = self._row_q_read if queue is self.read_q else self._row_q_write
        return (rank * self.banks_per_rank + bank_id, row) in row_q

    def _issue_column_access(self, queue: list[Request], req: Request, now: int) -> None:
        queue.remove(req)  # identity comparison: Request has eq=False
        g = req.gbank
        rank = req.rank
        bank_id = g - rank * self.banks_per_rank
        self._bank_demand[g] -= 1
        if req.is_write:
            row_q = self._row_q_write
            hit = self._hit_write
        else:
            row_q = self._row_q_read
            hit = self._hit_read
        key = (g, req.row)
        dq = row_q[key]
        dq.popleft()  # req: FR always picks a row deque's head (oldest hit)
        if not dq:
            del row_q[key]
            hit.discard(g)
        ta = self._ta
        self.bus_next = now + 1
        self._dirty = True
        self._epoch += 1
        self._progress_at = 0
        if req.is_write:
            # Write recovery: the bank may not precharge until tWR after
            # the write data burst (WR + CWL + BL) has fully landed in the
            # sense amplifiers.  The burst occupies the channel's data bus
            # for tBL starting exactly tCWL after the command (the issue
            # gate in `_schedule_queues` guarantees the bus is free then).
            burst_end = now + self.tcwl_c + self.tbl_c
            self.data_bus_next = burst_end
            self._data_bus_last_write = True
            c = burst_end + self.twr_c
            if c > ta.next_pre[g]:
                ta.next_pre[g] = c
            req.complete_cycle = burst_end
            self.stats.writes_served += 1
        else:
            # The read burst starts exactly tCL after the command (the
            # data-bus issue gate guarantees the bus is free by then) and
            # the bank may not precharge until tRTP after the command.
            start = now + self.tcl_c
            self.data_bus_next = start + self.tbl_c
            self._data_bus_last_write = False
            c = now + self.trtp_c
            if c > ta.next_pre[g]:
                ta.next_pre[g] = c
            req.complete_cycle = start + self.tbl_c
            self.stats.reads_served += 1
            self.completions.append((req.complete_cycle, req))
        self.stats.row_hits += 1
        if self.auditor is not None:
            self.auditor.on_col(now, rank, bank_id, req.is_write)
        if self.tracer is not None:
            self.tracer.on_col(now, rank, bank_id, req.is_write)

    # ------------------------------------------------------------------
    def next_event(self, now: int) -> int:
        """Earliest future cycle at which scheduling could make progress.

        Memoized: the candidate set only changes through mutations that
        set ``_dirty`` (command issues, queue changes, engine updates), and
        every candidate only grows over time otherwise — so while the
        controller is clean, a cached value still in the future is exactly
        what a recomputation would return.

        The candidate set is deliberately VALUE-IDENTICAL to the original
        per-entry scan (first 8 requests per queue): it is the system
        loop's visit schedule, and any visit-set change reorders
        deep-queue scheduling.  Only the constants moved — the arrays are
        flat and the tFAW/tRRD_S fold is the maintained ``act_floor``.
        """
        if not self._dirty and self._next_event_cache > now:
            return self._next_event_cache
        c = self.bus_next
        if c == now + 1:
            # A command just issued: every candidate is > now, and the
            # command-bus gate now+1 is the smallest value any candidate
            # can take — the fold below provably returns now+1, so skip
            # it (engine deadline folds included; deferring the engine's
            # generation advance is state-identical because it is a pure
            # function of (heap, now) and every consumer advances first).
            # During saturated bursts this collapses the per-issue
            # recompute to O(1); the full fold runs at the burst's end.
            self._next_event_cache = c
            self._dirty = False
            return c
        best = _FAR_FUTURE
        have_future = False
        if c > now:
            best = c
            have_future = True
        closes = self._scheduled_closes
        if closes:
            c = closes[0][0]
            if c > now:
                have_future = True
                if c < best:
                    best = c
        c = self.engine.next_deadline(now)
        if c > now:
            have_future = True
            if c < best:
                best = c
        ta = self._ta
        b_open = ta.open_row
        b_act = ta.next_act
        b_pre = ta.next_pre
        b_rdwr = ta.next_rdwr
        r_busy = ta.busy_until
        act_floor = ta.act_floor
        group_gate = ta.group_gate
        for queue in (self.read_q, self.write_q):
            n = len(queue)
            if n > 8:
                n = 8
            if n:
                # Data-bus gate: a column access can issue no earlier than
                # tCL/tCWL before the bus frees for this queue's direction
                # (including any tRTW/tWTR turnaround); wake then.
                c = self.data_bus_free_at(queue is self.write_q) - (
                    self.tcwl_c if queue is self.write_q else self.tcl_c
                )
                if c > now:
                    have_future = True
                    if c < best:
                        best = c
            for qi in range(n):
                req = queue[qi]
                g = req.gbank
                c = r_busy[req.rank]
                if c > now:
                    have_future = True
                    if c < best:
                        best = c
                orow = b_open[g]
                if orow == req.row:
                    c = b_rdwr[g]
                elif orow < 0:
                    # act_allowed_at, inlined (hot scan).
                    c = b_act[g]
                    gate = act_floor[req.rank]
                    if gate > c:
                        c = gate
                    gate = group_gate[req.ggroup]
                    if gate > c:
                        c = gate
                else:
                    c = b_pre[g]
                if c > now:
                    have_future = True
                    if c < best:
                        best = c
        result = best if have_future else now + 1
        self._next_event_cache = result
        self._dirty = False
        return result

    @property
    def pending_requests(self) -> int:
        return len(self.read_q) + len(self.write_q)
