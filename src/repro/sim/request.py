"""Memory requests flowing from cores to the memory controller."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import Address


@dataclass(slots=True, eq=False)
class Request:
    """One cache-line-sized memory request.

    ``addr`` is the decoded DRAM coordinate; ``line`` the flat cache-line
    address it came from.  ``complete_cycle`` is filled by the controller
    when the data burst finishes (reads) or the write is accepted.
    ``rob`` carries the issuing core's ROB entry for reads (slotted — a
    request is a hot object, allocated once per LLC miss).

    ``seq``/``gbank``/``rank``/``row``/``ggroup`` are the controller's
    scheduler index fields, assigned at enqueue: the monotonic arrival
    stamp (queue order == ascending ``seq``) plus the request's decoded
    coordinates flattened into the controller's array indexes (global
    bank id, rank, row, global bank-group id) so the hot scans never
    chase ``addr`` attributes.  ``eq=False`` keeps identity comparison
    (and hashing): two distinct requests are never interchangeable, and
    ``list.remove`` must drop the exact object.
    """

    addr: Address
    line: int
    is_write: bool
    core_id: int
    arrival_cycle: int
    complete_cycle: int | None = None
    rob: object = None
    seq: int = 0
    gbank: int = 0
    rank: int = 0
    row: int = 0
    ggroup: int = 0

    @property
    def bank_key(self) -> tuple[int, int, int]:
        return self.addr.bank_key()

    @property
    def completed(self) -> bool:
        return self.complete_cycle is not None
