"""Memory requests flowing from cores to the memory controller."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import Address


@dataclass(slots=True)
class Request:
    """One cache-line-sized memory request.

    ``addr`` is the decoded DRAM coordinate; ``line`` the flat cache-line
    address it came from.  ``complete_cycle`` is filled by the controller
    when the data burst finishes (reads) or the write is accepted.
    ``rob`` carries the issuing core's ROB entry for reads (slotted — a
    request is a hot object, allocated once per LLC miss).
    """

    addr: Address
    line: int
    is_write: bool
    core_id: int
    arrival_cycle: int
    complete_cycle: int | None = None
    rob: object = None

    @property
    def bank_key(self) -> tuple[int, int, int]:
        return self.addr.bank_key()

    @property
    def completed(self) -> bool:
        return self.complete_cycle is not None
