"""Cycle-level DRAM system simulator (the paper's Ramulator substrate, §7).

Event-driven, in integer memory-bus clock cycles (DDR4-2400: 0.833 ns).
Cores are trace-driven with a finite instruction window; the memory
controller implements FR-FCFS scheduling with the open-row policy, MOP
address mapping, DDR4 bank/rank timing (tRC/tRCD/tRP/tRAS/tFAW/tRFC/tREFI),
a shared per-channel command bus, and pluggable refresh engines (baseline
rank-level REF vs. HiRA-MC).
"""

from repro.sim.addressing import AddressMapper
from repro.sim.config import SystemConfig
from repro.sim.controller import BaselineRefreshEngine, MemoryController, NoRefreshEngine
from repro.sim.core import CoreModel
from repro.sim.metrics import weighted_speedup
from repro.sim.oracle import RuleTable, TimingOracle, oracle_for_config
from repro.sim.request import Request
from repro.sim.system import SimResult, System
from repro.sim.trace import TraceProfile, TraceGenerator

__all__ = [
    "AddressMapper",
    "BaselineRefreshEngine",
    "CoreModel",
    "MemoryController",
    "NoRefreshEngine",
    "Request",
    "RuleTable",
    "SimResult",
    "System",
    "SystemConfig",
    "TimingOracle",
    "TraceGenerator",
    "TraceProfile",
    "oracle_for_config",
    "weighted_speedup",
]
