"""Synthetic SPEC-like memory trace generation.

The paper drives Ramulator with SPEC CPU2006 traces; we have no SPEC
binaries offline, so traces are synthesized from per-benchmark profiles
(misses-per-kilo-instruction, row-buffer locality, read fraction, working
set).  Traces are *LLC-miss streams* — the standard Ramulator methodology —
expressed as (instruction gap, flat line address, is_write) triples, and
are mapped onto DRAM coordinates by the system's
:class:`~repro.sim.addressing.AddressMapper`, so the same trace exercises
more parallelism on wider channel/rank configurations exactly as real
addresses would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TraceProfile:
    """Statistical profile of one benchmark's LLC-miss stream.

    Attributes:
        name: Benchmark label (e.g. ``"mcf-like"``).
        mpki: LLC misses per kilo-instruction (memory intensity).
        row_locality: Probability the next miss stays in the current row
            region (drives row-buffer hit rate under MOP/open-row).
        read_fraction: Fraction of misses that are reads.
        working_set_rows: Distinct row-sized regions the stream touches.
        stream_stride: Lines advanced within a region on a locality hit.
    """

    name: str
    mpki: float
    row_locality: float
    read_fraction: float = 0.67
    working_set_rows: int = 4096
    stream_stride: int = 1

    def __post_init__(self) -> None:
        if self.mpki <= 0:
            raise ValueError("mpki must be positive")
        if not 0.0 <= self.row_locality < 1.0:
            raise ValueError("row_locality must be in [0, 1)")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.working_set_rows < 1:
            raise ValueError("working_set_rows must be >= 1")

    @property
    def mean_gap(self) -> float:
        """Average non-memory instructions between misses."""
        return 1000.0 / self.mpki


class TraceGenerator:
    """Lazily generates one core's (gap, line, is_write) stream.

    The address model keeps a current row region per stream; with
    probability ``row_locality`` the next access strides within the region
    (a row hit under the open-row policy), otherwise it jumps to a random
    region of the working set.  Gaps are geometrically distributed around
    the profile's mean, giving bursty, realistic arrival patterns.
    """

    def __init__(self, profile: TraceProfile, lines_per_row: int, seed: int):
        self.profile = profile
        self.lines_per_row = lines_per_row
        self.rng = np.random.default_rng(seed)
        # Spread each core's working set across the row space via a seeded
        # base offset so multiprogrammed cores do not collide on rows.
        self._region_base = int(self.rng.integers(0, 1 << 20)) * profile.working_set_rows
        self._region = self._pick_region()
        self._col = int(self.rng.integers(0, lines_per_row))
        self._batch: list[tuple[int, int, bool]] = []
        self._batch_pos = 0

    def _pick_region(self) -> int:
        return self._region_base + int(self.rng.integers(0, self.profile.working_set_rows))

    def _refill(self, n: int = 512) -> None:
        """Vectorized batch generation (bit-identical to the scalar walk).

        The sequential recurrence — a row-region carried across local
        steps, a column striding from the last jump — resolves in closed
        form per element: everything between two region jumps is the jump
        anchor's (region, column) plus ``stride`` per local step since.
        """
        p = self.profile
        gaps = self.rng.geometric(min(1.0, 1.0 / max(p.mean_gap, 1.0)), size=n)
        local = self.rng.random(n) < p.row_locality
        is_read = self.rng.random(n) < p.read_fraction
        region_jumps = self.rng.integers(0, p.working_set_rows, size=n)
        cols = self.rng.integers(0, self.lines_per_row, size=n)
        lines_per_row = self.lines_per_row

        index = np.arange(n)
        # Most recent non-local step at or before each position (-1: none
        # yet in this batch — the carried-in region/column anchor applies).
        anchor = np.maximum.accumulate(np.where(local, -1, index))
        anchored = anchor >= 0
        safe_anchor = np.where(anchored, anchor, 0)
        regions = np.where(
            anchored, self._region_base + region_jumps[safe_anchor], self._region
        )
        # Column at the anchor, advanced by one stride per local step since
        # (steps counts from the carry-in access for pre-anchor runs).
        base_col = np.where(anchored, cols[safe_anchor], self._col)
        steps = index - anchor
        col_seq = (base_col + p.stream_stride * steps) % lines_per_row
        lines = regions * lines_per_row + col_seq

        self._region = int(regions[-1])
        self._col = int(col_seq[-1])
        self._batch = list(zip(gaps.tolist(), lines.tolist(), (~is_read).tolist()))
        self._batch_pos = 0

    def next_access(self) -> tuple[int, int, bool]:
        """The next (instruction gap, line address, is_write) triple."""
        if self._batch_pos >= len(self._batch):
            self._refill()
        item = self._batch[self._batch_pos]
        self._batch_pos += 1
        return item
