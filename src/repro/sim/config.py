"""System configuration for the cycle-level simulator (paper Table 3)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.dram.geometry import Geometry, geometry_for_capacity
from repro.dram.timing import DDR4_2400, TimingParams, timing_for_capacity


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a simulated system.

    Defaults follow Table 3: 8 cores at 3.2 GHz, 4-wide, 128-entry window;
    one channel, one rank, 16 banks, 64K rows/bank (8 Gbit chips); FR-FCFS
    with open-row policy and MOP mapping; 64-entry read/write queues.

    ``refresh_mode`` selects the refresh engine: ``"none"`` (the ideal
    No-Refresh system), ``"baseline"`` (rank-level REF every tREFI),
    ``"elastic"`` (REF deferred into idle time within DDR4's 8-REF
    postponement budget — the strongest scheduling-only baseline, §13), or
    ``"hira"`` (HiRA-MC).  ``tref_slack_acts`` is the N of HiRA-N
    (tRefSlack = N × tRC).  ``para_nrh`` enables PARA preventive refreshes
    configured for that RowHammer threshold (None disables PARA).

    ``refresh_granularity`` selects the refresh command granularity:
    ``"all_bank"`` (DDR4-style rank-level REF, tRFC blocks the whole rank)
    or ``"same_bank"`` (DDR5-style REFsb: each bank is refreshed
    individually every tREFI, blocking only that bank for tRFC_sb while
    its siblings keep serving demand).  It is orthogonal to
    ``refresh_mode``: baseline issues REFsb on a fixed per-bank cadence,
    elastic postpones per-bank REFsb into idle time within the same
    8-command budget, and HiRA's periodic stream becomes deadline-slacked
    REFsb commands that the scheduler overlaps with demand to *other
    banks* (preventive refreshes stay row-granular HiRA operations).
    """

    capacity_gbit: float = 8.0
    channels: int = 1
    ranks_per_channel: int = 1
    geometry: Geometry = None  # type: ignore[assignment]  # derived in __post_init__
    timing: TimingParams = None  # type: ignore[assignment]

    cores: int = 8
    cpu_ghz: float = 3.2
    issue_width: int = 4
    instr_window: int = 128
    mshr_per_core: int = 16

    read_queue_depth: int = 64
    write_queue_depth: int = 64
    write_drain_high: int = 48
    write_drain_low: int = 16

    refresh_mode: str = "baseline"
    refresh_granularity: str = "all_bank"
    tref_slack_acts: int = 2
    stagger_bank_refresh: bool = True
    #: Preventive-refresh mechanism: "para" (probabilistic [84]) or
    #: "graphene" (counter-based Misra–Gries tracking [135]); §5.1.2.
    defense: str = "para"
    para_nrh: float | None = None
    para_pth_override: float | None = None
    para_seed: int = 1234

    #: HiRA-MC policy ablations (§5.1.3): disable one parallelization class.
    disable_access_parallelization: bool = False
    disable_refresh_parallelization: bool = False

    #: Fraction of a bank's rows HiRA can pair with a given row (§4.2).
    hira_coverage: float = 0.32

    #: ACT-bandwidth pressure (fraction of the tFAW budget recently used,
    #: see ``MemoryController.act_pressure``) above which the Concurrent
    #: Refresh Finder prefers refresh-refresh pairs over refresh-demand
    #: interleaving.  Pressure quantizes to {0, 0.25, 0.5, 0.75, 1.0} and
    #: a two-ACT pair is only tFAW-legal at pressure <= 0.5, so the useful
    #: range is (0, 0.5]; values above 0.5 disable eager pairing and leave
    #: only the riding-deferral side of the policy.
    hira_pressure_threshold: float = 0.5
    #: Allow a due refresh to pull the bank's next periodic request forward
    #: so it can always form a refresh-refresh pair under ACT pressure.
    hira_eager_pairing: bool = True

    def __post_init__(self) -> None:
        if self.refresh_mode not in ("none", "baseline", "elastic", "hira"):
            raise ValueError(f"unknown refresh_mode {self.refresh_mode!r}")
        if self.refresh_granularity not in ("all_bank", "same_bank"):
            raise ValueError(
                f"unknown refresh_granularity {self.refresh_granularity!r}"
            )
        if self.defense not in ("para", "graphene"):
            raise ValueError(f"unknown defense {self.defense!r}")
        if self.geometry is None:
            geom = geometry_for_capacity(
                self.capacity_gbit,
                channels=self.channels,
                ranks_per_channel=self.ranks_per_channel,
            )
            object.__setattr__(self, "geometry", geom)
        if self.timing is None:
            object.__setattr__(self, "timing", timing_for_capacity(self.capacity_gbit))

    # ------------------------------------------------------------------
    # Derived cycle-domain quantities (memory bus clock)
    # ------------------------------------------------------------------
    @property
    def tck_ps(self) -> int:
        return self.timing.tck

    def cycles(self, ps: int) -> int:
        return self.timing.to_cycles(ps)

    @property
    def instr_per_mc_cycle(self) -> float:
        """Peak instructions retired per memory-bus cycle."""
        cpu_cycles_per_mc = (self.cpu_ghz * 1e9) * (self.tck_ps * 1e-12)
        return self.issue_width * cpu_cycles_per_mc

    @property
    def tref_slack_ps(self) -> int:
        return self.tref_slack_acts * self.timing.trc

    @property
    def rows_per_bank(self) -> int:
        return self.geometry.rows_per_bank

    @property
    def per_bank_refresh_interval_cycles(self) -> float:
        """How often one bank must refresh one row (tREFW / rows_per_bank)."""
        return self.timing.trefw / self.rows_per_bank / self.tck_ps

    def variant(self, **overrides) -> "SystemConfig":
        """A modified copy; geometry/timing re-derive unless overridden."""
        if "geometry" not in overrides and any(
            k in overrides for k in ("capacity_gbit", "channels", "ranks_per_channel")
        ):
            overrides.setdefault("geometry", None)
        if "timing" not in overrides and "capacity_gbit" in overrides:
            overrides.setdefault("timing", None)
        return replace(self, **overrides)
