"""Performance metrics: weighted speedup and friends (§7).

The paper reports system performance as weighted speedup [31, 156]:
``WS = Σ_i IPC_shared_i / IPC_alone_i``.  All of the paper's figures plot
weighted speedup *normalized* to a reference configuration, so the alone
IPCs act as fixed per-core weights that cancel qualitatively in the ratios.
``alone_ipc_estimate`` supplies those weights analytically from the trace
profile (peak-width execution with an idealized memory latency); callers
that want exact alone IPCs can run single-core simulations instead and pass
them in.
"""

from __future__ import annotations

from typing import Sequence


def alone_ipc_estimate(
    mpki: float,
    instr_per_mc_cycle: float,
    idle_mem_latency_cycles: float = 40.0,
    effective_mlp: float = 4.0,
) -> float:
    """Analytic alone-run IPC (instructions per MC cycle) for a profile.

    Per 1000 instructions: frontend time ``1000 / instr_per_mc_cycle``
    plus ``mpki`` misses each costing ``idle_mem_latency / effective_mlp``
    exposed cycles.
    """
    if instr_per_mc_cycle <= 0:
        raise ValueError("instr_per_mc_cycle must be positive")
    frontend = 1000.0 / instr_per_mc_cycle
    memory = mpki * idle_mem_latency_cycles / max(effective_mlp, 1.0)
    return 1000.0 / (frontend + memory)


def weighted_speedup(shared_ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> float:
    """``Σ IPC_shared / IPC_alone`` over the cores of one workload."""
    if len(shared_ipcs) != len(alone_ipcs):
        raise ValueError("shared and alone IPC lists must align")
    if not shared_ipcs:
        raise ValueError("need at least one core")
    total = 0.0
    for shared, alone in zip(shared_ipcs, alone_ipcs):
        if alone <= 0:
            raise ValueError("alone IPC must be positive")
        total += shared / alone
    return total


def harmonic_speedup(shared_ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> float:
    """Harmonic mean of per-core speedups (fairness-oriented companion)."""
    if len(shared_ipcs) != len(alone_ipcs) or not shared_ipcs:
        raise ValueError("shared and alone IPC lists must align and be non-empty")
    denom = 0.0
    for shared, alone in zip(shared_ipcs, alone_ipcs):
        if shared <= 0:
            return 0.0
        denom += alone / shared
    return len(shared_ipcs) / denom


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (used to aggregate normalized speedups)."""
    if not values:
        raise ValueError("need at least one value")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geomean requires positive values")
        product *= v
    return product ** (1.0 / len(values))
