"""MOP (Minimalist Open-Page) address mapping [68].

The paper's simulated memory controller uses MOP mapping (Table 3): small
blocks of consecutive cache lines stay in the same row for spatial locality,
while successive blocks interleave across channels, then ranks, then bank
groups, then banks — maximizing parallelism for streaming accesses without
sacrificing the open-row policy's hit rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import Address, Geometry


@dataclass(frozen=True)
class AddressMapper:
    """Decodes flat cache-line addresses into DRAM coordinates.

    Field order from the least-significant side:
    ``[mop-block column | channel | rank | bankgroup | bank | column-high | row]``.
    """

    geometry: Geometry
    mop_lines: int = 4

    def __post_init__(self) -> None:
        if self.mop_lines < 1 or self.geometry.columns_per_row % self.mop_lines:
            raise ValueError("mop_lines must divide columns_per_row")
        # Per-line decode memo: traces revisit lines (row-buffer locality)
        # and Address is frozen, so decoded objects are safely shared.
        # Bound: one entry per distinct line the workload touches.  Set
        # via object.__setattr__ because the mapper itself is frozen.
        object.__setattr__(self, "_decode_cache", {})

    @property
    def lines_per_row(self) -> int:
        return self.geometry.columns_per_row

    def decode(self, line: int) -> Address:
        """Map a flat cache-line address to (channel, rank, bank, row, col)."""
        addr = self._decode_cache.get(line)
        if addr is not None:
            return addr
        if line < 0:
            raise ValueError("line address must be non-negative")
        geom = self.geometry
        remaining, col_low = divmod(line, self.mop_lines)
        remaining, channel = divmod(remaining, geom.channels)
        remaining, rank = divmod(remaining, geom.ranks_per_channel)
        remaining, bankgroup = divmod(remaining, geom.bankgroups_per_rank)
        remaining, bank_in_group = divmod(remaining, geom.banks_per_bankgroup)
        remaining, col_high = divmod(remaining, geom.columns_per_row // self.mop_lines)
        row = remaining % geom.rows_per_bank
        bank = bankgroup * geom.banks_per_bankgroup + bank_in_group
        col = col_high * self.mop_lines + col_low
        addr = Address(channel=channel, rank=rank, bank=bank, row=row, col=col)
        self._decode_cache[line] = addr
        return addr

    def encode(self, addr: Address) -> int:
        """Inverse of :meth:`decode` (bijective within one row wrap)."""
        geom = self.geometry
        col_high, col_low = divmod(addr.col, self.mop_lines)
        bankgroup, bank_in_group = divmod(addr.bank, geom.banks_per_bankgroup)
        value = addr.row
        value = value * (geom.columns_per_row // self.mop_lines) + col_high
        value = value * geom.banks_per_bankgroup + bank_in_group
        value = value * geom.bankgroups_per_rank + bankgroup
        value = value * geom.ranks_per_channel + addr.rank
        value = value * geom.channels + addr.channel
        value = value * self.mop_lines + col_low
        return value
