"""Trace-driven core model with a finite instruction window.

Each core retires non-memory instructions at full width, issues LLC-miss
requests from its trace, and can run ahead of an outstanding read by at
most ``instr_window`` instructions (a standard Ramulator-class core).
Writes leave through a write buffer and do not block the window.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.sim.trace import TraceGenerator


@dataclass(slots=True)
class RobEntry:
    """One outstanding read in the core's window."""

    instr_index: int
    complete_cycle: int | None = None


class CoreModel:
    """One simulated core.

    The system loop polls :meth:`ready_cycle`, peeks the pending access via
    :meth:`peek_pending`, and consumes it with :meth:`take_request` once the
    target controller accepted it.  The controller completes reads through
    :meth:`on_read_complete` with the :class:`RobEntry` handed out at issue.

    ``ready_cycle`` is a pure function of core state (clamped to ``now``):
    it only changes when :meth:`take_request` or :meth:`on_read_complete`
    mutate the core, which is what lets the system loop cache each core's
    wake time between those events.
    """

    __slots__ = (
        "core_id",
        "trace",
        "instr_budget",
        "warmup_instr",
        "instr_per_cycle",
        "instr_window",
        "mshr",
        "_measure_start_cycle",
        "_issue_clock",
        "_instr_issued",
        "_outstanding",
        "_pending",
        "reads_issued",
        "writes_issued",
        "finish_cycle",
    )

    def __init__(
        self,
        core_id: int,
        trace: TraceGenerator,
        instr_budget: int,
        instr_per_mc_cycle: float,
        instr_window: int = 128,
        mshr: int = 16,
        warmup_instr: int = 0,
    ):
        if instr_budget < 1:
            raise ValueError("instruction budget must be positive")
        if warmup_instr < 0:
            raise ValueError("warmup must be non-negative")
        self.core_id = core_id
        self.trace = trace
        #: Measured instructions; the core additionally executes
        #: ``warmup_instr`` instructions first (paper: 100M warmup before
        #: 200M measured, §7), which do not count toward IPC.
        self.instr_budget = instr_budget
        self.warmup_instr = warmup_instr
        self.instr_per_cycle = instr_per_mc_cycle
        self.instr_window = instr_window
        self.mshr = mshr
        self._measure_start_cycle: int | None = 0 if warmup_instr == 0 else None

        self._issue_clock = 0.0  # fractional MC cycles of frontend progress
        self._instr_issued = 0
        self._outstanding: deque[RobEntry] = deque()
        self._pending: tuple[int, int, bool] | None = None
        self.reads_issued = 0
        self.writes_issued = 0
        self.finish_cycle: int | None = None

    # ------------------------------------------------------------------
    @property
    def _total_budget(self) -> int:
        return self.instr_budget + self.warmup_instr

    def _load_pending(self) -> None:
        if self._pending is None and self._instr_issued < self._total_budget:
            self._pending = self.trace.next_access()

    def _drain_completed(self) -> None:
        while self._outstanding and self._outstanding[0].complete_cycle is not None:
            self._outstanding.popleft()

    def ready_cycle(self, now: int) -> int | None:
        """Earliest cycle the core's next access can issue.

        ``None`` means the core either finished its budget or is blocked on
        an in-flight read whose completion time is not yet known; in both
        cases the system loop revisits it after the next completion event.
        """
        self._load_pending()
        if self._pending is None:
            self._maybe_finish(now)
            return None
        self._drain_completed()
        gap, __, is_write = self._pending
        frontend = self._issue_clock + gap / self.instr_per_cycle
        earliest = math.ceil(frontend)
        if self._outstanding:
            oldest = self._outstanding[0]
            window_block = (
                self._instr_issued + gap - oldest.instr_index >= self.instr_window
            )
            mshr_block = not is_write and len(self._outstanding) >= self.mshr
            if window_block or mshr_block:
                if oldest.complete_cycle is None:
                    return None
                earliest = max(earliest, oldest.complete_cycle)
        return max(earliest, now)

    def peek_pending(self) -> tuple[int, bool]:
        """(line, is_write) of the pending access, without consuming it."""
        if self._pending is None:
            raise RuntimeError("no pending access")
        __, line, is_write = self._pending
        return line, is_write

    def take_request(self, now: int) -> RobEntry | None:
        """Consume the pending access at cycle ``now``.

        Returns the ROB entry to complete later for reads, None for writes.
        """
        if self._pending is None:
            raise RuntimeError("no pending access to take")
        gap, __, is_write = self._pending
        self._pending = None
        self._instr_issued += gap + 1
        self._issue_clock = max(self._issue_clock + gap / self.instr_per_cycle, float(now))
        if self._measure_start_cycle is None and self._instr_issued >= self.warmup_instr:
            self._measure_start_cycle = now
        entry = None
        if is_write:
            self.writes_issued += 1
        else:
            self.reads_issued += 1
            entry = RobEntry(instr_index=self._instr_issued)
            self._outstanding.append(entry)
        self._maybe_finish(now)
        return entry

    def on_read_complete(self, entry: RobEntry, now: int) -> None:
        """Mark a read returned; the window drains up to the next gap."""
        entry.complete_cycle = now
        self._drain_completed()
        self._maybe_finish(now)

    def _maybe_finish(self, now: int) -> None:
        if (
            self.finish_cycle is None
            and self._instr_issued >= self._total_budget
            and all(e.complete_cycle is not None for e in self._outstanding)
        ):
            last_complete = max(
                (e.complete_cycle for e in self._outstanding if e.complete_cycle),
                default=0,
            )
            self.finish_cycle = max(now, math.ceil(self._issue_clock), last_complete)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.finish_cycle is not None

    @property
    def instructions_retired(self) -> int:
        """Measured (post-warmup) instructions retired."""
        return max(0, min(self._instr_issued, self._total_budget) - self.warmup_instr)

    def ipc(self, total_cycles: int | None = None) -> float:
        """Instructions per MC cycle over the measured window."""
        end = self.finish_cycle if total_cycles is None else total_cycles
        if end is None:
            return 0.0
        start = self._measure_start_cycle or 0
        cycles = end - start
        if cycles <= 0:
            return 0.0
        return self.instructions_retired / cycles
