"""The full simulated system: cores + address mapper + memory controllers.

The run loop is event-driven: it only visits cycles at which a core can
issue, a controller can schedule, or a read completes, skipping idle time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.rowhammer.para import Para
from repro.sim.addressing import AddressMapper
from repro.sim.config import SystemConfig
from repro.sim.controller import (
    BaselineRefreshEngine,
    ControllerStats,
    MemoryController,
    NoRefreshEngine,
    RefreshEngine,
)
from repro.sim.core import CoreModel
from repro.sim.metrics import alone_ipc_estimate, weighted_speedup
from repro.sim.request import Request
from repro.sim.trace import TraceGenerator, TraceProfile

_FAR_FUTURE = 1 << 60


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    cycles: int
    ipcs: list[float]
    alone_ipcs: list[float]
    controller_stats: list[ControllerStats]
    instructions: list[int]
    reads: int
    writes: int
    finished: bool
    meta: dict = field(default_factory=dict)

    @property
    def weighted_speedup(self) -> float:
        return weighted_speedup(self.ipcs, self.alone_ipcs)

    def stat_total(self, name: str) -> int:
        return sum(getattr(s, name) for s in self.controller_stats)


def _build_engine(config: SystemConfig) -> RefreshEngine:
    if config.refresh_mode == "none":
        return NoRefreshEngine()
    if config.refresh_mode == "baseline":
        return BaselineRefreshEngine()
    if config.refresh_mode == "elastic":
        from repro.sim.elastic import ElasticRefreshEngine

        return ElasticRefreshEngine()
    from repro.core.engine import HiraRefreshEngine  # local import: avoids cycle

    return HiraRefreshEngine(
        tref_slack_acts=config.tref_slack_acts,
        coverage=config.hira_coverage,
        stagger=config.stagger_bank_refresh,
        disable_access_parallelization=config.disable_access_parallelization,
        disable_refresh_parallelization=config.disable_refresh_parallelization,
        pressure_threshold=config.hira_pressure_threshold,
        eager_pairing=config.hira_eager_pairing,
    )


def _build_para(config: SystemConfig, channel: int):
    if config.para_nrh is None and config.para_pth_override is None:
        return None
    if config.defense == "graphene":
        from repro.rowhammer.defense import GrapheneDefense

        slack = config.tref_slack_acts if config.refresh_mode == "hira" else 0
        return GrapheneDefense(nrh=config.para_nrh, tref_slack_acts=slack)
    if config.para_pth_override is not None:
        import numpy as np

        return Para(
            pth=config.para_pth_override,
            rng=np.random.default_rng(config.para_seed + channel),
        )
    slack_ns = (
        config.tref_slack_ps / 1_000.0 if config.refresh_mode == "hira" else 0.0
    )
    para = Para.configured_for(
        nrh=config.para_nrh,
        tref_slack_ns=slack_ns,
        seed=config.para_seed + channel,
        trc_ns=config.timing.trc / 1_000.0,
    )
    return para


class System:
    """Builds and runs one simulated configuration."""

    def __init__(
        self,
        config: SystemConfig,
        profiles: list[TraceProfile],
        seed: int = 1,
        instr_budget: int = 100_000,
        warmup_instr: int | None = None,
    ):
        if len(profiles) != config.cores:
            raise ValueError(
                f"need {config.cores} trace profiles, got {len(profiles)}"
            )
        self.config = config
        self.profiles = profiles
        self.mapper = AddressMapper(config.geometry)
        self.instr_budget = instr_budget
        # Paper methodology (§7): warm up for half the measured budget so
        # both refresh schedules and queues reach steady state before IPC
        # measurement begins.
        if warmup_instr is None:
            warmup_instr = instr_budget // 2
        self.warmup_instr = warmup_instr
        self.cores = [
            CoreModel(
                core_id=i,
                trace=TraceGenerator(
                    profile, self.mapper.lines_per_row, seed=seed * 1_000 + i
                ),
                instr_budget=instr_budget,
                instr_per_mc_cycle=config.instr_per_mc_cycle,
                instr_window=config.instr_window,
                mshr=config.mshr_per_core,
                warmup_instr=warmup_instr,
            )
            for i, profile in enumerate(profiles)
        ]
        self.controllers = []
        for channel in range(config.channels):
            engine = _build_engine(config)
            para = _build_para(config, channel)
            mc = MemoryController(channel, config, engine)
            engine.para = para  # engines check this attribute on demand ACTs
            self.controllers.append(mc)

    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 10_000_000) -> SimResult:
        """Run until every core finishes its budget or ``max_cycles``.

        The loop is incremental: per-core wake times are cached and
        invalidated only by the events that can change them (a read
        completion, an issued request), and each controller memoizes its
        ``next_event`` behind a dirty flag set by the command-issue
        primitives — so a visited cycle costs work proportional to what
        actually happened, not to the number of cores and queued requests.
        """
        cores = self.cores
        mcs = self.controllers
        heappush = heapq.heappush
        heappop = heapq.heappop
        decode = self.mapper.decode
        completion_heap: list[tuple[int, int, int]] = []  # (cycle, seq, core)
        entry_by_seq: dict[int, object] = {}
        seq = 0
        retry_at = [0] * len(cores)
        #: Next cycle each core must be polled; _FAR_FUTURE while the core
        #: is done or blocked on a completion whose time is unknown (the
        #: completion delivery resets it).  ``ready_cycle`` is a pure
        #: function of core state, so a cached wake stays valid until one
        #: of those events mutates the core.
        core_wake = [0] * len(cores)
        n_undone = len(cores)
        #: Controllers whose next_event must be consulted in the jump.
        active_mcs = [
            mc for mc in mcs if mc.config.refresh_mode != "none"
        ]
        passive_mcs = [mc for mc in mcs if mc.config.refresh_mode == "none"]
        cycle = 0
        #: Cached min(core_wake): step 2 is skipped while every core
        #: sleeps and no completion was delivered this cycle (every
        #: per-core iteration would hit the ``core_wake`` guard).
        min_core_wake = 0

        while cycle < max_cycles:
            # 1. Deliver due read completions to cores.
            delivered = False
            while completion_heap and completion_heap[0][0] <= cycle:
                done_cycle, done_seq, core_id = heappop(completion_heap)
                cores[core_id].on_read_complete(entry_by_seq.pop(done_seq), done_cycle)
                core_wake[core_id] = cycle
                delivered = True

            # 2. Let cores issue requests into controller queues.
            if delivered or min_core_wake <= cycle:
                for cid, core in enumerate(cores):
                    if core_wake[cid] > cycle:
                        continue
                    if core.done:
                        core_wake[cid] = _FAR_FUTURE
                        n_undone -= 1
                        continue
                    while True:
                        ready = core.ready_cycle(cycle)
                        if ready is None:
                            core_wake[cid] = _FAR_FUTURE
                            if core.done:
                                n_undone -= 1
                            break
                        retry = retry_at[cid]
                        if ready > cycle or retry > cycle:
                            core_wake[cid] = ready if ready > retry else retry
                            break
                        line, is_write = core.peek_pending()
                        addr = decode(line)
                        req = Request(
                            addr=addr,
                            line=line,
                            is_write=is_write,
                            core_id=cid,
                            arrival_cycle=cycle,
                        )
                        if not mcs[addr.channel].enqueue(req):
                            retry_at[cid] = cycle + 4
                            core_wake[cid] = cycle + 4
                            break
                        entry = core.take_request(cycle)
                        if entry is not None:
                            req.rob = entry
                min_core_wake = min(core_wake)

            # 3. Each channel issues at most one command this cycle.
            # (schedule must run on every visited cycle: ``next_event``
            # only inspects each queue's head window, so an issue slot for
            # a deeper request can open at a cycle another controller or
            # core made interesting.  The one exception is proven by the
            # controller itself: ``_progress_at`` is set only when a call
            # issued nothing and mutated nothing, from exact gate folds
            # that hold until the next memo-voiding mutation — so skipping
            # until then is behavior-identical.  Completions only appear
            # when schedule runs, so the drain is skipped with it.)
            for mc in mcs:
                if mc._progress_at > cycle:
                    continue
                mc.schedule(cycle)
                completions = mc.completions
                if completions:
                    for done_cycle, req in completions:
                        heappush(completion_heap, (done_cycle, seq, req.core_id))
                        entry_by_seq[seq] = req.rob
                        seq += 1
                    completions.clear()

            if not n_undone:
                break

            # 4. Jump to the next interesting cycle.
            nxt = _FAR_FUTURE
            if completion_heap:
                nxt = completion_heap[0][0]
            if min_core_wake < nxt:
                nxt = min_core_wake
            for mc in active_mcs:
                # Inlined next_event memo guard: on clean visits the call
                # (and its preamble) is pure overhead at loop frequency.
                ne = mc._next_event_cache
                if mc._dirty or ne <= cycle:
                    ne = mc.next_event(cycle)
                if ne < nxt:
                    nxt = ne
            for mc in passive_mcs:
                if mc.read_q or mc.write_q:
                    ne = mc._next_event_cache
                    if mc._dirty or ne <= cycle:
                        ne = mc.next_event(cycle)
                    if ne < nxt:
                        nxt = ne
            if nxt <= cycle:
                nxt = cycle + 1
            if nxt == _FAR_FUTURE:
                break
            cycle = nxt

        finished = all(core.done for core in cores)
        end_cycle = max(
            (core.finish_cycle or cycle for core in cores), default=cycle
        )
        for mc in mcs:
            if mc.tracer is not None:
                mc.tracer.on_run_end(end_cycle)
        ipcs = [core.ipc(core.finish_cycle) if core.done else core.ipc(end_cycle) for core in cores]
        alone = [
            alone_ipc_estimate(p.mpki, self.config.instr_per_mc_cycle)
            for p in self.profiles
        ]
        return SimResult(
            cycles=end_cycle,
            ipcs=ipcs,
            alone_ipcs=alone,
            controller_stats=[mc.stats for mc in mcs],
            instructions=[core.instructions_retired for core in cores],
            reads=sum(core.reads_issued for core in cores),
            writes=sum(core.writes_issued for core in cores),
            finished=finished,
            meta={"refresh_mode": self.config.refresh_mode},
        )
