"""The full simulated system: cores + address mapper + memory controllers.

The run loop is event-driven: it only visits cycles at which a core can
issue, a controller can schedule, or a read completes, skipping idle time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.rowhammer.para import Para
from repro.sim.addressing import AddressMapper
from repro.sim.config import SystemConfig
from repro.sim.controller import (
    BaselineRefreshEngine,
    ControllerStats,
    MemoryController,
    NoRefreshEngine,
    RefreshEngine,
)
from repro.sim.core import CoreModel
from repro.sim.metrics import alone_ipc_estimate, weighted_speedup
from repro.sim.request import Request
from repro.sim.trace import TraceGenerator, TraceProfile

_FAR_FUTURE = 1 << 60


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    cycles: int
    ipcs: list[float]
    alone_ipcs: list[float]
    controller_stats: list[ControllerStats]
    instructions: list[int]
    reads: int
    writes: int
    finished: bool
    meta: dict = field(default_factory=dict)

    @property
    def weighted_speedup(self) -> float:
        return weighted_speedup(self.ipcs, self.alone_ipcs)

    def stat_total(self, name: str) -> int:
        return sum(getattr(s, name) for s in self.controller_stats)


def _build_engine(config: SystemConfig) -> RefreshEngine:
    if config.refresh_mode == "none":
        return NoRefreshEngine()
    if config.refresh_mode == "baseline":
        return BaselineRefreshEngine()
    if config.refresh_mode == "elastic":
        from repro.sim.elastic import ElasticRefreshEngine

        return ElasticRefreshEngine()
    from repro.core.engine import HiraRefreshEngine  # local import: avoids cycle

    return HiraRefreshEngine(
        tref_slack_acts=config.tref_slack_acts,
        coverage=config.hira_coverage,
        stagger=config.stagger_bank_refresh,
        disable_access_parallelization=config.disable_access_parallelization,
        disable_refresh_parallelization=config.disable_refresh_parallelization,
        pressure_threshold=config.hira_pressure_threshold,
        eager_pairing=config.hira_eager_pairing,
    )


def _build_para(config: SystemConfig, channel: int):
    if config.para_nrh is None and config.para_pth_override is None:
        return None
    if config.defense == "graphene":
        from repro.rowhammer.defense import GrapheneDefense

        slack = config.tref_slack_acts if config.refresh_mode == "hira" else 0
        return GrapheneDefense(nrh=config.para_nrh, tref_slack_acts=slack)
    if config.para_pth_override is not None:
        import numpy as np

        return Para(
            pth=config.para_pth_override,
            rng=np.random.default_rng(config.para_seed + channel),
        )
    slack_ns = (
        config.tref_slack_ps / 1_000.0 if config.refresh_mode == "hira" else 0.0
    )
    para = Para.configured_for(
        nrh=config.para_nrh,
        tref_slack_ns=slack_ns,
        seed=config.para_seed + channel,
        trc_ns=config.timing.trc / 1_000.0,
    )
    return para


class System:
    """Builds and runs one simulated configuration."""

    def __init__(
        self,
        config: SystemConfig,
        profiles: list[TraceProfile],
        seed: int = 1,
        instr_budget: int = 100_000,
        warmup_instr: int | None = None,
    ):
        if len(profiles) != config.cores:
            raise ValueError(
                f"need {config.cores} trace profiles, got {len(profiles)}"
            )
        self.config = config
        self.profiles = profiles
        self.mapper = AddressMapper(config.geometry)
        self.instr_budget = instr_budget
        # Paper methodology (§7): warm up for half the measured budget so
        # both refresh schedules and queues reach steady state before IPC
        # measurement begins.
        if warmup_instr is None:
            warmup_instr = instr_budget // 2
        self.warmup_instr = warmup_instr
        self.cores = [
            CoreModel(
                core_id=i,
                trace=TraceGenerator(
                    profile, self.mapper.lines_per_row, seed=seed * 1_000 + i
                ),
                instr_budget=instr_budget,
                instr_per_mc_cycle=config.instr_per_mc_cycle,
                instr_window=config.instr_window,
                mshr=config.mshr_per_core,
                warmup_instr=warmup_instr,
            )
            for i, profile in enumerate(profiles)
        ]
        self.controllers = []
        for channel in range(config.channels):
            engine = _build_engine(config)
            para = _build_para(config, channel)
            mc = MemoryController(channel, config, engine)
            engine.para = para  # engines check this attribute on demand ACTs
            self.controllers.append(mc)

    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 10_000_000) -> SimResult:
        """Run until every core finishes its budget or ``max_cycles``."""
        cores = self.cores
        mcs = self.controllers
        completion_heap: list[tuple[int, int, int]] = []  # (cycle, seq, core)
        entry_by_seq: dict[int, object] = {}
        seq = 0
        retry_at = [0] * len(cores)
        cycle = 0

        while cycle < max_cycles:
            # 1. Deliver due read completions to cores.
            while completion_heap and completion_heap[0][0] <= cycle:
                done_cycle, done_seq, core_id = heapq.heappop(completion_heap)
                cores[core_id].on_read_complete(entry_by_seq.pop(done_seq), done_cycle)

            # 2. Let cores issue requests into controller queues.
            for core in cores:
                if core.done:
                    continue
                while True:
                    ready = core.ready_cycle(cycle)
                    if ready is None or ready > cycle or retry_at[core.core_id] > cycle:
                        break
                    line, is_write = core.peek_pending()
                    addr = self.mapper.decode(line)
                    req = Request(
                        addr=addr,
                        line=line,
                        is_write=is_write,
                        core_id=core.core_id,
                        arrival_cycle=cycle,
                    )
                    if not mcs[addr.channel].enqueue(req):
                        retry_at[core.core_id] = cycle + 4
                        break
                    entry = core.take_request(cycle)
                    if entry is not None:
                        req.meta["rob"] = entry

            # 3. Each channel issues at most one command this cycle.
            for mc in mcs:
                mc.schedule(cycle)
                for done_cycle, req in mc.completions:
                    heapq.heappush(completion_heap, (done_cycle, seq, req.core_id))
                    entry_by_seq[seq] = req.meta["rob"]
                    seq += 1
                mc.completions.clear()

            if all(core.done for core in cores):
                break

            # 4. Jump to the next interesting cycle.
            nxt = _FAR_FUTURE
            if completion_heap:
                nxt = min(nxt, completion_heap[0][0])
            for core in cores:
                if core.done:
                    continue
                ready = core.ready_cycle(cycle)
                if ready is not None:
                    nxt = min(nxt, max(ready, retry_at[core.core_id]))
            for mc in mcs:
                if mc.pending_requests or mc.config.refresh_mode != "none":
                    nxt = min(nxt, mc.next_event(cycle))
            if nxt <= cycle:
                nxt = cycle + 1
            if nxt == _FAR_FUTURE:
                break
            cycle = nxt

        finished = all(core.done for core in cores)
        end_cycle = max(
            (core.finish_cycle or cycle for core in cores), default=cycle
        )
        ipcs = [core.ipc(core.finish_cycle) if core.done else core.ipc(end_cycle) for core in cores]
        alone = [
            alone_ipc_estimate(p.mpki, self.config.instr_per_mc_cycle)
            for p in self.profiles
        ]
        return SimResult(
            cycles=end_cycle,
            ipcs=ipcs,
            alone_ipcs=alone,
            controller_stats=[mc.stats for mc in mcs],
            instructions=[core.instructions_retired for core in cores],
            reads=sum(core.reads_issued for core in cores),
            writes=sum(core.writes_issued for core in cores),
            finished=finished,
            meta={"refresh_mode": self.config.refresh_mode},
        )
