"""Second-opinion timing oracle: a declarative rule-table checker.

The controller (:mod:`repro.sim.controller`) and the auditor
(:mod:`repro.sim.audit`) grew out of one codebase, so a shared
misconception — a wrong formula, a missing interlock — passes both
silently.  This module is the independent second opinion: it compiles
:class:`repro.dram.timing.TimingParams` into an explicit, serialisable
table of declarative rules and replays a recorded command stream against
that table.  It shares **no scheduling code** with the controller or the
auditor; the only common ground is the log format (``cycle``, ``kind``,
``rank``, ``bank``, ``row``, ``tag`` per command) and the ps→cycle
conversion that defines the cycle domain itself.

The idiom is ported from the antmicro ``lpddr4-dram-controller`` UVM
testbench's ``TimingChecker``: a timing constraint is *data* — a
``(prev command, current command, scope, min delay)`` tuple — and the
checker is one generic loop that, for every incoming command, looks up
the most recent previous command of the rule's kind within the rule's
scope and compares the gap against the tabled delay.  For reference
(the band0 file set carrying that testbench is not vendored into this
checkout), the LPDDR4-2400 values it programs into its table are:
tRP = 18 ns, tRCD = 18 ns, tRAS = 42 ns, tRC = 60 ns, tWR = 18 ns,
tWTR = 10 ns, tRRD = 10 ns, tFAW = 40 ns, tRFCab = 280 ns (8 Gbit),
tREFI = 3.904 µs, tCCD = 8 tCK, tZQCS = 90 ns.  This module generates
the analogous DDR4/DDR5 table from ``TimingParams`` instead of
hard-coding any standard's numbers.

Rule classes
============

- :class:`PairRule` — ``(prev, curr, scope, min_delay)``: the current
  command must trail the most recent ``prev`` in the same scope by at
  least ``min_delay`` cycles.  Scopes: ``same-bank``,
  ``same-bank-group``, ``same-rank``.  Busy windows (tRFC after REF,
  tRFC_sb after REFsb) are pair rules too: one entry per command kind
  that the window blocks — including the REF↔REFsb interlocks.
- :class:`BusRule` — data-bus occupancy and turnaround, measured between
  *burst starts* (command cycle + tCL for reads, + tCWL for writes).
  Scope ``same-channel-bus`` spaces same-direction bursts by tBL; scope
  ``data-bus-direction`` adds the tRTW/tWTR turnaround on a direction
  change.
- :class:`WindowRule` — sliding-window count limits (tFAW: at most four
  ACTs per rank in any tFAW window).
- :class:`CadenceRule` — maximum gaps between refresh commands (the
  nine-tREFI postponement debit limit per rank for REF, per bank for
  REFsb) plus stream-endpoint starvation checks.
- State rules (fixed, parameterised by the table) — the target bank must
  be precharged before ACT/REFsb and every bank of the rank before REF,
  column accesses require an open row, and a ``hira2``-tagged ACT must
  trail its bank's previous ACT by *exactly* the engineered t1 + t2 gap
  (the paper's off-spec contribution; everything around it is nominal).

The table doubles as an interchange format: :meth:`RuleTable.to_json` /
:meth:`RuleTable.from_json` round-trip the whole rule set as plain JSON,
which is the natural import path for vendor or Ramulator-style device
configurations later (see ROADMAP "standards matrix").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

#: Maximum REF-to-REF gap DDR4 allows (8 postponed commands ⇒ 9 × tREFI).
#: Deliberately restated here rather than imported from the auditor.
REF_DEBIT_LIMIT = 9

SAME_BANK = "same-bank"
SAME_BANK_GROUP = "same-bank-group"
SAME_RANK = "same-rank"
SAME_CHANNEL_BUS = "same-channel-bus"
DATA_BUS_DIRECTION = "data-bus-direction"

_FAR_PAST = -1 << 60


@dataclass(frozen=True, slots=True)
class PairRule:
    """Min-delay rule between the most recent ``prev`` and a ``curr``."""

    name: str
    prev: str
    curr: str
    scope: str
    min_delay: int
    #: ``curr`` records with one of these tags are exempt (HiRA's
    #: engineered internals are checked by the hira-gap state rule).
    exempt_tags: tuple[str, ...] = ()
    note: str = ""

    @property
    def rule_id(self) -> str:
        return f"{self.name}({self.prev}->{self.curr})@{self.scope}"


@dataclass(frozen=True, slots=True)
class BusRule:
    """Min gap between consecutive data-bus burst *starts*."""

    name: str
    prev: str
    curr: str
    scope: str
    min_delay: int
    note: str = ""

    @property
    def rule_id(self) -> str:
        return f"{self.name}({self.prev}->{self.curr})@{self.scope}"


@dataclass(frozen=True, slots=True)
class WindowRule:
    """At most ``max_count`` commands of ``kind`` in any ``window``."""

    name: str
    kind: str
    scope: str
    max_count: int
    window: int
    note: str = ""

    @property
    def rule_id(self) -> str:
        return f"{self.name}({self.kind})@{self.scope}"


@dataclass(frozen=True, slots=True)
class CadenceRule:
    """Max gap between consecutive ``kind`` commands per scope key.

    With ``check_endpoints`` the stream bounds are audited too: the first
    command must arrive within ``max_gap`` of cycle 0, the last within
    ``max_gap`` of the stream end, and a scope key with no command at all
    is flagged once the stream outlives the limit.
    """

    name: str
    kind: str
    scope: str
    max_gap: int
    check_endpoints: bool = False
    note: str = ""

    @property
    def rule_id(self) -> str:
        return f"{self.name}({self.kind})@{self.scope}"


@dataclass(frozen=True, slots=True)
class Violation:
    """One broken rule: the rule id plus the two commands that broke it."""

    rule: str
    cycle: int
    message: str
    prev: object = None
    curr: object = None

    def __str__(self) -> str:
        return f"@{self.cycle}: {self.message}"


@dataclass
class RuleTable:
    """A complete, self-contained rule set for one device configuration."""

    pair_rules: tuple[PairRule, ...]
    bus_rules: tuple[BusRule, ...]
    window_rules: tuple[WindowRule, ...]
    cadence_rules: tuple[CadenceRule, ...]
    #: Scalars the state rules need: the exact HiRA gap and the RD/WR
    #: burst-start offsets (command → first data beat).
    hira_gap: int = 0
    tcl: int = 0
    tcwl: int = 0
    banks_per_bankgroup: int = 4
    banks_per_rank: int = 16
    n_ranks: int = 1
    refresh_mode: str = "baseline"
    refresh_granularity: str = "all_bank"

    def rule_ids(self) -> list[str]:
        ids = [r.rule_id for r in self.pair_rules]
        ids += [r.rule_id for r in self.bus_rules]
        ids += [r.rule_id for r in self.window_rules]
        ids += [r.rule_id for r in self.cadence_rules]
        return ids

    # -- interchange ----------------------------------------------------
    def to_json(self) -> dict:
        return {
            "version": 1,
            "hira_gap": self.hira_gap,
            "tcl": self.tcl,
            "tcwl": self.tcwl,
            "banks_per_bankgroup": self.banks_per_bankgroup,
            "banks_per_rank": self.banks_per_rank,
            "n_ranks": self.n_ranks,
            "refresh_mode": self.refresh_mode,
            "refresh_granularity": self.refresh_granularity,
            "pair_rules": [
                {
                    "name": r.name, "prev": r.prev, "curr": r.curr,
                    "scope": r.scope, "min_delay": r.min_delay,
                    "exempt_tags": list(r.exempt_tags), "note": r.note,
                }
                for r in self.pair_rules
            ],
            "bus_rules": [
                {
                    "name": r.name, "prev": r.prev, "curr": r.curr,
                    "scope": r.scope, "min_delay": r.min_delay, "note": r.note,
                }
                for r in self.bus_rules
            ],
            "window_rules": [
                {
                    "name": r.name, "kind": r.kind, "scope": r.scope,
                    "max_count": r.max_count, "window": r.window,
                    "note": r.note,
                }
                for r in self.window_rules
            ],
            "cadence_rules": [
                {
                    "name": r.name, "kind": r.kind, "scope": r.scope,
                    "max_gap": r.max_gap,
                    "check_endpoints": r.check_endpoints, "note": r.note,
                }
                for r in self.cadence_rules
            ],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RuleTable":
        return cls(
            pair_rules=tuple(
                PairRule(
                    r["name"], r["prev"], r["curr"], r["scope"],
                    r["min_delay"], tuple(r.get("exempt_tags", ())),
                    r.get("note", ""),
                )
                for r in payload["pair_rules"]
            ),
            bus_rules=tuple(
                BusRule(
                    r["name"], r["prev"], r["curr"], r["scope"],
                    r["min_delay"], r.get("note", ""),
                )
                for r in payload["bus_rules"]
            ),
            window_rules=tuple(
                WindowRule(
                    r["name"], r["kind"], r["scope"], r["max_count"],
                    r["window"], r.get("note", ""),
                )
                for r in payload["window_rules"]
            ),
            cadence_rules=tuple(
                CadenceRule(
                    r["name"], r["kind"], r["scope"], r["max_gap"],
                    r.get("check_endpoints", False), r.get("note", ""),
                )
                for r in payload["cadence_rules"]
            ),
            hira_gap=payload["hira_gap"],
            tcl=payload["tcl"],
            tcwl=payload["tcwl"],
            banks_per_bankgroup=payload["banks_per_bankgroup"],
            banks_per_rank=payload["banks_per_rank"],
            n_ranks=payload["n_ranks"],
            refresh_mode=payload["refresh_mode"],
            refresh_granularity=payload["refresh_granularity"],
        )


def build_rule_table_cycles(
    *,
    trcd: int,
    tras: int,
    trp: int,
    trc: int,
    trfc: int,
    trefi: int,
    tfaw: int,
    trrd_s: int,
    trrd_l: int,
    twr: int,
    trtp: int,
    tcl: int,
    tcwl: int,
    tbl: int,
    trtw: int,
    twtr: int,
    trfc_sb: int,
    trefsb_gap: int,
    hira_gap: int,
    banks_per_bankgroup: int,
    banks_per_rank: int,
    n_ranks: int,
    refresh_mode: str = "baseline",
    refresh_granularity: str = "all_bank",
) -> RuleTable:
    """Compile already-cycle-domain timing values into a rule table.

    This is the interchange entry point: exported audit logs carry their
    cycle-domain parameters, and vendor configs supplying cycle counts
    directly can build a table without a :class:`TimingParams`.
    """
    pair: list[PairRule] = [
        # Bank-local command spacing.  HiRA's engineered internals are
        # tag-exempt here and pinned exactly by the hira-gap state rule.
        PairRule("tRC", "ACT", "ACT", SAME_BANK, trc, ("hira2",)),
        PairRule("tRAS", "ACT", "PRE", SAME_BANK, tras, ("hira-pre",),
                 "HiRA's internal PRE interrupts restoration by design"),
        PairRule("tRP", "PRE", "ACT", SAME_BANK, trp, ("hira2",)),
        PairRule("tRCD", "ACT", "RD", SAME_BANK, trcd),
        PairRule("tRCD", "ACT", "WR", SAME_BANK, trcd),
        PairRule("tRTP", "RD", "PRE", SAME_BANK, trtp),
        PairRule("tWR", "WR", "PRE", SAME_BANK, tcwl + tbl + twr,
                 note="tCWL+tBL+tWR measured from the WR command"),
        # Rank-level ACT spacing (short cross-group, long same-group).
        PairRule("tRRD_S", "ACT", "ACT", SAME_RANK, trrd_s),
        PairRule("tRRD_L", "ACT", "ACT", SAME_BANK_GROUP, trrd_l),
        # All-bank REF busy window: nothing touches the rank for tRFC —
        # including a same-bank REFsb (the REF→REFsb interlock).
        *(
            PairRule("tRFC", "REF", kind, SAME_RANK, trfc,
                     note="rank busy until tRFC after REF")
            for kind in ("ACT", "PRE", "RD", "WR", "REF", "REFSB")
        ),
        # Same-bank REFsb busy window: the one target bank is blocked for
        # tRFC_sb; a rank-wide REF would hit the busy bank (the reverse
        # interlock), everything else on the rank keeps scheduling.
        *(
            PairRule("tRFC_sb", "REFSB", kind, SAME_BANK, trfc_sb,
                     note="bank busy until tRFC_sb after REFsb")
            for kind in ("ACT", "PRE", "RD", "WR", "REFSB")
        ),
        PairRule("tRFC_sb", "REFSB", "REF", SAME_RANK, trfc_sb,
                 note="no all-bank REF while a REFsb is in flight"),
        PairRule("tREFSB_GAP", "REFSB", "REFSB", SAME_RANK, trefsb_gap,
                 note="consecutive REFsb share rank refresh control"),
        # Refresh targets must be precharged for tRP first.
        PairRule("tRP", "PRE", "REF", SAME_RANK, trp,
                 note="every bank precharged tRP before REF"),
        PairRule("tRP", "PRE", "REFSB", SAME_BANK, trp,
                 note="target bank precharged tRP before REFsb"),
    ]
    bus: list[BusRule] = [
        BusRule("tBL", "RD", "RD", SAME_CHANNEL_BUS, tbl),
        BusRule("tBL", "WR", "WR", SAME_CHANNEL_BUS, tbl),
        BusRule("tBL+tRTW", "RD", "WR", DATA_BUS_DIRECTION, tbl + trtw,
                "read burst, turnaround, then the write burst"),
        BusRule("tBL+tWTR", "WR", "RD", DATA_BUS_DIRECTION, tbl + twtr,
                "write burst, turnaround, then the read burst"),
    ]
    window = [WindowRule("tFAW", "ACT", SAME_RANK, 4, tfaw)]
    cadence = [
        CadenceRule(
            "tREFI-cadence", "REF", SAME_RANK,
            REF_DEBIT_LIMIT * trefi + trfc,
            check_endpoints=(
                refresh_granularity == "all_bank"
                and refresh_mode in ("baseline", "elastic")
            ),
            note=f"{REF_DEBIT_LIMIT} x tREFI postponement debit limit",
        ),
        CadenceRule(
            "tREFI-cadence", "REFSB", SAME_BANK,
            REF_DEBIT_LIMIT * trefi + trfc_sb,
            check_endpoints=(
                refresh_granularity == "same_bank"
                and refresh_mode in ("baseline", "elastic", "hira")
            ),
            note="per-bank nine-tREFI limit in same-bank mode",
        ),
    ]
    return RuleTable(
        pair_rules=tuple(pair),
        bus_rules=tuple(bus),
        window_rules=tuple(window),
        cadence_rules=tuple(cadence),
        hira_gap=hira_gap,
        tcl=tcl,
        tcwl=tcwl,
        banks_per_bankgroup=banks_per_bankgroup,
        banks_per_rank=banks_per_rank,
        n_ranks=n_ranks,
        refresh_mode=refresh_mode,
        refresh_granularity=refresh_granularity,
    )


def build_rule_table(
    timing,
    *,
    banks_per_bankgroup: int,
    banks_per_rank: int,
    n_ranks: int,
    refresh_mode: str = "baseline",
    refresh_granularity: str = "all_bank",
) -> RuleTable:
    """Generate the rule table from a :class:`TimingParams`.

    Every delay is rounded up to whole bus cycles with the same
    ``to_cycles`` conversion that defines the simulator's cycle domain —
    the *only* piece of arithmetic the oracle shares with the rest of
    the stack.
    """
    c = timing.to_cycles
    return build_rule_table_cycles(
        trcd=c(timing.trcd),
        tras=c(timing.tras),
        trp=c(timing.trp),
        trc=c(timing.trc),
        trfc=c(timing.trfc),
        trefi=c(timing.trefi),
        tfaw=c(timing.tfaw),
        trrd_s=c(timing.trrd_s),
        trrd_l=c(timing.trrd_l),
        twr=c(timing.twr),
        trtp=c(timing.trtp),
        tcl=c(timing.tcl),
        tcwl=c(timing.tcwl),
        tbl=c(timing.tbl),
        trtw=c(timing.trtw) if timing.trtw else 0,
        twtr=c(timing.twtr) if timing.twtr else 0,
        trfc_sb=c(timing.trfc_sb),
        trefsb_gap=c(timing.trefsb_gap),
        hira_gap=c(timing.hira_t1 + timing.hira_t2),
        banks_per_bankgroup=banks_per_bankgroup,
        banks_per_rank=banks_per_rank,
        n_ranks=n_ranks,
        refresh_mode=refresh_mode,
        refresh_granularity=refresh_granularity,
    )


class TimingOracle:
    """Replays a command log against a :class:`RuleTable`.

    Records are duck-typed: anything with ``cycle``, ``kind``, ``rank``,
    ``bank``, ``row`` and ``tag`` attributes works (the auditor's
    :class:`repro.sim.audit.CommandRecord` does).
    """

    def __init__(self, table: RuleTable):
        self.table = table
        self._by_curr: dict[str, list[PairRule]] = {}
        for rule in table.pair_rules:
            self._by_curr.setdefault(rule.curr, []).append(rule)
        self._bus: dict[tuple[str, str], BusRule] = {
            (rule.prev, rule.curr): rule for rule in table.bus_rules
        }

    # ------------------------------------------------------------------
    def _scope_key(self, rec, scope: str):
        if scope == SAME_RANK:
            return rec.rank
        if rec.bank is None:
            return None
        if scope == SAME_BANK:
            return (rec.rank, rec.bank)
        return (rec.rank, rec.bank // self.table.banks_per_bankgroup)

    def check(self, records) -> list[Violation]:
        """Every rule violation in the stream, in replay order."""
        table = self.table
        violations: list[Violation] = []
        # Most recent record of each kind per (scope, key).
        last: dict[tuple, object] = {}
        open_banks: dict[tuple[int, int], bool] = {}
        faw: dict[int, deque] = {}
        bursts: list[tuple[int, object]] = []
        cadence_first: dict[tuple[str, object], int] = {}
        cadence_last: dict[tuple[str, object], int] = {}
        recs = sorted(records, key=lambda r: r.cycle)

        for rec in recs:
            kind = rec.kind
            # -- pair rules --------------------------------------------
            for rule in self._by_curr.get(kind, ()):
                if rec.tag in rule.exempt_tags:
                    continue
                key = self._scope_key(rec, rule.scope)
                if key is None:
                    continue
                prev = last.get((rule.prev, rule.scope, key))
                if prev is not None and rec.cycle - prev.cycle < rule.min_delay:
                    violations.append(Violation(
                        rule.rule_id, rec.cycle,
                        f"{rule.rule_id} violation: {kind} @{rec.cycle} only "
                        f"{rec.cycle - prev.cycle} < {rule.min_delay} cycles "
                        f"after {rule.prev} @{prev.cycle} "
                        f"(rank {rec.rank}, bank {rec.bank})",
                        prev, rec,
                    ))
            # -- state + window rules ----------------------------------
            if kind == "ACT":
                bank_key = (rec.rank, rec.bank)
                if rec.tag == "hira2":
                    prev_act = last.get(("ACT", SAME_BANK, bank_key))
                    gap = (
                        rec.cycle - prev_act.cycle
                        if prev_act is not None else None
                    )
                    if gap != table.hira_gap:
                        violations.append(Violation(
                            f"hira-gap(ACT)@{SAME_BANK}", rec.cycle,
                            f"hira-gap violation: engineered second ACT gap "
                            f"{gap} != t1+t2 ({table.hira_gap}) on bank "
                            f"{bank_key}",
                            prev_act, rec,
                        ))
                if open_banks.get(bank_key, False):
                    violations.append(Violation(
                        f"open-bank(ACT)@{SAME_BANK}", rec.cycle,
                        f"ACT @{rec.cycle} to already-open bank {bank_key}",
                        last.get(("ACT", SAME_BANK, bank_key)), rec,
                    ))
                open_banks[bank_key] = True
                window = faw.setdefault(rec.rank, deque())
                rule = table.window_rules[0]
                if (
                    len(window) >= rule.max_count
                    and rec.cycle - window[0] < rule.window
                ):
                    violations.append(Violation(
                        rule.rule_id, rec.cycle,
                        f"{rule.rule_id} violation: {rule.max_count + 1} ACTs "
                        f"within {rec.cycle - window[0]} < {rule.window} "
                        f"cycles on rank {rec.rank}",
                        None, rec,
                    ))
                window.append(rec.cycle)
                if len(window) > rule.max_count:
                    window.popleft()
            elif kind == "PRE":
                open_banks[(rec.rank, rec.bank)] = False
            elif kind in ("RD", "WR"):
                bank_key = (rec.rank, rec.bank)
                if not open_banks.get(bank_key, False):
                    violations.append(Violation(
                        f"closed-bank({kind})@{SAME_BANK}", rec.cycle,
                        f"{kind} @{rec.cycle} to bank {bank_key} with no "
                        f"open row",
                        None, rec,
                    ))
                offset = table.tcwl if kind == "WR" else table.tcl
                bursts.append((rec.cycle + offset, rec))
            elif kind == "REFSB":
                bank_key = (rec.rank, rec.bank)
                if open_banks.get(bank_key, False):
                    violations.append(Violation(
                        f"refsb-open-bank(REFSB)@{SAME_BANK}", rec.cycle,
                        f"REFSB @{rec.cycle} to open bank {bank_key}",
                        last.get(("ACT", SAME_BANK, bank_key)), rec,
                    ))
            elif kind == "REF":
                still_open = [
                    key for key, is_open in open_banks.items()
                    if key[0] == rec.rank and is_open
                ]
                if still_open:
                    violations.append(Violation(
                        f"ref-open-bank(REF)@{SAME_RANK}", rec.cycle,
                        f"REF @{rec.cycle} to rank {rec.rank} with open "
                        f"banks {still_open}",
                        None, rec,
                    ))
                for key in open_banks:
                    if key[0] == rec.rank:
                        open_banks[key] = False
            # -- cadence max-gap rules ---------------------------------
            for rule in table.cadence_rules:
                if rule.kind != kind:
                    continue
                key = self._scope_key(rec, rule.scope)
                ck = (rule.rule_id, key)
                prev_cycle = cadence_last.get(ck)
                if prev_cycle is not None and rec.cycle - prev_cycle > rule.max_gap:
                    violations.append(Violation(
                        rule.rule_id, rec.cycle,
                        f"{rule.rule_id} violation: {rec.cycle - prev_cycle} "
                        f"cycles since the previous {kind} "
                        f"(limit {rule.max_gap}) at {rule.scope} key {key}",
                        None, rec,
                    ))
                cadence_first.setdefault(ck, rec.cycle)
                cadence_last[ck] = rec.cycle
            # -- bookkeeping -------------------------------------------
            for scope in (SAME_BANK, SAME_BANK_GROUP, SAME_RANK):
                key = self._scope_key(rec, scope)
                if key is not None:
                    last[(kind, scope, key)] = rec

        # -- data-bus occupancy + turnaround, in burst-start order ------
        bursts.sort(key=lambda item: item[0])
        for (start0, rec0), (start1, rec1) in zip(bursts, bursts[1:]):
            rule = self._bus.get((rec0.kind, rec1.kind))
            if rule is not None and start1 - start0 < rule.min_delay:
                violations.append(Violation(
                    rule.rule_id, rec1.cycle,
                    f"{rule.rule_id} violation: {rec1.kind} burst starts "
                    f"@{start1}, only {start1 - start0} < {rule.min_delay} "
                    f"cycles after the {rec0.kind} burst start @{start0} "
                    f"(banks ({rec0.rank},{rec0.bank}) -> "
                    f"({rec1.rank},{rec1.bank}))",
                    rec0, rec1,
                ))

        # -- cadence endpoints (starvation at the stream bounds) --------
        if recs:
            end = recs[-1].cycle
            for rule in table.cadence_rules:
                if not rule.check_endpoints:
                    continue
                if rule.scope == SAME_RANK:
                    keys = list(range(table.n_ranks))
                else:
                    keys = [
                        (rank, bank)
                        for rank in range(table.n_ranks)
                        for bank in range(table.banks_per_rank)
                    ]
                for key in keys:
                    ck = (rule.rule_id, key)
                    first = cadence_first.get(ck)
                    if first is None:
                        if end > rule.max_gap:
                            violations.append(Violation(
                                rule.rule_id, end,
                                f"{rule.rule_id} violation: no {rule.kind} "
                                f"issued in {end} cycles at {rule.scope} "
                                f"key {key} (limit {rule.max_gap})",
                            ))
                        continue
                    if first > rule.max_gap:
                        violations.append(Violation(
                            rule.rule_id, first,
                            f"{rule.rule_id} violation: first {rule.kind} "
                            f"only at {first} at {rule.scope} key {key} "
                            f"(limit {rule.max_gap})",
                        ))
                    gap = end - cadence_last[ck]
                    if gap > rule.max_gap:
                        violations.append(Violation(
                            rule.rule_id, end,
                            f"{rule.rule_id} violation: no {rule.kind} in "
                            f"the last {gap} cycles at {rule.scope} key "
                            f"{key} (limit {rule.max_gap})",
                        ))
        return violations

    def check_messages(self, records) -> list[str]:
        """The violations as strings (one per violation)."""
        return [str(v) for v in self.check(records)]


def oracle_for_config(config) -> TimingOracle:
    """Build the oracle for a ``SystemConfig``-shaped object.

    Duck-typed on purpose: the oracle must not import anything from the
    controller stack, so this accepts any object carrying ``timing``,
    ``geometry`` (with ``banks_per_bankgroup`` / ``banks_per_rank``),
    ``ranks_per_channel``, ``refresh_mode`` and ``refresh_granularity``.
    """
    geometry = config.geometry
    table = build_rule_table(
        config.timing,
        banks_per_bankgroup=geometry.banks_per_bankgroup,
        banks_per_rank=geometry.banks_per_rank,
        n_ranks=config.ranks_per_channel,
        refresh_mode=config.refresh_mode,
        refresh_granularity=config.refresh_granularity,
    )
    return TimingOracle(table)


def table_for_log(payload: dict) -> RuleTable:
    """Rebuild a rule table from an exported audit log (see
    :meth:`repro.sim.audit.CommandAuditor.export_log`)."""
    return build_rule_table_cycles(
        **payload["timing_cycles"],
        **payload["geometry"],
        refresh_mode=payload["refresh_mode"],
        refresh_granularity=payload["refresh_granularity"],
    )
