"""The Subarray Pairs Table (§5.1.4).

The SPT records, for each subarray, which subarrays it shares no bitline or
sense amplifier with — obtained either by one-time reverse engineering
(Algorithm 1, as §4.2 does) or from manufacturer mode-status registers.  The
controller queries it to validate refresh-access and refresh-refresh pairs.

The table is backed by the same structural isolation model the chip uses
(:class:`repro.chip.isolation.IsolationMap`), calibrated to the configured
coverage fraction — the simulator's equivalent of loading the reverse-
engineered map into the controller's SRAM.
"""

from __future__ import annotations

from repro.chip.isolation import IsolationMap
from repro.dram.geometry import Geometry


class SubarrayPairsTable:
    """Pair-legality lookups plus rotating partner selection."""

    def __init__(
        self,
        geometry: Geometry,
        coverage: float = 0.32,
        design_seed: int = 0x5B7,
    ):
        self.geometry = geometry
        self.coverage = coverage
        self._map = IsolationMap(
            subarrays=geometry.subarrays_per_bank,
            design_seed=design_seed,
            target_coverage=coverage,
        )
        self._scan_ptr: dict[int, int] = {}

    def isolated(self, sa_a: int, sa_b: int) -> bool:
        """Whether two subarrays can host a HiRA pair."""
        return self._map.isolated(sa_a, sa_b)

    def subarray_of_row(self, row: int) -> int:
        return self.geometry.subarray_of_row(row)

    def partner_subarray(self, bank: int, sa_demand: int) -> int | None:
        """A subarray isolated from ``sa_demand``, rotating for balance.

        The rotation pointer approximates §5.1.3's least-refreshed-first
        selection: successive queries walk the whole bank, spreading
        refresh-access parallelization evenly over subarrays.
        """
        n = self.geometry.subarrays_per_bank
        start = self._scan_ptr.get(bank, 0)
        for step in range(n):
            candidate = (start + step) % n
            if self._map.isolated(sa_demand, candidate):
                self._scan_ptr[bank] = (candidate + 1) % n
                return candidate
        return None

    def refresh_pair(self, bank: int) -> tuple[int, int] | None:
        """Two mutually isolated subarrays for refresh-refresh HiRA."""
        n = self.geometry.subarrays_per_bank
        start = self._scan_ptr.get(bank, 0)
        first = start % n
        for step in range(1, n):
            candidate = (start + step) % n
            if self._map.isolated(first, candidate):
                self._scan_ptr[bank] = (candidate + 1) % n
                return first, candidate
        return None

    @property
    def average_coverage(self) -> float:
        return self._map.average_coverage()
