"""HiRA and the HiRA Memory Controller (the paper's §3 and §5 contribution).

- :mod:`repro.core.hira_op` — the HiRA operation and its latency identities.
- :mod:`repro.core.refresh_table` — the Refresh Table (deadline-tagged
  periodic/preventive refresh requests, §5, component 3).
- :mod:`repro.core.refptr_table` — the RefPtr Table (per-subarray refresh
  pointers, component 1).
- :mod:`repro.core.pr_fifo` — the PR-FIFO (queued preventive refreshes,
  component 2).
- :mod:`repro.core.spt` — the Subarray Pairs Table (§5.1.4).
- :mod:`repro.core.engine` — the Concurrent Refresh Finder wired into the
  memory request scheduler as a refresh engine (components 1–4 acting
  together, Fig. 7/8).
"""

from repro.core.engine import HiraRefreshEngine
from repro.core.hira_op import HiraOperation, RefreshKind
from repro.core.pr_fifo import PrFifo
from repro.core.refresh_table import RefreshTable, RefreshTableEntry
from repro.core.refptr_table import RefPtrTable
from repro.core.spt import SubarrayPairsTable

__all__ = [
    "HiraOperation",
    "HiraRefreshEngine",
    "PrFifo",
    "RefPtrTable",
    "RefreshKind",
    "RefreshTable",
    "RefreshTableEntry",
    "SubarrayPairsTable",
]
