"""HiRA-MC: the Concurrent Refresh Finder wired into the scheduler (§5).

The engine performs the paper's three actions in decreasing priority:

1. **Refresh-access parallelization** — when the scheduler activates a
   demand row, ride a pending refresh on the activation as a HiRA
   operation (Fig. 8, Case 1).
2. **Refresh-refresh parallelization** — when a queued refresh approaches
   its deadline (within tRC), pair it with another queued refresh to the
   same bank whose subarray is isolated (Fig. 8, Case 2).
3. **Solo refresh at the deadline** — a nominal ACT+PRE if neither
   parallelization is possible.

Periodic refresh requests are generated per bank at the rate
``tREFW / rows_per_bank`` with per-bank staggered offsets (§5.1.1);
preventive (PARA) requests enter the PR-FIFO with a deadline of
``now + tRefSlack`` (§5.1.2).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.core.pr_fifo import PreventiveRequest, PrFifo
from repro.core.refptr_table import RefPtrTable
from repro.core.spt import SubarrayPairsTable
from repro.sim.controller import RefreshEngine
from repro.sim.request import Request

_FAR_FUTURE = 1 << 60


@dataclass(slots=True)
class _BankPeriodicState:
    """Lazily generated periodic refresh stream for one (rank, bank)."""

    period: float
    next_gen: float
    pending: deque = field(default_factory=deque)  # generation cycles
    sa_ptr: int = 0
    #: Rows refreshed *ahead* of the periodic schedule by eager pairing;
    #: each credit cancels one future generated request.
    credit: int = 0


class HiraRefreshEngine(RefreshEngine):
    """HiRA-MC's refresh policy, pluggable into the memory controller.

    ``pressure_threshold`` and ``eager_pairing`` make the Concurrent
    Refresh Finder ACT-bandwidth aware: when the rank's recent activation
    rate approaches the tRRD/tFAW budget (see
    :meth:`repro.sim.controller.MemoryController.act_pressure`; pressure
    quantizes to quarters and pairs are only tFAW-legal at <= 0.5, so
    thresholds above 0.5 keep the riding-deferral but never pair), the
    finder prefers refresh-refresh pairs — which hide both refresh ACTs in
    a single tRC-long bank-busy window — over refresh-demand interleaving
    that burns scarce demand ACT slots.  Eager pairing lets a due refresh
    pull the bank's *next* periodic request forward (when demand is queued
    for the bank) so it forms a pair; refreshing a row early is always
    retention-safe, and each pulled-forward row cancels one future request
    via ``credit``.
    """

    def __init__(
        self,
        tref_slack_acts: int = 2,
        coverage: float = 0.32,
        stagger: bool = True,
        disable_access_parallelization: bool = False,
        disable_refresh_parallelization: bool = False,
        pr_fifo_depth: int = 4,
        pressure_threshold: float = 0.5,
        eager_pairing: bool = True,
    ):
        super().__init__()
        self.tref_slack_acts = tref_slack_acts
        self.coverage = coverage
        self.stagger = stagger
        self.disable_access_parallelization = disable_access_parallelization
        self.disable_refresh_parallelization = disable_refresh_parallelization
        self.pr_fifo_depth = pr_fifo_depth
        self.pressure_threshold = pressure_threshold
        self.eager_pairing = eager_pairing

    # ------------------------------------------------------------------
    def attach(self, mc) -> None:
        super().attach(mc)
        config = mc.config
        geom = config.geometry
        self.slack_c = self.tref_slack_acts * mc.trc_c
        self.spt = SubarrayPairsTable(geom, coverage=self.coverage)
        self.refptr = {r: RefPtrTable(geom) for r in range(config.ranks_per_channel)}
        self.pr = {
            r: PrFifo(geom.banks_per_rank, depth=self.pr_fifo_depth)
            for r in range(config.ranks_per_channel)
        }
        #: Same-bank granularity: the periodic stream becomes one REFsb
        #: per bank per tREFI (each pending entry is a whole REFsb command
        #: scheduled with tRefSlack, overlapped with demand to *other*
        #: banks); preventive requests stay row-granular HiRA work.
        self._same_bank = config.refresh_granularity == "same_bank"
        #: Banks committed to an imminent REFsb (demand deferred).
        self._sb_blocked: set[tuple[int, int]] = set()
        period = config.per_bank_refresh_interval_cycles
        if self._same_bank:
            period = float(mc.trefi_c)
        self._periodic: dict[tuple[int, int], _BankPeriodicState] = {}
        self._gen_heap: list[tuple[int, int, int]] = []
        #: Banks that currently hold at least one pending refresh request;
        #: keeps deadline scans O(active banks) instead of O(all banks).
        self._active: set[tuple[int, int]] = set()
        #: Memoized min raw deadline across active banks.  Raw deadlines
        #: only change when a pending queue is pushed or popped (they do
        #: not drift with time), so the memo is valid until the structure
        #: changes — letting ``urgent`` skip its scan while nothing is due.
        self._struct_dirty = True
        self._min_deadline = _FAR_FUTURE
        #: Cache of each active bank's raw deadline (min of periodic head +
        #: slack and PR-FIFO head), maintained at the same push/pop
        #: chokepoints that maintain ``_active``.  Consumers fall back to
        #: the formula for keys injected around the cache (tests poke
        #: engine internals directly).
        self._bank_deadline: dict[tuple[int, int], int] = {}
        total_banks = config.ranks_per_channel * geom.banks_per_rank
        index = 0
        for rank in range(config.ranks_per_channel):
            for bank in range(geom.banks_per_rank):
                offset = (index * period / total_banks) if self.stagger else 0.0
                state = _BankPeriodicState(period=period, next_gen=offset)
                self._periodic[(rank, bank)] = state
                heapq.heappush(self._gen_heap, (int(offset), rank, bank))
                index += 1

    # ------------------------------------------------------------------
    # Periodic request generation (PeriodicRC, §5.1.1)
    # ------------------------------------------------------------------
    def _advance_generation(self, now: int) -> None:
        heap = self._gen_heap
        if not heap or heap[0][0] > now:
            return
        while heap and heap[0][0] <= now:
            __, rank, bank = heapq.heappop(heap)
            state = self._periodic[(rank, bank)]
            if state.credit > 0:
                # This row was already refreshed ahead of schedule by an
                # eager refresh-refresh pair; consume the credit instead of
                # generating a request.
                state.credit -= 1
            else:
                state.pending.append(int(state.next_gen))
                self.mc.stats.periodic_generated += 1
                key = (rank, bank)
                self._active.add(key)
                if len(state.pending) == 1:
                    deadline = int(state.next_gen) + self.slack_c
                    head = self.pr[rank].head(bank)
                    if head is not None and head.deadline < deadline:
                        deadline = head.deadline
                    self._bank_deadline[key] = deadline
            state.next_gen += state.period
            heapq.heappush(heap, (int(state.next_gen), rank, bank))
        # New pending requests mean new deadlines: invalidate the memoized
        # next_event (generation can fire outside a command issue).
        self._struct_dirty = True
        self.mc.mark_dirty()

    def _refresh_active(self, rank: int, bank: int) -> None:
        """Recompute a bank's membership in the active set (and its cached
        raw deadline)."""
        self._struct_dirty = True
        # Every caller pops a pending refresh first, which changes the
        # deadline structure feeding next_event; marking here (the shared
        # pop chokepoint) keeps the memo contract local instead of relying
        # on each caller's subsequent command issue to set the flag.
        self.mc.mark_dirty()
        key = (rank, bank)
        deadline = self._raw_deadline(key)
        if deadline != _FAR_FUTURE:
            self._active.add(key)
            self._bank_deadline[key] = deadline
        else:
            self._active.discard(key)
            self._bank_deadline.pop(key, None)

    def _raw_deadline(self, key: tuple[int, int]) -> int:
        """A bank's earliest pending deadline, straight from the queues."""
        pending = self._periodic[key].pending
        head = self.pr[key[0]].head(key[1])
        deadline = pending[0] + self.slack_c if pending else _FAR_FUTURE
        if head is not None and head.deadline < deadline:
            deadline = head.deadline
        return deadline

    def _periodic_deadline(self, state: _BankPeriodicState) -> int:
        return state.pending[0] + self.slack_c if state.pending else _FAR_FUTURE

    # ------------------------------------------------------------------
    # PreventiveRC (§5.1.2)
    # ------------------------------------------------------------------
    def on_demand_act(self, req: Request, now: int) -> None:
        self._para_enqueue(req.addr.rank, req.addr.bank, req.addr.row, now)

    def _para_enqueue(self, rank: int, bank: int, activated_row: int, now: int) -> None:
        """PARA draw for an observed activation; victims join the PR-FIFO.

        Only demand activations are observed: refresh activations are
        controller-generated and rate-bounded per row, so they cannot be
        leveraged by an attacker (and observing them would make the
        defense's own refreshes feed it).
        """
        victim = self.para_observe_act(rank, bank, activated_row, now)
        if victim is None:
            return
        self._requeue_row(rank, bank, victim, now + self.slack_c)

    # ------------------------------------------------------------------
    # Refresh-access parallelization (Fig. 8, Case 1)
    # ------------------------------------------------------------------
    def on_act(self, req: Request, now: int) -> int | None:
        if self.disable_access_parallelization:
            return None
        self._advance_generation(now)
        rank, bank = req.addr.rank, req.addr.bank
        sa_demand = self.spt.subarray_of_row(req.addr.row)
        periodic = self._periodic[(rank, bank)]
        preventive_head = self.pr[rank].head(bank)
        if self._same_bank:
            # Periodic items are whole REFsb commands, not rows: only a
            # preventive (victim-row) refresh can ride a demand ACT.
            if preventive_head is not None:
                sa_victim = self.spt.subarray_of_row(preventive_head.row)
                if self.spt.isolated(sa_victim, sa_demand):
                    self.pr[rank].pop(bank)
                    self._refresh_active(rank, bank)
                    if self.mc.tracer is not None:
                        self.mc.tracer.on_decision(
                            "ride", now, rank, bank, preventive_head.row
                        )
                    return preventive_head.row
            return None
        periodic_deadline = self._periodic_deadline(periodic)
        preventive_deadline = preventive_head.deadline if preventive_head else _FAR_FUTURE
        # ACT-bandwidth awareness: a refresh-access HiRA op spends a second
        # activation slot on this rank right now.  When the rank is already
        # tRRD/tFAW-bound, keep *periodic* refreshes queued for
        # refresh-refresh pairing at their deadline (two refreshes in one
        # bank-busy window) instead of stealing scarce demand ACT slots.
        # Preventive refreshes still ride: they are pinned to victim rows
        # and pair far less often, so riding remains their cheapest path.
        defer_periodic = (
            not self.disable_refresh_parallelization
            and self.mc.act_pressure(rank, now) >= self.pressure_threshold
            and periodic_deadline > now + self.mc.trc_c
        )

        # Try the earliest-deadline request first, then the other kind.
        order = (
            ("periodic", "preventive")
            if periodic_deadline <= preventive_deadline
            else ("preventive", "periodic")
        )
        for kind in order:
            if kind == "periodic" and periodic.pending and not defer_periodic:
                partner = self.spt.partner_subarray((rank, bank), sa_demand)
                if partner is not None:
                    periodic.pending.popleft()
                    self._refresh_active(rank, bank)
                    row = self.refptr[rank].advance(bank, partner)
                    if self.mc.tracer is not None:
                        self.mc.tracer.on_decision("ride", now, rank, bank, row)
                    return row
            elif kind == "preventive" and preventive_head is not None:
                sa_victim = self.spt.subarray_of_row(preventive_head.row)
                if self.spt.isolated(sa_victim, sa_demand):
                    self.pr[rank].pop(bank)
                    self._refresh_active(rank, bank)
                    if self.mc.tracer is not None:
                        self.mc.tracer.on_decision(
                            "ride", now, rank, bank, preventive_head.row
                        )
                    return preventive_head.row
        return None

    # ------------------------------------------------------------------
    # Deadline enforcement (Fig. 8, Case 2)
    # ------------------------------------------------------------------
    def urgent(self, now: int) -> bool:
        # Re-admit spilled preventive refreshes as PR-FIFO slots free up,
        # so they regain deadline-driven scheduling (and keep the original
        # deadlines they were spilled with).  Entries whose bank FIFO is
        # still full stay spilled, in order, without blocking other banks.
        if self._preventive:
            spilled = deque()
            for rank, bank_id, row, deadline in self._preventive:
                if self.pr[rank].push(
                    bank_id, PreventiveRequest(row=row, deadline=deadline)
                ):
                    key = (rank, bank_id)
                    self._active.add(key)
                    self._bank_deadline[key] = self._raw_deadline(key)
                else:
                    spilled.append((rank, bank_id, row, deadline))
            # Re-admitted entries regain deadline-driven scheduling: the
            # memoized next_event must see the new deadlines.  Marking
            # unconditionally (even when every FIFO was still full and
            # ``spilled`` is identical) only costs a recompute of the same
            # value on this already-rare spill path, and keeps the
            # mutation and its mark on one branch.
            self._preventive = spilled
            self._struct_dirty = True
            self.mc.mark_dirty()
        if self._preventive and self._service_preventive(now):  # PR-FIFO overflow
            return True
        heap = self._gen_heap
        if heap and heap[0][0] <= now:
            self._advance_generation(now)
        mc = self.mc
        cutoff = now + mc.trc_c
        bank_deadline = self._bank_deadline
        raw_deadline = self._raw_deadline
        if self._struct_dirty:
            soonest = _FAR_FUTURE
            for key in self._active:
                deadline = bank_deadline.get(key)
                if deadline is None:
                    deadline = raw_deadline(key)
                if deadline < soonest:
                    soonest = deadline
            self._min_deadline = soonest
            self._struct_dirty = False
        if self._min_deadline > cutoff:
            # Nothing approaches its deadline: the scan below would issue
            # nothing (raw deadlines move only on push/pop, never with
            # time, so the memo stays exact until the structure changes).
            return False
        ta = mc._ta
        # Iterating the set directly is safe: the loop either leaves the
        # set untouched (continue) or mutates it and returns immediately.
        for key in self._active:
            deadline = bank_deadline.get(key)
            if deadline is None:
                deadline = raw_deadline(key)
            if deadline > cutoff:
                continue
            rank, bank_id = key
            if self._same_bank:
                if self._sb_handle_due(key, rank, bank_id, now):
                    return True
                continue
            if now < ta.busy_until[rank]:
                continue
            g = rank * mc.banks_per_rank + bank_id
            if ta.open_row[g] >= 0:
                if now >= ta.next_pre[g]:
                    mc.issue_pre(rank, bank_id, now)
                    return True
                continue
            if now < ta.next_act[g] or not mc.faw_ok(rank, now) or not mc.trrd_ok(rank, bank_id, now):
                continue
            if now > deadline + mc.trc_c:
                mc.stats.deadline_misses += 1
            self._perform_due_refresh(rank, bank_id, now)
            return True
        return False

    def _sb_periodic_first(self, key: tuple[int, int]) -> bool:
        """Whether the bank's due item is its periodic REFsb (vs a
        preventive row refresh)."""
        head = self.pr[key[0]].head(key[1])
        periodic_deadline = self._periodic_deadline(self._periodic[key])
        return head is None or periodic_deadline <= head.deadline

    def _sb_handle_due(
        self, key: tuple[int, int], rank: int, bank_id: int, now: int
    ) -> bool:
        """Due refresh work for one bank in same-bank mode.

        A due periodic item is one REFsb: commit the bank (defer demand so
        a hot row-hit stream cannot keep it open past the deadline),
        precharge it, wait out tRP and the rank's tREFSB_GAP, then issue.
        A due preventive item stays a row-granular nominal refresh with
        the usual ACT gates (and may still pair with a second preventive).
        """
        mc = self.mc
        head = self.pr[rank].head(bank_id)
        periodic = self._periodic[key]
        periodic_deadline = self._periodic_deadline(periodic)
        preventive_deadline = head.deadline if head is not None else _FAR_FUTURE
        refsb_first = periodic_deadline <= preventive_deadline
        if refsb_first and key not in self._sb_blocked:
            self._sb_blocked.add(key)
            mc.blocked_banks.add(key)
            mc.mark_dirty()
        ta = mc._ta
        if now < ta.busy_until[rank]:
            return False
        g = rank * mc.banks_per_rank + bank_id
        if ta.open_row[g] >= 0:
            if now >= ta.next_pre[g]:
                mc.issue_pre(rank, bank_id, now)
                return True
            return False
        if refsb_first:
            # next_act carries tRP-after-PRE and any previous REFsb busy
            # window; next_refsb is the rank's REFsb spacing.
            if now < ta.next_act[g] or now < ta.next_refsb[rank]:
                return False
            if now > periodic_deadline + mc.trc_c:
                mc.stats.deadline_misses += 1
            periodic.pending.popleft()
            self._refresh_active(rank, bank_id)
            self._sb_blocked.discard(key)
            mc.blocked_banks.discard(key)
            mc.issue_refsb(rank, bank_id, now)
            return True
        if now < ta.next_act[g] or not mc.faw_ok(rank, now) or not mc.trrd_ok(rank, bank_id, now):
            return False
        if now > preventive_deadline + mc.trc_c:
            mc.stats.deadline_misses += 1
        self._perform_due_refresh(rank, bank_id, now)
        return True

    def _pop_first_due(self, rank: int, bank_id: int) -> int | None:
        """Pop the earliest-deadline pending refresh; returns its row."""
        periodic = self._periodic[(rank, bank_id)]
        head = self.pr[rank].head(bank_id)
        periodic_deadline = self._periodic_deadline(periodic)
        preventive_deadline = head.deadline if head else _FAR_FUTURE
        if periodic_deadline == _FAR_FUTURE and preventive_deadline == _FAR_FUTURE:
            return None
        if preventive_deadline <= periodic_deadline:
            row = self.pr[rank].pop(bank_id).row
        else:
            periodic.pending.popleft()
            subarray = periodic.sa_ptr % self.spt.geometry.subarrays_per_bank
            periodic.sa_ptr = subarray + 1
            row = self.refptr[rank].advance(bank_id, subarray)
        self._refresh_active(rank, bank_id)
        return row

    def _pop_partner_for(
        self, rank: int, bank_id: int, sa_first: int, now: int
    ) -> int | None:
        """A second pending refresh whose subarray is isolated from the first.

        A periodic request can refresh *any* subarray next (the Concurrent
        Refresh Finder picks one where parallelization is possible,
        §5.1.3); a preventive request is pinned to its victim row and pairs
        only if that row's subarray happens to be isolated.

        When no second request is pending but the rank is ACT-bandwidth
        bound *and* demand is queued for this bank, the finder pulls the
        bank's *next* periodic request forward (refreshing ahead of
        schedule is always retention-safe) so the due refresh still forms
        a pair: two rows per bank-busy window instead of two separate
        windows competing with the waiting demand for the bank's time.
        """
        head = self.pr[rank].head(bank_id)
        if head is not None and self.spt.isolated(
            self.spt.subarray_of_row(head.row), sa_first
        ):
            row = self.pr[rank].pop(bank_id).row
            self._refresh_active(rank, bank_id)
            return row
        if self._same_bank:
            # Periodic items are REFsb commands, not rows: neither the
            # pending queue nor eager pull-forward can supply a partner.
            return None
        periodic = self._periodic[(rank, bank_id)]
        if periodic.pending:
            partner = self.spt.partner_subarray((rank, bank_id), sa_first)
            if partner is not None:
                periodic.pending.popleft()
                self._refresh_active(rank, bank_id)
                return self.refptr[rank].advance(bank_id, partner)
        elif (
            self.eager_pairing
            and self.mc.act_pressure(rank, now) >= self.pressure_threshold
            and self.mc.demand_waiting(rank, bank_id)
        ):
            # Pull-forward pays twice: the rank is ACT-bound (a pair costs
            # one urgent intervention instead of two) and demand is queued
            # for this bank (one t1+t2+tRAS+tRP busy window instead of two
            # tRAS+tRP windows frees real bank time for those requests).
            partner = self.spt.partner_subarray((rank, bank_id), sa_first)
            if partner is not None:
                periodic.credit += 1
                row = self.refptr[rank].advance(bank_id, partner)
                if self.mc.tracer is not None:
                    self.mc.tracer.on_decision("pull-forward", now, rank, bank_id, row)
                return row
        return None

    def _perform_due_refresh(self, rank: int, bank_id: int, now: int) -> None:
        mc = self.mc
        first = self._pop_first_due(rank, bank_id)
        if first is None:
            return
        # A HiRA pair issues two ACTs: it needs two free tFAW slots (§5.2).
        if not self.disable_refresh_parallelization and mc.faw_ok_double(rank, now):
            partner = self._pop_partner_for(
                rank, bank_id, self.spt.subarray_of_row(first), now
            )
            if partner is not None:
                if mc.tracer is not None:
                    mc.tracer.on_decision("pair", now, rank, bank_id, partner)
                mc.issue_hira_refresh_pair(rank, bank_id, now)
                return
        mc.issue_solo_refresh(rank, bank_id, now)

    def _requeue_row(self, rank: int, bank_id: int, row: int, deadline: int) -> None:
        """Put a preventive refresh under deadline control.

        The single entry point for (re)queueing a victim row: into the
        PR-FIFO when it has room, else spilled to the overflow queue
        (serviced as soon as the bank allows, like PARA without HiRA-MC).
        The request keeps the deadline it was *given*: re-stamping with
        ``now + slack_c`` on every requeue would silently extend the
        security deadline each time the refresh bounces.
        """
        request = PreventiveRequest(row=row, deadline=deadline)
        if self.pr[rank].push(bank_id, request):
            key = (rank, bank_id)
            self._active.add(key)
            self._bank_deadline[key] = self._raw_deadline(key)
            self._struct_dirty = True
            self.mc.mark_dirty()
        else:
            self._queue_preventive(rank, bank_id, row, deadline)

    # ------------------------------------------------------------------
    def next_deadline(self, now: int) -> int:
        heap = self._gen_heap
        if heap and heap[0][0] <= now:
            self._advance_generation(now)
        return self._deadline_wake(now)

    def _deadline_wake(self, now: int) -> int:
        """Earliest cycle pending refresh work wants the bus.

        Pure over scheduling state, but it refreshes the engine-internal
        ``_min_deadline`` memo (same formula as ``urgent``'s) and uses it
        as a fast path: while no bank is within tRC of its deadline, the
        per-bank fold below reduces to ``_min_deadline - tRC`` — the
        "already due" branch prices bank/rank gates that cannot bind yet.
        """
        mc = self.mc
        trc = mc.trc_c
        bank_deadline = self._bank_deadline
        raw_deadline = self._raw_deadline
        if self._struct_dirty:
            soonest_d = _FAR_FUTURE
            for key in self._active:
                deadline = bank_deadline.get(key)
                if deadline is None:
                    deadline = raw_deadline(key)
                if deadline < soonest_d:
                    soonest_d = deadline
            self._min_deadline = soonest_d
            self._struct_dirty = False
        md = self._min_deadline
        if md - trc > now:
            soonest = self._preventive_deadline(now)
            if md != _FAR_FUTURE and md - trc < soonest:
                soonest = md - trc
            if self._gen_heap:
                gen_wake = self._gen_heap[0][0] + self.slack_c - trc
                if gen_wake < soonest:
                    soonest = gen_wake
            return soonest
        soonest = self._preventive_deadline(now)
        ta = mc._ta
        banks_per_rank = mc.banks_per_rank
        b_open = ta.open_row
        b_act = ta.next_act
        b_pre = ta.next_pre
        r_busy = ta.busy_until
        act_floor = ta.act_floor
        same_bank = self._same_bank
        for key in self._active:
            deadline = bank_deadline.get(key)
            if deadline is None:
                deadline = raw_deadline(key)
            if deadline == _FAR_FUTURE:
                continue
            rank, bank_id = key
            wake = deadline - trc
            if wake <= now:
                # Already due: report the true cycle the refresh can issue
                # (bank/rank gates) instead of clamping to now + 1, which
                # would busy-spin the event loop one cycle at a time.
                g = rank * banks_per_rank + bank_id
                gate = r_busy[rank]
                if b_open[g] >= 0:
                    if b_pre[g] > gate:
                        gate = b_pre[g]
                elif same_bank and self._sb_periodic_first(key):
                    # The due item is a REFsb: gated by the bank's busy
                    # window and the rank's REFsb spacing, not ACT gates.
                    if b_act[g] > gate:
                        gate = b_act[g]
                    if ta.next_refsb[rank] > gate:
                        gate = ta.next_refsb[rank]
                else:
                    # act_allowed_at, inlined (hot scan).
                    act_gate = b_act[g]
                    c = act_floor[rank]
                    if c > act_gate:
                        act_gate = c
                    c = mc._group_gate_at(rank, bank_id)
                    if c > act_gate:
                        act_gate = c
                    if act_gate > gate:
                        gate = act_gate
                if gate > wake:
                    wake = gate
            if wake < soonest:
                soonest = wake
        if self._gen_heap:
            gen_wake = self._gen_heap[0][0] + self.slack_c - trc
            if gen_wake < soonest:
                soonest = gen_wake
        return soonest

    def urgent_wake(self, now: int) -> int:
        # Called only after a mutation-free failing schedule call (the
        # memo contract): the spill re-admit did not fire (it marks
        # unconditionally when entries exist), generation had nothing due
        # (a due pop marks), and urgent's scan left every due bank gated.
        # ``_deadline_wake`` prices exactly those gates without calling
        # the mutating ``_advance_generation``; the raw gen-heap head is
        # folded on top because the generation *pop* itself is a mutation
        # urgent would perform at that cycle (``_deadline_wake``'s own
        # gen fold is slack-shifted and can be later).
        if self._struct_dirty:
            return now  # defensive: deadlines unsettled, no skipping
        wake = self._deadline_wake(now)
        heap = self._gen_heap
        if heap and heap[0][0] < wake:
            wake = heap[0][0]
        return wake

    # ------------------------------------------------------------------
    # Introspection for tests and benchmarks
    # ------------------------------------------------------------------
    def pending_periodic(self) -> int:
        return sum(len(s.pending) for s in self._periodic.values())

    def pending_preventive(self) -> int:
        return sum(fifo.total_pending() for fifo in self.pr.values())
