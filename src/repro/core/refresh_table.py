"""The Refresh Table: deadline-tagged refresh requests (§5, component 3).

Each entry stores a deadline, the target bank, and the refresh type
(periodic or preventive).  §6 sizes it at 68 entries per rank for a
tRefSlack of 4·tRC (4 periodic per rank + 4 preventive per bank); we keep
the same sizing rule and evict-to-perform when the table would overflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hira_op import RefreshKind


@dataclass(order=True)
class RefreshTableEntry:
    """One queued refresh request, ordered by deadline."""

    deadline: int
    bank: int = field(compare=False)
    kind: RefreshKind = field(compare=False, default=RefreshKind.PERIODIC)
    row_hint: int | None = field(compare=False, default=None)


class RefreshTable:
    """Deadline-ordered storage of pending refresh requests for one rank."""

    def __init__(self, capacity: int = 68):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: list[RefreshTableEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def insert(self, entry: RefreshTableEntry) -> bool:
        """Insert in deadline order; False if the table is full."""
        if self.full:
            return False
        # Linear insertion keeps the list sorted; the table is tiny (≤68).
        for i, existing in enumerate(self._entries):
            if entry.deadline < existing.deadline:
                self._entries.insert(i, entry)
                break
        else:
            self._entries.append(entry)
        return True

    def earliest(self) -> RefreshTableEntry | None:
        return self._entries[0] if self._entries else None

    def earliest_for_bank(self, bank: int) -> RefreshTableEntry | None:
        """Earliest-deadline entry targeting a bank (Fig. 8, step a)."""
        for entry in self._entries:
            if entry.bank == bank:
                return entry
        return None

    def pop(self, entry: RefreshTableEntry) -> None:
        self._entries.remove(entry)

    def due_entries(self, cutoff: int) -> list[RefreshTableEntry]:
        """Entries whose deadline is at or before ``cutoff`` (Fig. 8, step 4)."""
        return [e for e in self._entries if e.deadline <= cutoff]

    def entries_for_bank(self, bank: int) -> list[RefreshTableEntry]:
        return [e for e in self._entries if e.bank == bank]

    def __iter__(self):
        return iter(self._entries)
