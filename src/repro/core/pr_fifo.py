"""The PR-FIFO: queued preventive refresh requests (§5, component 2).

PreventiveRC enqueues each RowHammer-preventive refresh here (one FIFO per
bank, 4 entries each per §6's worst-case sizing) together with an entry in
the Refresh Table carrying the deadline.  The Concurrent Refresh Finder
consults the FIFO head when looking for refresh-access parallelization.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class PreventiveRequest:
    row: int
    deadline: int


class PrFifo:
    """Per-bank FIFOs of pending preventive refreshes for one rank."""

    def __init__(self, banks: int, depth: int = 4):
        if depth < 1:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._fifos: list[deque[PreventiveRequest]] = [deque() for __ in range(banks)]

    def push(self, bank: int, request: PreventiveRequest) -> bool:
        """Enqueue; False when the FIFO is full (caller must drain first)."""
        fifo = self._fifos[bank]
        if len(fifo) >= self.depth:
            return False
        fifo.append(request)
        return True

    def head(self, bank: int) -> PreventiveRequest | None:
        fifo = self._fifos[bank]
        return fifo[0] if fifo else None

    def pop(self, bank: int) -> PreventiveRequest:
        return self._fifos[bank].popleft()

    def occupancy(self, bank: int) -> int:
        return len(self._fifos[bank])

    def full(self, bank: int) -> bool:
        return len(self._fifos[bank]) >= self.depth

    def total_pending(self) -> int:
        return sum(len(f) for f in self._fifos)
