"""The RefPtr Table: per-subarray next-row-to-refresh pointers (§5, comp. 1).

One entry per (bank, subarray) holds a pointer to the next row the subarray
must refresh within the current refresh window, plus a refreshed-row count
used to advance all subarrays in a balanced manner (§5.1.3, step b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import Geometry


@dataclass
class _SubarrayPtr:
    next_offset: int = 0
    refreshed_in_window: int = 0


class RefPtrTable:
    """Tracks refresh progress per subarray of one rank."""

    def __init__(self, geometry: Geometry):
        self.geometry = geometry
        self._ptrs: dict[tuple[int, int], _SubarrayPtr] = {}

    def _entry(self, bank: int, subarray: int) -> _SubarrayPtr:
        key = (bank, subarray)
        entry = self._ptrs.get(key)
        if entry is None:
            entry = _SubarrayPtr()
            self._ptrs[key] = entry
        return entry

    def next_row(self, bank: int, subarray: int) -> int:
        """The row the subarray would refresh next (does not advance)."""
        entry = self._entry(bank, subarray)
        return self.geometry.row_of(subarray, entry.next_offset)

    def advance(self, bank: int, subarray: int) -> int:
        """Consume and return the subarray's next refresh row."""
        entry = self._entry(bank, subarray)
        row = self.geometry.row_of(subarray, entry.next_offset)
        entry.next_offset = (entry.next_offset + 1) % self.geometry.rows_per_subarray
        entry.refreshed_in_window += 1
        return row

    def refreshed_count(self, bank: int, subarray: int) -> int:
        return self._entry(bank, subarray).refreshed_in_window

    def least_refreshed(self, bank: int, candidates: list[int]) -> int | None:
        """Candidate subarray with the fewest refreshes this window."""
        if not candidates:
            return None
        return min(candidates, key=lambda sa: self._entry(bank, sa).refreshed_in_window)

    def reset_window(self) -> None:
        """Start a new refresh window (counts reset, pointers persist)."""
        for entry in self._ptrs.values():
            entry.refreshed_in_window = 0
