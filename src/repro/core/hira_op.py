"""The HiRA operation as the memory controller sees it.

A HiRA operation is the engineered command sequence
``ACT RowA → (t1) → PRE → (t2) → ACT RowB`` (§3).  At the controller level
it comes in two flavours:

- **refresh-access**: RowA is a refresh target, RowB the demand row; the
  demand activation is delayed by only t1 + t2 instead of a full tRC.
- **refresh-refresh**: both rows are refresh targets; the pair completes in
  t1 + t2 + tRAS (+tRP to close) instead of 2·tRAS + tRP.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.timing import (
    DDR4_2400,
    TimingParams,
    hira_two_row_refresh_latency_ps,
    nominal_two_row_refresh_latency_ps,
)


class RefreshKind(enum.Enum):
    """Refresh Table entry types (§5: Invalid is the unoccupied slot)."""

    INVALID = 0
    PERIODIC = 1
    PREVENTIVE = 2


@dataclass(frozen=True, slots=True)
class HiraOperation:
    """A resolved HiRA operation ready for issue."""

    bank: int
    refresh_row: int
    second_row: int
    is_access: bool  # True: refresh-access; False: refresh-refresh
    kind: RefreshKind = RefreshKind.PERIODIC

    def command_count(self) -> int:
        """Commands on the bus: ACT, PRE, ACT (+ closing PRE if refresh pair)."""
        return 3 if self.is_access else 4


def refresh_pair_savings(tp: TimingParams = DDR4_2400) -> float:
    """Fractional latency saved refreshing two rows with HiRA (51.4%)."""
    nominal = nominal_two_row_refresh_latency_ps(tp)
    hira = hira_two_row_refresh_latency_ps(tp)
    return 1.0 - hira / nominal


def access_after_refresh_latency_ps(tp: TimingParams = DDR4_2400) -> int:
    """Extra latency a demand access pays to carry a refresh (t1 + t2).

    §3: with HiRA, a request scheduled immediately after a refresh
    experiences t1 + t2 (as small as 6 ns) instead of the nominal row cycle
    time of 46.25 ns.
    """
    return tp.hira_t1 + tp.hira_t2
