"""Kernel performance measurement: events/sec on fixed seeded workloads.

The simulation kernel's throughput is the binding constraint on every
sweep the reproduction runs (ROADMAP: "as fast as the hardware allows"),
so it is measured and tracked like a result.  ``repro perf`` (and the
``benchmarks/bench_kernel_perf.py`` wrapper) runs the quick-mode Fig. 12
single-point workloads — the PARA pair at the lowest RowHammer threshold
and the 128 Gbit capacity-margin pair — with pinned seeds, and writes
``BENCH_kernel.json`` so the perf trajectory is recorded per commit.

"Events" are DRAM commands plus column accesses served (ACT, PRE, REF,
RD, WR): the work the scheduler actually performed, independent of how
many idle cycles the event loop skipped.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from pathlib import Path

#: The fixed workloads: quick-mode Fig. 12 single points (mix 0, the
#: legacy ``seed = 100 + mix_id`` seeding, 200k measured instructions).
KERNEL_WORKLOADS: tuple[tuple[str, dict], ...] = (
    ("fig12-para-nrh64", dict(refresh_mode="baseline", para_nrh=64.0)),
    ("fig12-hira2-nrh64", dict(refresh_mode="hira", tref_slack_acts=2, para_nrh=64.0)),
    ("fig12-margin-baseline-128g", dict(refresh_mode="baseline", capacity_gbit=128.0)),
    ("fig12-margin-hira2-128g", dict(refresh_mode="hira", tref_slack_acts=2, capacity_gbit=128.0)),
)

#: Pre-optimization (PR 2 kernel) median wall times for the workloads
#: above at ``PRE_PR_INSTR_BUDGET`` instructions.  The 100k-budget
#: values were measured interleaved with the optimized kernel on the
#: reference container (1 CPU, Python 3.11) so host drift cancels out;
#: when the default budget moved to 200k (the SoA kernel got fast
#: enough that a 100k rep could dip under a ~1 s timed window, where
#: timer noise dominates) they were scaled linearly — the kernel is
#: O(events) and events scale with the budget to within 1% (measured
#: ratio 1.99x), and the PR 2 kernel predates this module, so a clean
#: re-measurement is no longer possible.  They are the denominator of
#: the tracked speedup-vs-seed column; absolute times on other hosts
#: differ, ratios travel reasonably well.  Only comparable at the same
#: budget — ``measure_workload`` drops the column at any other scale.
PRE_PR_INSTR_BUDGET = 200_000
PRE_PR_WALL_S: dict[str, float] = {
    "fig12-para-nrh64": 9.16,
    "fig12-hira2-nrh64": 11.72,
    "fig12-margin-baseline-128g": 5.24,
    "fig12-margin-hira2-128g": 8.46,
}

_EVENT_FIELDS = ("acts", "pres", "refs", "reads_served", "writes_served")


def _count_events(result) -> int:
    return sum(
        getattr(stats, field)
        for stats in result.controller_stats
        for field in _EVENT_FIELDS
    )


def measure_workload(
    name: str, overrides: dict, instr_budget: int = 200_000, reps: int = 3
) -> dict:
    """Run one pinned workload ``reps`` times; report the median wall.

    The default budget keeps every rep's timed window >= ~1 s on the
    reference container even after the SoA speedup, so timer granularity
    and scheduler jitter stay well under the drift the median absorbs.
    A degenerate near-zero wall (a stubbed run, a broken clock) reports
    rates of 0.0 rather than ``inf``: the CI floor check then fails
    loudly instead of an absurd rate sailing past it.
    """
    from repro.sim.config import SystemConfig
    from repro.sim.system import System
    from repro.workloads.mixes import mix_for

    config = SystemConfig(**overrides)
    walls = []
    result = None
    for __ in range(reps):
        profiles = mix_for(0, cores=config.cores)
        system = System(config, profiles, seed=100, instr_budget=instr_budget)
        start = time.perf_counter()
        result = system.run()
        walls.append(time.perf_counter() - start)
    wall = statistics.median(walls)
    timeable = wall > 1e-6
    events = _count_events(result)
    instructions = sum(result.instructions)
    row = {
        "wall_s": round(wall, 4),
        "wall_s_all": [round(w, 4) for w in walls],
        "events": events,
        "events_per_sec": round(events / wall, 1) if timeable else 0.0,
        "cycles": result.cycles,
        "cycles_per_sec": round(result.cycles / wall, 1) if timeable else 0.0,
        "instructions": instructions,
        "instr_per_sec": round(instructions / wall, 1) if timeable else 0.0,
    }
    ref = PRE_PR_WALL_S.get(name) if instr_budget == PRE_PR_INSTR_BUDGET else None
    if ref is not None and timeable:
        row["pre_pr_wall_s"] = ref
        row["speedup_vs_pre_pr"] = round(ref / wall, 2)
    return row


def profile_kernel(instr_budget: int = 200_000) -> dict:
    """Phase-attributed wall time for every tracked workload.

    One extra (instrumented) run per workload — never the timed run, so
    probe overhead cannot contaminate the tracked events/sec numbers.
    Per-workload reports come from :func:`repro.obs.profiler.profile_workload`;
    the ``phases`` entry aggregates exclusive seconds and call counts
    across all workloads.
    """
    from repro.obs.profiler import PHASES, profile_workload

    per_workload = {}
    for name, overrides in KERNEL_WORKLOADS:
        per_workload[name] = profile_workload(overrides, instr_budget=instr_budget)
    totals = {name: {"seconds": 0.0, "calls": 0} for name in PHASES}
    wall = other = 0.0
    for report in per_workload.values():
        wall += report["wall_s"]
        other += report["other_s"]
        for phase, row in report["phases"].items():
            totals[phase]["seconds"] += row["seconds"]
            totals[phase]["calls"] += row["calls"]
    # Shares guard against a degenerate near-zero wall (not just exact
    # zero): a broken timer must produce 0.0 shares, never inf/absurd.
    timeable = wall > 1e-6
    for row in totals.values():
        row["seconds"] = round(row["seconds"], 4)
        row["share"] = round(row["seconds"] / wall, 4) if timeable else 0.0
    return {
        "wall_s": round(wall, 4),
        "other_s": round(other, 4),
        "other_share": round(other / wall, 4) if timeable else 0.0,
        "phases": totals,
        "workloads": per_workload,
    }


def measure_kernel(
    instr_budget: int = 200_000, reps: int = 3, profile: bool = False
) -> dict:
    """Measure every tracked workload and assemble the bench payload."""
    import os

    from repro.orchestrator.pool import available_cores

    workloads = {}
    for name, overrides in KERNEL_WORKLOADS:
        workloads[name] = measure_workload(
            name, overrides, instr_budget=instr_budget, reps=reps
        )
    total_wall = sum(row["wall_s"] for row in workloads.values())
    total_events = sum(row["events"] for row in workloads.values())
    total_timeable = total_wall > 1e-6
    ref_total = sum(
        row["pre_pr_wall_s"] for row in workloads.values() if "pre_pr_wall_s" in row
    )
    # ``cpus`` is the schedulable count (cgroup/affinity-aware): wall
    # times depend on what this process may actually use, not on how
    # many cores the host advertises.
    cpus = available_cores()
    payload = {
        "schema": 1,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": cpus,
            "cpus_effective": cpus,
            "cpus_total": os.cpu_count() or cpus,
        },
        "instr_budget": instr_budget,
        "reps": reps,
        "workloads": workloads,
        "totals": {
            "wall_s": round(total_wall, 4),
            "events": total_events,
            "events_per_sec": (
                round(total_events / total_wall, 1) if total_timeable else 0.0
            ),
            **(
                {
                    "pre_pr_wall_s": round(ref_total, 4),
                    "speedup_vs_pre_pr": round(ref_total / total_wall, 2),
                }
                if ref_total and total_timeable
                else {}
            ),
        },
    }
    if profile:
        payload["profile"] = profile_kernel(instr_budget=instr_budget)
    return payload


def write_bench(payload: dict, path: str | Path) -> Path:
    from repro.orchestrator.atomicio import atomic_write_text

    return atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
