"""Distribution summaries matching the paper's box-and-whiskers plots.

The paper's figures (Figs. 4 and 6) report first/third quartiles, median,
and min/max whiskers; :class:`BoxWhisker` carries exactly those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class BoxWhisker:
    """Five-number summary plus mean of a dataset."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    count: int

    @property
    def iqr(self) -> float:
        """Interquartile range (the box size in the paper's plots)."""
        return self.q3 - self.q1

    def row(self, label: str) -> list:
        """A table row: label, min, q1, median, q3, max, mean."""
        return [
            label,
            f"{self.minimum:.3f}",
            f"{self.q1:.3f}",
            f"{self.median:.3f}",
            f"{self.q3:.3f}",
            f"{self.maximum:.3f}",
            f"{self.mean:.3f}",
        ]


def summarize(values: Iterable[float]) -> BoxWhisker:
    """Five-number summary of a dataset (errors on empty input)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty dataset")
    q1, median, q3 = np.percentile(arr, [25, 50, 75])
    minimum = float(arr.min())
    maximum = float(arr.max())
    # Pairwise summation can leave the mean a few ULPs outside [min, max]
    # (e.g. three identical values); clamp so summary invariants hold.
    mean = min(max(float(arr.mean()), minimum), maximum)
    return BoxWhisker(
        minimum=minimum,
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=maximum,
        mean=mean,
        count=int(arr.size),
    )


def histogram(
    values: Sequence[float], bins: int = 10, lo: float | None = None, hi: float | None = None
) -> list[tuple[float, float, float]]:
    """Normalized histogram as (bin_lo, bin_hi, fraction) triples."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot histogram an empty dataset")
    counts, edges = np.histogram(
        arr,
        bins=bins,
        range=(lo if lo is not None else arr.min(), hi if hi is not None else arr.max()),
    )
    fractions = counts / arr.size
    return [
        (float(edges[i]), float(edges[i + 1]), float(fractions[i]))
        for i in range(len(counts))
    ]
