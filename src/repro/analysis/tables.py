"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None) -> str:
    """Render an aligned, pipe-separated table (benchmarks print these)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[i]) for i, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)
