"""Result summarization: box-whisker stats, histograms, table rendering."""

from repro.analysis.stats import BoxWhisker, histogram, summarize
from repro.analysis.tables import format_table

__all__ = ["BoxWhisker", "format_table", "histogram", "summarize"]
