"""Command-line entry points for the reproduction.

Nine subcommands mirror the repository's main workflows:

- ``characterize`` — run the §4 experiments on a tested module.
- ``simulate`` — one cycle-level run of a refresh configuration.
- ``audit`` — run one configuration with command auditors attached and
  re-verify the stream (optionally against the rule-table oracle).
- ``sweep`` — an orchestrated parameter-grid sweep (parallel + cached,
  with pluggable execution backends and incremental regeneration).
- ``worker`` — a sweep-execution worker daemon for ``--backend socket``.
- ``status`` — render the live fleet status file and journal progress.
- ``security`` — print PARA's (revisited) configuration for a threshold.
- ``perf`` — measure kernel throughput and write ``BENCH_kernel.json``
  (``--profile`` adds the phase-attributed wall-time breakdown).
- ``lint`` — AST-based invariant linter (dirty-flag discipline, timing
  enforcement coverage, determinism, ``__slots__``, protocol
  exhaustiveness); exit 0 clean / 1 findings / 2 usage error.

Usage::

    python -m repro.cli characterize --module C0
    python -m repro.cli simulate --capacity 128 --mode hira --slack 2
    python -m repro.cli audit --mode hira --granularity same_bank --oracle
    python -m repro.cli sweep --modes baseline,hira --capacities 8,32 \
        --mixes 2 --workers 4 --cache-dir .sweep-cache
    python -m repro.cli worker --port 7781 &
    python -m repro.cli sweep --backend socket --port 7781 --incremental
    python -m repro.cli sweep --status-file .sweep-status.json
    python -m repro.cli status --status-file .sweep-status.json
    python -m repro.cli security --nrh 128 --slack 4
    python -m repro.cli perf --out BENCH_kernel.json
    python -m repro.cli lint --json
"""

from __future__ import annotations

import argparse

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.experiments.coverage import coverage_distribution, tested_row_sample
    from repro.experiments.modules import TESTED_MODULES, build_module_chip
    from repro.experiments.second_act import characterize_normalized_nrh

    module = next((m for m in TESTED_MODULES if m.label == args.module), None)
    if module is None:
        print(f"unknown module {args.module!r}; choose from "
              f"{[m.label for m in TESTED_MODULES]}")
        return 2
    chip = build_module_chip(module)
    rows = tested_row_sample(chip.geometry, chunk=2048, stride=args.stride)
    coverage = coverage_distribution(
        chip, 0, chip.timing.hira_t1, chip.timing.hira_t2,
        tested_rows=rows, rows_a=rows[:: args.rows_a_step],
        workers=args.workers,
    )
    victims = rows[:: max(1, len(rows) // args.victims)][: args.victims]
    thresholds = characterize_normalized_nrh(chip, 0, victims)
    ratios = summarize([r.normalized for r in thresholds])
    print(format_table(
        ["metric", "min", "avg/mean", "max"],
        [
            ["HiRA coverage", f"{coverage.minimum:.3f}", f"{coverage.average:.3f}",
             f"{coverage.maximum:.3f}"],
            ["normalized NRH", f"{ratios.minimum:.2f}", f"{ratios.mean:.2f}",
             f"{ratios.maximum:.2f}"],
        ],
        title=f"Module {module.label} ({module.chip_identifier})",
    ))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.config import SystemConfig
    from repro.sim.system import System
    from repro.workloads.mixes import mix_for

    config = SystemConfig(
        capacity_gbit=args.capacity,
        channels=args.channels,
        ranks_per_channel=args.ranks,
        refresh_mode=args.mode,
        refresh_granularity=args.granularity,
        tref_slack_acts=args.slack,
        para_nrh=args.para_nrh,
    )
    system = System(
        config, mix_for(args.mix), seed=args.seed, instr_budget=args.instructions
    )
    tracers = []
    if args.trace_out:
        from repro.obs.tracer import attach_tracers

        tracers = attach_tracers(system)
    result = system.run()
    print(format_table(
        ["metric", "value"],
        [
            ["weighted speedup", f"{result.weighted_speedup:.3f}"],
            ["cycles", result.cycles],
            ["reads served", result.stat_total("reads_served")],
            ["REF commands", result.stat_total("refs")],
            ["REFsb commands", result.stat_total("refs_sb")],
            ["solo refreshes", result.stat_total("solo_refreshes")],
            ["refresh-access HiRA ops", result.stat_total("hira_access_parallelized")],
            ["refresh-refresh HiRA ops", result.stat_total("hira_refresh_parallelized")],
            ["preventive refreshes", result.stat_total("preventive_generated")],
            ["deadline misses", result.stat_total("deadline_misses")],
        ],
        title=f"{args.mode} @ {args.capacity:.0f} Gbit, mix {args.mix}",
    ))
    if tracers:
        import os

        from repro.obs.tracer import trace_json
        from repro.orchestrator import atomic_write_text

        os.makedirs(args.trace_out, exist_ok=True)
        for tracer in tracers:
            path = os.path.join(
                args.trace_out, f"simulate-ch{tracer.channel}.trace.json"
            )
            atomic_write_text(path, trace_json(tracer.export()))
            print(
                f"wrote {path} ({tracer.events_total} events, "
                f"{tracer.dropped} dropped)"
            )
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.orchestrator import atomic_write_text
    from repro.sim.audit import attach_auditors
    from repro.sim.config import SystemConfig
    from repro.sim.oracle import oracle_for_config
    from repro.sim.system import System
    from repro.workloads.mixes import mix_for

    config = SystemConfig(
        capacity_gbit=args.capacity,
        channels=args.channels,
        ranks_per_channel=args.ranks,
        refresh_mode=args.mode,
        refresh_granularity=args.granularity,
        tref_slack_acts=args.slack,
    )
    system = System(
        config, mix_for(args.mix), seed=args.seed, instr_budget=args.instructions
    )
    auditors = attach_auditors(system)
    result = system.run()
    oracle = oracle_for_config(config) if args.oracle else None

    if args.rules_out and oracle is not None:
        atomic_write_text(
            args.rules_out, json.dumps(oracle.table.to_json(), indent=2) + "\n"
        )
        print(f"wrote rule table to {args.rules_out}")

    failed = False
    rows = []
    for channel, auditor in enumerate(auditors):
        auditor_problems = auditor.violations()
        oracle_problems = (
            oracle.check_messages(auditor.records) if oracle is not None else None
        )
        rows.append([
            f"channel {channel}",
            str(len(auditor.records)),
            str(len(auditor_problems)),
            "-" if oracle_problems is None else str(len(oracle_problems)),
        ])
        for problem in auditor_problems[:10]:
            print(f"channel {channel} auditor: {problem}")
        for problem in (oracle_problems or [])[:10]:
            print(f"channel {channel} oracle: {problem}")
        if auditor_problems or oracle_problems:
            failed = True
        if args.export_log:
            path = Path(args.export_log)
            if len(auditors) > 1:
                path = path.with_name(f"{path.stem}-ch{channel}{path.suffix}")
            atomic_write_text(path, json.dumps(auditor.export_log()) + "\n")
            print(f"wrote audit log to {path}")
    print(format_table(
        ["channel", "commands", "auditor violations", "oracle violations"],
        rows,
        title=f"audit: {args.mode}/{args.granularity}, "
        f"{result.cycles} cycles, finished={result.finished}",
    ))
    if failed:
        print("FAIL: timing violations found")
        return 1
    checkers = "auditor + oracle" if oracle is not None else "auditor"
    print(f"OK: command stream clean under {checkers}")
    return 0


def _parse_list(text: str, convert) -> tuple:
    return tuple(convert(part) for part in text.split(",") if part)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.orchestrator import (
        ResultCache,
        Sweep,
        SweepJournal,
        Variant,
        axis,
        journal_path_for,
        mix_workloads,
        plan_sweep,
        run_sweep,
    )
    from repro.orchestrator.hashing import source_fingerprint
    from repro.sim.config import SystemConfig

    variants = []
    for mode in _parse_list(args.modes, str):
        if mode == "hira":
            for slack in _parse_list(args.slacks, int):
                variants.append(
                    Variant.make(
                        f"HiRA-{slack}", refresh_mode="hira", tref_slack_acts=slack
                    )
                )
        else:
            variants.append(Variant.make(mode, refresh_mode=mode))

    axes = [axis("cfg", *variants)]
    axes.append(axis("capacity_gbit", *_parse_list(args.capacities, float)))
    if args.channels != "1":
        axes.append(axis("channels", *_parse_list(args.channels, int)))
    if args.ranks != "1":
        axes.append(axis("ranks_per_channel", *_parse_list(args.ranks, int)))
    if args.nrhs:
        axes.append(axis("para_nrh", *_parse_list(args.nrhs, float)))
    if args.granularities != "all_bank":
        axes.append(
            axis("refresh_granularity", *_parse_list(args.granularities, str))
        )

    sweep = Sweep(
        name=args.name,
        axes=tuple(axes),
        workloads=mix_workloads(args.mixes),
        base=SystemConfig(),
        instr_budget=args.instructions,
        max_cycles=args.max_cycles,
    )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.incremental and cache is None:
        print("--incremental needs a result store; drop --no-cache")
        return 2
    if args.resume and cache is None:
        print("--resume needs a result store; drop --no-cache")
        return 2

    journal = None
    if cache is not None:
        journal = journal_path_for(cache.root, args.name)
    if args.resume:
        state = SweepJournal.load(journal)
        if state.runs == 0:
            print(f"resume: no journal at {journal}; starting fresh")
        else:
            print(f"resume: {state.describe()}")
            if state.fingerprint and state.fingerprint != source_fingerprint():
                print(
                    "resume: simulator source changed since the journaled "
                    "run; journaled points will be recomputed, not replayed"
                )

    backend = args.backend
    owned_backend = None
    if backend == "socket":
        from repro.orchestrator.backends import SocketBackend

        backend = owned_backend = SocketBackend(
            host=args.host,
            port=args.port,
            spawn_workers=args.spawn_workers,
            registration_timeout=args.registration_timeout,
            job_deadline=args.job_deadline,
            strict=args.strict_backend,
            fallback_workers=args.workers,
        )
        print(f"socket backend: job server on {backend.host}:{backend.port}")

    status = None
    if args.status_file:
        from repro.obs.fleet import FleetStatus

        status = FleetStatus(args.status_file)

    print(f"sweep {args.name!r}: {sweep.size} points on {args.workers or 'auto'} workers")
    plan = None
    if args.incremental or args.resume:
        plan = plan_sweep(sweep, cache)
        print(f"{'resume' if args.resume else 'incremental'}: {plan.describe()}")
    try:
        result = run_sweep(
            sweep,
            workers=args.workers,
            cache=cache,
            backend=backend,
            plan=plan,
            journal=journal,
            status=status,
        )
    finally:
        if owned_backend is not None:
            owned_backend.close()

    cells: dict[tuple, list] = {}
    for point, res in result:
        cell = tuple(c for c in point.coords if c[0] != "workload")
        agg = cells.setdefault(cell, [0.0, 0.0, 0])
        agg[0] += res.weighted_speedup
        agg[1] += res.stat_total("reads_served")
        agg[2] += 1
    rows = [
        [", ".join(f"{k}={v}" for k, v in cell), f"{ws / n:.3f}", f"{reads / n:.0f}"]
        for cell, (ws, reads, n) in cells.items()
    ]
    # Surface the socket server's hidden counters on the summary line —
    # only the non-zero ones, so serial/local titles (and the CI greps
    # on "N cached") are unchanged.
    tele = result.telemetry
    extras = [
        f"{key} {tele[key]}"
        for key in ("retries", "speculated", "quarantined")
        if tele.get(key)
    ]
    if tele.get("degraded"):
        extras.append("degraded to local pool")
    suffix = f"; {', '.join(extras)}" if extras else ""
    print(format_table(
        ["configuration", "weighted speedup", "reads served"],
        rows,
        title=f"sweep {args.name}: {len(result)} runs, "
        f"{result.reused} cached, {result.computed} executed, "
        f"{result.elapsed_s:.1f}s on {result.workers} workers "
        f"({result.backend} backend{suffix})",
    ))
    if status is not None:
        print(f"status file: {args.status_file}")
    if args.json_out:
        import json

        from repro.orchestrator import atomic_write_text

        payload = {
            "name": args.name,
            "runs": len(result),
            "cache_hits": result.cache_hits,
            "cache_misses": result.cache_misses,
            "backend": result.backend,
            "reused": result.reused,
            "computed": result.computed,
            "elapsed_s": round(result.elapsed_s, 3),
            "workers": result.workers,
            "telemetry": result.telemetry,
            **({"fleet": status.job_counts()} if status is not None else {}),
            "cells": [
                {
                    "coords": dict(cell),
                    "mean_ws": ws / n,
                    "mean_reads": reads / n,
                    "n": n,
                }
                for cell, (ws, reads, n) in cells.items()
            ],
        }
        atomic_write_text(args.json_out, json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json_out}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.orchestrator.backends.worker import serve

    def log(message: str) -> None:
        print(f"[worker] {message}", flush=True)

    log(f"serving {args.host}:{args.port} (ctrl-C to stop)")
    done = serve(
        args.host,
        args.port,
        heartbeat_interval=args.heartbeat,
        connect_timeout=args.connect_timeout,
        max_sessions=args.max_sessions,
        label=args.label,
        welcome_timeout=args.welcome_timeout,
        backoff_seed=args.backoff_seed,
        log=log,
    )
    log(f"executed {done} points total")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.obs.fleet import journal_progress, load_status, render_status

    status = load_status(args.status_file) if args.status_file else None
    journals = journal_progress(args.store) if args.store else []
    print(render_status(status, journals))
    return 0 if status is not None or journals else 1


def _cmd_security(args: argparse.Namespace) -> int:
    from repro.rowhammer.security import (
        k_factor,
        legacy_pth,
        n_ref_slack_for,
        rowhammer_success_probability,
        solve_pth,
    )

    slack_ns = args.slack * 46.25
    legacy = legacy_pth(args.nrh)
    revisited = solve_pth(args.nrh, n_ref_slack_for(slack_ns))
    print(format_table(
        ["quantity", "value"],
        [
            ["PARA-Legacy pth", f"{legacy:.4f}"],
            ["revisited pth (slack-adjusted)", f"{revisited:.4f}"],
            ["pRH with legacy pth", f"{rowhammer_success_probability(legacy, args.nrh):.3e}"],
            ["pRH with revisited pth",
             f"{rowhammer_success_probability(revisited, args.nrh, n_ref_slack_for(slack_ns)):.3e}"],
            ["k factor (Exp. 9)", f"{k_factor(legacy, args.nrh):.4f}"],
        ],
        title=f"PARA configuration for NRH={args.nrh}, tRefSlack={args.slack}·tRC",
    ))
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf import measure_kernel, write_bench

    payload = measure_kernel(
        instr_budget=args.instructions, reps=args.reps, profile=args.profile
    )
    rows = []
    for name, row in payload["workloads"].items():
        rows.append([
            name,
            f"{row['wall_s']:.2f}",
            f"{row['events_per_sec']:,.0f}",
            f"{row['cycles_per_sec']:,.0f}",
            f"{row['speedup_vs_pre_pr']:.2f}x" if "speedup_vs_pre_pr" in row else "-",
        ])
    totals = payload["totals"]
    rows.append([
        "TOTAL",
        f"{totals['wall_s']:.2f}",
        f"{totals['events_per_sec']:,.0f}",
        "",
        f"{totals['speedup_vs_pre_pr']:.2f}x" if "speedup_vs_pre_pr" in totals else "-",
    ])
    print(format_table(
        ["workload", "wall (s)", "events/s", "cycles/s", "vs pre-opt"],
        rows,
        title=f"Kernel throughput ({payload['machine']['cpus']} CPU, "
        f"python {payload['machine']['python']}, {args.reps} reps)",
    ))
    if args.profile:
        profile = payload["profile"]
        prows = [
            [phase, f"{row['seconds']:.2f}", f"{row['calls']:,}",
             f"{row['share'] * 100:.1f}%"]
            for phase, row in profile["phases"].items()
        ]
        prows.append([
            "other (unattributed)", f"{profile['other_s']:.2f}", "",
            f"{profile['other_share'] * 100:.1f}%",
        ])
        print(format_table(
            ["phase", "excl (s)", "calls", "share"],
            prows,
            title="Phase breakdown (instrumented runs; shares are the "
            "comparable signal)",
        ))
    if args.out:
        write_bench(payload, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.lint import CHECKERS, LintUsageError, lint_tree

    if args.list_rules:
        for name in CHECKERS:
            print(f"{name}: {CHECKERS[name].DESCRIPTION}")
        return 0
    rules = None
    if args.rules:
        rules = [token.strip() for token in args.rules.split(",") if token.strip()]
    baseline: object = "auto"
    if args.baseline is not None:
        baseline = Path(args.baseline) if args.baseline else None
    try:
        result = lint_tree(
            root=Path(args.root) if args.root else None,
            rules=rules,
            baseline=baseline,
        )
    except LintUsageError as exc:
        print(f"repro lint: {exc}")
        return 2
    if args.json:
        print(_json.dumps(result.to_json(), indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.render())
        status = "clean" if result.clean else f"{len(result.findings)} finding(s)"
        print(
            f"repro lint: {status} — {result.files} files, "
            f"{len(result.rules)} rules, {result.suppressed} suppressed, "
            f"{result.baselined} baselined"
        )
    return 0 if result.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", help="run the §4 experiments on a module")
    p.add_argument("--module", default="C0")
    p.add_argument("--stride", type=int, default=64)
    p.add_argument("--rows-a-step", type=int, default=12, dest="rows_a_step")
    p.add_argument("--victims", type=int, default=8)
    p.add_argument("--workers", type=int, default=1,
                   help="process pool size for the coverage measurement")
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("simulate", help="one cycle-level simulation run")
    p.add_argument("--capacity", type=float, default=8.0)
    p.add_argument("--channels", type=int, default=1)
    p.add_argument("--ranks", type=int, default=1)
    p.add_argument("--mode", choices=("none", "baseline", "elastic", "hira"), default="hira")
    p.add_argument("--granularity", choices=("all_bank", "same_bank"),
                   default="all_bank",
                   help="refresh command granularity: DDR4-style rank-wide "
                        "REF or DDR5-style per-bank REFsb")
    p.add_argument("--slack", type=int, default=2)
    p.add_argument("--para-nrh", type=float, default=None, dest="para_nrh")
    p.add_argument("--mix", type=int, default=0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--instructions", type=int, default=100_000)
    p.add_argument("--trace-out", default=None, dest="trace_out",
                   help="arm the deterministic sim tracer and write one "
                        "Chrome trace-event JSON per channel to this "
                        "directory (timestamps are simulated cycles)")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "audit",
        help="re-verify a run's command stream (auditor, optionally oracle)",
    )
    p.add_argument("--capacity", type=float, default=8.0)
    p.add_argument("--channels", type=int, default=1)
    p.add_argument("--ranks", type=int, default=1)
    p.add_argument("--mode", choices=("none", "baseline", "elastic", "hira"),
                   default="hira")
    p.add_argument("--granularity", choices=("all_bank", "same_bank"),
                   default="all_bank")
    p.add_argument("--slack", type=int, default=2)
    p.add_argument("--mix", type=int, default=0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--instructions", type=int, default=20_000)
    p.add_argument("--oracle", action="store_true",
                   help="also replay the stream against the declarative "
                        "rule-table oracle (second opinion, independent of "
                        "the auditor's bookkeeping)")
    p.add_argument("--export-log", default=None, dest="export_log",
                   help="write each channel's audit log as re-checkable JSON")
    p.add_argument("--rules-out", default=None, dest="rules_out",
                   help="with --oracle: write the generated rule table as JSON")
    p.set_defaults(func=_cmd_audit)

    p = sub.add_parser("sweep", help="orchestrated parameter-grid sweep")
    p.add_argument("--name", default="cli-sweep")
    p.add_argument("--modes", default="baseline,hira",
                   help="comma list of refresh modes (none,baseline,elastic,hira)")
    p.add_argument("--slacks", default="2", help="HiRA-N slack values (for mode hira)")
    p.add_argument("--capacities", default="8", help="chip capacities in Gbit")
    p.add_argument("--channels", default="1")
    p.add_argument("--ranks", default="1")
    p.add_argument("--nrhs", default="", help="PARA RowHammer thresholds (optional)")
    p.add_argument("--granularities", default="all_bank",
                   help="comma list of refresh granularities "
                        "(all_bank,same_bank); a non-default list adds a "
                        "refresh_granularity sweep axis")
    p.add_argument("--mixes", type=int, default=2, help="workload mixes per point")
    p.add_argument("--instructions", type=int, default=100_000)
    p.add_argument("--max-cycles", type=int, default=10_000_000, dest="max_cycles")
    p.add_argument("--workers", type=int, default=None)
    p.add_argument("--cache-dir", default=".sweep-cache", dest="cache_dir",
                   help="content-addressed result store; sweeps sharing a "
                        "store compute each point exactly once")
    p.add_argument("--no-cache", action="store_true", dest="no_cache")
    p.add_argument("--backend", choices=("serial", "local", "socket"), default="local",
                   help="execution backend: in-process, local process pool, "
                        "or a TCP job server fed by `repro worker` daemons")
    p.add_argument("--host", default="127.0.0.1",
                   help="socket backend: interface the job server binds")
    p.add_argument("--port", type=int, default=7781,
                   help="socket backend: job-server port (0 = ephemeral)")
    p.add_argument("--spawn-workers", type=int, default=0, dest="spawn_workers",
                   help="socket backend: also launch N localhost workers")
    p.add_argument("--registration-timeout", type=float, default=60.0,
                   dest="registration_timeout",
                   help="socket backend: fail if no worker registers in time")
    p.add_argument("--incremental", action="store_true",
                   help="diff the grid against the store first, report the "
                        "reused-vs-computed plan, and dispatch only "
                        "missing/stale points")
    p.add_argument("--resume", action="store_true",
                   help="continue an interrupted sweep: report the journal's "
                        "progress, replay completed points from the store, "
                        "and compute only the remainder")
    p.add_argument("--strict-backend", action="store_true", dest="strict_backend",
                   help="socket backend: fail when no worker registers "
                        "instead of degrading to the local pool")
    p.add_argument("--job-deadline", type=float, default=None, dest="job_deadline",
                   help="socket backend: speculatively re-dispatch a job "
                        "still in flight after this many seconds (straggler "
                        "mitigation; results are deduped, never duplicated)")
    p.add_argument("--json-out", default=None, dest="json_out",
                   help="also write per-cell mean results to a JSON file "
                        "(includes backend telemetry: retries, speculation, "
                        "quarantine, fallback)")
    p.add_argument("--status-file", default=None, dest="status_file",
                   help="mirror live sweep/fleet state to this JSON file "
                        "(atomically rewritten; read it with `repro status`)")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("worker", help="sweep-execution worker daemon (socket backend)")
    p.add_argument("--host", default="127.0.0.1", help="job server to connect to")
    p.add_argument("--port", type=int, default=7781)
    p.add_argument("--label", default=None, help="worker name shown in telemetry")
    p.add_argument("--heartbeat", type=float, default=2.0,
                   help="seconds between heartbeats (also sent mid-simulation)")
    p.add_argument("--connect-timeout", type=float, default=60.0,
                   dest="connect_timeout",
                   help="exit after this long without a reachable job server")
    p.add_argument("--max-sessions", type=int, default=None, dest="max_sessions",
                   help="exit after serving N server sessions (tests/CI)")
    p.add_argument("--welcome-timeout", type=float, default=10.0,
                   dest="welcome_timeout",
                   help="give up on a server that accepts but never sends "
                        "welcome after this many seconds")
    p.add_argument("--backoff-seed", type=int, default=0, dest="backoff_seed",
                   help="seed for the reconnect backoff jitter (give each "
                        "worker of a fleet a distinct seed)")
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser(
        "status",
        help="render a sweep's live fleet status and journal progress",
    )
    p.add_argument("--status-file", default=".sweep-status.json",
                   dest="status_file",
                   help="status snapshot written by `repro sweep "
                        "--status-file` ('' skips it)")
    p.add_argument("--store", default=".sweep-cache",
                   help="result store whose journals report per-sweep "
                        "progress ('' skips them)")
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser("security", help="PARA configuration for a threshold")
    p.add_argument("--nrh", type=float, default=128.0)
    p.add_argument("--slack", type=int, default=0)
    p.set_defaults(func=_cmd_security)

    p = sub.add_parser("perf", help="measure kernel throughput (events/sec)")
    p.add_argument("--instructions", type=int, default=200_000,
                   help="measured instructions per workload; the default "
                        "keeps each rep's timed window >= ~1s (matches the "
                        "pinned pre-opt reference walls)")
    p.add_argument("--reps", type=int, default=3,
                   help="runs per workload; the median wall time is reported")
    p.add_argument("--out", default="BENCH_kernel.json",
                   help="output JSON path ('' disables writing); floors are "
                        "checked by tools/check_kernel_perf.py")
    p.add_argument("--profile", action="store_true",
                   help="also attribute wall time to kernel phases "
                        "(schedule, queue-scan, next-event, refresh-engine, "
                        "bus-gating, trace-refill) via one instrumented run "
                        "per workload; recorded under 'profile' in --out")
    p.set_defaults(func=_cmd_perf)

    p = sub.add_parser(
        "lint",
        help="AST-based invariant linter for the simulator sources",
    )
    p.add_argument("--root", default=None,
                   help="tree to lint (default: the installed src/repro)")
    p.add_argument("--rules", default=None,
                   help="comma list of rules to run (default: all)")
    p.add_argument("--baseline", default=None,
                   help="baseline JSON path ('' disables; default: the "
                        "committed src/repro/lint/baseline.json when "
                        "linting the default root)")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable report (version 1)")
    p.add_argument("--list-rules", action="store_true", dest="list_rules",
                   help="print the rule catalog and exit")
    p.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
