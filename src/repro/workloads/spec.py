"""SPEC CPU2006-like trace profiles.

The paper randomly mixes SPEC CPU2006 benchmarks (§7).  Without the SPEC
binaries we characterize each benchmark by the publicly well-known
properties that matter to a DRAM study — LLC MPKI, row-buffer locality, and
read/write balance (values in line with published SPEC2006 memory
characterization studies; row locality reflects row-buffer hit rates under
an open-row policy with MOP mapping, which are high for streaming
benchmarks).  The *names* are suffixed "-like" to make the
substitution explicit.
"""

from __future__ import annotations

from repro.sim.trace import TraceProfile

#: Memory-intensity classes follow the common SPEC2006 taxonomy:
#: high-MPKI (mcf, lbm, milc, libquantum, soplex, omnetpp, leslie3d,
#: GemsFDTD, sphinx3), medium, and compute-bound low-MPKI benchmarks.
SPEC_PROFILES: tuple[TraceProfile, ...] = (
    TraceProfile("mcf-like", mpki=33.0, row_locality=0.45, read_fraction=0.72,
                 working_set_rows=16384),
    TraceProfile("lbm-like", mpki=25.0, row_locality=0.85, read_fraction=0.55,
                 working_set_rows=8192),
    TraceProfile("milc-like", mpki=18.0, row_locality=0.62, read_fraction=0.70,
                 working_set_rows=8192),
    TraceProfile("libquantum-like", mpki=22.0, row_locality=0.92, read_fraction=0.80,
                 working_set_rows=2048),
    TraceProfile("soplex-like", mpki=21.0, row_locality=0.65, read_fraction=0.75,
                 working_set_rows=8192),
    TraceProfile("omnetpp-like", mpki=17.0, row_locality=0.50, read_fraction=0.68,
                 working_set_rows=16384),
    TraceProfile("leslie3d-like", mpki=14.0, row_locality=0.80, read_fraction=0.65,
                 working_set_rows=4096),
    TraceProfile("GemsFDTD-like", mpki=16.0, row_locality=0.75, read_fraction=0.60,
                 working_set_rows=8192),
    TraceProfile("sphinx3-like", mpki=12.0, row_locality=0.70, read_fraction=0.82,
                 working_set_rows=4096),
    TraceProfile("bwaves-like", mpki=10.0, row_locality=0.85, read_fraction=0.72,
                 working_set_rows=4096),
    TraceProfile("zeusmp-like", mpki=7.0, row_locality=0.70, read_fraction=0.64,
                 working_set_rows=4096),
    TraceProfile("cactusADM-like", mpki=5.5, row_locality=0.50, read_fraction=0.62,
                 working_set_rows=4096),
    TraceProfile("wrf-like", mpki=4.5, row_locality=0.60, read_fraction=0.66,
                 working_set_rows=2048),
    TraceProfile("astar-like", mpki=3.5, row_locality=0.35, read_fraction=0.70,
                 working_set_rows=8192),
    TraceProfile("gcc-like", mpki=2.5, row_locality=0.45, read_fraction=0.67,
                 working_set_rows=4096),
    TraceProfile("h264ref-like", mpki=1.2, row_locality=0.65, read_fraction=0.70,
                 working_set_rows=1024),
    TraceProfile("gobmk-like", mpki=0.8, row_locality=0.40, read_fraction=0.68,
                 working_set_rows=2048),
    TraceProfile("povray-like", mpki=0.3, row_locality=0.50, read_fraction=0.70,
                 working_set_rows=512),
)


def profile_by_name(name: str) -> TraceProfile:
    for profile in SPEC_PROFILES:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown profile {name!r}")
