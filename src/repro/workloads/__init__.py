"""SPEC CPU2006-like workload profiles and multiprogrammed mixes (§7)."""

from repro.workloads.spec import SPEC_PROFILES, profile_by_name
from repro.workloads.mixes import make_mixes, mix_for

__all__ = ["SPEC_PROFILES", "make_mixes", "mix_for", "profile_by_name"]
