"""Randomly chosen multiprogrammed workload mixes (§7: 125 8-core mixes).

The evaluation pool defaults to the memory-intensive SPEC2006 subset: with
eight cores sharing one DDR4-2400 channel and an 8 MiB LLC, the paper's
average refresh overheads (26.3% at 128 Gbit — essentially the full
tRFC/tREFI blocking fraction) indicate a bandwidth-saturated memory system,
which is the regime the intensive subset reproduces.  ``intensive=False``
draws from the full profile table instead.
"""

from __future__ import annotations

import numpy as np

from repro.sim.trace import TraceProfile
from repro.workloads.spec import SPEC_PROFILES

#: Minimum MPKI for the memory-intensive evaluation pool.
INTENSIVE_MPKI = 10.0


def _pool(intensive: bool) -> list[TraceProfile]:
    if not intensive:
        return list(SPEC_PROFILES)
    return [p for p in SPEC_PROFILES if p.mpki >= INTENSIVE_MPKI]


def mix_for(
    mix_id: int, cores: int = 8, seed: int = 2022, intensive: bool = True
) -> list[TraceProfile]:
    """The ``mix_id``-th random mix, stable across runs."""
    pool = _pool(intensive)
    rng = np.random.default_rng(seed + mix_id)
    picks = rng.integers(0, len(pool), size=cores)
    return [pool[int(i)] for i in picks]


def make_mixes(
    count: int = 125, cores: int = 8, seed: int = 2022, intensive: bool = True
) -> list[list[TraceProfile]]:
    """The paper's 125 randomly chosen 8-core multiprogrammed workloads."""
    return [mix_for(i, cores=cores, seed=seed, intensive=intensive) for i in range(count)]
