"""The four data patterns used by the paper's experiments (§4.1).

All ones (0xFF), all zeros (0x00), checkerboard (0xAA), and inverse
checkerboard (0x55); each test initializes the two rows with a pattern and
its inverse.
"""

from __future__ import annotations

import enum

import numpy as np


class DataPattern(enum.Enum):
    """A row-fill byte pattern."""

    ALL_ONES = 0xFF
    ALL_ZEROS = 0x00
    CHECKERBOARD = 0xAA
    INV_CHECKERBOARD = 0x55

    @property
    def byte(self) -> int:
        return self.value

    @property
    def inverse(self) -> "DataPattern":
        return _INVERSES[self]

    def fill(self, nbytes: int) -> np.ndarray:
        """A row-sized array filled with this pattern."""
        return np.full(nbytes, self.byte, dtype=np.uint8)

    def count_bitflips(self, data: np.ndarray) -> int:
        """Number of bit flips in ``data`` relative to this pattern."""
        diff = np.bitwise_xor(data, np.uint8(self.byte))
        return int(np.unpackbits(diff).sum())


_INVERSES = {
    DataPattern.ALL_ONES: DataPattern.ALL_ZEROS,
    DataPattern.ALL_ZEROS: DataPattern.ALL_ONES,
    DataPattern.CHECKERBOARD: DataPattern.INV_CHECKERBOARD,
    DataPattern.INV_CHECKERBOARD: DataPattern.CHECKERBOARD,
}

#: The full pattern sweep of Algorithm 1.
ALL_PATTERNS = (
    DataPattern.ALL_ONES,
    DataPattern.ALL_ZEROS,
    DataPattern.CHECKERBOARD,
    DataPattern.INV_CHECKERBOARD,
)
