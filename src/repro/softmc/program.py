"""Timed DRAM command programs.

A :class:`Program` is a builder for the command sequences the experiments
issue — the software analogue of a SoftMC instruction buffer.  Waits are
expressed in picoseconds and accumulate into absolute issue times; the real
infrastructure's 1.5 ns command-slot granularity (§4.1 footnote 5) is
enforced by the host, not the builder, so tests can also express nominal
JEDEC sequences exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.commands import Command, CommandKind


@dataclass
class Program:
    """A growing sequence of absolutely-timed commands."""

    start_ps: int = 0
    commands: list[Command] = field(default_factory=list)
    _cursor_ps: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._cursor_ps = self.start_ps

    @property
    def cursor_ps(self) -> int:
        """Issue time of the next command."""
        return self._cursor_ps

    def _push(self, kind: CommandKind, wait_ps: int, **fields) -> "Program":
        if wait_ps < 0:
            raise ValueError("wait must be non-negative")
        self.commands.append(Command(kind=kind, time_ps=self._cursor_ps, **fields))
        self._cursor_ps += wait_ps
        return self

    # ------------------------------------------------------------------
    # Instruction set
    # ------------------------------------------------------------------
    def act(self, bank: int, row: int, wait_ps: int) -> "Program":
        """Activate ``row`` then wait ``wait_ps`` before the next command."""
        return self._push(CommandKind.ACT, wait_ps, bank=bank, row=row)

    def pre(self, bank: int, wait_ps: int) -> "Program":
        """Precharge the bank then wait ``wait_ps``."""
        return self._push(CommandKind.PRE, wait_ps, bank=bank)

    def rd(self, bank: int, col: int, wait_ps: int) -> "Program":
        """Read a column of the open row."""
        return self._push(CommandKind.RD, wait_ps, bank=bank, col=col)

    def wr(self, bank: int, col: int, wait_ps: int, fill: int | None = None) -> "Program":
        """Write a column; ``fill`` writes the whole open row (bulk mode)."""
        meta = {"fill": fill} if fill is not None else {}
        self.commands.append(
            Command(kind=CommandKind.WR, time_ps=self._cursor_ps, bank=bank, col=col, meta=meta)
        )
        self._cursor_ps += wait_ps
        return self

    def ref(self, wait_ps: int) -> "Program":
        """Rank-level refresh."""
        return self._push(CommandKind.REF, wait_ps, rank=0)

    def wait(self, wait_ps: int) -> "Program":
        """Idle for ``wait_ps`` (Algorithm 2's no-HiRA arm)."""
        if wait_ps < 0:
            raise ValueError("wait must be non-negative")
        self._cursor_ps += wait_ps
        return self

    def hira(
        self,
        bank: int,
        row_a: int,
        row_b: int,
        t1_ps: int,
        t2_ps: int,
        settle_ps: int,
    ) -> "Program":
        """The HiRA sequence: ACT RowA, wait t1, PRE, wait t2, ACT RowB.

        ``settle_ps`` is the wait after the second ACT (tRAS in Algorithm 1
        so that RowB's charge restoration completes).
        """
        return (
            self.act(bank, row_a, wait_ps=t1_ps)
            .pre(bank, wait_ps=t2_ps)
            .act(bank, row_b, wait_ps=settle_ps)
        )

    def __len__(self) -> int:
        return len(self.commands)

    def __iter__(self):
        return iter(self.commands)
