"""SoftMC-style characterization infrastructure.

Substitutes for the paper's FPGA testbed (§4.1): a host that issues
picosecond-timed DRAM command programs to a behavioural chip model, plus the
data patterns and comparison helpers the experiments use.
"""

from repro.softmc.host import SoftMCHost
from repro.softmc.patterns import ALL_PATTERNS, DataPattern
from repro.softmc.program import Program

__all__ = ["ALL_PATTERNS", "DataPattern", "Program", "SoftMCHost"]
