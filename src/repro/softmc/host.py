"""The SoftMC host: drives a chip with timed command programs.

The host mirrors the experimental setup of §4.1: it can disable the chip's
self-regulation (we simply never issue REF during characterization), keeps
tests short enough that retention is irrelevant (the chip model has no
retention-error mechanism), and offers the initialize / read-back / compare
primitives Algorithms 1 and 2 are written in terms of.
"""

from __future__ import annotations

import numpy as np

from repro.chip.chip_model import DramChip
from repro.dram.errors import TimingViolation
from repro.softmc.patterns import DataPattern
from repro.softmc.program import Program


class SoftMCHost:
    """Issues command programs to a :class:`~repro.chip.chip_model.DramChip`.

    Attributes:
        chip: The device under test.
        slot_ps: Minimum spacing between consecutive commands.  The paper's
            infrastructure issues a command every 1.5 ns (§4.1); nominal
            JEDEC sequences easily satisfy this.
    """

    def __init__(self, chip: DramChip, slot_ps: int = 1_500):
        self.chip = chip
        self.slot_ps = slot_ps
        # A new host session resumes from the chip's clock (the device's
        # command history is monotonic even across host reconnects).
        self._time_ps = max(0, chip._last_cmd_ps + slot_ps)

    @property
    def time_ps(self) -> int:
        """Current host time (advances monotonically across programs)."""
        return self._time_ps

    # ------------------------------------------------------------------
    # Program execution
    # ------------------------------------------------------------------
    def run(self, program: Program) -> None:
        """Issue every command of a program, validating slot spacing."""
        prev_ps: int | None = None
        for cmd in program:
            if prev_ps is not None and cmd.time_ps - prev_ps < self.slot_ps:
                raise TimingViolation(
                    f"commands {prev_ps}→{cmd.time_ps} ps violate the "
                    f"{self.slot_ps} ps command slot"
                )
            prev_ps = cmd.time_ps
            self.chip.issue(cmd)
        self._time_ps = max(self._time_ps, program.cursor_ps)

    def program(self) -> Program:
        """A new program starting at the current host time."""
        return Program(start_ps=self._time_ps)

    def advance(self, wait_ps: int) -> None:
        """Let time pass without issuing commands."""
        if wait_ps < 0:
            raise ValueError("wait must be non-negative")
        self._time_ps += wait_ps

    # ------------------------------------------------------------------
    # Row-level convenience primitives used by the experiment drivers
    # ------------------------------------------------------------------
    def initialize(self, bank: int, row: int, pattern: DataPattern) -> None:
        """Write a data pattern to a whole row (ACT + bulk WR + PRE)."""
        tp = self.chip.timing
        prog = (
            self.program()
            .act(bank, row, wait_ps=tp.trcd)
            .wr(bank, 0, wait_ps=max(tp.tras - tp.trcd, self.slot_ps), fill=pattern.byte)
            .pre(bank, wait_ps=tp.trp)
        )
        self.run(prog)

    def read_row(self, bank: int, row: int) -> np.ndarray:
        """Read a whole row back with nominal timing."""
        tp = self.chip.timing
        prog = self.program().act(bank, row, wait_ps=tp.trcd).rd(bank, 0, wait_ps=self.slot_ps)
        self.run(prog)
        __, data = self.chip.read_open_row(bank)
        close = self.program()
        close.wait(max(tp.tras - tp.trcd - self.slot_ps, 0))
        close.pre(bank, wait_ps=tp.trp)
        self.run(close)
        return data

    def compare_data(self, pattern: DataPattern, bank: int, row: int) -> int:
        """Bit flips in ``row`` relative to ``pattern`` (0 means pass)."""
        return pattern.count_bitflips(self.read_row(bank, row))

    # ------------------------------------------------------------------
    # HiRA and hammering primitives
    # ------------------------------------------------------------------
    def hira(
        self,
        bank: int,
        row_a: int,
        row_b: int,
        t1_ps: int | None = None,
        t2_ps: int | None = None,
        close: bool = True,
    ) -> None:
        """Perform one HiRA operation (and optionally close both rows)."""
        tp = self.chip.timing
        t1 = tp.hira_t1 if t1_ps is None else t1_ps
        t2 = tp.hira_t2 if t2_ps is None else t2_ps
        prog = self.program().hira(bank, row_a, row_b, t1_ps=t1, t2_ps=t2, settle_ps=tp.tras)
        if close:
            prog.pre(bank, wait_ps=tp.trp)
        self.run(prog)

    def activate_refresh(self, bank: int, row: int) -> None:
        """Refresh one row with a nominal ACT/PRE pair."""
        tp = self.chip.timing
        self.run(self.program().act(bank, row, wait_ps=tp.tras).pre(bank, wait_ps=tp.trp))

    def hammer(self, bank: int, rows: list[int], count: int) -> None:
        """Activate each row ``count`` times (bulk FPGA-style loop)."""
        self.chip.bulk_hammer(bank, rows, count)
        self._time_ps = max(self._time_ps, self.chip._last_cmd_ps)
