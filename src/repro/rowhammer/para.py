"""PARA: Probabilistic Row Activation [84], as employed by PreventiveRC.

PARA is stateless: on every row activation it decides, with probability
``pth``, to preventively refresh one of the two neighbours of the activated
row (each side with ``pth/2``).  §9 argues PARA is the most
hardware-scalable preventive-refresh defense; §9.1 revisits how ``pth``
must be configured, including the extra aggressiveness needed when
refreshes may be queued for ``tRefSlack`` (HiRA-MC).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rowhammer.security import DEFAULT_TARGET, n_ref_slack_for, solve_pth


@dataclass
class Para:
    """A configured PARA instance.

    Attributes:
        pth: Probability of generating a preventive refresh per activation.
        rng: Random source for the Bernoulli/side draws (seeded for
            reproducible simulations).
    """

    pth: float
    rng: np.random.Generator

    def __post_init__(self) -> None:
        if not 0.0 <= self.pth <= 1.0:
            raise ValueError("pth must be in [0, 1]")

    @classmethod
    def configured_for(
        cls,
        nrh: float,
        tref_slack_ns: float = 0.0,
        target: float = DEFAULT_TARGET,
        seed: int = 0,
        trc_ns: float = 46.25,
    ) -> "Para":
        """Build a PARA whose pth meets the reliability target (§9.1).

        ``tref_slack_ns`` accounts for HiRA-MC's queueing delay: the
        defense triggers earlier so that the attacker's extra activations
        during the slack cannot push the hammer count past the threshold
        (Expressions 7–8).
        """
        pth = solve_pth(
            nrh=nrh,
            n_ref_slack=n_ref_slack_for(tref_slack_ns, trc_ns),
            target=target,
            trc_ns=trc_ns,
        )
        return cls(pth=pth, rng=np.random.default_rng(seed))

    def preventive_refresh_target(
        self, activated_row: int, rows_in_bank: int, bank_key=None
    ) -> int | None:
        """Neighbour row to preventively refresh, or None.

        Returns the victim row chosen (row ± 1, clamped to the bank) when
        the Bernoulli draw fires.  ``bank_key`` exists for interface parity
        with stateful defenses (PARA is stateless and ignores it).
        """
        if self.rng.random() >= self.pth:
            return None
        side = 1 if self.rng.random() < 0.5 else -1
        victim = activated_row + side
        if victim < 0 or victim >= rows_in_bank:
            victim = activated_row - side
        return victim
