"""RowHammer substrate: thresholds, mapping, PARA, and security analysis.

- :mod:`repro.rowhammer.mapping` — recovering the DRAM-internal row mapping
  with single-sided hammering (§4.3 footnote 8).
- :mod:`repro.rowhammer.threshold` — Algorithm 2 and binary-search
  RowHammer-threshold measurement.
- :mod:`repro.rowhammer.para` — the PARA preventive-refresh mechanism [84].
- :mod:`repro.rowhammer.security` — the paper's revisited PARA security
  analysis (Expressions 2–9, §9.1).
"""

from repro.rowhammer.defense import GrapheneDefense
from repro.rowhammer.graphene import GrapheneTracker
from repro.rowhammer.mapping import find_aggressors, find_victims
from repro.rowhammer.para import Para
from repro.rowhammer.security import (
    legacy_pth,
    legacy_success_probability,
    rowhammer_success_probability,
    k_factor,
    solve_pth,
)
from repro.rowhammer.threshold import HammerTestConfig, measure_threshold, run_hammer_test

__all__ = [
    "GrapheneDefense",
    "GrapheneTracker",
    "HammerTestConfig",
    "Para",
    "find_aggressors",
    "find_victims",
    "k_factor",
    "legacy_pth",
    "legacy_success_probability",
    "measure_threshold",
    "rowhammer_success_probability",
    "run_hammer_test",
    "solve_pth",
]
