"""Algorithm 2 and binary-search RowHammer-threshold measurement (§4.3).

The experiment hammers a victim's two physically adjacent rows
(double-sided), optionally refreshing the victim halfway through with a
HiRA operation whose *second* activation targets the victim.  If the chip
performs the second activation, the measured RowHammer threshold roughly
doubles; if the chip ignores it (Samsung-/Micron-like designs), the
threshold is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.softmc.host import SoftMCHost
from repro.softmc.patterns import DataPattern


@dataclass(frozen=True, slots=True)
class HammerTestConfig:
    """Parameters of one Algorithm 2 run."""

    bank: int
    victim: int
    aggressors: tuple[int, int]
    dummy_row: int
    pattern: DataPattern = DataPattern.ALL_ONES
    t1_ps: int | None = None
    t2_ps: int | None = None


def run_hammer_test(host: SoftMCHost, config: HammerTestConfig, hammer_count: int, with_hira: bool) -> bool:
    """One Algorithm 2 iteration; returns True if the victim flipped.

    Steps (paper Algorithm 2): initialize the four rows; hammer each
    aggressor HC/2 times; either perform HiRA (dummy → victim) or wait the
    equivalent time; hammer HC/2 more; check the victim.
    """
    bank = config.bank
    tp = host.chip.timing
    host.initialize(bank, config.victim, config.pattern)
    host.initialize(bank, config.dummy_row, config.pattern.inverse)
    for aggressor in config.aggressors:
        host.initialize(bank, aggressor, config.pattern.inverse)

    first_half = hammer_count // 2
    second_half = hammer_count - first_half
    host.hammer(bank, list(config.aggressors), first_half)

    if with_hira:
        host.hira(
            bank,
            config.dummy_row,
            config.victim,
            t1_ps=config.t1_ps,
            t2_ps=config.t2_ps,
            close=True,
        )
    else:
        t1 = tp.hira_t1 if config.t1_ps is None else config.t1_ps
        t2 = tp.hira_t2 if config.t2_ps is None else config.t2_ps
        host.advance(t1 + t2 + tp.tras + tp.trp)

    host.hammer(bank, list(config.aggressors), second_half)
    return host.compare_data(config.pattern, bank, config.victim) > 0


def measure_threshold(
    host: SoftMCHost,
    config: HammerTestConfig,
    with_hira: bool,
    lo: int = 1_000,
    hi: int = 400_000,
    resolution: int = 256,
) -> int:
    """Minimum hammer count that flips the victim, via binary search.

    Mirrors the methodology of prior work [79, 129, 180]: bisect on the
    hammer count until the bracket is narrower than ``resolution``.
    Returns ``hi`` if even ``hi`` hammers cause no flip.
    """
    if not run_hammer_test(host, config, hi, with_hira):
        return hi
    if run_hammer_test(host, config, lo, with_hira):
        return lo
    low, high = lo, hi
    while high - low > resolution:
        mid = (low + high) // 2
        if run_hammer_test(host, config, mid, with_hira):
            high = mid
        else:
            low = mid
    return high


def normalized_threshold(
    host: SoftMCHost,
    config: HammerTestConfig,
    lo: int = 1_000,
    hi: int = 400_000,
    resolution: int = 256,
) -> tuple[int, int, float]:
    """(threshold without HiRA, with HiRA, ratio) for one victim row."""
    without = measure_threshold(host, config, with_hira=False, lo=lo, hi=hi, resolution=resolution)
    with_h = measure_threshold(host, config, with_hira=True, lo=lo, hi=hi, resolution=resolution)
    return without, with_h, with_h / without
