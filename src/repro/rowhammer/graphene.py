"""A Graphene-like counter-based RowHammer tracker [135].

§5.1.2 states HiRA-MC supports *all* memory-controller-based preventive
refresh mechanisms, and that counter-based defenses must be configured with
a hammer-count threshold reduced by ``tRefSlack / tRC`` so an attacker
cannot exploit the queueing delay.  This module provides such a mechanism:
a Misra–Gries heavy-hitter summary over activated rows (the core of
Graphene) that triggers a preventive refresh of a row's neighbours when its
estimated activation count crosses the (slack-adjusted) threshold.

Unlike PARA it is deterministic and stateful; unlike PARA its hardware cost
grows as the RowHammer threshold shrinks (the paper's argument for
evaluating PARA, §9) — the ``table_entries`` property quantifies that.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class GrapheneTracker:
    """Misra–Gries activation tracking for one DRAM bank.

    Attributes:
        threshold: Estimated activation count at which a row's neighbours
            are preventively refreshed (then the row's counter resets).
        entries: Counter-table size.  Misra–Gries guarantees any row with
            more than ``total/ (entries+1)`` activations has an entry, so
            sizing follows ``activations_per_window / threshold`` (the
            Graphene rule).
    """

    threshold: int
    entries: int
    counters: dict[int, int] = field(default_factory=dict)
    spillover: int = 0
    activations_seen: int = 0

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.entries < 1:
            raise ValueError("entries must be >= 1")

    @classmethod
    def configured_for(
        cls,
        nrh: float,
        tref_slack_acts: int = 0,
        trefw_ns: float = 64e6,
        trc_ns: float = 46.25,
        safety_divisor: float = 4.0,
    ) -> "GrapheneTracker":
        """Size the tracker per §5.1.2 and the Graphene sizing rule.

        The trigger threshold is ``NRH / safety_divisor`` (Graphene
        refreshes well before the threshold), *reduced* by the attacker's
        extra activations during tRefSlack (§5.1.2).
        """
        threshold = int(nrh / safety_divisor) - tref_slack_acts
        if threshold < 1:
            raise ValueError(
                "NRH too small for this tRefSlack: the tracker would have "
                "to refresh on every activation"
            )
        max_acts = trefw_ns / trc_ns
        entries = max(1, int(max_acts / threshold))
        return cls(threshold=threshold, entries=entries)

    # ------------------------------------------------------------------
    def observe(self, row: int) -> int | None:
        """Record one activation; returns the row if it crossed the
        threshold (the caller then preventively refreshes its neighbours
        and the counter resets)."""
        self.activations_seen += 1
        count = self.counters.get(row)
        if count is not None:
            count += 1
            if count >= self.threshold + self.spillover:
                del self.counters[row]
                return row
            self.counters[row] = count
            return None
        if len(self.counters) < self.entries:
            self.counters[row] = self.spillover + 1
            return None
        # Misra–Gries decrement step, implemented as a spillover floor so
        # it stays O(1): a new row starts at the current floor.
        self.spillover += 1
        drained = [r for r, c in self.counters.items() if c <= self.spillover]
        for r in drained:
            del self.counters[r]
        self.counters[row] = self.spillover + 1
        return None

    def reset_window(self) -> None:
        """Start a new refresh window (counts are per-tREFW)."""
        self.counters.clear()
        self.spillover = 0
        self.activations_seen = 0

    def estimated_count(self, row: int) -> int:
        """Upper-bound estimate of a row's activations this window."""
        return self.counters.get(row, self.spillover)

    @property
    def table_bits(self) -> int:
        """Storage cost: (row address + counter) per entry.

        This is the scaling §9 argues against: entries grow as NRH falls,
        and cannot be grown after chip deployment.
        """
        row_bits = 17
        counter_bits = max(1, self.threshold.bit_length())
        return self.entries * (row_bits + counter_bits)
