"""Revisited PARA security analysis (§9.1, Expressions 2–9).

PARA refreshes a neighbour of every activated row with probability
``pth / 2`` per side.  The paper models a RowHammer attack as a sequence of
*failed attempts* (the victim is refreshed before the hammer count reaches
the threshold) followed by one *successful attempt*, and derives the overall
success probability

    pRH = Σ_{Nf=0}^{Nf_max} (1 − pth/2)^{Nf + NRH − NRefSlack} · (pth/2)^{Nf}
                                                            (Expression 8)

with ``Nf_max = (tREFW/tRC − NRH − NRefSlack)/2`` (Expression 7).  The sum
is a geometric series in ``x = (pth/2)(1 − pth/2)``, so we evaluate it in
closed form in the log domain — exact even at the 1e-15 reliability target.

``PARA-Legacy`` [84] assumed the attacker hammers exactly ``NRH`` times and
no more: ``pRH_legacy = (1 − pth/2)^NRH``.  Expression 9's ``k`` factor is
the ratio of the two.
"""

from __future__ import annotations

import math

#: Consumer memory reliability target used throughout §9.1.
DEFAULT_TARGET = 1e-15

#: DDR4 defaults used by the paper's evaluation (§9.1.2, footnote 13).
DEFAULT_TREFW_NS = 64_000_000.0
DEFAULT_TRC_NS = 46.25


def max_failed_attempts(
    nrh: float,
    n_ref_slack: float = 0.0,
    trefw_ns: float = DEFAULT_TREFW_NS,
    trc_ns: float = DEFAULT_TRC_NS,
) -> int:
    """Expression 7: the maximum number of failed attempts in a window."""
    activations = trefw_ns / trc_ns
    nf_max = (activations - nrh - n_ref_slack) / 2.0
    if nf_max < 0:
        return 0
    return int(nf_max)


def log_rowhammer_success_probability(
    pth: float,
    nrh: float,
    n_ref_slack: float = 0.0,
    trefw_ns: float = DEFAULT_TREFW_NS,
    trc_ns: float = DEFAULT_TRC_NS,
) -> float:
    """Natural log of Expression 8 (exact, log-domain geometric series)."""
    if not 0.0 < pth <= 1.0:
        raise ValueError("pth must be in (0, 1]")
    if nrh <= 0:
        raise ValueError("NRH must be positive")
    q = pth / 2.0
    exponent = nrh - n_ref_slack
    log_base = exponent * math.log1p(-q)
    x = q * (1.0 - q)  # ratio of the geometric series, always < 1/4
    nf_max = max_failed_attempts(nrh, n_ref_slack, trefw_ns, trc_ns)
    # (1 - x^(Nf_max + 1)) / (1 - x), guarded against underflow of x^n.
    log_x_pow = (nf_max + 1) * math.log(x) if x > 0.0 else float("-inf")
    if log_x_pow < -60:
        series = 1.0 / (1.0 - x)
    else:
        series = (1.0 - math.exp(log_x_pow)) / (1.0 - x)
    return log_base + math.log(series)


def rowhammer_success_probability(
    pth: float,
    nrh: float,
    n_ref_slack: float = 0.0,
    trefw_ns: float = DEFAULT_TREFW_NS,
    trc_ns: float = DEFAULT_TRC_NS,
) -> float:
    """Expression 8: overall RowHammer success probability under PARA."""
    return math.exp(
        log_rowhammer_success_probability(pth, nrh, n_ref_slack, trefw_ns, trc_ns)
    )


def legacy_success_probability(pth: float, nrh: float) -> float:
    """PARA-Legacy's optimistic model: ``(1 − pth/2)^NRH``."""
    return math.exp(nrh * math.log1p(-pth / 2.0))


def legacy_pth(nrh: float, target: float = DEFAULT_TARGET) -> float:
    """PARA-Legacy's probability threshold for a success-probability target."""
    if not 0.0 < target < 1.0:
        raise ValueError("target must be in (0, 1)")
    return 2.0 * (1.0 - math.exp(math.log(target) / nrh))


def solve_pth(
    nrh: float,
    n_ref_slack: float = 0.0,
    target: float = DEFAULT_TARGET,
    trefw_ns: float = DEFAULT_TREFW_NS,
    trc_ns: float = DEFAULT_TRC_NS,
    tol: float = 1e-12,
) -> float:
    """Step 5 (§9.1.2): the pth that meets the reliability target.

    ``log pRH`` is strictly decreasing in pth, so bisection converges; the
    result maintains ``pRH ≤ target`` across all RowHammer thresholds
    (Fig. 11b's flat revisited curves).
    """
    log_target = math.log(target)
    lo, hi = 1e-9, 1.0
    if log_rowhammer_success_probability(hi, nrh, n_ref_slack, trefw_ns, trc_ns) > log_target:
        raise ValueError(
            f"even pth=1 cannot reach the target {target} for NRH={nrh}"
        )
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        value = log_rowhammer_success_probability(mid, nrh, n_ref_slack, trefw_ns, trc_ns)
        if value > log_target:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            break
    return hi


def k_factor(
    pth: float,
    nrh: float,
    n_ref_slack: float = 0.0,
    trefw_ns: float = DEFAULT_TREFW_NS,
    trc_ns: float = DEFAULT_TRC_NS,
) -> float:
    """Expression 9: ``pRH = k × pRH_legacy``.

    With the paper's parameters this gives k ≈ 1.0331 at NRH = 1024 and
    k ≈ 1.3212 at NRH = 64 (using PARA-Legacy's pth values).
    """
    log_k = log_rowhammer_success_probability(
        pth, nrh, n_ref_slack, trefw_ns, trc_ns
    ) - nrh * math.log1p(-pth / 2.0)
    return math.exp(log_k)


def n_ref_slack_for(tref_slack_ns: float, trc_ns: float = DEFAULT_TRC_NS) -> float:
    """Activations an attacker fits into a tRefSlack window (§9.1.2 step 4)."""
    if tref_slack_ns < 0:
        raise ValueError("tRefSlack must be non-negative")
    return tref_slack_ns / trc_ns
