"""Pluggable preventive-refresh defenses for PreventiveRC (§5.1.2).

HiRA-MC "provides parallelism support for all memory controller-based
preventive refresh mechanisms".  The engines observe demand activations
through a single duck-typed interface — ``preventive_refresh_target(row,
rows_in_bank, bank_key)`` — implemented by the probabilistic
:class:`~repro.rowhammer.para.Para` and by the counter-based
:class:`GrapheneDefense` below.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.rowhammer.graphene import GrapheneTracker


@dataclass
class GrapheneDefense:
    """Counter-based preventive refresh using per-bank Misra–Gries trackers.

    When a row's estimated activation count crosses the (slack-adjusted)
    threshold, *both* physical neighbours are preventively refreshed; the
    interface yields one victim per observation, so the second neighbour is
    returned on the next call (a real controller would enqueue both in the
    same cycle — the one-activation delay is immaterial at these rates).
    """

    nrh: float
    tref_slack_acts: int = 0
    _trackers: dict = field(default_factory=dict)
    _pending: deque = field(default_factory=deque)

    def _tracker_for(self, bank_key) -> GrapheneTracker:
        tracker = self._trackers.get(bank_key)
        if tracker is None:
            tracker = GrapheneTracker.configured_for(
                nrh=self.nrh, tref_slack_acts=self.tref_slack_acts
            )
            self._trackers[bank_key] = tracker
        return tracker

    def preventive_refresh_target(
        self, activated_row: int, rows_in_bank: int, bank_key=None
    ) -> int | None:
        if self._pending:
            return self._pending.popleft()
        tracker = self._tracker_for(bank_key)
        hot = tracker.observe(activated_row)
        if hot is None:
            return None
        low, high = hot - 1, hot + 1
        victims = [v for v in (low, high) if 0 <= v < rows_in_bank]
        if not victims:
            return None
        first = victims[0]
        self._pending.extend(victims[1:])
        return first

    def total_table_bits(self) -> int:
        """Aggregate counter-table storage across instantiated banks."""
        return sum(t.table_bits for t in self._trackers.values())
