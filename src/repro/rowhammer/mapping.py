"""Reverse engineering the DRAM-internal row mapping.

DRAM manufacturers internally remap memory-controller-visible row addresses
to physical rows (§4.3 footnote 8), so the rows adjacent to a victim must be
discovered experimentally.  Like prior work, we use single-sided hammering:
hammering a single row heavily flips bits only in its *physically* adjacent
rows, which identifies them regardless of the logical numbering.
"""

from __future__ import annotations

from repro.softmc.host import SoftMCHost
from repro.softmc.patterns import DataPattern


def find_victims(
    host: SoftMCHost,
    bank: int,
    aggressor: int,
    candidates: list[int],
    hammer_count: int = 400_000,
    pattern: DataPattern = DataPattern.ALL_ONES,
) -> list[int]:
    """Rows among ``candidates`` that flip when ``aggressor`` is hammered.

    The returned rows are the aggressor's physical neighbours (in logical
    row numbers).  ``hammer_count`` defaults to well above any realistic
    RowHammer threshold so the test is decisive.
    """
    targets = [row for row in candidates if row != aggressor]
    for row in targets:
        host.initialize(bank, row, pattern)
    host.initialize(bank, aggressor, pattern.inverse)
    host.hammer(bank, [aggressor], hammer_count)
    return [row for row in targets if host.compare_data(pattern, bank, row) > 0]


def find_aggressors(
    host: SoftMCHost,
    bank: int,
    victim: int,
    search_radius: int = 8,
    hammer_count: int = 400_000,
    pattern: DataPattern = DataPattern.ALL_ONES,
) -> list[int]:
    """Logical rows whose hammering flips bits in ``victim``.

    Searches the logical neighbourhood of ``victim`` (internal remapping is
    local to a subarray), hammering one candidate at a time — the
    single-sided procedure of prior work [79, 84, 129, 180].
    """
    geometry = host.chip.geometry
    rows_per_sa = geometry.rows_per_subarray
    subarray = geometry.subarray_of_row(victim)
    base = subarray * rows_per_sa
    offset = victim - base
    lo = max(0, offset - search_radius)
    hi = min(rows_per_sa - 1, offset + search_radius)
    aggressors = []
    for cand_offset in range(lo, hi + 1):
        candidate = base + cand_offset
        if candidate == victim:
            continue
        host.initialize(bank, victim, pattern)
        host.initialize(bank, candidate, pattern.inverse)
        host.hammer(bank, [candidate], hammer_count)
        if host.compare_data(pattern, bank, victim) > 0:
            aggressors.append(candidate)
    return aggressors
