"""Subarray charge-restoration-circuitry isolation map.

HiRA's operating condition 4 (§3) requires the two rows to sit in subarrays
that share no bitline or sense amplifier.  §4.2 measures that, on average,
only ~32% of the rows in a bank qualify as partners for a given row, with a
per-module average between 25% and 38% (Table 4), and §4.4.1 finds the
qualifying *pairs are identical across all 16 banks* — i.e. the map is a
property of the circuit design, not of individual banks.

The real grouping of charge-restoration circuitry is proprietary (§12), so
we encode it as a deterministic structural map:

- each subarray is attached to one of ``rails`` power/restoration rails
  (a seeded but design-fixed assignment);
- two subarrays are electrically isolated iff they are not physical
  neighbours (open-bitline sense-amp sharing, |i − j| > 1) *and* their rail
  pair belongs to the design's compatibility set.

The compatibility set's size is calibrated so that the average coverage over
the paper's tested row sample matches the per-module Table 4 targets.
"""

from __future__ import annotations

from repro.chip.rng import rng_for


class IsolationMap:
    """Design-level map of electrically isolated subarray pairs."""

    def __init__(
        self,
        subarrays: int,
        design_seed: int,
        target_coverage: float,
        rails: int = 16,
        calibration_sample: list[int] | None = None,
    ):
        if not 0.0 < target_coverage < 1.0:
            raise ValueError("target_coverage must be in (0, 1)")
        if subarrays < 4:
            raise ValueError("need at least 4 subarrays for a meaningful map")
        self.subarrays = subarrays
        self.design_seed = design_seed
        self.target_coverage = target_coverage
        self.rails = rails
        rng = rng_for(design_seed, 0x150)
        # Near-uniform rail assignment: a shuffled round-robin keeps every
        # rail equally represented, so per-row coverage varies through
        # sampling of the tested subarrays rather than rail imbalance.
        base = [i % rails for i in range(subarrays)]
        self.rail_of = [int(base[i]) for i in rng.permutation(subarrays)]
        # Table 4's coverage statistics are computed over the paper's
        # tested-row sample; calibrating against the same sample reproduces
        # the per-module averages.
        if calibration_sample:
            self._sample = sorted(calibration_sample)
        elif subarrays > 256:
            step = subarrays // 128
            self._sample = list(range(0, subarrays, step))
        else:
            self._sample = list(range(subarrays))
        self._allowed_diffs = self._calibrate(target_coverage)

    # ------------------------------------------------------------------
    def _coverage_given(self, allowed: set[int], sample: list[int] | None = None) -> float:
        """Average pairable fraction over the sampled subarray pairs.

        ``sample`` defaults to the calibration sample; pair legality uses
        the same rules as :meth:`isolated` (rail-difference compatibility
        plus open-bitline adjacency exclusion).
        """
        sample = self._sample if sample is None else sample
        total = 0
        good = 0
        for i in sample:
            for j in sample:
                if i == j:
                    continue
                total += 1
                if abs(i - j) > 1 and (self.rail_of[i] - self.rail_of[j]) % self.rails in allowed:
                    good += 1
        return good / total if total else 0.0

    def _calibrate(self, target: float) -> set[int]:
        """Grow the compatibility set until average coverage meets the target.

        Candidates are symmetric rail-difference pairs ``{d, rails − d}``
        (isolation must be a symmetric relation); they are considered in a
        seeded order so two designs with the same target still differ, and
        at each step the candidate that most improves the fit is taken.
        """
        rng = rng_for(self.design_seed, 0xCA11B)
        half = self.rails // 2
        candidates = [
            {d, self.rails - d} if d != half else {d}
            for d in rng.permutation(range(1, half + 1))
        ]
        allowed: set[int] = set()
        best_err = abs(self._coverage_given(allowed) - target)
        improved = True
        while improved and candidates:
            improved = False
            best_idx = -1
            for idx, cand in enumerate(candidates):
                err = abs(self._coverage_given(allowed | cand) - target)
                if err < best_err:
                    best_err = err
                    best_idx = idx
                    improved = True
            if improved:
                allowed |= candidates.pop(best_idx)
        return allowed

    # ------------------------------------------------------------------
    def isolated(self, sa_i: int, sa_j: int) -> bool:
        """Whether two subarrays share no bitline/sense-amp circuitry."""
        if sa_i == sa_j:
            return False
        if abs(sa_i - sa_j) <= 1:
            return False  # open-bitline neighbours share SA strips
        key = (self.rail_of[sa_i] - self.rail_of[sa_j]) % self.rails
        return key in self._allowed_diffs

    def partners(self, sa: int) -> list[int]:
        """All subarrays isolated from ``sa``."""
        return [j for j in range(self.subarrays) if self.isolated(sa, j)]

    def coverage_of_subarray(self, sa: int, candidate_subarrays: list[int]) -> float:
        """Fraction of candidate subarrays isolated from ``sa``."""
        if not candidate_subarrays:
            return 0.0
        good = sum(1 for j in candidate_subarrays if self.isolated(sa, j))
        return good / len(candidate_subarrays)

    def average_coverage(self) -> float:
        """Average pairable fraction over the whole bank."""
        return self._coverage_given(self._allowed_diffs)
