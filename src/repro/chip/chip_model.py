"""The behavioural DRAM chip: executes picosecond-timed command sequences.

This is the device-under-test for the §4 experiments.  It implements the
protocol-level physics that make HiRA possible:

- a bank holds at most one *normally* open row, but an early PRE followed by
  a quick ACT (HiRA) leaves the first row's wordline up while the second row
  activates — provided the two subarrays are electrically isolated;
- rows whose sense amplifiers were not yet enabled when the PRE arrived lose
  their data (t1 too small);
- rows whose local row buffer was already handed to the bank I/O cannot have
  their precharge interrupted cleanly (t1 too large);
- non-isolated subarray pairs corrupt each other through shared bitlines /
  sense amplifiers;
- Samsung-/Micron-like designs silently drop the violating PRE or ACT
  (§12), so HiRA neither works nor corrupts data on them;
- one PRE closes *all* open wordlines in the bank (paper footnote 1);
- every activation disturbs the activated row's physical neighbours
  (RowHammer), and a completed restoration imperfectly clears accumulated
  disturbance (see :mod:`repro.chip.disturb`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chip.design import ChipDesign
from repro.chip.disturb import DisturbState
from repro.chip.rng import rng_for
from repro.chip.variation import VariationModel
from repro.dram.commands import Command, CommandKind
from repro.dram.errors import DramError, TimingViolation
from repro.dram.timing import DDR4_2400, TimingParams


@dataclass
class _OpenRow:
    row: int
    act_ps: int
    corrupted: bool = False


@dataclass
class _BankState:
    #: Open rows keyed by subarray index.
    open_rows: dict[int, _OpenRow] = field(default_factory=dict)
    #: 'precharged' | 'open' | 'precharging'
    phase: str = "precharged"
    pre_ps: int = 0
    #: Subarray whose local row buffer owns the bank I/O.
    io_owner: int | None = None


@dataclass
class ChipStats:
    """Event counters exposed for experiments and tests."""

    acts: int = 0
    pres: int = 0
    refs: int = 0
    reads: int = 0
    writes: int = 0
    hira_attempts: int = 0
    hira_successes: int = 0
    ignored_pre: int = 0
    ignored_act: int = 0
    corrupted_rows: int = 0
    bitflips_injected: int = 0


class DramChip:
    """A single DRAM chip of a given :class:`~repro.chip.design.ChipDesign`.

    Commands must be issued in non-decreasing time order.  Row data is
    allocated lazily; uninitialized rows read as all-zero.
    """

    def __init__(
        self,
        design: ChipDesign,
        timing: TimingParams = DDR4_2400,
        chip_seed: int = 0,
    ):
        self.design = design
        self.timing = timing
        self.chip_seed = chip_seed
        self.geometry = design.geometry
        self.isolation = design.build_isolation_map()
        self.variation = VariationModel(design.variation, chip_seed)
        self.disturb = DisturbState(self.variation)
        self.stats = ChipStats()
        self._banks: dict[int, _BankState] = {}
        self._data: dict[tuple[int, int], np.ndarray] = {}
        self._row_bytes = self.geometry.row_bits // 8
        self._last_cmd_ps = -1
        self._ref_pointer: dict[int, int] = {}
        self._flip_salt = 0

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _row_array(self, bank: int, row: int) -> np.ndarray:
        key = (bank, row)
        arr = self._data.get(key)
        if arr is None:
            arr = np.zeros(self._row_bytes, dtype=np.uint8)
            self._data[key] = arr
        return arr

    def write_row_direct(self, bank: int, row: int, fill_byte: int) -> None:
        """Functionally write a row (the host wraps this in ACT/WR/PRE).

        Writing replaces the stored charge, clearing accumulated
        disturbance for the row.
        """
        self.geometry.check_bank(bank)
        self.geometry.check_row(row)
        self._row_array(bank, row)[:] = fill_byte
        self.disturb.on_write(bank, self.design.logical_to_physical(row))
        self.stats.writes += 1

    def peek_row(self, bank: int, row: int) -> np.ndarray:
        """Read the stored bytes without issuing commands (test helper)."""
        return self._row_array(bank, row).copy()

    def _inject_flips(self, bank: int, row: int, count: int) -> None:
        if count <= 0:
            return
        arr = self._row_array(bank, row)
        self._flip_salt += 1
        rng = rng_for(self.chip_seed, 0xF11B5, bank, row, self._flip_salt)
        positions = rng.integers(0, self._row_bytes, size=count)
        bits = rng.integers(0, 8, size=count)
        for pos, bit in zip(positions, bits):
            arr[pos] ^= np.uint8(1 << int(bit))
        self.stats.bitflips_injected += int(count)

    def _corrupt_row(self, bank: int, row: int, reason: str) -> None:
        """Structural corruption: flip a seeded burst of bits in the row."""
        rng = rng_for(self.chip_seed, 0xDEAD, bank, row, self._flip_salt)
        burst = int(rng.integers(4, 64))
        self._inject_flips(bank, row, burst)
        self.stats.corrupted_rows += 1

    def _is_checkerboard(self, bank: int, row: int) -> bool:
        arr = self._data.get((bank, row))
        if arr is None or arr.size == 0:
            return False
        return int(arr[0]) in (0xAA, 0x55)

    # ------------------------------------------------------------------
    # Command plane
    # ------------------------------------------------------------------
    def issue(self, cmd: Command) -> None:
        """Execute one command; commands must arrive in time order."""
        if cmd.time_ps < self._last_cmd_ps:
            raise TimingViolation(
                f"command at {cmd.time_ps} ps issued after {self._last_cmd_ps} ps"
            )
        self._last_cmd_ps = cmd.time_ps
        if cmd.kind is CommandKind.ACT:
            self._do_act(cmd.bank, cmd.row, cmd.time_ps)
        elif cmd.kind is CommandKind.PRE:
            self._do_pre(cmd.bank, cmd.time_ps)
        elif cmd.kind is CommandKind.RD:
            self._do_read(cmd.bank, cmd.time_ps)
        elif cmd.kind is CommandKind.WR:
            self._do_write_cmd(cmd.bank, cmd.time_ps, cmd.meta)
        elif cmd.kind is CommandKind.REF:
            self._do_ref(cmd.time_ps)
        elif cmd.kind is CommandKind.NOP:
            pass
        else:  # pragma: no cover - enum is closed
            raise DramError(f"unsupported command {cmd.kind}")

    def _timing_of(self, bank: int, row: int):
        """Per-row circuit characteristics, keyed by physical position.

        All variation (sense-amp enable, restore quality, RowHammer
        threshold) belongs to the physical row; logical addresses reach it
        through the design's internal scrambling.
        """
        return self.variation.row_timing(bank, self.design.logical_to_physical(row))

    def _bank(self, bank: int) -> _BankState:
        self.geometry.check_bank(bank)
        state = self._banks.get(bank)
        if state is None:
            state = _BankState()
            self._banks[bank] = state
        return state

    # -- ACT ------------------------------------------------------------
    def _do_act(self, bank: int, row: int, now_ps: int) -> None:
        self.geometry.check_row(row)
        self.stats.acts += 1
        state = self._bank(bank)
        self._maybe_settle(bank, state, now_ps)

        if state.phase == "open":
            # JEDEC-illegal ACT to an open bank: chips ignore it.
            self.stats.ignored_act += 1
            return

        if state.phase == "precharging":
            self._act_during_precharge(bank, state, row, now_ps)
            return

        self._fresh_activation(bank, state, row, now_ps)

    def _fresh_activation(self, bank: int, state: _BankState, row: int, now_ps: int) -> None:
        sa = self.geometry.subarray_of_row(row)
        self._sense_row(bank, row)
        state.open_rows[sa] = _OpenRow(row=row, act_ps=now_ps)
        state.phase = "open"
        state.io_owner = sa
        self.disturb.hammer(bank, self.design.physical_neighbors(row))

    def _act_during_precharge(self, bank: int, state: _BankState, row: int, now_ps: int) -> None:
        t2 = now_ps - state.pre_ps
        vendor = self.design.vendor
        if vendor.ignores_fast_act(t2, self.timing.trp):
            self.stats.ignored_act += 1
            self._settle(bank, state, now_ps)
            return

        interruptible = {
            sa: open_row
            for sa, open_row in state.open_rows.items()
            if t2 <= self._timing_of(bank, open_row.row).wordline_window_ps
        }
        if not interruptible:
            # Precharge already completed; this is a fresh ACT issued with a
            # violated tRP — the new row senses unprecharged bitlines.
            self._settle(bank, state, now_ps)
            self._fresh_activation(bank, state, row, now_ps)
            if t2 < round(self.timing.trp * 0.9):
                new_sa = self.geometry.subarray_of_row(row)
                self._corrupt_row(bank, row, "act-under-trp")
                state.open_rows[new_sa].corrupted = True
            return

        # --- HiRA: the second ACT interrupts the precharge -------------
        self.stats.hira_attempts += 1
        sa_b = self.geometry.subarray_of_row(row)
        success = True
        for sa_a, open_row in list(state.open_rows.items()):
            timing_a = self._timing_of(bank, open_row.row)
            t1 = state.pre_ps - open_row.act_ps
            checkerboard = self._is_checkerboard(bank, open_row.row)
            if sa_a not in interruptible:
                # This row's wordline already dropped: it simply closed.
                self._close_row(bank, state, sa_a, state.pre_ps)
                continue
            if not self.isolation.isolated(sa_a, sa_b):
                # Shared bitlines / sense amps: charge sharing corrupts both.
                if not open_row.corrupted:
                    self._corrupt_row(bank, open_row.row, "not-isolated")
                    open_row.corrupted = True
                self._corrupt_row(bank, row, "not-isolated")
                success = False
                continue
            if not timing_a.t1_window_ok(t1, checkerboard):
                if not open_row.corrupted:
                    self._corrupt_row(bank, open_row.row, "t1-window")
                    open_row.corrupted = True
                success = False
            if not timing_a.t2_isolates_io(t2):
                if not open_row.corrupted:
                    self._corrupt_row(bank, open_row.row, "io-contention")
                    open_row.corrupted = True
                success = False

        self._sense_row(bank, row)
        state.open_rows[sa_b] = _OpenRow(row=row, act_ps=now_ps)
        state.phase = "open"
        state.io_owner = sa_b
        self.disturb.hammer(bank, self.design.physical_neighbors(row))
        if success:
            self.stats.hira_successes += 1

    def _sense_row(self, bank: int, row: int) -> None:
        """Sensing amplifies the stored charge: materialize pending flips."""
        phys = self.design.logical_to_physical(row)
        timing = self._timing_of(bank, row)
        flips = self.disturb.flips_on_sense(bank, phys, timing)
        if flips:
            self._inject_flips(bank, row, flips)
        # Sensing latches current charge; pending disturbance becomes part
        # of the restored value, so clear the peak down to the disturbance.
        entry = self.disturb.rows.get((bank, phys))
        if entry is not None and flips:
            entry.disturb = 0.0
            entry.peak = 0.0

    # -- PRE ------------------------------------------------------------
    def _do_pre(self, bank: int, now_ps: int) -> None:
        self.stats.pres += 1
        state = self._bank(bank)
        self._maybe_settle(bank, state, now_ps)

        if state.phase == "precharged":
            return
        if state.phase == "precharging":
            # Back-to-back PRE: resolve the first, stay precharged.
            self._settle(bank, state, now_ps)
            return

        vendor = self.design.vendor
        min_t1 = min(
            (now_ps - open_row.act_ps for open_row in state.open_rows.values()),
            default=self.timing.tras,
        )
        if vendor.ignores_early_pre(min_t1, self.timing.tras):
            self.stats.ignored_pre += 1
            return

        for open_row in state.open_rows.values():
            timing_row = self._timing_of(bank, open_row.row)
            t1 = now_ps - open_row.act_ps
            checkerboard = self._is_checkerboard(bank, open_row.row)
            need = timing_row.sa_enable_ps + (
                timing_row.checkerboard_margin_ps if checkerboard else 0
            )
            if t1 < need and not open_row.corrupted:
                # Sense amps never latched: charge sharing destroyed the row.
                self._corrupt_row(bank, open_row.row, "pre-before-sense")
                open_row.corrupted = True
        state.phase = "precharging"
        state.pre_ps = now_ps

    def _maybe_settle(self, bank: int, state: _BankState, now_ps: int) -> None:
        """Complete a pending precharge whose interrupt window has passed."""
        if state.phase != "precharging":
            return
        max_window = max(
            (
                self._timing_of(bank, open_row.row).wordline_window_ps
                for open_row in state.open_rows.values()
            ),
            default=0,
        )
        if now_ps - state.pre_ps > max_window:
            self._settle(bank, state, now_ps)

    def _settle(self, bank: int, state: _BankState, now_ps: int) -> None:
        """Unconditionally finish the pending precharge."""
        for sa in list(state.open_rows):
            self._close_row(bank, state, sa, state.pre_ps)
        state.phase = "precharged"
        state.io_owner = None

    def _close_row(self, bank: int, state: _BankState, sa: int, close_ps: int) -> None:
        open_row = state.open_rows.pop(sa)
        timing_row = self._timing_of(bank, open_row.row)
        duration = close_ps - open_row.act_ps
        phys = self.design.logical_to_physical(open_row.row)
        needed = timing_row.restore_needed_ps(self.timing.tras)
        if duration >= needed:
            self.disturb.on_restore(bank, phys, timing_row, fraction=1.0)
        elif duration >= timing_row.sa_enable_ps:
            self.disturb.on_restore(bank, phys, timing_row, fraction=duration / needed)
        # Rows closed before sense-amp enable were corrupted at PRE time.

    # -- RD / WR ----------------------------------------------------------
    def _do_read(self, bank: int, now_ps: int) -> None:
        self.stats.reads += 1
        state = self._bank(bank)
        self._maybe_settle(bank, state, now_ps)
        if state.phase != "open" or state.io_owner is None:
            raise DramError("RD issued with no open row connected to bank I/O")
        open_row = state.open_rows[state.io_owner]
        if now_ps - open_row.act_ps < self.timing.trcd:
            raise TimingViolation("RD issued before tRCD elapsed")

    def read_open_row(self, bank: int) -> tuple[int, np.ndarray]:
        """Data of the row currently connected to the bank I/O.

        Models the column-access path after an activation (or after HiRA's
        second ACT, which hands the bank I/O to RowB's local row buffer).
        """
        state = self._bank(bank)
        if state.phase != "open" or state.io_owner is None:
            raise DramError("no open row to read")
        open_row = state.open_rows[state.io_owner]
        return open_row.row, self._row_array(bank, open_row.row).copy()

    def _do_write_cmd(self, bank: int, now_ps: int, meta: dict) -> None:
        state = self._bank(bank)
        self._maybe_settle(bank, state, now_ps)
        if state.phase != "open" or state.io_owner is None:
            raise DramError("WR issued with no open row connected to bank I/O")
        open_row = state.open_rows[state.io_owner]
        if now_ps - open_row.act_ps < self.timing.trcd:
            raise TimingViolation("WR issued before tRCD elapsed")
        fill = meta.get("fill")
        if fill is not None:
            self._row_array(bank, open_row.row)[:] = fill
            self.disturb.on_write(bank, self.design.logical_to_physical(open_row.row))

    # -- REF --------------------------------------------------------------
    def _do_ref(self, now_ps: int) -> None:
        """Rank-level refresh: the chip refreshes a batch of rows per bank."""
        self.stats.refs += 1
        rows_per_ref = max(
            1,
            round(
                self.geometry.rows_per_bank
                * self.timing.trefi
                / self.timing.trefw
            ),
        )
        for bank in range(self.geometry.banks_per_rank):
            pointer = self._ref_pointer.get(bank, 0)
            for i in range(rows_per_ref):
                row = (pointer + i) % self.geometry.rows_per_bank
                self._sense_row(bank, row)
                phys = self.design.logical_to_physical(row)
                self.disturb.on_restore(bank, phys, self._timing_of(bank, row), fraction=1.0)
            self._ref_pointer[bank] = (pointer + rows_per_ref) % self.geometry.rows_per_bank

    # ------------------------------------------------------------------
    # Bulk operations (the FPGA-side hammer loop of the real testbed)
    # ------------------------------------------------------------------
    def bulk_hammer(self, bank: int, rows: list[int], count: int) -> None:
        """Activate each row ``count`` times with nominal timing.

        Equivalent to the SoftMC loop of ACT/PRE pairs in Algorithm 2 but
        executed in O(rows) — each activation hammers the row's physical
        neighbours and fully restores the row itself.
        """
        state = self._bank(bank)
        if state.phase == "precharging":
            # Hammering starts at least tRP after the closing PRE, which is
            # beyond every wordline-interrupt window: settle the precharge.
            self._settle(bank, state, self._last_cmd_ps)
        if state.phase != "precharged":
            raise DramError("bulk_hammer requires a precharged bank")
        self.stats.acts += count * len(rows)
        self.stats.pres += count * len(rows)
        for row in rows:
            self._sense_row(bank, row)
            self.disturb.hammer(bank, self.design.physical_neighbors(row), count)
        # Advance time past the hammering burst.
        self._last_cmd_ps += count * len(rows) * self.timing.trc

    def open_row_count(self, bank: int) -> int:
        """Number of concurrently open rows (2 after a successful HiRA)."""
        state = self._bank(bank)
        self._maybe_settle(bank, state, self._last_cmd_ps)
        return len(state.open_rows) if state.phase == "open" else 0
