"""Per-row process/design-induced variation.

§4.2 attributes HiRA's t1/t2 feasibility window to variation in row
activation latency: a HiRA operation fails when t1 is shorter than the time
the row's sense amplifiers need to latch (``sa_enable``), or longer than the
point at which the local row buffer has already been handed to the bank I/O
and the precharge can no longer be interrupted cleanly
(``interrupt_deadline``).  The distributions below are calibrated so that

- at ``t1 ∈ {3, 4.5} ns`` *every* row is inside its window (the paper
  observes no zero-coverage rows there),
- at ``t1 = 1.5 ns`` only the fastest rows work, and at ``t1 = 6 ns`` only
  the slowest rows still allow interruption (the paper observes
  zero-coverage rows at both extremes).

The same model carries the RowHammer-related per-row quantities used by
§4.3: the intrinsic RowHammer threshold (``nrh``), the residual disturbance
that survives a refresh (``residual``), and the post-refresh charge-margin
boost (``boost``).  Together these reproduce the measured ~1.9× normalized
threshold with the 1.09–2.58 spread of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chip.rng import rng_for


def _clipped_normal(rng, mean: float, std: float, lo: float, hi: float) -> float:
    return float(min(hi, max(lo, rng.normal(mean, std))))


@dataclass(frozen=True, slots=True)
class DesignVariation:
    """Distribution parameters for a chip design's per-row variation.

    Times are in nanoseconds; they are converted to picoseconds when
    sampled.  ``nrh_log_mean``/``nrh_log_std`` parameterize a lognormal
    RowHammer threshold whose defaults centre near the paper's measured
    27.2K average (§4.3).
    """

    sa_enable_mean_ns: float = 2.1
    sa_enable_std_ns: float = 0.35
    sa_enable_lo_ns: float = 1.2
    sa_enable_hi_ns: float = 2.9

    interrupt_deadline_mean_ns: float = 5.3
    interrupt_deadline_std_ns: float = 0.4
    interrupt_deadline_lo_ns: float = 4.6
    interrupt_deadline_hi_ns: float = 6.4

    io_disconnect_mean_ns: float = 1.1
    io_disconnect_std_ns: float = 0.2
    io_disconnect_lo_ns: float = 0.7
    io_disconnect_hi_ns: float = 1.5

    wordline_window_mean_ns: float = 7.4
    wordline_window_std_ns: float = 0.5
    wordline_window_lo_ns: float = 6.1
    wordline_window_hi_ns: float = 9.0

    #: Extra sense-amp margin needed by alternating (checkerboard) data.
    checkerboard_margin_ns: float = 0.08

    # A double-sided attack with per-aggressor count HC/2 exposes the victim
    # to ~2·HC adjacent activations per Algorithm 2 phase, so the *measured*
    # threshold is about half the intrinsic one; exp(10.9) ≈ 54.3K intrinsic
    # yields the paper's ~27.2K measured average (§4.3).
    nrh_log_mean: float = 10.904
    nrh_log_std: float = 0.28
    nrh_lo: float = 19_200.0
    nrh_hi: float = 164_000.0

    residual_mean: float = 0.10
    residual_std: float = 0.10
    residual_lo: float = 0.0
    residual_hi: float = 0.60

    boost_mean: float = 1.16
    boost_std: float = 0.16
    boost_lo: float = 0.82
    boost_hi: float = 1.48

    #: Per-run multiplicative noise on the effective threshold (lognormal σ).
    #: Retention/VRT noise lets measured normalized thresholds exceed 2×
    #: occasionally, as Table 4's maxima (up to 2.58×) show.
    run_noise_sigma: float = 0.10

    #: Charge restoration completes after this fraction of tRAS (uniform).
    restore_frac_lo: float = 0.86
    restore_frac_hi: float = 1.00


@dataclass(frozen=True, slots=True)
class RowTiming:
    """Sampled per-row circuit characteristics (times in picoseconds)."""

    sa_enable_ps: int
    interrupt_deadline_ps: int
    io_disconnect_ps: int
    wordline_window_ps: int
    checkerboard_margin_ps: int
    restore_frac: float
    nrh: float
    residual: float
    boost: float

    def restore_needed_ps(self, tras_ps: int) -> int:
        """Time after ACT at which this row's charge is fully restored."""
        return round(self.restore_frac * tras_ps)

    def t1_window_ok(self, t1_ps: int, checkerboard: bool) -> bool:
        """Whether an ACT→PRE gap of ``t1_ps`` keeps this row safe."""
        need = self.sa_enable_ps + (self.checkerboard_margin_ps if checkerboard else 0)
        return need <= t1_ps <= self.interrupt_deadline_ps

    def t2_interrupts(self, t2_ps: int) -> bool:
        """Whether a PRE→ACT gap of ``t2_ps`` interrupts the precharge."""
        return t2_ps <= self.wordline_window_ps

    def t2_isolates_io(self, t2_ps: int) -> bool:
        """Whether ``t2_ps`` suffices to hand bank I/O to the new row."""
        return t2_ps >= self.io_disconnect_ps


class VariationModel:
    """Lazy, cached sampler of :class:`RowTiming` per (bank, row).

    All samples are deterministic functions of ``(chip_seed, bank, row)``;
    re-creating the model reproduces the same chip.
    """

    def __init__(self, params: DesignVariation, chip_seed: int):
        self.params = params
        self.chip_seed = chip_seed
        self._cache: dict[tuple[int, int], RowTiming] = {}

    def row_timing(self, bank: int, row: int) -> RowTiming:
        key = (bank, row)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        p = self.params
        rng = rng_for(self.chip_seed, 0x7A11, bank, row)
        timing = RowTiming(
            sa_enable_ps=round(
                _clipped_normal(
                    rng, p.sa_enable_mean_ns, p.sa_enable_std_ns,
                    p.sa_enable_lo_ns, p.sa_enable_hi_ns,
                ) * 1_000
            ),
            interrupt_deadline_ps=round(
                _clipped_normal(
                    rng, p.interrupt_deadline_mean_ns, p.interrupt_deadline_std_ns,
                    p.interrupt_deadline_lo_ns, p.interrupt_deadline_hi_ns,
                ) * 1_000
            ),
            io_disconnect_ps=round(
                _clipped_normal(
                    rng, p.io_disconnect_mean_ns, p.io_disconnect_std_ns,
                    p.io_disconnect_lo_ns, p.io_disconnect_hi_ns,
                ) * 1_000
            ),
            wordline_window_ps=round(
                _clipped_normal(
                    rng, p.wordline_window_mean_ns, p.wordline_window_std_ns,
                    p.wordline_window_lo_ns, p.wordline_window_hi_ns,
                ) * 1_000
            ),
            checkerboard_margin_ps=round(p.checkerboard_margin_ns * 1_000),
            restore_frac=float(rng.uniform(p.restore_frac_lo, p.restore_frac_hi)),
            nrh=float(
                min(p.nrh_hi, max(p.nrh_lo, rng.lognormal(p.nrh_log_mean, p.nrh_log_std)))
            ),
            residual=_clipped_normal(
                rng, p.residual_mean, p.residual_std, p.residual_lo, p.residual_hi
            ),
            boost=_clipped_normal(rng, p.boost_mean, p.boost_std, p.boost_lo, p.boost_hi),
        )
        self._cache[key] = timing
        return timing

    def run_noise(self, bank: int, row: int, run: int) -> float:
        """Per-test-run multiplicative noise on the effective NRH."""
        rng = rng_for(self.chip_seed, 0x4015E, bank, row, run)
        return float(rng.lognormal(0.0, self.params.run_noise_sigma))
