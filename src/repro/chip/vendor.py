"""Vendor-class behaviour for timing-violating command sequences.

§12 reports that HiRA succeeds only on SK Hynix chips; chips from the two
other major manufacturers behave *as if they never received* the PRE or the
second ACT when tRAS/tRP are greatly violated.  We model that as a vendor
class attached to each chip design.
"""

from __future__ import annotations

import enum


class VendorClass(enum.Enum):
    """How a chip design reacts to HiRA's engineered ACT-PRE-ACT sequence."""

    #: Performs the sequence: early PRE starts, the second ACT interrupts it
    #: (SK Hynix-like behaviour; HiRA works).
    HYNIX_LIKE = "hynix_like"

    #: Ignores a PRE that greatly violates tRAS, so the bank stays open and
    #: the second ACT (to an open bank) is also ignored.
    SAMSUNG_LIKE = "samsung_like"

    #: Ignores the second ACT that greatly violates tRP (equivalent outcome:
    #: no second activation, no corruption, no parallel refresh).
    MICRON_LIKE = "micron_like"

    @property
    def supports_hira(self) -> bool:
        return self is VendorClass.HYNIX_LIKE

    def ignores_early_pre(self, t1_ps: int, tras_ps: int) -> bool:
        """Whether a PRE issued ``t1_ps`` after ACT is silently dropped."""
        if self is VendorClass.SAMSUNG_LIKE:
            return t1_ps < tras_ps
        return False

    def ignores_fast_act(self, t2_ps: int, trp_ps: int) -> bool:
        """Whether an ACT issued ``t2_ps`` after PRE is silently dropped."""
        if self is VendorClass.MICRON_LIKE:
            return t2_ps < trp_ps
        return False
