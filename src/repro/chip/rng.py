"""Deterministic per-entity random sampling.

Every per-row / per-subarray quantity in the chip model is a pure function
of ``(design seed, entity keys)``, so experiments are exactly reproducible
and two chips of the same design differ only through their chip seed.
"""

from __future__ import annotations

import numpy as np

_MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """One round of the SplitMix64 mixer (public-domain constants)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def mix_keys(*keys: int) -> int:
    """Mix an arbitrary key tuple into a single 64-bit value."""
    state = 0x243F6A8885A308D3  # pi digits, arbitrary non-zero start
    for key in keys:
        state = splitmix64(state ^ (key & _MASK64))
    return state


def rng_for(*keys: int) -> np.random.Generator:
    """A fast, independent generator keyed by the given integers."""
    return np.random.Generator(np.random.Philox(key=mix_keys(*keys)))


def uniform_for(*keys: int) -> float:
    """A single uniform(0, 1) draw keyed by the given integers."""
    return (mix_keys(*keys) >> 11) / float(1 << 53)
