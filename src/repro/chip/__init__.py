"""Circuit-level behavioural model of a DDR4 DRAM chip.

This package substitutes for the paper's real-chip infrastructure (§4).  It
models the *structural* properties that determine whether a HiRA operation
succeeds on a given chip:

- :mod:`repro.chip.variation` — per-row process/design-induced variation in
  sense-amplifier enable time, precharge-interrupt deadlines, RowHammer
  thresholds, and charge-restoration quality.
- :mod:`repro.chip.isolation` — the subarray charge-restoration-circuitry
  map that decides which row pairs are electrically isolated (HiRA's
  operating condition 4).
- :mod:`repro.chip.vendor` — vendor-class behaviour for timing-violating
  command sequences (SK Hynix-like designs perform HiRA; Samsung/Micron-like
  designs ignore the violating PRE/ACT, §12).
- :mod:`repro.chip.design` — a complete chip design description.
- :mod:`repro.chip.disturb` — RowHammer disturbance accumulation and bit-flip
  materialization.
- :mod:`repro.chip.chip_model` — the chip itself: executes picosecond-timed
  DDR4 command sequences, including HiRA's engineered ACT-PRE-ACT.
"""

from repro.chip.chip_model import DramChip
from repro.chip.design import ChipDesign, make_design
from repro.chip.disturb import DisturbState
from repro.chip.isolation import IsolationMap
from repro.chip.variation import DesignVariation, RowTiming, VariationModel
from repro.chip.vendor import VendorClass

__all__ = [
    "ChipDesign",
    "DesignVariation",
    "DisturbState",
    "DramChip",
    "IsolationMap",
    "RowTiming",
    "VariationModel",
    "VendorClass",
    "make_design",
]
