"""RowHammer disturbance accumulation and bit-flip materialization.

The model tracks, per physical row, the disturbance accumulated from
activations of its physical neighbours.  Bit flips materialize when the row
is next *sensed* (activated) with a peak disturbance at or above its
effective RowHammer threshold — sensing amplifies whatever charge is left in
the cells, making the flips permanent until the row is rewritten.

A completed charge restoration (a refresh, or any activation held open past
the row's restore time) does not perfectly erase the accumulated
disturbance.  We model the post-restore disturbance as

    disturb' = disturb × residual − (boost − 1) × NRH

where ``residual`` is the fraction of disturbance that survives the restore
and ``boost`` captures the charge margin a fresh restore leaves (restores
can over- or under-shoot nominal charge).  With the §4.3 experiment's
structure (HC/2 hammers, one HiRA refresh, HC/2 hammers) this yields a
measured threshold of ``2·NRH·boost / (1 + residual)`` capped near 2× by
first-half flips — reproducing the paper's ~1.9× mean and 1.09–2.58 spread
(Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chip.variation import RowTiming, VariationModel


@dataclass
class _RowDisturb:
    disturb: float = 0.0
    peak: float = 0.0
    run: int = 0  # increments on rewrite; keys per-run threshold noise


@dataclass
class DisturbState:
    """Per-chip RowHammer disturbance bookkeeping (physical row space)."""

    variation: VariationModel
    rows: dict[tuple[int, int], _RowDisturb] = field(default_factory=dict)

    def _entry(self, bank: int, phys_row: int) -> _RowDisturb:
        key = (bank, phys_row)
        entry = self.rows.get(key)
        if entry is None:
            entry = _RowDisturb()
            self.rows[key] = entry
        return entry

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def hammer(self, bank: int, phys_neighbors: list[int], count: int = 1) -> None:
        """Neighbouring row(s) of an activated row accumulate disturbance."""
        for phys in phys_neighbors:
            entry = self._entry(bank, phys)
            entry.disturb += count
            if entry.disturb > entry.peak:
                entry.peak = entry.disturb

    def on_write(self, bank: int, phys_row: int) -> None:
        """A rewrite replaces the cell charge entirely."""
        entry = self._entry(bank, phys_row)
        entry.disturb = 0.0
        entry.peak = 0.0
        entry.run += 1

    def flips_on_sense(self, bank: int, phys_row: int, timing: RowTiming) -> int:
        """Number of bit flips materializing when this row is sensed.

        Returns 0 when the peak disturbance stayed below the row's
        per-run effective threshold.
        """
        entry = self.rows.get((bank, phys_row))
        if entry is None:
            return 0
        threshold = timing.nrh * self.variation.run_noise(bank, phys_row, entry.run)
        if entry.peak < threshold:
            return 0
        # More excess hammering flips more cells; keep it deterministic.
        excess = entry.peak / threshold - 1.0
        return 1 + min(48, int(excess * 24))

    def on_restore(self, bank: int, phys_row: int, timing: RowTiming, fraction: float = 1.0) -> None:
        """Apply a (possibly partial) charge restoration to the row.

        ``fraction`` < 1 models a row closed before its restore time: only
        that fraction of the disturbance-erasing effect is applied, and no
        charge-margin boost is credited.
        """
        entry = self.rows.get((bank, phys_row))
        if entry is None:
            return
        if fraction >= 1.0:
            # The charge-margin (boost) term scales with the disturbance
            # actually being erased: a restore of an undisturbed row leaves
            # the reference (freshly-written) state unchanged.
            margin = (timing.boost - 1.0) * timing.nrh
            margin *= min(1.0, max(entry.disturb, 0.0) / timing.nrh)
            new = entry.disturb * timing.residual - margin
            new = max(new, -0.6 * timing.nrh)
        else:
            fraction = max(0.0, fraction)
            erase = fraction * (1.0 - timing.residual)
            new = entry.disturb * (1.0 - erase)
        entry.disturb = new
        entry.peak = max(new, 0.0)

    # ------------------------------------------------------------------
    # Introspection (used by tests)
    # ------------------------------------------------------------------
    def disturbance(self, bank: int, phys_row: int) -> float:
        entry = self.rows.get((bank, phys_row))
        return entry.disturb if entry else 0.0

    def peak_disturbance(self, bank: int, phys_row: int) -> float:
        entry = self.rows.get((bank, phys_row))
        return entry.peak if entry else 0.0
