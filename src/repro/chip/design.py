"""Complete chip-design descriptions.

A :class:`ChipDesign` bundles everything that is fixed at chip design /
manufacturing time: geometry, vendor class, the subarray isolation map's
calibration target, per-row variation distributions, and the DRAM-internal
logical→physical row scrambling.  Individual chips of the same design share
the isolation map (design-induced, §4.4.1) but differ in per-row variation
through their chip seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chip.isolation import IsolationMap
from repro.chip.variation import DesignVariation
from repro.chip.vendor import VendorClass
from repro.dram.geometry import Geometry


def tested_subarray_sample(geometry: Geometry, chunk_rows: int = 2048) -> list[int]:
    """Subarrays containing the paper's tested rows (first/middle/last 2K)."""
    rows_per_bank = geometry.rows_per_bank
    chunk = min(chunk_rows, rows_per_bank // 3)
    middle_start = (rows_per_bank - chunk) // 2
    subarrays: set[int] = set()
    for start in (0, middle_start, rows_per_bank - chunk):
        first_sa = start // geometry.rows_per_subarray
        last_sa = (start + chunk - 1) // geometry.rows_per_subarray
        subarrays.update(range(first_sa, last_sa + 1))
    return sorted(subarrays)


@dataclass(frozen=True)
class ChipDesign:
    """Design-time description of a DRAM chip.

    Attributes:
        name: Human-readable label (e.g. ``"SK Hynix 4Gb F-die x8"``).
        geometry: Bank/subarray/row organization.
        vendor: Vendor class (determines HiRA support, §12).
        design_seed: Seeds the isolation map and row scrambling.
        target_coverage: Calibration target for the isolation map (fraction
            of a bank's rows pairable with a given row; Table 4).
        variation: Per-row variation distribution parameters.
        scramble_xor: DRAM-internal row-address scrambling: the physical row
            offset within a subarray is ``logical_offset XOR scramble_xor``.
            Real chips remap row addresses internally (§4.3 footnote 8);
            low-bit XOR masks are the commonly reverse-engineered form.
    """

    name: str
    geometry: Geometry = field(default_factory=Geometry)
    vendor: VendorClass = VendorClass.HYNIX_LIKE
    design_seed: int = 1
    target_coverage: float = 0.32
    variation: DesignVariation = field(default_factory=DesignVariation)
    scramble_xor: int = 0b110

    def build_isolation_map(self) -> IsolationMap:
        """The design's subarray isolation map (identical across banks).

        The map is calibrated against the paper's tested-row sample (first /
        middle / last 2K rows of the bank, §4 footnote 4) because Table 4's
        coverage statistics — our calibration targets — are computed over
        exactly that sample.
        """
        sample = tested_subarray_sample(self.geometry)
        # Row-level coverage includes same-subarray candidates (which can
        # never pair); scale the subarray-level calibration target so the
        # row-level average lands on ``target_coverage``.
        correction = len(sample) / max(1, len(sample) - 1)
        return IsolationMap(
            subarrays=self.geometry.subarrays_per_bank,
            design_seed=self.design_seed,
            target_coverage=min(0.95, self.target_coverage * correction),
            calibration_sample=sample,
        )

    # ------------------------------------------------------------------
    # Internal row-address scrambling
    # ------------------------------------------------------------------
    def logical_to_physical(self, row: int) -> int:
        """Map a memory-controller-visible row to its physical position."""
        self.geometry.check_row(row)
        sa = row // self.geometry.rows_per_subarray
        offset = row % self.geometry.rows_per_subarray
        phys_offset = offset ^ self.scramble_xor
        if phys_offset >= self.geometry.rows_per_subarray:
            phys_offset = offset  # mask falls outside the subarray: identity
        return sa * self.geometry.rows_per_subarray + phys_offset

    def physical_to_logical(self, phys_row: int) -> int:
        """Inverse of :meth:`logical_to_physical` (XOR is an involution)."""
        return self.logical_to_physical(phys_row)

    def physical_neighbors(self, row: int) -> list[int]:
        """Physical rows adjacent to a logical row, within its subarray.

        RowHammer disturbance couples physically adjacent rows; subarray
        boundaries isolate it (sense-amp strips separate the cell mats).
        """
        phys = self.logical_to_physical(row)
        sa = phys // self.geometry.rows_per_subarray
        neighbors = []
        for cand in (phys - 1, phys + 1):
            if 0 <= cand < self.geometry.rows_per_bank:
                if cand // self.geometry.rows_per_subarray == sa:
                    neighbors.append(cand)
        return neighbors

    def aggressors_for_victim(self, victim_row: int) -> list[int]:
        """Logical rows whose activation disturbs ``victim_row``.

        This is the ground truth that §4.3's reverse-engineering procedure
        recovers experimentally; tests cross-validate the two.
        """
        phys_victim = self.logical_to_physical(victim_row)
        sa = phys_victim // self.geometry.rows_per_subarray
        out = []
        for cand in (phys_victim - 1, phys_victim + 1):
            if 0 <= cand < self.geometry.rows_per_bank:
                if cand // self.geometry.rows_per_subarray == sa:
                    out.append(self.physical_to_logical(cand))
        return out


def make_design(
    name: str = "generic-hynix-4Gb",
    vendor: VendorClass = VendorClass.HYNIX_LIKE,
    target_coverage: float = 0.32,
    design_seed: int = 1,
    subarrays_per_bank: int = 64,
    rows_per_subarray: int = 512,
    variation: DesignVariation | None = None,
    scramble_xor: int = 0b110,
) -> ChipDesign:
    """Convenience constructor with a characterization-friendly geometry."""
    geom = Geometry(
        subarrays_per_bank=subarrays_per_bank,
        rows_per_subarray=rows_per_subarray,
    )
    return ChipDesign(
        name=name,
        geometry=geom,
        vendor=vendor,
        design_seed=design_seed,
        target_coverage=target_coverage,
        variation=variation or DesignVariation(),
        scramble_xor=scramble_xor,
    )
