"""DDR4 command, timing, and geometry substrate.

This package models the pieces of the DDRx interface that HiRA builds on:

- :mod:`repro.dram.commands` — the DDR4 command set (ACT/PRE/RD/WR/REF).
- :mod:`repro.dram.timing` — timing parameters (tRCD/tRAS/tRP/tRC/tRFC/...),
  the DDR4-2400 preset used throughout the paper, and the tRFC density
  scaling model of Expression 1.
- :mod:`repro.dram.geometry` — channel/rank/bank/subarray/row geometry and
  address containers.
"""

from repro.dram.commands import Command, CommandKind
from repro.dram.errors import DramError, GeometryError, TimingViolation
from repro.dram.geometry import Address, Geometry
from repro.dram.timing import (
    DDR4_2400,
    TimingParams,
    hira_two_row_refresh_latency_ps,
    nominal_two_row_refresh_latency_ps,
    trfc_for_capacity_ns,
)

__all__ = [
    "Address",
    "Command",
    "CommandKind",
    "DDR4_2400",
    "DramError",
    "Geometry",
    "GeometryError",
    "TimingParams",
    "TimingViolation",
    "hira_two_row_refresh_latency_ps",
    "nominal_two_row_refresh_latency_ps",
    "trfc_for_capacity_ns",
]
