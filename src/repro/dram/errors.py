"""Exception hierarchy for the DRAM substrate."""


class DramError(Exception):
    """Base class for all DRAM-substrate errors."""


class TimingViolation(DramError):
    """A command was issued in violation of a *mandatory* timing constraint.

    Note that HiRA deliberately violates tRAS/tRP; the chip model accepts
    such sequences (that is the point of the paper).  This exception is only
    raised for violations the infrastructure itself forbids, e.g. issuing
    two commands in the same picosecond slot from the host.
    """


class GeometryError(DramError):
    """An address or configuration is inconsistent with the DRAM geometry."""
