"""DRAM timing parameters and density-scaling models.

All durations are stored in integer **picoseconds** so that the chip model
and the cycle-level simulator never accumulate floating-point error.  The
values of the ``DDR4_2400`` preset follow the paper (Table 3 and §2.2/§3):
``tRAS = 32 ns``, ``tRP = 14.25 ns``, ``tRC = 46.25 ns``, ``tRCD = 14.5 ns``,
``tREFI = 7.8 µs``, ``tREFW = 64 ms``, and the HiRA timings
``t1 = t2 = 3 ns``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

#: Picoseconds per nanosecond, for readability at call sites.
PS_PER_NS = 1_000


def ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds (exact for 0.25 ns grid)."""
    return round(value * PS_PER_NS)


@dataclass(frozen=True, slots=True)
class TimingParams:
    """A complete set of DDRx timing parameters, in picoseconds.

    Attributes mirror the JEDEC names used in the paper:

    - ``tck``: bus clock period (DDR4-2400 command clock, 0.833 ns).
    - ``trcd``: ACT → column access (row activation latency).
    - ``tras``: ACT → PRE (charge restoration latency).
    - ``trp``: PRE → ACT (precharge latency).
    - ``trc``: ACT → ACT to the same bank (``tras + trp``).
    - ``trfc``: REF blocking latency for the rank.
    - ``trefi``: interval between REF commands.
    - ``trefw``: refresh window (retention guarantee).
    - ``tfaw``: four-activation window per rank.
    - ``trrd_s`` / ``trrd_l``: minimum ACT → ACT spacing between banks of
      *different* bank groups (short) and within the *same* bank group
      (long).  DDR4 splits tRRD because same-group banks share local I/O
      and charge-pump resources.
    - ``twr``: write recovery — the delay between the end of a write data
      burst and a PRE to the written bank.
    - ``trtp``: read-to-precharge — the minimum delay between a RD command
      and a PRE to the same bank (the read must drain from the sense
      amplifiers before the row closes).
    - ``trtw`` / ``twtr``: data-bus turnaround — the minimum idle gap on a
      channel's data bus between the end of a read burst and the start of
      a write burst (``trtw``: the bus and on-die termination must switch
      direction) and between the end of a write burst and the start of a
      read burst (``twtr``: written data must reach the sense amplifiers
      before a read can stream out).  Zero disables turnaround gating.
    - ``trfc_sb``: same-bank refresh latency — how long a DDR5-style REFsb
      blocks its *one* target bank (the rest of the rank stays available,
      unlike the rank-wide ``trfc`` of an all-bank REF).
    - ``trefsb_gap``: minimum spacing between consecutive REFsb commands
      to the same rank (shared refresh-control resources).
    - ``tcwl``: CAS write latency (WR command → start of write data burst).
    - ``tcl`` / ``tbl``: column access latency / data burst duration, used by
      the system simulator to time read completion.
    - ``hira_t1`` / ``hira_t2``: HiRA's engineered ACT→PRE and PRE→ACT gaps.
    """

    tck: int = ns(0.833)
    trcd: int = ns(14.5)
    tras: int = ns(32.0)
    trp: int = ns(14.25)
    trc: int = ns(46.25)
    trfc: int = ns(350.0)
    trefi: int = ns(7_800.0)
    trefw: int = ns(64_000_000.0)
    tfaw: int = ns(16.0)
    #: JEDEC DDR4-2400 tRRD_S / tRRD_L for 1 KiB pages (Table 3's row
    #: width): cross-group ACTs need only the short spacing, same-group
    #: ACTs the long one.
    trrd_s: int = ns(3.3)
    trrd_l: int = ns(4.9)
    #: JEDEC DDR4 write recovery and CAS write latency (DDR4-2400: CWL=12).
    twr: int = ns(15.0)
    #: JEDEC DDR4 read-to-precharge (max(4 nCK, 7.5 ns) at DDR4-2400).
    trtp: int = ns(7.5)
    tcwl: int = ns(10.0)
    tcl: int = ns(14.25)
    tbl: int = ns(3.33)
    #: Read→write bus turnaround: two bus clocks at DDR4-2400 (the DQ bus
    #: and ODT switch direction between the RD and WR bursts).
    trtw: int = ns(1.666)
    #: Write→read turnaround, dominated by tWTR_L (7.5 ns at DDR4-2400):
    #: written data must land internally before a read can stream out.
    twtr: int = ns(7.5)
    #: DDR5-style same-bank refresh (REFsb) latency: one bank blocked for
    #: ~0.4 × tRFC while its sibling banks keep serving demand.  Scales
    #: with tRFC under :meth:`with_trfc` (capacity scaling).
    trfc_sb: int = ns(140.0)
    #: Minimum REFsb→REFsb spacing on a rank (shared refresh control).
    trefsb_gap: int = ns(30.0)
    hira_t1: int = ns(3.0)
    hira_t2: int = ns(3.0)

    def __post_init__(self) -> None:
        if self.trc < self.tras + self.trp:
            raise ValueError(
                "tRC must be at least tRAS + tRP "
                f"({self.trc} < {self.tras} + {self.trp})"
            )
        if self.trrd_l < self.trrd_s:
            raise ValueError(
                "tRRD_L must be at least tRRD_S "
                f"({self.trrd_l} < {self.trrd_s})"
            )
        for name in (
            "tck", "trcd", "tras", "trp", "trfc", "trefi", "trefw", "tfaw",
            "trrd_s", "trrd_l", "twr", "trtp", "tcl", "tcwl", "tbl",
            "trfc_sb", "trefsb_gap", "hira_t1", "hira_t2",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("trtw", "twtr"):  # zero = turnaround gating disabled
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.trfc_sb > self.trfc:
            raise ValueError(
                "tRFC_sb must not exceed tRFC "
                f"({self.trfc_sb} > {self.trfc}): refreshing one bank "
                "cannot take longer than refreshing the whole rank"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def to_cycles(self, duration_ps: int) -> int:
        """Round a duration up to whole bus clock cycles."""
        return -(-duration_ps // self.tck)

    @property
    def hira_op_ps(self) -> int:
        """Latency of the HiRA ACT-PRE-ACT sequence itself (t1 + t2)."""
        return self.hira_t1 + self.hira_t2

    def with_trfc(self, trfc_ps: int) -> "TimingParams":
        """A copy with a different refresh latency (for capacity scaling).

        ``trfc_sb`` scales by the same factor: both latencies are dominated
        by the same row-refresh work per command, so the same-bank/all-bank
        ratio is a device property that capacity scaling preserves.
        """
        sb = max(1, round(self.trfc_sb * trfc_ps / self.trfc))
        return replace(self, trfc=trfc_ps, trfc_sb=sb)

    def with_hira(self, t1_ps: int, t2_ps: int) -> "TimingParams":
        """A copy with different HiRA t1/t2 timings."""
        return replace(self, hira_t1=t1_ps, hira_t2=t2_ps)


#: The DDR4-2400 configuration used throughout the paper's evaluation.
DDR4_2400 = TimingParams()

#: A DDR5-4800-class preset (§2.3: tREFW halves to 32 ms and tREFI to
#: 3.9 µs in DDR5, doubling the refresh-command rate — the density trend
#: HiRA targets).  Core timings stay comparable in nanoseconds.
DDR5_4800 = TimingParams(
    tck=ns(0.416),
    trcd=ns(14.0),
    tras=ns(32.0),
    trp=ns(14.25),
    trc=ns(46.25),
    trfc=ns(295.0),
    trefi=ns(3_900.0),
    trefw=ns(32_000_000.0),
    tfaw=ns(13.333),
    trrd_s=ns(3.3),
    trrd_l=ns(5.0),
    twr=ns(30.0),
    trtp=ns(7.5),
    tcwl=ns(10.0),
    tcl=ns(14.0),
    tbl=ns(3.33),
    # Two bus clocks at the faster DDR5-4800 tCK; tWTR_L grows to 10 ns.
    trtw=ns(0.832),
    twtr=ns(10.0),
    # DDR5 fine-granularity refresh: tRFCsb ≈ 115 ns for an 8 Gbit die,
    # with ~30 ns between same-bank REF commands on a rank.
    trfc_sb=ns(115.0),
    trefsb_gap=ns(30.0),
)


def trfc_for_capacity_ns(capacity_gbit: float) -> float:
    """Expression 1: project tRFC (ns) for a chip capacity in Gbit.

    ``tRFC = 110 × C_chip^0.6`` — the state-of-the-art regression model the
    paper adopts from Nguyen et al. [124] for scaling refresh latency with
    DRAM density.
    """
    if capacity_gbit <= 0:
        raise ValueError("chip capacity must be positive")
    return 110.0 * capacity_gbit**0.6


def timing_for_capacity(capacity_gbit: float, base: TimingParams = DDR4_2400) -> TimingParams:
    """DDR4 timing preset with tRFC scaled for the given chip capacity."""
    return base.with_trfc(ns(trfc_for_capacity_ns(capacity_gbit)))


def rows_per_bank_for_capacity(capacity_gbit: float, banks: int = 16, row_bits: int = 8192) -> int:
    """Rows per bank for a chip capacity, assuming 1 KiB chip rows.

    With 16 banks and 8192-bit (1 KiB) rows per chip this yields the paper's
    Table 3 configuration of 64K rows/bank at 8 Gbit.  Used for the
    characterization-scale chip models (2–8 Gbit).
    """
    total_bits = capacity_gbit * (1 << 30)
    rows = total_bits / (banks * row_bits)
    return max(1, int(round(rows)))


def projected_rows_per_bank(
    capacity_gbit: float, anchor_gbit: float = 8.0, anchor_rows: int = 65_536
) -> int:
    """Rows per bank for *future high-density* chips (the §8 capacity sweep).

    Density scaling grows both the row count and the row width: we project
    rows ∝ √capacity, anchored at Table 3's 64K rows per bank for 8 Gbit
    (2 Gbit → 32K, 32 Gbit → 128K, 128 Gbit → 256K).  A purely linear row
    count would make per-row refresh physically infeasible at 128 Gbit
    under the paper's own tFAW = 16 ns budget (§5.2): 16 banks × 1M rows
    per 64 ms is one activation every 3.8 ns, exceeding the rank's entire
    four-activation-window allowance — while the paper's Fig. 9 shows HiRA
    operating with modest overhead there.  The square-root projection keeps
    refresh demand within the power budget at every swept capacity, which
    is the regime the paper evaluates.
    """
    if capacity_gbit <= 0:
        raise ValueError("chip capacity must be positive")
    rows = anchor_rows * math.sqrt(capacity_gbit / anchor_gbit)
    # Round to whole 512-row subarrays.
    return max(512, int(round(rows / 512.0)) * 512)


def nominal_two_row_refresh_latency_ps(tp: TimingParams = DDR4_2400) -> int:
    """Latency of refreshing two rows with standard commands.

    ACT, wait tRAS, PRE, wait tRP, ACT, wait tRAS — 78.25 ns at DDR4-2400
    (paper footnote 2).
    """
    return tp.tras + tp.trp + tp.tras


def hira_two_row_refresh_latency_ps(tp: TimingParams = DDR4_2400) -> int:
    """Latency of refreshing two rows with one HiRA operation.

    t1 + t2 + tRAS — 38 ns at the paper's t1 = t2 = 3 ns configuration,
    a 51.4% reduction over the nominal 78.25 ns (§4.2).
    """
    return tp.hira_t1 + tp.hira_t2 + tp.tras


def hira_latency_reduction(tp: TimingParams = DDR4_2400) -> float:
    """Fractional latency reduction of HiRA vs. nominal two-row refresh."""
    nominal = nominal_two_row_refresh_latency_ps(tp)
    hira = hira_two_row_refresh_latency_ps(tp)
    return 1.0 - hira / nominal


def refresh_rows_per_ref(rows_per_bank: int, trefw_ps: int, trefi_ps: int) -> float:
    """How many rows per bank each REF command must cover.

    For 64K rows and DDR4's 8K REFs per tREFW this is 8 rows per REF per
    bank (§5.1.1).
    """
    refs_per_window = trefw_ps / trefi_ps
    return rows_per_bank / refs_per_window


def math_isclose_ps(a: int, b: int, tol_ps: int = 1) -> bool:
    """Integer-picosecond closeness check used by property tests."""
    return abs(a - b) <= tol_ps


assert math.isclose(hira_latency_reduction(), 0.514, abs_tol=0.002), (
    "DDR4-2400 preset must reproduce the paper's 51.4% latency reduction"
)
