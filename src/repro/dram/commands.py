"""The DDR4 command set relevant to HiRA.

HiRA is built exclusively from commands that already exist in off-the-shelf
DDR4 chips: row activation (``ACT``), precharge (``PRE``), column accesses
(``RD``/``WR``), and the rank-level refresh command (``REF``) used by the
baseline memory controller.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CommandKind(enum.Enum):
    """A DDR4 command mnemonic."""

    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"
    REF = "REF"
    NOP = "NOP"

    def targets_row(self) -> bool:
        """Whether the command carries a row address."""
        return self is CommandKind.ACT

    def targets_bank(self) -> bool:
        """Whether the command carries a bank address."""
        return self in (CommandKind.ACT, CommandKind.PRE, CommandKind.RD, CommandKind.WR)

    def is_column_access(self) -> bool:
        """Whether the command reads or writes the open row buffer."""
        return self in (CommandKind.RD, CommandKind.WR)


@dataclass(frozen=True, slots=True)
class Command:
    """A single DDR4 command with an issue timestamp.

    Attributes:
        kind: The command mnemonic.
        time_ps: Issue time in integer picoseconds.
        rank: Target rank (``REF`` is rank-level; others address a bank).
        bank: Target bank within the rank, or ``None`` for rank-level
            commands such as ``REF``.
        row: Target row for ``ACT``; ``None`` otherwise.  ``PRE`` carries no
            row address — this is load-bearing for HiRA: a single ``PRE``
            closes *all* wordlines in the bank (paper footnote 1).
        col: Target column for ``RD``/``WR``.
        meta: Free-form annotations (e.g. ``{"hira": "first"}``) used by the
            experiment drivers and the HiRA-MC scheduler.
    """

    kind: CommandKind
    time_ps: int
    rank: int = 0
    bank: int | None = None
    row: int | None = None
    col: int | None = None
    meta: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.time_ps < 0:
            raise ValueError(f"command time must be non-negative, got {self.time_ps}")
        if self.kind.targets_bank() and self.bank is None:
            raise ValueError(f"{self.kind.value} requires a bank address")
        if self.kind.targets_row() and self.row is None:
            raise ValueError(f"{self.kind.value} requires a row address")
        if self.kind.is_column_access() and self.col is None:
            raise ValueError(f"{self.kind.value} requires a column address")

    def describe(self) -> str:
        """Human-readable one-line rendering, e.g. ``@1500ps ACT b0 r42``."""
        parts = [f"@{self.time_ps}ps", self.kind.value, f"rk{self.rank}"]
        if self.bank is not None:
            parts.append(f"b{self.bank}")
        if self.row is not None:
            parts.append(f"r{self.row}")
        if self.col is not None:
            parts.append(f"c{self.col}")
        return " ".join(parts)
