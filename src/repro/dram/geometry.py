"""DRAM organization: channels, ranks, bank groups, banks, subarrays, rows.

The geometry object is shared by the circuit-level chip model (which cares
about subarrays and rows) and the system simulator (which cares about
channels, ranks, and banks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.errors import GeometryError


@dataclass(frozen=True, slots=True)
class Geometry:
    """Hierarchical DRAM organization.

    The defaults model the paper's simulated system (Table 3): one channel,
    one rank, 4 bank groups × 4 banks, 64K rows per bank, with banks split
    into 128 subarrays of 512 rows (§6 models 128 subarrays per bank and up
    to 1024 rows per subarray).
    """

    channels: int = 1
    ranks_per_channel: int = 1
    bankgroups_per_rank: int = 4
    banks_per_bankgroup: int = 4
    subarrays_per_bank: int = 128
    rows_per_subarray: int = 512
    columns_per_row: int = 128
    bits_per_column: int = 64

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "ranks_per_channel",
            "bankgroups_per_rank",
            "banks_per_bankgroup",
            "subarrays_per_bank",
            "rows_per_subarray",
            "columns_per_row",
            "bits_per_column",
        ):
            if getattr(self, name) < 1:
                raise GeometryError(f"{name} must be >= 1")

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def banks_per_rank(self) -> int:
        return self.bankgroups_per_rank * self.banks_per_bankgroup

    @property
    def rows_per_bank(self) -> int:
        return self.subarrays_per_bank * self.rows_per_subarray

    @property
    def row_bits(self) -> int:
        return self.columns_per_row * self.bits_per_column

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def capacity_bits_per_chip(self) -> int:
        return self.banks_per_rank * self.rows_per_bank * self.row_bits

    # ------------------------------------------------------------------
    # Row <-> subarray conversions
    # ------------------------------------------------------------------
    def subarray_of_row(self, row: int) -> int:
        """Which subarray a bank-local row index belongs to."""
        self.check_row(row)
        return row // self.rows_per_subarray

    def row_within_subarray(self, row: int) -> int:
        """Row offset inside its subarray."""
        self.check_row(row)
        return row % self.rows_per_subarray

    def row_of(self, subarray: int, offset: int) -> int:
        """Bank-local row index for a (subarray, offset) pair."""
        if not 0 <= subarray < self.subarrays_per_bank:
            raise GeometryError(f"subarray {subarray} out of range")
        if not 0 <= offset < self.rows_per_subarray:
            raise GeometryError(f"row offset {offset} out of range")
        return subarray * self.rows_per_subarray + offset

    def check_row(self, row: int) -> None:
        if not 0 <= row < self.rows_per_bank:
            raise GeometryError(
                f"row {row} out of range [0, {self.rows_per_bank})"
            )

    def check_bank(self, bank: int) -> None:
        if not 0 <= bank < self.banks_per_rank:
            raise GeometryError(
                f"bank {bank} out of range [0, {self.banks_per_rank})"
            )

    def bankgroup_of(self, bank: int) -> int:
        """Bank group a rank-local bank index belongs to."""
        self.check_bank(bank)
        return bank // self.banks_per_bankgroup


@dataclass(frozen=True, slots=True)
class Address:
    """A fully decoded DRAM address used by the system simulator."""

    channel: int = 0
    rank: int = 0
    bank: int = 0
    row: int = 0
    col: int = 0

    def validate(self, geom: Geometry) -> "Address":
        """Raise :class:`GeometryError` if any field is out of range."""
        if not 0 <= self.channel < geom.channels:
            raise GeometryError(f"channel {self.channel} out of range")
        if not 0 <= self.rank < geom.ranks_per_channel:
            raise GeometryError(f"rank {self.rank} out of range")
        geom.check_bank(self.bank)
        geom.check_row(self.row)
        if not 0 <= self.col < geom.columns_per_row:
            raise GeometryError(f"column {self.col} out of range")
        return self

    def bank_key(self) -> tuple[int, int, int]:
        """(channel, rank, bank) triple used as a dict key by schedulers."""
        return (self.channel, self.rank, self.bank)


def geometry_for_capacity(
    capacity_gbit: float,
    banks_per_rank: int = 16,
    rows_per_subarray: int = 512,
    **overrides,
) -> Geometry:
    """Build a :class:`Geometry` for the §8 capacity sweep.

    Rows per bank follow the √capacity projection of
    :func:`repro.dram.timing.projected_rows_per_bank` (see its docstring
    for why future-density chips cannot scale row count linearly under the
    tFAW power budget); the subarray count is derived to keep
    ``rows_per_subarray`` fixed, mirroring how density scaling adds
    subarrays rather than growing them.
    """
    from repro.dram.timing import projected_rows_per_bank

    rows = projected_rows_per_bank(capacity_gbit)
    subarrays = max(1, rows // rows_per_subarray)
    bankgroups = overrides.pop("bankgroups_per_rank", 4)
    banks_per_group = banks_per_rank // bankgroups
    return Geometry(
        bankgroups_per_rank=bankgroups,
        banks_per_bankgroup=banks_per_group,
        subarrays_per_bank=subarrays,
        rows_per_subarray=rows_per_subarray,
        **overrides,
    )
