"""The declarative sweep API: axes × variants × workloads → points.

A :class:`Sweep` is a parameter grid over :class:`SystemConfig` crossed
with a set of workloads.  Axis values are either plain scalars (applied as
``SystemConfig.variant(axis_name=value)``) or :class:`Variant` bundles (a
labelled set of overrides, for axes like "Baseline vs HiRA-2" that change
several knobs at once).  :meth:`Sweep.expand` materializes the full grid
as :class:`SweepPoint` objects, each carrying everything a worker needs to
run it — config, resolved trace profiles, an explicit deterministic seed,
and budgets — plus a stable content hash used as its cache key.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.orchestrator.hashing import config_hash, source_fingerprint
from repro.sim.config import SystemConfig
from repro.sim.trace import TraceProfile


@dataclass(frozen=True)
class Variant:
    """A labelled bundle of ``SystemConfig`` overrides (one axis value)."""

    label: str
    overrides: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, label: str, **overrides) -> "Variant":
        return cls(label, tuple(sorted(overrides.items())))


def axis(name: str, *values) -> tuple[str, tuple]:
    """One sweep axis: a name and its values (scalars or Variants)."""
    if not values:
        raise ValueError(f"axis {name!r} needs at least one value")
    return (name, tuple(values))


@dataclass(frozen=True)
class Workload:
    """One workload slot of a sweep: a trace mix plus its simulation seed.

    Either ``profiles`` is an explicit tuple of trace profiles, or
    ``mix_id`` names one of the paper's random multiprogrammed mixes
    (resolved against the point's core count at expansion time, exactly as
    the hand-rolled benchmark loops did).
    """

    label: str
    seed: int
    mix_id: int | None = None
    profiles: tuple[TraceProfile, ...] | None = None
    mix_seed: int = 2022
    intensive: bool = True

    def __post_init__(self) -> None:
        if (self.mix_id is None) == (self.profiles is None):
            raise ValueError("exactly one of mix_id / profiles must be set")

    def resolve(self, cores: int) -> tuple[TraceProfile, ...]:
        if self.profiles is not None:
            return self.profiles
        from repro.workloads.mixes import mix_for

        return tuple(
            mix_for(
                self.mix_id, cores=cores, seed=self.mix_seed, intensive=self.intensive
            )
        )


def mix_workloads(
    count: int, seed_base: int = 100, mix_seed: int = 2022, intensive: bool = True
) -> tuple[Workload, ...]:
    """The first ``count`` random mixes, seeded like the legacy bench loops
    (run ``mix_id`` with simulation seed ``seed_base + mix_id``)."""
    return tuple(
        Workload(
            label=f"mix{i}",
            seed=seed_base + i,
            mix_id=i,
            mix_seed=mix_seed,
            intensive=intensive,
        )
        for i in range(count)
    )


def profile_workloads(
    profiles: Sequence[TraceProfile], count: int, seed_base: int = 300
) -> tuple[Workload, ...]:
    """``count`` seed-replicates of one fixed profile list (ablation style)."""
    return tuple(
        Workload(label=f"seed{s}", seed=seed_base + s, profiles=tuple(profiles))
        for s in range(count)
    )


@dataclass(frozen=True)
class SweepPoint:
    """One fully resolved simulation to run."""

    sweep: str
    coords: tuple[tuple[str, Any], ...]
    config: SystemConfig
    profiles: tuple[TraceProfile, ...]
    seed: int
    instr_budget: int
    max_cycles: int

    def coord(self, name: str):
        for key, value in self.coords:
            if key == name:
                return value
        raise KeyError(name)

    def matches(self, **coords) -> bool:
        table = dict(self.coords)
        return all(table.get(k) == v for k, v in coords.items())

    @property
    def key(self) -> str:
        """Stable cache key: everything that determines the SimResult,
        including a fingerprint of the simulator source itself."""
        return config_hash(
            {
                "code": source_fingerprint(),
                "config": self.config,
                "profiles": self.profiles,
                "seed": self.seed,
                "instr_budget": self.instr_budget,
                "max_cycles": self.max_cycles,
            }
        )

    @property
    def label(self) -> str:
        return ",".join(f"{k}={v}" for k, v in self.coords)


@dataclass(frozen=True)
class Sweep:
    """A named parameter grid: expand() yields one point per cell."""

    name: str
    axes: tuple[tuple[str, tuple], ...]
    workloads: tuple[Workload, ...]
    base: SystemConfig = field(default_factory=SystemConfig)
    instr_budget: int = 100_000
    max_cycles: int = 10_000_000

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("a sweep needs at least one workload")
        seen: set[str] = set()
        for name, values in self.axes:
            if name in seen:
                raise ValueError(f"duplicate axis {name!r}")
            seen.add(name)
            if not values:
                raise ValueError(f"axis {name!r} has no values")

    @property
    def size(self) -> int:
        n = len(self.workloads)
        for __, values in self.axes:
            n *= len(values)
        return n

    def expand(self) -> tuple[SweepPoint, ...]:
        """Materialize the grid in deterministic (row-major) order."""
        points: list[SweepPoint] = []
        value_lists: Iterable = [values for __, values in self.axes]
        for combo in itertools.product(*value_lists):
            overrides: dict[str, Any] = {}
            coords: list[tuple[str, Any]] = []
            for (axis_name, __), value in zip(self.axes, combo):
                if isinstance(value, Variant):
                    overrides.update(dict(value.overrides))
                    coords.append((axis_name, value.label))
                else:
                    overrides[axis_name] = value
                    coords.append((axis_name, value))
            config = self.base.variant(**overrides) if overrides else self.base
            for workload in self.workloads:
                points.append(
                    SweepPoint(
                        sweep=self.name,
                        coords=tuple(coords) + (("workload", workload.label),),
                        config=config,
                        profiles=workload.resolve(config.cores),
                        seed=workload.seed,
                        instr_budget=self.instr_budget,
                        max_cycles=self.max_cycles,
                    )
                )
        return tuple(points)
