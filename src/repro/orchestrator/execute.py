"""The worker-side entry point: run one sweep point to completion.

Lives in its own module (rather than :mod:`repro.orchestrator.runner`) so
execution backends and the ``repro worker`` daemon can import it without
pulling in the runner — the runner imports the backends, not vice versa.
The function must stay module-level and picklable: the local pool backend
ships it to forked/spawned worker processes.
"""

from __future__ import annotations

from repro.orchestrator.sweep import SweepPoint
from repro.sim.system import SimResult, System


def execute_point(point: SweepPoint) -> SimResult:
    """Run one sweep point to completion (the worker-side entry point)."""
    system = System(
        point.config,
        list(point.profiles),
        seed=point.seed,
        instr_budget=point.instr_budget,
    )
    result = system.run(max_cycles=point.max_cycles)
    result.meta["sweep"] = point.sweep
    result.meta["coords"] = dict(point.coords)
    result.meta["seed"] = point.seed
    return result


def execute_indexed(payload: tuple[int, SweepPoint]) -> tuple[int, SimResult]:
    index, point = payload
    return index, execute_point(point)
