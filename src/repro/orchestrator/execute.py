"""The worker-side entry point: run one sweep point to completion.

Lives in its own module (rather than :mod:`repro.orchestrator.runner`) so
execution backends and the ``repro worker`` daemon can import it without
pulling in the runner — the runner imports the backends, not vice versa.
The function must stay module-level and picklable: the local pool backend
ships it to forked/spawned worker processes.

Tracing: when ``REPRO_TRACE_DIR`` is set, every executed point arms one
:class:`~repro.obs.tracer.SimTracer` per controller and writes the
canonical Chrome trace-event JSON to
``<dir>/<sweep>-<key16>-ch<channel>.trace.json``.  The environment
variable travels to every backend — serial runs in-process, the local
pool forks the environment, and ``spawn_local_worker`` copies it — so
the same sweep traced through any backend produces byte-identical files
(timestamps are simulated cycles; the content-addressed point key names
the file).
"""

from __future__ import annotations

import os

from repro.orchestrator.sweep import SweepPoint
from repro.sim.system import SimResult, System

#: Environment switch arming per-point tracing (a directory path).
TRACE_DIR_ENV = "REPRO_TRACE_DIR"


def _write_traces(system: System, point: SweepPoint, trace_dir: str) -> None:
    from repro.obs.tracer import trace_json
    from repro.orchestrator.atomicio import atomic_write_text

    os.makedirs(trace_dir, exist_ok=True)
    prefix = f"{point.sweep}-{point.key[:16]}"
    for mc in system.controllers:
        tracer = mc.tracer
        path = os.path.join(trace_dir, f"{prefix}-ch{mc.channel_id}.trace.json")
        atomic_write_text(path, trace_json(tracer.export()))


def execute_point(point: SweepPoint) -> SimResult:
    """Run one sweep point to completion (the worker-side entry point)."""
    trace_dir = os.environ.get(TRACE_DIR_ENV)
    system = System(
        point.config,
        list(point.profiles),
        seed=point.seed,
        instr_budget=point.instr_budget,
    )
    if trace_dir:
        from repro.obs.tracer import attach_tracers

        attach_tracers(system)
    result = system.run(max_cycles=point.max_cycles)
    if trace_dir:
        _write_traces(system, point, trace_dir)
    result.meta["sweep"] = point.sweep
    result.meta["coords"] = dict(point.coords)
    result.meta["seed"] = point.seed
    return result


def execute_indexed(payload: tuple[int, SweepPoint]) -> tuple[int, SimResult]:
    index, point = payload
    return index, execute_point(point)
