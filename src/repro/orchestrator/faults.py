"""Deterministic fault injection for the distributed sweep layer.

Every distributed-stack failure found so far (the PR 5 frame-truncation
hangs, the PR 7 phantom-session worker) was found *ad hoc*; this module
turns each failure mode into a schedulable, seeded, reproducible event so
the chaos suite (``tests/test_chaos.py``) can prove — not hope — that the
sweep layer degrades gracefully.

A :class:`FaultPlan` is a seeded RNG plus an ordered list of
:class:`FaultEvent` entries.  Arming a plan (:func:`arm` /
:func:`injected`) makes the socket endpoints route their transports
through :class:`FaultSocket` / :func:`connect`, which consult the plan on
every connect/send/recv and act out the scheduled failure:

=============  ====== =================================================
action         op     effect at the transport
=============  ====== =================================================
``refuse``     connect raise ``ConnectionRefusedError`` (server down)
``reset``      send    close the socket, raise ``ConnectionResetError``
``reset``      recv    same, on the receive path
``truncate``   send    deliver only ``arg`` bytes of the frame, then
                       close (a torn write / crashed sender)
``corrupt``    send    deliver the frame with seeded byte flips in the
                       body (header intact: the receiver reads exactly
                       ``length`` bytes of garbage JSON)
``delay``      send    sleep ``arg`` seconds, then deliver
``stall``      send    same as ``delay`` — used with a long ``arg`` to
                       model a straggler that is alive but slow
``crash``      send    close the socket and raise :class:`InjectedCrash`,
                       which the worker loop does NOT catch — the daemon
                       dies exactly as it would on SIGKILL
=============  ====== =================================================

Determinism: events are matched by endpoint *role*, operation, an
optional ``match`` substring of the outbound frame (use it for send
events — heartbeat frames interleave nondeterministically, so matching
on content like ``'"type":"result"'`` pins the event to the intended
frame regardless of heartbeat timing), and the *nth* such match.  The
plan's RNG (seeded) feeds only the corruption byte positions and any
jitter, so two runs with the same seed fire the same events with the
same payloads — ``FaultPlan.fired`` records them for equality asserts.

Zero cost when disarmed: :func:`wrap` returns the raw socket unchanged
and :func:`connect` adds one ``None`` check per *connection* (never per
frame or per byte), so the production path is untouched.

:class:`Backoff` also lives here: the seeded exponential-backoff-with-
jitter schedule used by worker reconnects, job retries, and the listener
rebind loop (replacing the fixed sleeps of PRs 4–5).
"""

from __future__ import annotations

import random
import socket
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator


class InjectedCrash(Exception):
    """A planned worker crash.

    Deliberately *not* an ``OSError``: the worker daemon's session loop
    catches connection-level errors and reconnects, but a crash must kill
    the daemon outright (tests run workers as threads, so raising through
    ``serve`` is the thread-level equivalent of SIGKILL).
    """


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure: fires on the nth matching transport op."""

    #: What happens — see the module docstring table.
    action: str
    #: Which endpoint's transport acts ("worker" or "server").
    role: str = "worker"
    #: Which operation triggers it ("connect", "send", or "recv").
    op: str = "send"
    #: Substring the outbound frame must contain ("" matches any frame).
    #: Always set this for send events: heartbeats share the socket.
    match: str = ""
    #: Fire on the nth matching operation (1-based).
    nth: int = 1
    #: Fire on this many consecutive matches (refuse N connects, ...).
    times: int = 1
    #: Seconds for delay/stall, byte count for truncate.
    arg: float = 0.0


class FaultPlan:
    """A seeded, ordered schedule of transport faults.

    Thread-safe: server dealer threads, worker sessions, and heartbeat
    threads all consult the same plan concurrently.  ``fired`` is the
    reproducibility log — a list of ``(event_index, action, role, op,
    detail)`` tuples appended exactly when an event acts.
    """

    def __init__(self, seed: int, events: Iterable[FaultEvent] = ()):
        self.seed = seed
        self.rng = random.Random(seed)
        self.events: list[FaultEvent] = list(events)
        self._counts = [0] * len(self.events)
        self.fired: list[tuple[int, str, str, str, str]] = []
        self._lock = threading.Lock()

    def decide(self, role: str, op: str, data: bytes = b"") -> FaultEvent | None:
        """Tick every matching event's counter; return the first event
        whose firing window covers this occurrence (or ``None``)."""
        with self._lock:
            chosen: tuple[int, FaultEvent] | None = None
            for i, event in enumerate(self.events):
                if event.role != role or event.op != op:
                    continue
                if event.match and event.match.encode("utf-8") not in data:
                    continue
                self._counts[i] += 1
                in_window = event.nth <= self._counts[i] < event.nth + event.times
                if chosen is None and in_window:
                    chosen = (i, event)
            if chosen is None:
                return None
            index, event = chosen
            self._record(index, event, role, op, "")
            return event

    def _record(self, index: int, event: FaultEvent, role: str, op: str,
                detail: str) -> None:
        self.fired.append((index, event.action, role, op, detail))

    def corruption(self, data: bytes, header: int = 4) -> bytes:
        """Seeded byte flips in the frame body (header left intact so the
        receiver reads exactly ``length`` bytes of garbage)."""
        body = bytearray(data)
        if len(body) <= header:
            return bytes(body)
        with self._lock:
            # The first body byte always flips (0x7b '{' -> 0x84, an
            # invalid UTF-8 start byte: guaranteed decode failure), the
            # rest are seeded random positions for variety.
            positions = sorted(
                {header}
                | {
                    self.rng.randrange(header, len(body))
                    for __ in range(min(8, len(body) - header))
                }
            )
            for position in positions:
                body[position] ^= 0xFF
            if self.fired:
                index, action, role, op, __ = self.fired[-1]
                self.fired[-1] = (index, action, role, op,
                                  f"flipped={positions}")
        return bytes(body)


# ----------------------------------------------------------------------
# Arming
# ----------------------------------------------------------------------
_armed: FaultPlan | None = None


def arm(plan: FaultPlan) -> FaultPlan:
    """Globally arm ``plan``; endpoints created afterwards are faulty."""
    global _armed
    _armed = plan
    return plan


def disarm() -> None:
    global _armed
    _armed = None


def active() -> FaultPlan | None:
    return _armed


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with injected(FaultPlan(...)):`` — arm for the block, always
    disarm after (the test-suite idiom)."""
    arm(plan)
    try:
        yield plan
    finally:
        disarm()


def wrap(sock: socket.socket, role: str):
    """Route ``sock`` through the armed plan; identity when disarmed."""
    plan = _armed
    if plan is None:
        return sock
    return FaultSocket(sock, plan, role)


def connect(address: tuple[str, int], timeout: float | None = None,
            role: str = "worker"):
    """``socket.create_connection`` with connect-time fault injection."""
    plan = _armed
    if plan is not None:
        event = plan.decide(role, "connect")
        if event is not None:
            if event.action == "refuse":
                raise ConnectionRefusedError(
                    f"injected: connection refused ({address[0]}:{address[1]})"
                )
            if event.action in ("delay", "stall"):
                time.sleep(event.arg)
    return wrap(socket.create_connection(address, timeout=timeout), role)


class FaultSocket:
    """A socket proxy that acts out the plan on sendall/recv.

    Everything else (``settimeout``, ``setsockopt``, ``close``, ...)
    delegates to the real socket, so the endpoints use it unchanged.
    ``send_msg`` writes each frame with a single ``sendall``, which is
    what makes frame-content matching possible at this layer.
    """

    __slots__ = ("_sock", "_plan", "_role")

    def __init__(self, sock: socket.socket, plan: FaultPlan, role: str):
        self._sock = sock
        self._plan = plan
        self._role = role

    def __getattr__(self, name: str):
        return getattr(self._sock, name)

    def _abort(self, exc: Exception) -> Exception:
        try:
            self._sock.close()
        except OSError:
            pass
        return exc

    def sendall(self, data: bytes) -> None:
        event = self._plan.decide(self._role, "send", data)
        if event is None:
            self._sock.sendall(data)
            return
        action = event.action
        if action in ("delay", "stall"):
            time.sleep(event.arg)
            self._sock.sendall(data)
        elif action == "truncate":
            keep = int(event.arg) if event.arg else max(1, len(data) // 2)
            self._sock.sendall(data[:keep])
            raise self._abort(ConnectionResetError("injected: truncated frame"))
        elif action == "corrupt":
            self._sock.sendall(self._plan.corruption(data))
        elif action == "reset":
            raise self._abort(ConnectionResetError("injected: connection reset"))
        elif action == "crash":
            raise self._abort(InjectedCrash("injected: worker crash mid-job"))
        else:
            raise ValueError(f"unknown fault action {action!r}")

    def recv(self, bufsize: int) -> bytes:
        event = self._plan.decide(self._role, "recv")
        if event is not None:
            if event.action in ("delay", "stall"):
                time.sleep(event.arg)
            elif event.action == "reset":
                raise self._abort(
                    ConnectionResetError("injected: connection reset")
                )
            elif event.action == "crash":
                raise self._abort(InjectedCrash("injected: crash on receive"))
        return self._sock.recv(bufsize)


# ----------------------------------------------------------------------
# Backoff
# ----------------------------------------------------------------------
class Backoff:
    """Seeded exponential backoff with jitter.

    Delays grow ``base * factor**attempt`` capped at ``cap``, each scaled
    by a seeded jitter in ``[0.5, 1.5)`` so a fleet of retrying workers
    never thunders in lockstep, yet every schedule is reproducible from
    its seed.  ``reset()`` after a success restarts the schedule.
    """

    __slots__ = ("base", "cap", "factor", "attempt", "_rng")

    def __init__(self, base: float = 0.05, cap: float = 5.0,
                 factor: float = 2.0, seed: int = 0):
        if base <= 0 or cap < base or factor < 1.0:
            raise ValueError(
                f"need 0 < base <= cap and factor >= 1, got "
                f"base={base}, cap={cap}, factor={factor}"
            )
        self.base = base
        self.cap = cap
        self.factor = factor
        self.attempt = 0
        self._rng = random.Random(seed)

    def next(self) -> float:
        """The next delay in seconds (advances the schedule)."""
        nominal = min(self.cap, self.base * self.factor ** self.attempt)
        self.attempt += 1
        return nominal * (0.5 + self._rng.random())

    def sleep(self) -> float:
        """Sleep the next delay; returns how long it slept."""
        delay = self.next()
        time.sleep(delay)
        return delay

    def reset(self) -> None:
        self.attempt = 0
