"""Generic order-preserving parallel mapping over a worker pool.

Used by :func:`repro.orchestrator.runner.run_sweep` and by the
chip-characterization experiments.  The callable must be picklable (a
module-level function); results are returned in input order regardless of
completion order, so parallelism never changes observable output.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Sequence


def available_cores() -> int:
    """CPU cores actually available to this process."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (0/unset: available cores, ≤8)."""
    env = int(os.environ.get("REPRO_WORKERS", "0") or "0")
    if env > 0:
        return env
    return max(1, min(8, available_cores()))


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork
        return multiprocessing.get_context("spawn")


def parallel_map(fn: Callable, items: Sequence, workers: int | None = None) -> list:
    """``[fn(x) for x in items]``, sharded across ``workers`` processes."""
    items = list(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    ctx = _pool_context()
    with ctx.Pool(processes=min(workers, len(items))) as pool:
        return pool.map(fn, items)
