"""Stable content hashing for sweep points.

A sweep point's cache key must be identical across processes, Python
versions, and dict orderings, and must change whenever any simulation
input changes.  Everything that feeds a run — the full ``SystemConfig``
(including derived geometry and timing), the trace profiles, the seed, and
the budgets — is canonicalized to a JSON-stable structure and hashed.

``SCHEMA_VERSION`` is part of the digest: bump it whenever the simulator's
semantics change in a way that invalidates previously cached results.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
from pathlib import Path
from typing import Any

#: Bump to invalidate every on-disk cache entry (simulator semantics changed).
SCHEMA_VERSION = 1


def source_fingerprint(root: str | None = None) -> str:
    """A digest of the whole ``repro`` package source.

    Folded into every sweep point's cache key *and* stamped into every
    :class:`~repro.orchestrator.cache.ResultCache` entry so that *any*
    code change invalidates previously cached results — nobody has to
    remember to bump ``SCHEMA_VERSION`` after editing the simulator.
    Conservative on purpose: a comment-only edit also invalidates, which
    costs one cold re-run rather than ever replaying stale figures.

    ``root`` defaults to the installed ``src/repro`` tree (memoized for
    the life of the process); tests pass a copy to prove that edits
    anywhere in the package change the digest.
    """
    if root is None:
        return _package_fingerprint()
    return _digest_tree(Path(root))


def _digest_tree(base: Path) -> str:
    digest = hashlib.sha256()
    for path in sorted(base.rglob("*.py")):
        digest.update(str(path.relative_to(base)).encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


@functools.lru_cache(maxsize=1)
def _package_fingerprint() -> str:
    return _digest_tree(Path(__file__).resolve().parent.parent)  # src/repro


def canonical(obj: Any) -> Any:
    """Convert ``obj`` to a JSON-serializable structure with stable ordering.

    Dataclasses become ``{"__type__": name, **fields}`` so that two
    different dataclasses with identical field values hash differently;
    mappings are emitted with sorted keys (via ``json.dumps(sort_keys=...)``).
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if isinstance(obj, (str, bool)) or obj is None:
        return obj
    if isinstance(obj, int):
        return int(obj)
    if isinstance(obj, float):
        return float(obj)
    # numpy scalars and other numeric types reduce via item()/float().
    if hasattr(obj, "item"):
        return canonical(obj.item())
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for hashing")


def config_hash(payload: Any) -> str:
    """A 20-hex-digit digest of an arbitrary canonicalizable payload."""
    body = json.dumps(
        {"schema": SCHEMA_VERSION, "payload": canonical(payload)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:20]
