"""Atomic file writes: no reader ever observes a torn file.

Every artifact the orchestrator persists — result-store entries, sweep
journals, ``--json-out`` payloads, bench JSON — goes through
:func:`atomic_write_text`: write to a same-directory temp file, flush,
``fsync``, then ``os.replace`` onto the target.  A crash at any point
leaves either the old file or the new file, never a prefix of the new
one (the temp carcass is invisible to readers and overwritten by the
next attempt).
"""

from __future__ import annotations

import os
from pathlib import Path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically replace ``path`` with ``text`` (crash-safe).

    The temp file lives in the target's directory (``os.replace`` must
    not cross filesystems) and is suffixed with the pid so concurrent
    writers — e.g. sweep processes sharing a result store — never clobber
    each other's in-flight temp.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path
