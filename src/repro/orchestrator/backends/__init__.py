"""Pluggable sweep-execution backends.

- :mod:`~repro.orchestrator.backends.base` — the
  :class:`ExecutionBackend` interface, :class:`SerialBackend`, and
  :class:`LocalPoolBackend` (multiprocessing on this host).
- :mod:`~repro.orchestrator.backends.server` — :class:`SocketBackend` /
  :class:`JobServer`: a TCP job server dealing points to ``repro worker``
  daemons with registration, heartbeats, and retry-on-worker-death.
- :mod:`~repro.orchestrator.backends.worker` — the worker daemon loop.
- :mod:`~repro.orchestrator.backends.protocol` — the length-prefixed
  JSON job protocol and bit-exact ``SweepPoint`` serialization.

All backends yield ``(grid index, SimResult)`` pairs in arbitrary order;
the runner assembles them into grid order, so every backend is
bit-identical to serial execution by construction.
"""

from __future__ import annotations

import os

from repro.orchestrator.backends.base import (
    ExecutionBackend,
    LocalPoolBackend,
    SerialBackend,
)
from repro.orchestrator.backends.server import (
    JobServer,
    NoWorkersRegistered,
    SocketBackend,
    WorkerPoolError,
    spawn_local_worker,
)

#: Registry for ``--backend <name>`` / ``run_sweep(backend="<name>")``.
BACKENDS = {
    "serial": SerialBackend,
    "local": LocalPoolBackend,
    "socket": SocketBackend,
}


def make_backend(
    spec: "str | ExecutionBackend | None", workers: int | None = None
) -> tuple[ExecutionBackend, bool]:
    """Resolve a backend spec to an instance.

    Returns ``(backend, owned)``: ``owned`` is True when this call
    constructed the instance (the caller should close it after use) and
    False when the caller passed one in (its lifecycle stays theirs).
    ``None`` picks :class:`LocalPoolBackend` honouring ``workers`` —
    the historical ``run_sweep`` behaviour.  ``"socket"`` honours the
    ``REPRO_SOCKET_HOST`` / ``REPRO_SOCKET_PORT`` / ``REPRO_SPAWN_WORKERS``
    environment knobs, so e.g. figure benches can run distributed with
    ``REPRO_BACKEND=socket`` and no code changes.
    """
    if isinstance(spec, ExecutionBackend):
        return spec, False
    if spec is None or spec == "local":
        return LocalPoolBackend(workers), True
    if spec == "serial":
        return SerialBackend(), True
    if spec == "socket":
        return SocketBackend(
            host=os.environ.get("REPRO_SOCKET_HOST", "127.0.0.1"),
            port=int(os.environ.get("REPRO_SOCKET_PORT", "7781")),
            spawn_workers=int(os.environ.get("REPRO_SPAWN_WORKERS", "0")),
        ), True
    raise ValueError(f"unknown backend {spec!r}; choose from {sorted(BACKENDS)}")


__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "JobServer",
    "LocalPoolBackend",
    "NoWorkersRegistered",
    "SerialBackend",
    "SocketBackend",
    "WorkerPoolError",
    "make_backend",
    "spawn_local_worker",
]
