"""The TCP job server and the socket execution backend.

:class:`JobServer` owns a listening socket and a thread per connected
worker.  Workers register with a ``hello`` (carrying their source
fingerprint — a mismatched worker is *rejected*, because results from a
different simulator tree would break bit-identical assembly), then jobs
are dealt from a shared queue.  A worker that dies mid-job — connection
reset, clean EOF, or :attr:`heartbeat_timeout` seconds of silence — has
its job re-queued for the remaining workers with seeded exponential
backoff between attempts; a job that exhausts ``max_retries``
re-dispatches, or a worker that reports a simulation *exception*, fails
the whole sweep (the exception is deterministic — more retries cannot
help).

Hardening layers on top of that baseline:

- **Streaming results** — :meth:`JobServer.stream` yields each ``(index,
  result)`` the moment it lands, so the runner can persist completed
  points *before* the sweep finishes (crash-safety) and ``serve`` is just
  ``list(stream(...))``.
- **Straggler re-dispatch** — with ``job_deadline`` set, a job still
  in flight past the deadline is speculatively re-queued; whichever
  result lands first wins and :meth:`_record` drops the duplicate (the
  content-hash keyed store dedups on disk the same way).
- **Worker quarantine** — a circuit breaker per worker label:
  ``quarantine_threshold`` failures inside ``quarantine_window`` seconds
  stop that worker from being dealt jobs until ``quarantine_cooldown``
  passes (a flapping host can't chew through every job's retry budget).
- **Graceful degradation** — :class:`SocketBackend` (non-``strict``)
  catches the zero-workers-registered failure and falls back to
  :class:`~repro.orchestrator.backends.base.LocalPoolBackend` with a
  warning instead of failing the sweep.

Determinism: the server only transports results.  Placement back into
grid order happens in the runner keyed by each job's grid index, so the
socket backend is bit-identical to serial execution no matter how many
workers race, die, stall, or duplicate work.  The fault-injection layer
(:mod:`repro.orchestrator.faults`) wraps accepted connections when a
plan is armed — and is a no-op (one ``None`` check per connection)
otherwise.
"""

from __future__ import annotations

import os
import queue
import random
import socket
import subprocess
import sys
import threading
import time
from typing import Iterable, Iterator

import repro.orchestrator.faults as faults
from repro.orchestrator.backends.base import (
    ExecutionBackend,
    Jobs,
    LocalPoolBackend,
)
from repro.orchestrator.backends.protocol import (
    PROTOCOL_VERSION,
    point_to_dict,
    recv_msg,
    send_msg,
)
from repro.orchestrator.cache import result_from_dict
from repro.orchestrator.hashing import source_fingerprint
from repro.sim.system import SimResult


class WorkerPoolError(RuntimeError):
    """The sweep cannot make progress (no workers, or a fatal job error)."""


class NoWorkersRegistered(WorkerPoolError):
    """Nobody ever registered: the one failure the backend can degrade
    from (run the jobs locally) without duplicating any work."""


def _bind_listener(host: str, port: int, bind_timeout: float) -> socket.socket:
    """Bind the job port, waiting out a predecessor's draining connections.

    Back-to-back sweeps on a fixed port (the normal CLI pattern) race the
    previous server's accepted sockets through FIN_WAIT — during which a
    fresh bind fails with EADDRINUSE even under SO_REUSEADDR — so retry
    on a backoff schedule with a deadline instead of failing the second
    sweep.
    """
    deadline = time.monotonic() + bind_timeout
    backoff = faults.Backoff(base=0.05, cap=1.0, seed=port)
    while True:
        try:
            return socket.create_server((host, port))
        except OSError as exc:
            if port == 0 or time.monotonic() > deadline:
                raise OSError(
                    f"could not bind job server on {host}:{port} within "
                    f"{bind_timeout:.0f}s: {exc}"
                ) from exc
            backoff.sleep()


class _Job:
    __slots__ = ("index", "payload", "attempts", "not_before", "speculated")

    def __init__(self, index: int, payload: dict):
        self.index = index
        self.payload = payload
        self.attempts = 0
        #: Earliest monotonic time this job may be dealt (retry backoff).
        self.not_before = 0.0
        #: True once a speculative copy has been re-queued (stragglers).
        self.speculated = False


class JobServer:
    """Deals sweep points to registered ``repro worker`` daemons over TCP."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        registration_timeout: float = 60.0,
        heartbeat_timeout: float = 30.0,
        max_retries: int = 2,
        fingerprint: str | None = None,
        bind_timeout: float = 15.0,
        job_deadline: float | None = None,
        retry_backoff: tuple[float, float] = (0.05, 1.0),
        quarantine_threshold: int = 3,
        quarantine_window: float = 30.0,
        quarantine_cooldown: float = 5.0,
        seed: int = 0,
        log=None,
    ):
        self.registration_timeout = registration_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.max_retries = max_retries
        self.fingerprint = source_fingerprint() if fingerprint is None else fingerprint
        self.job_deadline = job_deadline
        self.retry_backoff = retry_backoff
        self.quarantine_threshold = quarantine_threshold
        self.quarantine_window = quarantine_window
        self.quarantine_cooldown = quarantine_cooldown
        self._log = log or (lambda message: None)
        self._retry_rng = random.Random(seed)
        self._sock = _bind_listener(host, port, bind_timeout)
        self.host, self.port = self._sock.getsockname()[:2]
        self._log(f"job server listening on {self.host}:{self.port}")
        self._lock = threading.Lock()
        self._jobs: queue.Queue[_Job] = queue.Queue()
        self._ready: queue.Queue[tuple[int, SimResult]] = queue.Queue()
        self._results: dict[int, SimResult] = {}
        self._outstanding = 0
        self._done = threading.Event()
        self._fatal: str | None = None
        self._closing = False
        self._conns: set = set()
        self.workers_seen = 0
        #: Currently registered (welcomed, not yet departed) workers.
        self._live_workers = 0
        #: Jobs currently on a worker: id(job) -> (job, started, label).
        self._inflight: dict[int, tuple[_Job, float, str]] = {}
        #: Telemetry: speculative re-dispatches, quarantine trips, retries.
        self.speculated = 0
        self.quarantined_total = 0
        self.retried = 0
        #: Optional fleet-status sink (:class:`repro.obs.fleet.FleetStatus`):
        #: when set, job lifecycle and worker events are mirrored to it.
        #: Telemetry must never break the sweep, so every call is guarded.
        self.status = None
        self._failures: dict[str, list[float]] = {}
        self._quarantine_until: dict[str, float] = {}
        self._acceptor = threading.Thread(target=self._accept_loop, daemon=True)
        self._acceptor.start()

    def _status_event(self, method: str, *args) -> None:
        """Mirror one event to the attached fleet-status sink, if any."""
        status = self.status
        if status is None:
            return
        try:
            getattr(status, method)(*args)
        except Exception:
            pass  # status snapshots are best-effort observability

    def telemetry(self) -> dict:
        """The server's hidden counters, surfaced for ``--json-out``."""
        return {
            "workers_seen": self.workers_seen,
            "speculated": self.speculated,
            "retries": self.retried,
            "quarantined": self.quarantined_total,
        }

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(self, jobs: Jobs) -> list[tuple[int, SimResult]]:
        """Execute every job on the registered workers; any-order results."""
        return list(self.stream(jobs))

    def stream(self, jobs: Jobs) -> Iterator[tuple[int, SimResult]]:
        """Yield ``(index, result)`` pairs as each job completes.

        Streaming is what makes the sweep crash-safe: the runner persists
        every yielded result to the content-addressed store and the sweep
        journal immediately, so a server/runner crash loses only in-flight
        work and ``--resume`` continues from the completed points.
        """
        jobs = list(jobs)
        if not jobs:
            return
        with self._lock:
            self._results.clear()
            self._inflight.clear()
            self._outstanding = len(jobs)
            self._fatal = None
            self._done.clear()
            self._ready = queue.Queue()
        ready = self._ready
        while True:  # drain stale jobs left by an aborted previous run
            try:
                self._jobs.get_nowait()
            except queue.Empty:
                break
        for index, point in jobs:
            self._jobs.put(_Job(index, point_to_dict(point)))
        delivered = 0
        # The deadline re-arms while any worker is registered: it guards
        # both "nobody ever showed up" and "every worker died mid-sweep"
        # (without it, a re-queued job with no surviving worker would
        # leave the stream waiting forever).
        deadline = time.monotonic() + self.registration_timeout
        while delivered < len(jobs):
            if self._fatal is not None:
                raise WorkerPoolError(self._fatal)
            try:
                index, result = ready.get(timeout=0.2)
            except queue.Empty:
                with self._lock:
                    live = self._live_workers
                if live > 0:
                    deadline = time.monotonic() + self.registration_timeout
                elif time.monotonic() > deadline:
                    if self.workers_seen == 0:
                        self._fatal = (
                            f"no worker registered with {self.host}:"
                            f"{self.port} within "
                            f"{self.registration_timeout:.0f}s (start one "
                            f"with `repro worker --host {self.host} "
                            f"--port {self.port}`)"
                        )
                        raise NoWorkersRegistered(self._fatal)
                    self._fatal = (
                        f"all {self.workers_seen} registered workers left "
                        f"{self.host}:{self.port} and none returned within "
                        f"{self.registration_timeout:.0f}s; jobs remain "
                        "unfinished"
                    )
                    raise WorkerPoolError(self._fatal)
                self._check_stragglers()
                continue
            delivered += 1
            yield index, result

    def _check_stragglers(self) -> None:
        """Speculatively re-queue in-flight jobs past the deadline.

        The slow worker keeps running; whichever copy finishes first is
        recorded and the loser is dropped as a duplicate, so speculation
        can only shorten the sweep, never change its results.
        """
        if self.job_deadline is None:
            return
        now = time.monotonic()
        with self._lock:
            overdue = [
                job for job, started, __ in self._inflight.values()
                if not job.speculated
                and now - started > self.job_deadline
                and job.index not in self._results
            ]
            for job in overdue:
                job.speculated = True
                self.speculated += 1
        for job in overdue:
            self._status_event("job_speculated", str(job.index))
            clone = _Job(job.index, job.payload)
            clone.attempts = job.attempts
            clone.speculated = True  # one speculative copy per job
            self._jobs.put(clone)
            self._log(
                f"job {job.index} exceeded the {self.job_deadline:.1f}s "
                "deadline; speculatively re-dispatched"
            )

    # ------------------------------------------------------------------
    # Quarantine (circuit breaker per worker label)
    # ------------------------------------------------------------------
    def _note_failure(self, label: str) -> None:
        now = time.monotonic()
        tripped = False
        with self._lock:
            window = self._failures.setdefault(label, [])
            window.append(now)
            cutoff = now - self.quarantine_window
            while window and window[0] < cutoff:
                window.pop(0)
            if (
                len(window) >= self.quarantine_threshold
                and self._quarantine_until.get(label, 0.0) <= now
            ):
                self._quarantine_until[label] = now + self.quarantine_cooldown
                self.quarantined_total += 1
                tripped = True
                window.clear()
                self._log(
                    f"worker {label!r} quarantined for "
                    f"{self.quarantine_cooldown:.0f}s after "
                    f"{self.quarantine_threshold} failures in "
                    f"{self.quarantine_window:.0f}s"
                )
        if tripped:
            self._status_event("worker_quarantined", label)

    def _is_quarantined(self, label: str) -> bool:
        with self._lock:
            until = self._quarantine_until.get(label)
            if until is None:
                return False
            if time.monotonic() >= until:
                del self._quarantine_until[label]
                self._log(f"worker {label!r} re-admitted after cooldown")
                return False
            return True

    # ------------------------------------------------------------------
    # Worker handling (one thread per connection)
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, __addr = self._sock.accept()
            except OSError:  # listening socket closed
                return
            conn = faults.wrap(conn, "server")
            threading.Thread(
                target=self._serve_worker, args=(conn,), daemon=True
            ).start()

    def _serve_worker(self, conn) -> None:
        label = "?"
        registered = False
        with self._lock:
            self._conns.add(conn)
        try:
            conn.settimeout(self.heartbeat_timeout)
            hello = recv_msg(conn)
            if not hello or hello.get("type") != "hello":
                return
            label = hello.get("worker", "?")
            if hello.get("protocol") != PROTOCOL_VERSION:
                send_msg(conn, {
                    "type": "reject",
                    "reason": f"protocol {hello.get('protocol')} != {PROTOCOL_VERSION}",
                })
                return
            if hello.get("fingerprint") != self.fingerprint:
                # A worker running different simulator source would return
                # results that are not bit-identical to serial execution.
                send_msg(conn, {
                    "type": "reject",
                    "reason": (
                        f"source fingerprint {hello.get('fingerprint')} does not "
                        f"match the server's {self.fingerprint}; update the "
                        "worker's checkout"
                    ),
                })
                return
            send_msg(conn, {"type": "welcome", "server": f"pid{os.getpid()}"})
            with self._lock:
                self.workers_seen += 1
                self._live_workers += 1
            registered = True
            self._status_event("worker_seen", label)
            self._deal_jobs(conn, label)
        except (OSError, ValueError):
            pass  # connection-level failure: any in-flight job was re-queued
        finally:
            with self._lock:
                self._conns.discard(conn)
                if registered:
                    self._live_workers -= 1
            try:
                conn.close()
            except OSError:
                pass

    def _deal_jobs(self, conn, label: str) -> None:
        while not self._closing and self._fatal is None:
            if self._is_quarantined(label):
                if self._done.is_set():
                    break
                time.sleep(0.05)
                continue
            try:
                job = self._jobs.get(timeout=0.1)
            except queue.Empty:
                if self._done.is_set():
                    break
                continue
            now = time.monotonic()
            if job.not_before > now:
                # Retry backoff not yet elapsed: put it back and let time
                # pass (another worker may pick it up once eligible).
                self._jobs.put(job)
                time.sleep(min(0.05, job.not_before - now))
                continue
            with self._lock:
                if job.index in self._results:
                    continue  # stale speculative/duplicated copy: drop it
                self._inflight[id(job)] = (job, now, label)
            try:
                send_msg(conn, {"type": "job", "id": job.index, "point": job.payload})
                self._status_event("job_dispatched", str(job.index), label)
                finished = self._await_result(conn, job, label)
            except (OSError, ValueError):
                self._requeue(job, label, "connection lost")
                return
            finally:
                with self._lock:
                    self._inflight.pop(id(job), None)
            if not finished:
                return  # worker died; job already re-queued
        try:
            send_msg(conn, {"type": "shutdown"})
        except OSError:
            pass

    def _await_result(self, conn, job: _Job, label: str) -> bool:
        """True when the job completed on this worker; False re-queues."""
        while True:
            try:
                message = recv_msg(conn)
            except socket.timeout:
                self._requeue(job, label, "heartbeat timeout")
                return False
            except (OSError, ValueError):
                self._requeue(job, label, "connection lost")
                return False
            if message is None:
                self._requeue(job, label, "EOF")
                return False
            kind = message.get("type")
            if kind == "heartbeat":
                self._status_event("worker_heartbeat", label)
                continue
            if kind == "result" and message.get("id") == job.index:
                self._record(job.index, result_from_dict(message["result"]))
                return True
            if kind == "error":
                # The simulation itself raised: deterministic, fatal.
                self._fail(
                    f"point {job.index} raised on the worker:\n{message.get('error')}"
                )
                return True
            # Anything else (stale result id after a re-queue race) is
            # ignored; the protocol is strictly request/response per worker.

    def _record(self, index: int, result: SimResult) -> None:
        with self._lock:
            if index in self._results:
                return  # duplicate completion after a speculative re-queue
            self._results[index] = result
            self._outstanding -= 1
            if self._outstanding == 0:
                self._done.set()
        self._ready.put((index, result))

    def _requeue(self, job: _Job, label: str, why: str) -> None:
        with self._lock:
            if job.index in self._results:
                return  # completed elsewhere in the meantime
        self._note_failure(label)
        job.attempts += 1
        with self._lock:
            self.retried += 1
        self._status_event("job_retried", str(job.index), job.attempts)
        if job.attempts > self.max_retries:
            self._fail(
                f"point {job.index} failed {job.attempts} times "
                f"(last: {why} on {label})"
            )
            return
        base, cap = self.retry_backoff
        with self._lock:
            jitter = 0.5 + self._retry_rng.random()
        job.not_before = time.monotonic() + min(
            cap, base * 2.0 ** (job.attempts - 1)
        ) * jitter
        self._jobs.put(job)

    def _fail(self, reason: str) -> None:
        self._fatal = reason
        self._done.set()

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._closing = True
        self._done.set()
        try:
            self._sock.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                send_msg(conn, {"type": "shutdown"})
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass


class SocketBackend(ExecutionBackend):
    """Execute sweep points on ``repro worker`` daemons via a job server.

    The backend *hosts* the server (binding ``host:port``; port 0 picks an
    ephemeral port, exposed as :attr:`port`).  Workers connect inward —
    from this host or any other — so firewalled lab machines can join by
    running ``repro worker --host <server> --port <port>``.
    ``spawn_workers=N`` additionally launches N localhost worker
    subprocesses for self-contained operation.

    When *no* worker ever registers, a non-``strict`` backend warns and
    degrades to :class:`LocalPoolBackend` instead of failing the sweep
    (zero results were produced, so local execution duplicates nothing);
    ``strict=True`` — the CLI's ``--strict-backend`` — keeps the hard
    failure for setups where silent local execution would be wrong.
    """

    name = "socket"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        spawn_workers: int = 0,
        registration_timeout: float = 60.0,
        heartbeat_timeout: float = 30.0,
        max_retries: int = 2,
        job_deadline: float | None = None,
        strict: bool = False,
        fallback_workers: int | None = None,
        log=None,
    ):
        self.server = JobServer(
            host,
            port,
            registration_timeout=registration_timeout,
            heartbeat_timeout=heartbeat_timeout,
            max_retries=max_retries,
            job_deadline=job_deadline,
            log=log,
        )
        self.host, self.port = self.server.host, self.server.port
        self.strict = strict
        self.fallback_workers = fallback_workers
        #: True once a zero-worker sweep degraded to the local pool.
        self.degraded = False
        self._procs: list[subprocess.Popen] = []
        for __ in range(spawn_workers):
            self._procs.append(spawn_local_worker(self.host, self.port))

    @property
    def parallelism(self) -> int:  # type: ignore[override]
        return max(1, self.server.workers_seen)

    def telemetry(self) -> dict:
        """Server counters plus the backend's degradation flag."""
        data = self.server.telemetry()
        data["degraded"] = self.degraded
        return data

    def run_jobs(self, jobs: Jobs) -> Iterable[tuple[int, SimResult]]:
        jobs = list(jobs)
        try:
            yield from self.server.stream(jobs)
        except NoWorkersRegistered as exc:
            if self.strict:
                raise
            # Zero workers registered means zero results were streamed, so
            # handing the full job list to the local pool cannot duplicate
            # work — degrade loudly instead of dying.
            print(
                f"[sweep] {exc}; degrading to the local pool backend "
                "(pass --strict-backend to fail instead)",
                file=sys.stderr,
                flush=True,
            )
            self.degraded = True
            yield from LocalPoolBackend(self.fallback_workers).run_jobs(jobs)

    def close(self) -> None:
        self.server.close()
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
        self._procs.clear()


def spawn_local_worker(host: str, port: int, **popen_kwargs) -> subprocess.Popen:
    """Launch a ``repro worker`` subprocess aimed at ``host:port``.

    The child inherits this interpreter and gets the live ``repro``
    package prepended to ``PYTHONPATH`` so source checkouts work without
    installation.
    """
    import repro

    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = pkg_root + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--host", host, "--port", str(port),
        ],
        env=env,
        **popen_kwargs,
    )
