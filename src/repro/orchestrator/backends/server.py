"""The TCP job server and the socket execution backend.

:class:`JobServer` owns a listening socket and a thread per connected
worker.  Workers register with a ``hello`` (carrying their source
fingerprint — a mismatched worker is *rejected*, because results from a
different simulator tree would break bit-identical assembly), then jobs
are dealt from a shared queue.  A worker that dies mid-job — connection
reset, clean EOF, or :attr:`heartbeat_timeout` seconds of silence — has
its job re-queued for the remaining workers; a job that exhausts
``max_retries`` re-dispatches, or a worker that reports a simulation
*exception*, fails the whole sweep (the exception is deterministic — more
retries cannot help).

Determinism: the server only transports results.  Placement back into
grid order happens in the runner keyed by each job's grid index, so the
socket backend is bit-identical to serial execution no matter how many
workers race, die, or duplicate work.
"""

from __future__ import annotations

import os
import queue
import socket
import subprocess
import sys
import threading
import time
from typing import Iterable

from repro.orchestrator.backends.base import ExecutionBackend, Jobs
from repro.orchestrator.backends.protocol import (
    PROTOCOL_VERSION,
    point_to_dict,
    recv_msg,
    send_msg,
)
from repro.orchestrator.cache import result_from_dict
from repro.orchestrator.hashing import source_fingerprint
from repro.sim.system import SimResult


class WorkerPoolError(RuntimeError):
    """The sweep cannot make progress (no workers, or a fatal job error)."""


def _bind_listener(host: str, port: int, bind_timeout: float) -> socket.socket:
    """Bind the job port, waiting out a predecessor's draining connections.

    Back-to-back sweeps on a fixed port (the normal CLI pattern) race the
    previous server's accepted sockets through FIN_WAIT — during which a
    fresh bind fails with EADDRINUSE even under SO_REUSEADDR — so retry
    with a deadline instead of failing the second sweep.
    """
    deadline = time.monotonic() + bind_timeout
    while True:
        try:
            return socket.create_server((host, port))
        except OSError:
            if port == 0 or time.monotonic() > deadline:
                raise
            time.sleep(0.1)


class _Job:
    __slots__ = ("index", "payload", "attempts")

    def __init__(self, index: int, payload: dict):
        self.index = index
        self.payload = payload
        self.attempts = 0


class JobServer:
    """Deals sweep points to registered ``repro worker`` daemons over TCP."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        registration_timeout: float = 60.0,
        heartbeat_timeout: float = 30.0,
        max_retries: int = 2,
        fingerprint: str | None = None,
        bind_timeout: float = 15.0,
    ):
        self.registration_timeout = registration_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.max_retries = max_retries
        self.fingerprint = source_fingerprint() if fingerprint is None else fingerprint
        self._sock = _bind_listener(host, port, bind_timeout)
        self.host, self.port = self._sock.getsockname()[:2]
        self._lock = threading.Lock()
        self._jobs: queue.Queue[_Job] = queue.Queue()
        self._results: dict[int, SimResult] = {}
        self._outstanding = 0
        self._done = threading.Event()
        self._fatal: str | None = None
        self._closing = False
        self._conns: set[socket.socket] = set()
        self.workers_seen = 0
        #: Currently registered (welcomed, not yet departed) workers.
        self._live_workers = 0
        self._acceptor = threading.Thread(target=self._accept_loop, daemon=True)
        self._acceptor.start()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(self, jobs: Jobs) -> Iterable[tuple[int, SimResult]]:
        """Execute every job on the registered workers; any-order results."""
        jobs = list(jobs)
        if not jobs:
            return []
        with self._lock:
            self._results.clear()
            self._outstanding = len(jobs)
            self._done.clear()
        for index, point in jobs:
            self._jobs.put(_Job(index, point_to_dict(point)))
        # The deadline re-arms while any worker is registered: it guards
        # both "nobody ever showed up" and "every worker died mid-sweep"
        # (without it, a re-queued job with no surviving worker would
        # leave serve() waiting forever).
        deadline = time.monotonic() + self.registration_timeout
        while not self._done.wait(timeout=0.2):
            if self._fatal is not None:
                break
            with self._lock:
                live = self._live_workers
            if live > 0:
                deadline = time.monotonic() + self.registration_timeout
            elif time.monotonic() > deadline:
                if self.workers_seen == 0:
                    self._fatal = (
                        f"no worker registered within "
                        f"{self.registration_timeout:.0f}s (start one with "
                        f"`repro worker --host {self.host} --port {self.port}`)"
                    )
                else:
                    self._fatal = (
                        f"all {self.workers_seen} registered workers left and "
                        f"none returned within {self.registration_timeout:.0f}s; "
                        f"jobs remain unfinished"
                    )
                break
        if self._fatal is not None:
            raise WorkerPoolError(self._fatal)
        with self._lock:
            return list(self._results.items())

    # ------------------------------------------------------------------
    # Worker handling (one thread per connection)
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, __addr = self._sock.accept()
            except OSError:  # listening socket closed
                return
            threading.Thread(
                target=self._serve_worker, args=(conn,), daemon=True
            ).start()

    def _serve_worker(self, conn: socket.socket) -> None:
        label = "?"
        registered = False
        with self._lock:
            self._conns.add(conn)
        try:
            conn.settimeout(self.heartbeat_timeout)
            hello = recv_msg(conn)
            if not hello or hello.get("type") != "hello":
                return
            label = hello.get("worker", "?")
            if hello.get("protocol") != PROTOCOL_VERSION:
                send_msg(conn, {
                    "type": "reject",
                    "reason": f"protocol {hello.get('protocol')} != {PROTOCOL_VERSION}",
                })
                return
            if hello.get("fingerprint") != self.fingerprint:
                # A worker running different simulator source would return
                # results that are not bit-identical to serial execution.
                send_msg(conn, {
                    "type": "reject",
                    "reason": (
                        f"source fingerprint {hello.get('fingerprint')} does not "
                        f"match the server's {self.fingerprint}; update the "
                        "worker's checkout"
                    ),
                })
                return
            send_msg(conn, {"type": "welcome", "server": f"pid{os.getpid()}"})
            with self._lock:
                self.workers_seen += 1
                self._live_workers += 1
            registered = True
            self._deal_jobs(conn, label)
        except (OSError, ValueError):
            pass  # connection-level failure: any in-flight job was re-queued
        finally:
            with self._lock:
                self._conns.discard(conn)
                if registered:
                    self._live_workers -= 1
            try:
                conn.close()
            except OSError:
                pass

    def _deal_jobs(self, conn: socket.socket, label: str) -> None:
        while not self._closing and self._fatal is None:
            try:
                job = self._jobs.get(timeout=0.1)
            except queue.Empty:
                if self._done.is_set():
                    try:
                        send_msg(conn, {"type": "shutdown"})
                    except OSError:
                        pass
                    return
                continue
            try:
                send_msg(conn, {"type": "job", "id": job.index, "point": job.payload})
                if not self._await_result(conn, job):
                    return  # worker died; job already re-queued
            except (OSError, ValueError):
                self._requeue(job, label, "connection lost")
                return

    def _await_result(self, conn: socket.socket, job: _Job) -> bool:
        """True when the job completed on this worker; False re-queues."""
        while True:
            try:
                message = recv_msg(conn)
            except socket.timeout:
                self._requeue(job, "worker", "heartbeat timeout")
                return False
            except (OSError, ValueError):
                self._requeue(job, "worker", "connection lost")
                return False
            if message is None:
                self._requeue(job, "worker", "EOF")
                return False
            kind = message.get("type")
            if kind == "heartbeat":
                continue
            if kind == "result" and message.get("id") == job.index:
                self._record(job.index, result_from_dict(message["result"]))
                return True
            if kind == "error":
                # The simulation itself raised: deterministic, fatal.
                self._fail(
                    f"point {job.index} raised on the worker:\n{message.get('error')}"
                )
                return True
            # Anything else (stale result id after a re-queue race) is
            # ignored; the protocol is strictly request/response per worker.

    def _record(self, index: int, result: SimResult) -> None:
        with self._lock:
            if index in self._results:
                return  # duplicate completion after a conservative re-queue
            self._results[index] = result
            self._outstanding -= 1
            if self._outstanding == 0:
                self._done.set()

    def _requeue(self, job: _Job, label: str, why: str) -> None:
        with self._lock:
            if job.index in self._results:
                return  # completed elsewhere in the meantime
        job.attempts += 1
        if job.attempts > self.max_retries:
            self._fail(
                f"point {job.index} failed {job.attempts} times "
                f"(last: {why} on {label})"
            )
            return
        self._jobs.put(job)

    def _fail(self, reason: str) -> None:
        self._fatal = reason
        self._done.set()

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._closing = True
        self._done.set()
        try:
            self._sock.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                send_msg(conn, {"type": "shutdown"})
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass


class SocketBackend(ExecutionBackend):
    """Execute sweep points on ``repro worker`` daemons via a job server.

    The backend *hosts* the server (binding ``host:port``; port 0 picks an
    ephemeral port, exposed as :attr:`port`).  Workers connect inward —
    from this host or any other — so firewalled lab machines can join by
    running ``repro worker --host <server> --port <port>``.
    ``spawn_workers=N`` additionally launches N localhost worker
    subprocesses for self-contained operation.
    """

    name = "socket"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        spawn_workers: int = 0,
        registration_timeout: float = 60.0,
        heartbeat_timeout: float = 30.0,
        max_retries: int = 2,
    ):
        self.server = JobServer(
            host,
            port,
            registration_timeout=registration_timeout,
            heartbeat_timeout=heartbeat_timeout,
            max_retries=max_retries,
        )
        self.host, self.port = self.server.host, self.server.port
        self._procs: list[subprocess.Popen] = []
        for __ in range(spawn_workers):
            self._procs.append(spawn_local_worker(self.host, self.port))

    @property
    def parallelism(self) -> int:  # type: ignore[override]
        return max(1, self.server.workers_seen)

    def run_jobs(self, jobs: Jobs) -> Iterable[tuple[int, SimResult]]:
        return self.server.serve(jobs)

    def close(self) -> None:
        self.server.close()
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
        self._procs.clear()


def spawn_local_worker(host: str, port: int, **popen_kwargs) -> subprocess.Popen:
    """Launch a ``repro worker`` subprocess aimed at ``host:port``.

    The child inherits this interpreter and gets the live ``repro``
    package prepended to ``PYTHONPATH`` so source checkouts work without
    installation.
    """
    import repro

    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = pkg_root + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--host", host, "--port", str(port),
        ],
        env=env,
        **popen_kwargs,
    )
