"""The pluggable execution-backend interface and the in-host backends.

A backend executes a batch of ``(grid index, SweepPoint)`` jobs and yields
``(grid index, SimResult)`` pairs in *any* order; the runner owns result
placement, so deterministic grid-order assembly — and therefore bit-exact
equality between all backends — holds by construction.  Backends only
decide *where* points run:

- :class:`SerialBackend` — in-process, one point at a time.
- :class:`LocalPoolBackend` — a multiprocessing pool on this host (the
  pre-backend ``run_sweep`` behaviour).
- :class:`~repro.orchestrator.backends.server.SocketBackend` — a TCP job
  server dispatching to ``repro worker`` daemons (this or other hosts).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.orchestrator.execute import execute_indexed, execute_point
from repro.orchestrator.pool import _pool_context, default_workers
from repro.orchestrator.sweep import SweepPoint
from repro.sim.system import SimResult

Jobs = Sequence[tuple[int, SweepPoint]]


class ExecutionBackend:
    """Executes sweep points; yields ``(index, result)`` in any order."""

    #: Registry name (also reported in :class:`SweepResult` telemetry).
    name = "abstract"

    #: How many points may execute concurrently (telemetry only).
    parallelism = 1

    def run_jobs(self, jobs: Jobs) -> Iterable[tuple[int, SimResult]]:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (sockets, worker processes).  Idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process execution, one point at a time, in submission order."""

    name = "serial"

    def run_jobs(self, jobs: Jobs) -> Iterable[tuple[int, SimResult]]:
        for index, point in jobs:
            yield index, execute_point(point)


class LocalPoolBackend(ExecutionBackend):
    """A multiprocessing pool on this host (completion-order results)."""

    name = "local"

    def __init__(self, workers: int | None = None):
        self.workers = default_workers() if workers is None else workers
        self.parallelism = max(1, self.workers)

    def run_jobs(self, jobs: Jobs) -> Iterable[tuple[int, SimResult]]:
        jobs = list(jobs)
        if self.workers <= 1 or len(jobs) <= 1:
            yield from SerialBackend().run_jobs(jobs)
            return
        ctx = _pool_context()
        with ctx.Pool(processes=min(self.workers, len(jobs))) as pool:
            yield from pool.imap_unordered(execute_indexed, jobs)
