"""The socket backend's wire protocol: length-prefixed JSON frames.

Every frame is a 4-byte big-endian length followed by a UTF-8 JSON body.
Messages are flat dicts with a ``type`` field:

========== =========== ====================================================
direction  type        payload
========== =========== ====================================================
worker →   hello       ``worker`` (label), ``pid``, ``fingerprint``,
                       ``protocol``
server →   welcome     ``server`` (label)
server →   reject      ``reason`` (fingerprint/protocol mismatch — fatal)
server →   job         ``id`` (grid index), ``point`` (serialized
                       :class:`~repro.orchestrator.sweep.SweepPoint`)
worker →   result      ``id``, ``result`` (``result_to_dict`` payload)
worker →   error       ``id``, ``error`` (traceback text — fatal: the
                       simulation itself raised, retrying cannot help)
worker →   heartbeat   (empty; sent while idle *and* while computing)
server →   shutdown    (empty; the sweep is complete)
========== =========== ====================================================

Sweep points travel as plain JSON (no pickling): the full
:class:`~repro.sim.config.SystemConfig` — including derived
:class:`~repro.dram.geometry.Geometry` and
:class:`~repro.dram.timing.TimingParams` — plus trace profiles, seed, and
budgets round-trip bit-exactly, so a point executes identically no matter
which host runs it.  :func:`point_from_dict`'s reconstruction is verified
by comparing content-hash keys in the backend tests.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from dataclasses import asdict, fields

from repro.dram.geometry import Geometry
from repro.dram.timing import TimingParams
from repro.orchestrator.sweep import SweepPoint
from repro.sim.config import SystemConfig
from repro.sim.trace import TraceProfile

#: Protocol revision: bump on any incompatible message/serialization change.
PROTOCOL_VERSION = 1

#: Canonical message registry: type -> direction.  This is the machine-
#: readable twin of the docstring table above, and the source of truth the
#: ``protocol-dispatch`` lint rule checks server.py/worker.py against: the
#: receiving side must dispatch on every inbound type and the sending side
#: must emit every outbound one.  Add a message here *first*; the linter
#: then fails until both endpoints actually handle it.
MESSAGE_TYPES: dict[str, str] = {
    "hello": "worker->server",
    "welcome": "server->worker",
    "reject": "server->worker",
    "job": "server->worker",
    "result": "worker->server",
    "error": "worker->server",
    "heartbeat": "worker->server",
    "shutdown": "server->worker",
}

#: Upper bound on a single frame; anything larger is a corrupt stream.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(ValueError):
    """A malformed or oversized frame on the job socket.

    A ``ValueError`` on purpose: connection-level handlers in the server
    and worker catch ``(OSError, ValueError)`` — which also covers
    ``json.JSONDecodeError`` — so a corrupt stream tears down just that
    connection (re-queuing any in-flight job) instead of leaking a dead
    thread that still holds work.
    """


def send_msg(
    sock: socket.socket, message: dict, lock: threading.Lock | None = None
) -> None:
    """Send one frame.  ``lock`` serializes writers sharing the socket
    (the worker's heartbeat thread writes concurrently with results)."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    frame = _HEADER.pack(len(body)) + body
    if lock is not None:
        with lock:
            sock.sendall(frame)
    else:
        sock.sendall(frame)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            return None  # orderly EOF
        buf += chunk
    return bytes(buf)


def recv_msg(sock: socket.socket) -> dict | None:
    """Receive one frame; ``None`` on a clean EOF (peer went away)."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length)
    if body is None:
        return None
    message = json.loads(body.decode("utf-8"))
    if not isinstance(message, dict):
        raise ProtocolError(f"expected a message object, got {type(message).__name__}")
    return message


# ----------------------------------------------------------------------
# SweepPoint (de)serialization
# ----------------------------------------------------------------------
def config_to_dict(config: SystemConfig) -> dict:
    out: dict[str, object] = {}
    for f in fields(config):
        value = getattr(config, f.name)
        if f.name in ("geometry", "timing"):
            value = asdict(value)
        out[f.name] = value
    return out


def config_from_dict(data: dict) -> SystemConfig:
    data = dict(data)
    data["geometry"] = Geometry(**data["geometry"])
    data["timing"] = TimingParams(**data["timing"])
    return SystemConfig(**data)


def point_to_dict(point: SweepPoint) -> dict:
    return {
        "sweep": point.sweep,
        "coords": [[name, value] for name, value in point.coords],
        "config": config_to_dict(point.config),
        "profiles": [asdict(p) for p in point.profiles],
        "seed": point.seed,
        "instr_budget": point.instr_budget,
        "max_cycles": point.max_cycles,
    }


def point_from_dict(data: dict) -> SweepPoint:
    return SweepPoint(
        sweep=data["sweep"],
        coords=tuple((name, value) for name, value in data["coords"]),
        config=config_from_dict(data["config"]),
        profiles=tuple(TraceProfile(**p) for p in data["profiles"]),
        seed=data["seed"],
        instr_budget=data["instr_budget"],
        max_cycles=data["max_cycles"],
    )
