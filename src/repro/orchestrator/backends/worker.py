"""The ``repro worker`` daemon: executes sweep points for a job server.

A worker connects *out* to a :class:`~repro.orchestrator.backends.server
.JobServer`, registers with its source fingerprint, and then loops:
receive a job, run :func:`~repro.orchestrator.execute.execute_point`,
send the serialized :class:`~repro.sim.system.SimResult` back.  A
background thread emits heartbeats throughout — including *during* a
simulation — so the server can tell "long point" from "dead worker".

Daemon semantics: when the server disappears (sweep finished, or not yet
started), the worker keeps re-connecting until ``connect_timeout`` seconds
pass without reaching a server, so it can be started *before* the sweep
and survive *between* sweeps.  ``max_sessions`` bounds the number of
server sessions (handy in tests and CI).
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback

import repro.orchestrator.faults as faults
from repro.orchestrator.backends.protocol import (
    PROTOCOL_VERSION,
    point_from_dict,
    recv_msg,
    send_msg,
)
from repro.orchestrator.cache import result_to_dict
from repro.orchestrator.execute import execute_point
from repro.orchestrator.hashing import source_fingerprint


class WorkerRejected(RuntimeError):
    """The server refused registration (fingerprint/protocol mismatch)."""


def _enable_keepalive(sock: socket.socket) -> None:
    """Arm TCP keepalive so a silently vanished server host (power loss,
    network partition — no FIN/RST ever arrives) kills the blocked recv
    within ~a minute instead of stranding the daemon forever."""
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    for option, value in (("TCP_KEEPIDLE", 30), ("TCP_KEEPINTVL", 10),
                          ("TCP_KEEPCNT", 3)):
        if hasattr(socket, option):  # Linux names; best-effort elsewhere
            sock.setsockopt(socket.IPPROTO_TCP, getattr(socket, option), value)


class _Heartbeat(threading.Thread):
    """Emits heartbeat frames until stopped; shares the socket via a lock."""

    def __init__(self, sock: socket.socket, lock: threading.Lock, interval: float):
        super().__init__(daemon=True)
        self.sock = sock
        self.lock = lock
        self.interval = interval
        self.stopped = threading.Event()

    def run(self) -> None:
        while not self.stopped.wait(self.interval):
            try:
                send_msg(self.sock, {"type": "heartbeat"}, lock=self.lock)
            except OSError:
                return  # connection is gone; the main loop will notice

    def stop(self) -> None:
        self.stopped.set()


def run_session(
    sock: socket.socket,
    *,
    heartbeat_interval: float = 2.0,
    label: str | None = None,
    welcome_timeout: float = 10.0,
) -> int | None:
    """Serve one connected session until shutdown/EOF.

    Returns the number of jobs completed, or ``None`` when the server went
    away before registration finished (the connection raced a shutdown, or
    accepted the TCP connection but never answered the hello — not a real
    session either way).
    """
    lock = threading.Lock()
    # Registration is request/response on an idle socket: a server that
    # accepts but never welcomes (wedged accept thread, port squatter)
    # must not strand the daemon, so the welcome wait is bounded.
    sock.settimeout(welcome_timeout)
    send_msg(
        sock,
        {
            "type": "hello",
            "worker": label or f"{socket.gethostname()}-{os.getpid()}",
            "pid": os.getpid(),
            "fingerprint": source_fingerprint(),
            "protocol": PROTOCOL_VERSION,
        },
        lock=lock,
    )
    try:
        welcome = recv_msg(sock)
    except socket.timeout:
        return None  # no welcome within the bound: reconnect with backoff
    if welcome is None:
        return None
    if welcome.get("type") == "reject":
        raise WorkerRejected(welcome.get("reason", "rejected"))
    if welcome.get("type") != "welcome":
        # A non-welcome registration reply (e.g. the shutdown frame of a
        # server tearing down just as we connected, or a confused peer) is
        # not a session: treat it like the EOF race above and reconnect,
        # instead of entering the job loop on an unregistered connection.
        return None
    # blocking-ok: job frames arrive at the server's dealing pace (a long
    # queue drain between jobs is normal), and TCP keepalive bounds a
    # vanished peer — see _enable_keepalive.
    sock.settimeout(None)
    heartbeat = _Heartbeat(sock, lock, heartbeat_interval)
    heartbeat.start()
    done = 0
    try:
        while True:
            message = recv_msg(sock)
            if message is None:
                # EOF without a shutdown: the server vanished.  A 0-job
                # connection was a phantom (e.g. racing a server that had
                # just finished its sweep and was tearing down), not a
                # served session.
                return done if done else None
            if message.get("type") == "shutdown":
                # Same phantom rule: a shutdown before any job means we
                # connected to a server that was already tearing down
                # (back-to-back sweeps race this constantly) — don't let
                # it consume a ``max_sessions`` slot.
                return done if done else None
            if message.get("type") != "job":
                continue
            job_id = message.get("id")
            try:
                result = execute_point(point_from_dict(message["point"]))
            except Exception:
                send_msg(
                    sock,
                    {"type": "error", "id": job_id, "error": traceback.format_exc()},
                    lock=lock,
                )
                continue
            send_msg(
                sock,
                {"type": "result", "id": job_id, "result": result_to_dict(result)},
                lock=lock,
            )
            done += 1
    finally:
        heartbeat.stop()


def serve(
    host: str,
    port: int,
    *,
    heartbeat_interval: float = 2.0,
    connect_timeout: float = 60.0,
    max_sessions: int | None = None,
    label: str | None = None,
    welcome_timeout: float = 10.0,
    backoff_seed: int = 0,
    log=None,
) -> int:
    """The daemon loop: connect → serve a session → reconnect.

    Returns the total number of jobs executed.  Gives up (returns) when no
    server has been reachable for ``connect_timeout`` seconds; raises
    :class:`WorkerRejected` when the server refuses registration, since
    reconnecting cannot fix a source mismatch.  Reconnect spacing follows
    a seeded exponential backoff (reset after each real session) so a
    fleet of workers hammering a down server spreads out instead of
    thundering in lockstep.
    """
    emit = log or (lambda *a: None)
    total = 0
    sessions = 0
    backoff = faults.Backoff(base=0.25, cap=5.0, seed=backoff_seed)
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            sock = faults.connect((host, port), timeout=10.0, role="worker")
        except OSError:
            if time.monotonic() > deadline:
                emit(f"no job server at {host}:{port} for {connect_timeout:.0f}s; exiting")
                return total
            backoff.sleep()
            continue
        _enable_keepalive(sock)
        progressed = False
        try:
            done = run_session(
                sock,
                heartbeat_interval=heartbeat_interval,
                label=label,
                welcome_timeout=welcome_timeout,
            )
            progressed = done is not None
            if done is not None:
                total += done
                sessions += 1
                emit(f"session {sessions}: executed {done} points")
        except (OSError, ValueError):
            progressed = True  # a server was really there and then dropped
            emit("session dropped; reconnecting")
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if max_sessions is not None and sessions >= max_sessions:
            return total
        if progressed:
            # Only contact with a *real* server — a welcomed session or a
            # mid-session drop — earns a fresh give-up deadline and a
            # backoff reset.  A phantom (accepted-but-silent server,
            # shutdown race) must keep eating into the current deadline,
            # or a wedged server that accepts every connect would strand
            # the daemon in a reconnect loop forever.
            backoff.reset()
            deadline = time.monotonic() + connect_timeout
        else:
            if time.monotonic() > deadline:
                emit(
                    f"no real job server at {host}:{port} for "
                    f"{connect_timeout:.0f}s (connects succeed but no "
                    "welcome); exiting"
                )
                return total
            backoff.sleep()
