"""The crash-safe sweep journal: append-only progress for ``--resume``.

One JSONL file per sweep name (``<store>/journals/<name>.jsonl``).  Each
run appends a ``begin`` record (grid size, source fingerprint, how many
points the store replayed), one ``done`` record per point *as its result
lands* (flushed and fsync'd, so a crash loses at most the in-flight
point), and a ``complete`` record when the sweep finishes.

Recovery contract: the content-addressed result store is the authority —
``plan_sweep`` replays every completed point from it regardless of the
journal — so the journal's job is the *human/CLI* side of resume: report
how far the interrupted run got, detect a fingerprint change (journaled
points from different simulator source will be recomputed, not replayed),
and flag store entries that vanished out from under the journal.
:meth:`SweepJournal.load` tolerates a torn final line (the crash wrote a
partial record) by counting everything before it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class JournalState:
    """What a journal file says happened across all runs of one sweep."""

    path: Path
    #: Keys with a ``done`` record (across every run).
    done_keys: set[str] = field(default_factory=set)
    #: Number of ``begin`` records (runs attempted).
    runs: int = 0
    #: True when the latest run appended its ``complete`` record.
    complete: bool = False
    #: Fingerprint stamped by the most recent ``begin`` record.
    fingerprint: str | None = None
    #: Grid size stamped by the most recent ``begin`` record.
    points: int = 0
    #: True when the final line was torn (crash mid-append).
    torn_tail: bool = False

    @property
    def done(self) -> int:
        return len(self.done_keys)

    def describe(self) -> str:
        status = "complete" if self.complete else "interrupted"
        torn = ", torn tail" if self.torn_tail else ""
        return (
            f"{self.done}/{self.points or '?'} points journaled over "
            f"{self.runs} run(s), last {status}{torn}"
        )


class SweepJournal:
    """Append-only journal for one sweep; every append is fsync'd."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle = None

    # -- writing -------------------------------------------------------
    def _append(self, record: dict) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def begin(self, sweep: str, points: int, fingerprint: str,
              reused: int = 0) -> None:
        self._append({
            "event": "begin",
            "sweep": sweep,
            "points": points,
            "fingerprint": fingerprint,
            "reused": reused,
        })

    def record_done(self, index: int, key: str) -> None:
        self._append({"event": "done", "index": index, "key": key})

    def complete(self) -> None:
        self._append({"event": "complete"})

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> JournalState:
        """Replay a journal file; missing file = zero-progress state."""
        state = JournalState(path=Path(path))
        try:
            text = Path(path).read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return state
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A crash tore the final append; everything before it is
                # intact (appends are whole-line + fsync).
                state.torn_tail = True
                break
            event = record.get("event")
            if event == "begin":
                state.runs += 1
                state.complete = False
                fingerprint = record.get("fingerprint")
                if state.fingerprint is not None and fingerprint != state.fingerprint:
                    # The simulator source changed between runs: points
                    # journaled under the old fingerprint will be
                    # recomputed, not replayed (recovery contract above),
                    # so they are not progress toward the latest run.
                    # Dropping them keeps ``done`` within the latest
                    # grid instead of reporting e.g. "10/6 points".
                    state.done_keys.clear()
                state.fingerprint = fingerprint
                state.points = int(record.get("points", 0))
            elif event == "done":
                key = record.get("key")
                if isinstance(key, str):
                    state.done_keys.add(key)
            elif event == "complete":
                state.complete = True
        return state


def journal_path_for(store_root: str | Path, sweep_name: str) -> Path:
    """Where a sweep's journal lives inside a result store."""
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else "_" for ch in sweep_name
    )
    return Path(store_root) / "journals" / f"{safe}.jsonl"
