"""Parallel experiment orchestration: declarative sweeps over configurations.

Every figure of the paper is a *sweep*: a parameter grid over
:class:`~repro.sim.config.SystemConfig` crossed with a set of workloads,
each point producing one :class:`~repro.sim.system.SimResult`.  This
package turns that shape into infrastructure:

- :mod:`repro.orchestrator.sweep` — the declarative :class:`Sweep` API
  (axes, variants, workloads) with stable per-point config hashing.
- :mod:`repro.orchestrator.backends` — pluggable execution backends:
  in-process serial, a local multiprocessing pool, and a TCP job server
  dispatching to ``repro worker`` daemons (this host or others), all
  bit-identical to serial by construction.
- :mod:`repro.orchestrator.runner` — :func:`run_sweep` dispatches store
  misses to a backend and assembles grid-order results;
  :func:`plan_sweep` diffs a grid against the store for incremental
  regeneration (only missing/stale points execute).
- :mod:`repro.orchestrator.cache` — the content-addressed result store,
  keyed by config hash + simulator source fingerprint; sweeps sharing a
  store directory compute each point exactly once across sweeps.
- :mod:`repro.orchestrator.pool` — :func:`parallel_map`, the generic
  order-preserving helper the chip-characterization experiments use.
- :mod:`repro.orchestrator.faults` — deterministic fault injection for
  the socket transport (seeded :class:`FaultPlan`) plus the shared
  :class:`Backoff` schedule; the chaos suite (``tests/test_chaos.py``)
  replays every distributed failure mode reproducibly.
- :mod:`repro.orchestrator.journal` — the append-only per-sweep journal
  behind ``repro sweep --resume`` (the store remains the authority; the
  journal reports progress and detects fingerprint drift).

Benchmarks and the ``repro sweep`` / ``repro worker`` CLI subcommands are
thin layers over these primitives.
"""

from repro.orchestrator.atomicio import atomic_write_text
from repro.orchestrator.backends import (
    ExecutionBackend,
    LocalPoolBackend,
    NoWorkersRegistered,
    SerialBackend,
    SocketBackend,
    WorkerPoolError,
    make_backend,
)
from repro.orchestrator.cache import ResultCache, result_from_dict, result_to_dict
from repro.orchestrator.faults import Backoff, FaultEvent, FaultPlan, injected
from repro.orchestrator.hashing import config_hash
from repro.orchestrator.journal import JournalState, SweepJournal, journal_path_for
from repro.orchestrator.pool import parallel_map
from repro.orchestrator.runner import (
    SweepPlan,
    SweepResult,
    execute_point,
    plan_sweep,
    run_sweep,
)
from repro.orchestrator.sweep import (
    Sweep,
    SweepPoint,
    Variant,
    Workload,
    axis,
    mix_workloads,
    profile_workloads,
)

__all__ = [
    "Backoff",
    "ExecutionBackend",
    "FaultEvent",
    "FaultPlan",
    "JournalState",
    "LocalPoolBackend",
    "NoWorkersRegistered",
    "ResultCache",
    "SerialBackend",
    "SocketBackend",
    "Sweep",
    "SweepJournal",
    "SweepPlan",
    "SweepPoint",
    "SweepResult",
    "Variant",
    "Workload",
    "WorkerPoolError",
    "atomic_write_text",
    "axis",
    "config_hash",
    "execute_point",
    "injected",
    "journal_path_for",
    "make_backend",
    "mix_workloads",
    "parallel_map",
    "plan_sweep",
    "profile_workloads",
    "result_from_dict",
    "result_to_dict",
    "run_sweep",
]
