"""Parallel experiment orchestration: declarative sweeps over configurations.

Every figure of the paper is a *sweep*: a parameter grid over
:class:`~repro.sim.config.SystemConfig` crossed with a set of workloads,
each point producing one :class:`~repro.sim.system.SimResult`.  This
package turns that shape into infrastructure:

- :mod:`repro.orchestrator.sweep` — the declarative :class:`Sweep` API
  (axes, variants, workloads) with stable per-point config hashing.
- :mod:`repro.orchestrator.runner` — :func:`run_sweep`: shards points
  across a multiprocessing worker pool with deterministic per-point seeds,
  so serial and parallel execution produce bit-identical results.
- :mod:`repro.orchestrator.cache` — an on-disk result cache keyed by
  config hash; re-running a figure with unchanged parameters is instant.
- :mod:`repro.orchestrator.pool` — :func:`parallel_map`, the generic
  order-preserving helper the chip-characterization experiments use.

Benchmarks and the ``repro sweep`` CLI subcommand are thin layers over
these primitives; future scaling work (more workloads, larger grids,
distributed backends) plugs in here.
"""

from repro.orchestrator.cache import ResultCache, result_from_dict, result_to_dict
from repro.orchestrator.hashing import config_hash
from repro.orchestrator.pool import parallel_map
from repro.orchestrator.runner import SweepResult, execute_point, run_sweep
from repro.orchestrator.sweep import (
    Sweep,
    SweepPoint,
    Variant,
    Workload,
    axis,
    mix_workloads,
    profile_workloads,
)

__all__ = [
    "ResultCache",
    "Sweep",
    "SweepPoint",
    "SweepResult",
    "Variant",
    "Workload",
    "axis",
    "config_hash",
    "execute_point",
    "mix_workloads",
    "parallel_map",
    "profile_workloads",
    "result_from_dict",
    "result_to_dict",
    "run_sweep",
]
