"""On-disk result cache keyed by sweep-point content hash.

Entries are small JSON files (``<root>/<key[:2]>/<key>.json``) holding a
serialized :class:`SimResult` plus the point's human-readable coordinates
for debuggability.  Writes are atomic (tmp + rename) so concurrent sweep
processes sharing a cache directory never observe torn entries.

Every entry is additionally stamped with the :func:`source_fingerprint`
of the simulator package at write time, and :meth:`ResultCache.get`
treats a stamp mismatch as a miss.  The sweep-point key already folds the
fingerprint in, but the stamp guards the cache *itself*: entries written
by older code (different key schema, hand-supplied keys, or a pre-stamp
layout) can never silently replay results produced by different
scheduler/engine behavior.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.orchestrator.atomicio import atomic_write_text
from repro.orchestrator.hashing import source_fingerprint
from repro.sim.controller import ControllerStats
from repro.sim.system import SimResult


def result_to_dict(result: SimResult) -> dict:
    """A JSON-safe representation that round-trips bit-exactly."""
    return {
        "cycles": result.cycles,
        "ipcs": result.ipcs,
        "alone_ipcs": result.alone_ipcs,
        "controller_stats": [asdict(s) for s in result.controller_stats],
        "instructions": result.instructions,
        "reads": result.reads,
        "writes": result.writes,
        "finished": result.finished,
        "meta": result.meta,
    }


def result_from_dict(data: dict) -> SimResult:
    return SimResult(
        cycles=data["cycles"],
        ipcs=list(data["ipcs"]),
        alone_ipcs=list(data["alone_ipcs"]),
        controller_stats=[ControllerStats(**s) for s in data["controller_stats"]],
        instructions=list(data["instructions"]),
        reads=data["reads"],
        writes=data["writes"],
        finished=data["finished"],
        meta=dict(data["meta"]),
    )


class ResultCache:
    """A directory of cached simulation results, keyed by content hash.

    ``fingerprint`` defaults to the live package's source fingerprint;
    entries carrying a different (or missing) stamp are treated as misses
    so behavior changes in the simulator can never replay stale results.
    """

    def __init__(self, root: str | Path, fingerprint: str | None = None):
        self.root = Path(root)
        self.fingerprint = (
            source_fingerprint() if fingerprint is None else fingerprint
        )
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> SimResult | None:
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            # Truncated or corrupted on disk (e.g. a torn write from a
            # crashed process, disk corruption): a miss, and evict the
            # carcass so the slot heals on the next put.
            self._evict(path)
            self.misses += 1
            return None
        if not isinstance(data, dict) or data.get("code") != self.fingerprint:
            # Written by a different simulator source tree: stale.
            self.misses += 1
            return None
        try:
            return_value = result_from_dict(data["result"])
        except (KeyError, TypeError, ValueError):
            # Decodes as JSON but does not deserialize to a SimResult
            # (schema drift or partial corruption): same treatment.
            self._evict(path)
            self.misses += 1
            return None
        self.hits += 1
        return return_value

    @staticmethod
    def _evict(path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # already gone or unremovable; stays a miss
            pass

    def put(self, key: str, result: SimResult, describe: dict | None = None) -> None:
        body = {
            "key": key,
            "code": self.fingerprint,
            "describe": describe or {},
            "result": result_to_dict(result),
        }
        # Atomic tmp+fsync+rename: a crash mid-put leaves either no entry
        # or the whole entry, never a torn file for `get` to evict.
        atomic_write_text(self.path_for(key), json.dumps(body, separators=(",", ":")))

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for __ in self.root.glob("*/*.json"))
