"""Sweep execution: cache lookup, worker-pool sharding, result assembly.

Each :class:`SweepPoint` is an independent simulation with its own
explicit seed, so the runner can shard points across processes freely:
serial and parallel execution are bit-identical by construction, and
results always come back in grid order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.orchestrator.cache import ResultCache
from repro.orchestrator.pool import _pool_context, default_workers
from repro.orchestrator.sweep import Sweep, SweepPoint
from repro.sim.system import SimResult, System


def execute_point(point: SweepPoint) -> SimResult:
    """Run one sweep point to completion (the worker-side entry point)."""
    system = System(
        point.config,
        list(point.profiles),
        seed=point.seed,
        instr_budget=point.instr_budget,
    )
    result = system.run(max_cycles=point.max_cycles)
    result.meta["sweep"] = point.sweep
    result.meta["coords"] = dict(point.coords)
    result.meta["seed"] = point.seed
    return result


def _execute_indexed(payload: tuple[int, SweepPoint]) -> tuple[int, SimResult]:
    index, point = payload
    return index, execute_point(point)


@dataclass
class SweepResult:
    """All results of one sweep run, in grid order, with run telemetry."""

    sweep: Sweep
    points: tuple[SweepPoint, ...]
    results: tuple[SimResult, ...]
    cache_hits: int
    cache_misses: int
    workers: int
    elapsed_s: float

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[tuple[SweepPoint, SimResult]]:
        return iter(zip(self.points, self.results))

    def select(self, **coords) -> list[tuple[SweepPoint, SimResult]]:
        """Points whose coordinates match every given ``axis=value``."""
        return [(p, r) for p, r in self if p.matches(**coords)]

    def mean_ws(self, **coords) -> float:
        """Mean weighted speedup across matching points (usually a mix
        average for one grid cell)."""
        picked = self.select(**coords)
        if not picked:
            raise KeyError(f"no sweep points match {coords!r}")
        return sum(r.weighted_speedup for __, r in picked) / len(picked)

    def mean_stat(self, name: str, **coords) -> float:
        picked = self.select(**coords)
        if not picked:
            raise KeyError(f"no sweep points match {coords!r}")
        return sum(r.stat_total(name) for __, r in picked) / len(picked)


def run_sweep(
    sweep: Sweep,
    workers: int | None = None,
    cache: ResultCache | str | Path | None = None,
) -> SweepResult:
    """Execute every point of ``sweep``, using the cache when possible.

    ``workers`` ≤ 1 runs in-process; larger values shard cache misses
    across a process pool.  ``None`` picks :func:`default_workers`.
    """
    start = time.perf_counter()
    if workers is None:
        workers = default_workers()
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)

    points = sweep.expand()
    results: list[SimResult | None] = [None] * len(points)
    todo: list[int] = []
    keys: list[str] = [point.key for point in points]
    # Snapshot the (possibly reused) cache's counters to report deltas.
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    if cache is not None:
        for i, point in enumerate(points):
            hit = cache.get(keys[i])
            if hit is not None:
                # Entries are content-addressed and may have been written by
                # a different sweep; restamp the telemetry for this one.
                hit.meta["sweep"] = point.sweep
                hit.meta["coords"] = dict(point.coords)
                hit.meta["seed"] = point.seed
                results[i] = hit
            else:
                todo.append(i)
    else:
        todo = list(range(len(points)))

    if todo:
        if workers > 1 and len(todo) > 1:
            ctx = _pool_context()
            payloads = [(i, points[i]) for i in todo]
            with ctx.Pool(processes=min(workers, len(todo))) as pool:
                for index, result in pool.imap_unordered(_execute_indexed, payloads):
                    results[index] = result
        else:
            for i in todo:
                results[i] = execute_point(points[i])
        if cache is not None:
            for i in todo:
                cache.put(keys[i], results[i], describe=dict(points[i].coords))

    return SweepResult(
        sweep=sweep,
        points=points,
        results=tuple(results),
        cache_hits=(cache.hits - hits_before) if cache is not None else 0,
        cache_misses=(cache.misses - misses_before) if cache is not None else len(todo),
        workers=workers,
        elapsed_s=time.perf_counter() - start,
    )
