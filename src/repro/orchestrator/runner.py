"""Sweep execution: store diffing, backend dispatch, result assembly.

Each :class:`SweepPoint` is an independent simulation with its own
explicit seed, so execution can shard points across any
:class:`~repro.orchestrator.backends.ExecutionBackend` — in-process,
a local process pool, or ``repro worker`` daemons over TCP — and results
always come back in grid order: serial and distributed execution are
bit-identical by construction.

:func:`plan_sweep` diffs an expanded grid against the content-addressed
:class:`~repro.orchestrator.cache.ResultCache` (keys fold in the full
config *and* a fingerprint of the simulator source), which is what makes
cross-sweep dedup work: overlapping sweeps sharing a store compute each
point exactly once, and incremental re-runs dispatch only missing or
stale points.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.orchestrator.backends import ExecutionBackend, make_backend
from repro.orchestrator.cache import ResultCache
from repro.orchestrator.execute import execute_point  # noqa: F401  (re-export)
from repro.orchestrator.hashing import source_fingerprint
from repro.orchestrator.journal import SweepJournal
from repro.orchestrator.pool import default_workers
from repro.orchestrator.sweep import Sweep, SweepPoint
from repro.sim.system import SimResult

if TYPE_CHECKING:  # imported lazily at runtime: obs depends on orchestrator
    from repro.obs.fleet import FleetStatus


@dataclass
class SweepPlan:
    """The grid diffed against the result store: what runs, what replays.

    ``results`` holds the reused :class:`SimResult` for every store hit
    (already re-stamped with this sweep's telemetry) and ``None`` at the
    ``todo`` indices, which are the only points a backend will execute.
    """

    sweep: Sweep
    points: tuple[SweepPoint, ...]
    keys: tuple[str, ...]
    results: list[SimResult | None]
    todo: tuple[int, ...]

    @property
    def reused(self) -> int:
        return len(self.points) - len(self.todo)

    @property
    def computed(self) -> int:
        return len(self.todo)

    def describe(self) -> str:
        return (
            f"{len(self.points)} points: {self.reused} reused from the store, "
            f"{self.computed} to compute"
        )


def plan_sweep(sweep: Sweep, cache: ResultCache | str | Path | None) -> SweepPlan:
    """Expand the grid and diff it against the store (None: all points run).

    A store hit must be present *and* stamped with the current simulator
    source fingerprint — stale entries read as misses, so "incremental"
    can never replay results from changed code.
    """
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    points = sweep.expand()
    keys = tuple(point.key for point in points)
    results: list[SimResult | None] = [None] * len(points)
    todo: list[int] = []
    if cache is None:
        todo = list(range(len(points)))
    else:
        for i, point in enumerate(points):
            hit = cache.get(keys[i])
            if hit is not None:
                # Entries are content-addressed and may have been written by
                # a different sweep; restamp the telemetry for this one.
                hit.meta["sweep"] = point.sweep
                hit.meta["coords"] = dict(point.coords)
                hit.meta["seed"] = point.seed
                results[i] = hit
            else:
                todo.append(i)
    return SweepPlan(
        sweep=sweep, points=points, keys=keys, results=results, todo=tuple(todo)
    )


@dataclass
class SweepResult:
    """All results of one sweep run, in grid order, with run telemetry."""

    sweep: Sweep
    points: tuple[SweepPoint, ...]
    results: tuple[SimResult, ...]
    cache_hits: int
    cache_misses: int
    workers: int
    elapsed_s: float
    #: Which execution backend ran the missing points.
    backend: str = "serial"
    #: Store-dedup telemetry: grid points replayed from the shared store
    #: vs dispatched to the backend (reused + computed == len(points)).
    reused: int = 0
    computed: int = field(default=-1)
    #: Backend-reported counters (socket server: workers_seen, retries,
    #: speculated, quarantined, degraded).  Empty for serial/local runs.
    telemetry: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.computed < 0:
            self.computed = len(self.points) - self.reused

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[tuple[SweepPoint, SimResult]]:
        return iter(zip(self.points, self.results))

    def select(self, **coords) -> list[tuple[SweepPoint, SimResult]]:
        """Points whose coordinates match every given ``axis=value``."""
        return [(p, r) for p, r in self if p.matches(**coords)]

    def mean_ws(self, **coords) -> float:
        """Mean weighted speedup across matching points (usually a mix
        average for one grid cell)."""
        picked = self.select(**coords)
        if not picked:
            raise KeyError(f"no sweep points match {coords!r}")
        return sum(r.weighted_speedup for __, r in picked) / len(picked)

    def mean_stat(self, name: str, **coords) -> float:
        picked = self.select(**coords)
        if not picked:
            raise KeyError(f"no sweep points match {coords!r}")
        return sum(r.stat_total(name) for __, r in picked) / len(picked)


def run_sweep(
    sweep: Sweep,
    workers: int | None = None,
    cache: ResultCache | str | Path | None = None,
    backend: str | ExecutionBackend | None = None,
    plan: SweepPlan | None = None,
    journal: SweepJournal | str | Path | None = None,
    status: "FleetStatus | None" = None,
) -> SweepResult:
    """Execute every point of ``sweep``, reusing the store when possible.

    ``backend`` selects execution: ``None``/``"local"`` shards store
    misses across a process pool of ``workers`` (≤ 1 runs in-process),
    ``"serial"`` forces in-process, ``"socket"`` dispatches to connected
    ``repro worker`` daemons, and any
    :class:`~repro.orchestrator.backends.ExecutionBackend` instance is
    used as-is (and not closed).  ``plan`` short-circuits the store diff
    when the caller already ran :func:`plan_sweep` (e.g. to report an
    incremental plan before dispatching).

    Crash safety: every result is persisted to ``cache`` (and journaled to
    ``journal``, when given) *the moment the backend yields it* — an
    interrupted sweep keeps all completed points, and re-running it (the
    CLI's ``--resume``) replays them from the store and computes only the
    remainder.

    ``status`` (a :class:`~repro.obs.fleet.FleetStatus`) mirrors the run
    to a live status file: the sweep lifecycle and per-point completions
    are reported here for every backend, and a socket backend's server
    additionally reports per-worker events through the same sink.
    """
    start = time.perf_counter()
    if workers is None:
        workers = default_workers()
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    owned_journal = journal is not None and not isinstance(journal, SweepJournal)
    if owned_journal:
        journal = SweepJournal(journal)
    # Snapshot the (possibly reused) cache's counters to report deltas.
    # A caller-provided plan already consumed its hits outside this call,
    # so the plan's own tally stands in for the delta there.
    caller_plan = plan is not None
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    if plan is None:
        plan = plan_sweep(sweep, cache)
    results = plan.results
    todo = plan.todo

    if journal is not None:
        journal.begin(
            sweep.name,
            len(plan.points),
            source_fingerprint(),
            reused=plan.reused,
        )

    if status is not None:
        status.sweep_started(
            sweep.name, len(plan.points), plan.reused, len(todo), workers
        )

    telemetry: dict = {}
    backend_name = backend if isinstance(backend, str) else None
    try:
        if todo:
            bk, owned = make_backend(backend, workers)
            backend_name = bk.name
            if status is not None:
                server = getattr(bk, "server", None)
                if server is not None:
                    server.status = status
            try:
                jobs = [(i, plan.points[i]) for i in todo]
                for index, result in bk.run_jobs(jobs):
                    results[index] = result
                    # Persist immediately: a crash after this point cannot
                    # lose this result, only in-flight ones.
                    if cache is not None:
                        cache.put(
                            plan.keys[index],
                            result,
                            describe=dict(plan.points[index].coords),
                        )
                    if journal is not None:
                        journal.record_done(index, plan.keys[index])
                    if status is not None:
                        status.point_done(plan.points[index].label)
            finally:
                if owned:
                    bk.close()
            if getattr(bk, "degraded", False):
                backend_name = f"{bk.name}+local-fallback"
            report = getattr(bk, "telemetry", None)
            if report is not None:
                telemetry = report()
            missing = [i for i in todo if results[i] is None]
            if missing:
                raise RuntimeError(
                    f"backend {backend_name!r} returned no result for "
                    f"{len(missing)} points (first: {plan.points[missing[0]].label})"
                )
        elif backend_name is None:
            backend_name = (
                backend.name if isinstance(backend, ExecutionBackend) else "local"
            )
        if journal is not None:
            journal.complete()
    finally:
        if owned_journal:
            journal.close()

    if caller_plan:
        cache_hits, cache_misses = plan.reused, plan.computed
    elif cache is not None:
        cache_hits, cache_misses = cache.hits - hits_before, cache.misses - misses_before
    else:
        cache_hits, cache_misses = 0, len(todo)
    elapsed_s = time.perf_counter() - start
    if status is not None:
        status.sweep_finished(backend_name or "local", elapsed_s)
    return SweepResult(
        sweep=sweep,
        points=plan.points,
        results=tuple(results),
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        workers=workers,
        elapsed_s=elapsed_s,
        backend=backend_name,
        reused=plan.reused,
        computed=plan.computed,
        telemetry=telemetry,
    )
