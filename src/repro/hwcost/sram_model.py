"""Analytic SRAM area/latency model (a CACTI-7-class estimator at 22 nm).

The paper models HiRA-MC's four storage structures with CACTI 7.0 at 22 nm
(§6).  We reproduce the estimates with a standard analytic model:

- area = bits × (6T cell area + overhead) + decode/sense periphery that
  grows with the square root of the array;
- access latency = a constant driver/sense floor plus wire delay growing
  with the square root of the array area.

The two coefficients below are calibrated against Table 2's CACTI outputs
(RefPtr Table: 20480 bits → 0.00683 mm², 0.12 ns; Refresh Table: 1088 bits
→ 0.00031 mm², 0.07 ns) and generalize to the other structures within a
few percent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Effective area per bit at 22 nm including array overhead (mm² / bit).
#: Calibrated so a 20 Kbit array costs ≈ 0.00683 mm² (Table 2).
AREA_PER_BIT_MM2 = 2.9e-7

#: Fixed periphery area per array (decoder, sense amps, control) in mm².
PERIPHERY_AREA_MM2 = 5.0e-5

#: Latency floor (driver + sense) in ns and the wire-delay coefficient.
LATENCY_FLOOR_NS = 0.055
LATENCY_WIRE_NS_PER_SQRT_MM = 0.78


@dataclass(frozen=True, slots=True)
class SramArray:
    """A small SRAM structure: entries × bits per entry."""

    name: str
    entries: int
    bits_per_entry: int

    def __post_init__(self) -> None:
        if self.entries < 1 or self.bits_per_entry < 1:
            raise ValueError("entries and bits_per_entry must be positive")

    @property
    def total_bits(self) -> int:
        return self.entries * self.bits_per_entry


@dataclass(frozen=True, slots=True)
class SramEstimate:
    """Estimated cost of one array."""

    array: SramArray
    area_mm2: float
    access_latency_ns: float


def estimate(array: SramArray) -> SramEstimate:
    """Area and access latency for a small SRAM array at 22 nm."""
    area = array.total_bits * AREA_PER_BIT_MM2 + PERIPHERY_AREA_MM2
    latency = LATENCY_FLOOR_NS + LATENCY_WIRE_NS_PER_SQRT_MM * math.sqrt(area)
    return SramEstimate(array=array, area_mm2=area, access_latency_ns=latency)
