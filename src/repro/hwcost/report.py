"""Table 2: HiRA-MC's per-rank storage structures and their costs (§6).

Component sizing follows §6 exactly:

- **Refresh Table**: 68 entries per rank (4 periodic per rank + 64
  preventive for tRefSlack = 4·tRC), each 10-bit deadline + 4-bit bank id
  + 2-bit type.
- **RefPtr Table**: 2048 entries (128 subarrays × 16 banks), 10 bits each
  (up to 1024 rows per subarray).
- **PR-FIFO**: 4 entries per bank × 16 banks; each entry holds a row
  address (16 bits in our sizing) — the paper's worst case of one
  preventive refresh per activation.
- **Subarray Pairs Table**: 128 subarray entries with a compressed
  compatibility encoding (48 bits per entry in our sizing).
"""

from __future__ import annotations

from repro.hwcost.sram_model import SramArray, SramEstimate, estimate

#: §6.2: worst-case traversal iterates the Refresh Table and SPT 68 times.
REFRESH_TABLE_ENTRIES = 68
_TRAVERSAL_ITERATIONS = 68

HIRA_MC_COMPONENTS: tuple[SramArray, ...] = (
    SramArray("Refresh Table", entries=REFRESH_TABLE_ENTRIES, bits_per_entry=16),
    SramArray("RefPtr Table", entries=2048, bits_per_entry=10),
    SramArray("PR-FIFO", entries=64, bits_per_entry=15),
    SramArray("Subarray Pairs Table (SPT)", entries=128, bits_per_entry=48),
)

#: Die area of the 22 nm reference processor used for the percentage column
#: (Intel Core i7-5960X [172]: ~ 400 mm²).
REFERENCE_DIE_AREA_MM2 = 400.0


def component_estimates() -> list[SramEstimate]:
    """Per-component area and access latency (Table 2's first four rows)."""
    return [estimate(array) for array in HIRA_MC_COMPONENTS]


def overall_area_mm2() -> float:
    """Total HiRA-MC chip area per DRAM rank."""
    return sum(e.area_mm2 for e in component_estimates())


def worst_case_query_latency_ns() -> float:
    """§6.2's worst case: 68 pipelined Refresh-Table+SPT iterations, then
    one RefPtr Table access.

    The paper reports 6.31 ns, comfortably below the 14.5 ns tRP, so the
    search never delays memory accesses.
    """
    by_name = {e.array.name: e for e in component_estimates()}
    pipeline_stage = max(
        by_name["Refresh Table"].access_latency_ns,
        by_name["Subarray Pairs Table (SPT)"].access_latency_ns,
    )
    return _TRAVERSAL_ITERATIONS * pipeline_stage + by_name["RefPtr Table"].access_latency_ns


def area_fraction_of_reference_die() -> float:
    """Overall area normalized to the 22 nm reference processor die."""
    return overall_area_mm2() / REFERENCE_DIE_AREA_MM2
