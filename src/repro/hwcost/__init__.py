"""Hardware complexity model for HiRA-MC's SRAM structures (§6, Table 2)."""

from repro.hwcost.sram_model import SramArray, SramEstimate
from repro.hwcost.report import (
    HIRA_MC_COMPONENTS,
    component_estimates,
    overall_area_mm2,
    worst_case_query_latency_ns,
)

__all__ = [
    "HIRA_MC_COMPONENTS",
    "SramArray",
    "SramEstimate",
    "component_estimates",
    "overall_area_mm2",
    "worst_case_query_latency_ns",
]
