"""CI differential gate: controller vs auditor vs rule-table oracle.

Runs the property-suite matrix (three refresh engines × two granularities,
plus the no-refresh engine) under fuzzed trace mixes, and requires every
command stream to be clean under BOTH the :class:`CommandAuditor` and the
independent declarative oracle — any disagreement between the two
checkers, or any violation either one reports, fails the job.  A planted
mutation pass then shifts one command per stream into an illegal position
and requires both checkers to flag it, which guards against a vacuously
permissive rule table.

Usage::

    python tools/check_oracle.py                 # run matrix + planted pass
    python tools/check_oracle.py --export DIR    # also write audit logs
    python tools/check_oracle.py --logs DIR      # replay exported logs only

``--logs`` re-checks previously exported logs through the cycle-domain
rule-table builder alone (no simulator run), which is how an external
consumer of the interchange format would use it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.audit import CommandRecord, attach_auditors, records_from_log
from repro.sim.config import SystemConfig
from repro.sim.oracle import TimingOracle, oracle_for_config, table_for_log
from repro.sim.system import System
from repro.sim.trace import TraceProfile

MATRIX = [
    ("none", "all_bank"),
    ("baseline", "all_bank"),
    ("baseline", "same_bank"),
    ("elastic", "all_bank"),
    ("elastic", "same_bank"),
    ("hira", "all_bank"),
    ("hira", "same_bank"),
]
SEEDS = (7, 23)


def _run(mode: str, granularity: str, seed: int):
    config = SystemConfig(
        refresh_mode=mode, refresh_granularity=granularity, cores=2
    )
    profiles = [
        TraceProfile(
            f"ci{seed}-{i}", mpki=25.0, row_locality=0.5, read_fraction=0.6,
            working_set_rows=2048,
        )
        for i in range(2)
    ]
    system = System(config, profiles, seed=seed, instr_budget=2_500)
    auditors = attach_auditors(system)
    result = system.run(max_cycles=2_000_000)
    assert result.finished, f"{mode}/{granularity} seed {seed} did not finish"
    return config, auditors


def _planted_mutation(auditor, oracle) -> list[str]:
    """Shift one ACT into its predecessor's tRC shadow; both must flag it."""
    acts = [
        (i, r) for i, r in enumerate(auditor.records)
        if r.kind == "ACT" and r.tag == "demand"
    ]
    by_bank: dict[tuple, CommandRecord] = {}
    for index, rec in acts:
        key = (rec.rank, rec.bank)
        prev = by_bank.get(key)
        if prev is not None and rec.cycle - prev.cycle >= auditor.trc_c:
            mutated = list(auditor.records)
            mutated[index] = CommandRecord(
                prev.cycle + auditor.trc_c - 1, "ACT", rec.rank, rec.bank,
                rec.row, rec.tag,
            )
            problems = []
            original = auditor.records
            try:
                auditor.records = mutated
                if not auditor.violations():
                    problems.append("auditor missed the planted tRC shift")
            finally:
                auditor.records = original
            if not any("tRC" in v.rule for v in oracle.check(mutated)):
                problems.append("oracle missed the planted tRC shift")
            return problems
        by_bank[key] = rec
    return []  # stream too short to host a mutation — not a failure


def check_matrix(export_dir: Path | None) -> int:
    failures = 0
    planted_checked = 0
    for mode, granularity in MATRIX:
        for seed in SEEDS:
            config, auditors = _run(mode, granularity, seed)
            oracle = oracle_for_config(config)
            for channel, auditor in enumerate(auditors):
                auditor_v = auditor.violations()
                oracle_v = oracle.check_messages(auditor.records)
                tag = f"{mode}/{granularity} seed={seed} ch={channel}"
                status = "ok"
                if auditor_v or oracle_v:
                    failures += 1
                    status = (
                        f"FAIL (auditor {len(auditor_v)}, oracle {len(oracle_v)})"
                    )
                    for problem in auditor_v[:5]:
                        print(f"  auditor: {problem}")
                    for problem in oracle_v[:5]:
                        print(f"  oracle:  {problem}")
                planted = _planted_mutation(auditor, oracle)
                if planted:
                    failures += 1
                    status += " " + "; ".join(planted)
                elif auditor.records:
                    planted_checked += 1
                print(f"{tag}: {len(auditor.records)} commands, {status}")
                if export_dir is not None:
                    export_dir.mkdir(parents=True, exist_ok=True)
                    path = export_dir / (
                        f"{mode}-{granularity}-s{seed}-ch{channel}.json"
                    )
                    path.write_text(json.dumps(auditor.export_log()) + "\n")
    print(f"planted-mutation pass: {planted_checked} streams checked")
    return failures


def check_logs(log_dir: Path) -> int:
    failures = 0
    paths = sorted(log_dir.glob("*.json"))
    if not paths:
        print(f"no logs found in {log_dir}")
        return 1
    for path in paths:
        payload = json.loads(path.read_text())
        oracle = TimingOracle(table_for_log(payload))
        violations = oracle.check_messages(records_from_log(payload))
        status = "ok" if not violations else f"FAIL ({len(violations)})"
        print(f"{path.name}: {len(payload['records'])} commands, {status}")
        for problem in violations[:5]:
            print(f"  oracle: {problem}")
        failures += bool(violations)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--export", default=None,
                        help="directory to write audit logs (interchange JSON)")
    parser.add_argument("--logs", default=None,
                        help="replay previously exported logs instead of "
                             "running the simulation matrix")
    args = parser.parse_args(argv)

    if args.logs is not None:
        failures = check_logs(Path(args.logs))
    else:
        failures = check_matrix(Path(args.export) if args.export else None)
    if failures:
        print(f"FAIL: {failures} disagreement(s)")
        return 1
    print("OK: controller, auditor, and oracle agree on every stream")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
