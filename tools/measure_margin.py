"""Measure the quick-mode HiRA-vs-baseline margin at a given capacity.

Usage: PYTHONPATH=src python tools/measure_margin.py [capacity] [mixes] [instr]

Runs the same points the fig 9/12 benches use (seed = 100 + mix_id) and
prints the mean weighted speedup per configuration plus HiRA-2's margin
over the baseline.
"""

from __future__ import annotations

import json
import sys

from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.mixes import mix_for


def mean_ws(config: SystemConfig, n_mixes: int, instr: int) -> float:
    total = 0.0
    for mix_id in range(n_mixes):
        mix = mix_for(mix_id, cores=config.cores)
        system = System(config, mix, seed=100 + mix_id, instr_budget=instr)
        total += system.run(max_cycles=10_000_000).weighted_speedup
    return total / n_mixes


def main() -> int:
    capacity = float(sys.argv[1]) if len(sys.argv) > 1 else 128.0
    n_mixes = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    instr = int(sys.argv[3]) if len(sys.argv) > 3 else 100_000
    results = {}
    for label, overrides in (
        ("baseline", {"refresh_mode": "baseline"}),
        ("hira-2", {"refresh_mode": "hira", "tref_slack_acts": 2}),
    ):
        config = SystemConfig(capacity_gbit=capacity, **overrides)
        results[label] = mean_ws(config, n_mixes, instr)
        print(f"{label}: {results[label]:.4f}", flush=True)
    margin = results["hira-2"] / results["baseline"]
    print(f"margin (HiRA-2 / baseline) @ {capacity:.0f} Gbit: {margin:.4f}")
    print(json.dumps({"capacity_gbit": capacity, **results, "margin": margin}))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
