"""CI floor check for the kernel perf bench (``BENCH_kernel.json``).

Usage::

    python tools/check_kernel_perf.py BENCH_kernel.json --min-events-per-sec 48000
    python tools/check_kernel_perf.py BENCH_kernel.json --min-speedup 1.5

Exits non-zero when total events/sec (or the tracked speedup vs the
pre-optimization kernel) falls below the floor, so the ``kernel-perf-smoke``
job catches event-loop regressions the same way ``fig12-margin-smoke``
catches fidelity regressions.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="BENCH_kernel.json produced by `repro perf`")
    parser.add_argument("--min-events-per-sec", type=float, default=None)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="floor for totals.speedup_vs_pre_pr")
    args = parser.parse_args(argv)

    with open(args.bench_json) as fh:
        payload = json.load(fh)
    totals = payload["totals"]
    failed = False

    eps = totals["events_per_sec"]
    print(f"total: {eps:,.0f} events/s over {totals['wall_s']:.2f}s "
          f"({totals.get('speedup_vs_pre_pr', '?')}x vs pre-opt kernel)")
    for name, row in payload["workloads"].items():
        print(f"  {name}: {row['wall_s']:.2f}s, {row['events_per_sec']:,.0f} events/s")

    if args.min_events_per_sec is not None and eps < args.min_events_per_sec:
        print(f"FAIL: events/sec {eps:,.0f} < floor {args.min_events_per_sec:,.0f}")
        failed = True
    if args.min_speedup is not None:
        speedup = totals.get("speedup_vs_pre_pr", 0.0)
        if speedup < args.min_speedup:
            print(f"FAIL: speedup {speedup} < floor {args.min_speedup}")
            failed = True
    if not failed:
        print("OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
