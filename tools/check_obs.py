"""CI gate for the observability layer (``src/repro/obs``).

Four passes, mirroring ``check_lint.py``'s clean + planted-mutation
pattern so the gate cannot rot into a vacuous green check:

1. **Traced pass** — armed runs across refresh modes must export valid
   Chrome trace-event JSON whose command events all cross-check against
   the independent :class:`~repro.sim.audit.CommandAuditor` log, whose
   aggregate counters reproduce the ``ControllerStats`` identities, and
   whose stall attributions are consistent with the audit log: no
   command was issued on a cycle attributed as stalled, every ``tfaw``
   stall has four ACTs inside the rank's tFAW window, and every
   ``ref-busy`` stall sits inside a REF's tRFC busy window.
2. **Disarmed A/B** — the same seeded run with and without tracers must
   produce bit-identical results (the tracer is pure observation).
3. **Determinism** — two independent armed runs must export
   byte-identical trace files.
4. **Vacuousness guard** — a planted mutation (the controller's ACT
   trace hook deleted from a copied tree) must make the traced pass
   fail; if it doesn't, the cross-checks aren't checking anything.

Usage::

    python tools/check_obs.py               # all four passes
    python tools/check_obs.py --traced-only # passes 1-3 (the mutation
                                            # guard re-runs this mode
                                            # against the mutated tree)
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

# Appended (not prepended) so a PYTHONPATH pointing at a mutated tree
# wins: the vacuousness guard relies on that to re-run this script
# against the planted mutation.
sys.path.append(str(Path(__file__).resolve().parent.parent / "src"))

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Armed-run configurations: one per refresh engine family, including a
#: same-bank granularity so REFSB and the per-bank stall reasons engage.
CONFIGS = (
    ("baseline", dict(refresh_mode="baseline")),
    ("elastic-sb", dict(refresh_mode="elastic", refresh_granularity="same_bank")),
    ("hira2", dict(refresh_mode="hira", tref_slack_acts=2, para_nrh=64.0)),
)

INSTR_BUDGET = 6_000
SEED = 7


def _run_system(overrides: dict, *, trace: bool, audit: bool):
    from repro.obs.tracer import attach_tracers
    from repro.sim.audit import attach_auditors
    from repro.sim.config import SystemConfig
    from repro.sim.system import System
    from repro.workloads.mixes import mix_for

    config = SystemConfig(**overrides)
    system = System(
        config, mix_for(0, cores=config.cores), seed=SEED,
        instr_budget=INSTR_BUDGET,
    )
    tracers = attach_tracers(system) if trace else []
    auditors = attach_auditors(system) if audit else []
    result = system.run()
    return system, tracers, auditors, result


def _audit_index(auditor):
    """(cycle, kind, rank) and (cycle, kind, rank, bank) lookup sets."""
    by_rank = set()
    by_bank = set()
    cycles = set()
    for rec in auditor.records:
        by_rank.add((rec.cycle, rec.kind, rec.rank))
        if rec.bank is not None:
            by_bank.add((rec.cycle, rec.kind, rec.rank, rec.bank))
        cycles.add(rec.cycle)
    return by_rank, by_bank, cycles


def _check_commands_against_audit(label, tracer, auditor) -> list[str]:
    """Every ring-buffer command event must match an audit record."""
    problems = []
    by_rank, by_bank, _ = _audit_index(auditor)
    for cycle, name, cat, args in tracer._events:
        if cat != "cmd":
            continue
        rank = args.get("rank", -1)
        bank = args.get("bank", -1)
        if name in ("ACT", "PRE", "RD", "WR", "REFSB"):
            if (cycle, name, rank, bank) not in by_bank:
                problems.append(
                    f"{label}: trace {name}@{cycle} r{rank}b{bank} "
                    "has no audit record"
                )
        elif name == "REF":
            if (cycle, "REF", rank) not in by_rank:
                problems.append(
                    f"{label}: trace REF@{cycle} r{rank} has no audit record"
                )
        elif name in ("SOLO_REF", "HIRA_ACT", "HIRA_PAIR"):
            # The auditor decomposes these into ACT(+PRE) records.
            if (cycle, "ACT", rank, bank) not in by_bank:
                problems.append(
                    f"{label}: trace {name}@{cycle} r{rank}b{bank} "
                    "has no audit ACT record"
                )
        else:
            problems.append(f"{label}: unknown command event {name!r}")
    return problems


def _check_identities(label, tracer, stats) -> list[str]:
    """Never-dropped aggregate counters must reproduce ControllerStats."""
    n = tracer.command_counts
    problems = []
    checks = (
        ("acts",
         n["ACT"] + 2 * n["HIRA_ACT"] + 2 * n["HIRA_PAIR"] + n["SOLO_REF"],
         stats.acts),
        ("refs", n["REF"], stats.refs),
        ("refs_sb", n["REFSB"], stats.refs_sb),
        ("reads_served", n["RD"], stats.reads_served),
        ("writes_served", n["WR"], stats.writes_served),
        ("solo_refreshes", n["SOLO_REF"], stats.solo_refreshes),
    )
    for name, traced, actual in checks:
        if traced != actual:
            problems.append(
                f"{label}: identity {name}: trace says {traced}, "
                f"ControllerStats says {actual}"
            )
    return problems


def _check_stalls_against_audit(label, tracer, auditor, mc) -> list[str]:
    """Stall attributions must be consistent with the audit log."""
    problems = []
    records = auditor.records
    cmd_cycles = {
        (cycle, name) for cycle, name, cat, __ in tracer._events if cat == "cmd"
    }
    cmd_only_cycles = {cycle for cycle, __ in cmd_cycles}
    acts_by_rank: dict[int, list[int]] = {}
    refs_by_rank: dict[int, list[int]] = {}
    for rec in records:
        if rec.kind == "ACT":
            acts_by_rank.setdefault(rec.rank, []).append(rec.cycle)
        elif rec.kind in ("REF", "REFSB"):
            refs_by_rank.setdefault(rec.rank, []).append(rec.cycle)
    for cycle, name, cat, args in tracer._events:
        if cat != "stall":
            continue
        if cycle in cmd_only_cycles:
            problems.append(
                f"{label}: stall@{cycle} but a command issued that cycle"
            )
        if args["until"] <= cycle:
            problems.append(f"{label}: stall@{cycle} until={args['until']}")
        reason = args["reason"]
        rank = args["rank"]
        if reason == "tfaw":
            # A HiRA op records its second ACT at ``now + hira_gap_c``,
            # so at stall time the FAW window can legitimately hold
            # timestamps slightly in the future.
            window = [
                t for t in acts_by_rank.get(rank, ())
                if cycle - mc.tfaw_c < t <= cycle + mc.hira_gap_c
            ]
            if len(window) < 4:
                problems.append(
                    f"{label}: tfaw stall@{cycle} r{rank} but only "
                    f"{len(window)} ACTs in the tFAW window"
                )
        elif reason == "ref-busy":
            covered = any(
                t <= cycle < t + mc.trfc_c for t in refs_by_rank.get(rank, ())
            )
            if not covered:
                problems.append(
                    f"{label}: ref-busy stall@{cycle} r{rank} outside any "
                    "REF's tRFC window"
                )
    return problems


def check_traced() -> int:
    from repro.obs.tracer import trace_json, validate_chrome_trace

    failures = 0
    for label, overrides in CONFIGS:
        system, tracers, auditors, result = _run_system(
            overrides, trace=True, audit=True
        )
        problems: list[str] = []
        stall_total = 0
        for tracer, auditor, mc, stats in zip(
            tracers, auditors, system.controllers, result.controller_stats
        ):
            payload = tracer.export()
            problems += [
                f"{label}: schema: {p}" for p in validate_chrome_trace(payload)
            ]
            json.loads(trace_json(payload))  # canonical form round-trips
            problems += _check_commands_against_audit(label, tracer, auditor)
            problems += _check_identities(label, tracer, stats)
            problems += _check_stalls_against_audit(label, tracer, auditor, mc)
            stall_total += sum(tracer.stall_counts.values())
            if tracer.events_total == 0:
                problems.append(f"{label}: tracer recorded no events")
        if stall_total == 0:
            problems.append(f"{label}: no stalls attributed (vacuous run?)")
        if problems:
            failures += 1
            print(f"traced pass [{label}]: FAIL")
            for p in problems[:20]:
                print(f"  {p}")
        else:
            events = sum(t.events_total for t in tracers)
            print(f"traced pass [{label}]: ok ({events} events, "
                  f"{stall_total} stalls attributed)")
    return failures


def check_disarmed_ab() -> int:
    from repro.orchestrator import result_to_dict

    failures = 0
    for label, overrides in CONFIGS:
        __, __, __, armed = _run_system(overrides, trace=True, audit=False)
        __, __, __, plain = _run_system(overrides, trace=False, audit=False)
        a = json.dumps(result_to_dict(armed), sort_keys=True)
        b = json.dumps(result_to_dict(plain), sort_keys=True)
        if a == b:
            print(f"disarmed A/B [{label}]: ok (bit-identical results)")
        else:
            failures += 1
            print(f"disarmed A/B [{label}]: FAIL — tracing changed the result")
    return failures


def check_determinism() -> int:
    from repro.obs.tracer import trace_json

    failures = 0
    for label, overrides in CONFIGS:
        exports = []
        for __ in range(2):
            __, tracers, __, __ = _run_system(overrides, trace=True, audit=False)
            exports.append([trace_json(t.export()) for t in tracers])
        if exports[0] == exports[1]:
            print(f"determinism [{label}]: ok (byte-identical re-run)")
        else:
            failures += 1
            print(f"determinism [{label}]: FAIL — trace export not "
                  "reproducible")
    return failures


def check_mutation() -> int:
    """Delete the controller's ACT trace hook; the traced pass must fail."""
    hook = (
        "        if self.tracer is not None:\n"
        "            self.tracer.on_act(now, rank, bank_id, row)\n"
    )
    with tempfile.TemporaryDirectory(prefix="obsmut-") as tmp:
        tree = Path(tmp) / "repro"
        shutil.copytree(SRC, tree, ignore=shutil.ignore_patterns("__pycache__"))
        path = tree / "sim" / "controller.py"
        text = path.read_text(encoding="utf-8")
        if hook not in text:
            print("mutation pass: FAIL — ACT trace hook not found to remove")
            return 1
        path.write_text(text.replace(hook, "", 1), encoding="utf-8")
        env = dict(os.environ, PYTHONPATH=tmp)
        proc = subprocess.run(
            [sys.executable, __file__, "--traced-only"],
            env=env, capture_output=True, text=True,
        )
    if proc.returncode != 0:
        print("mutation pass: ok (dropped ACT hook detected)")
        return 0
    print("mutation pass: FAIL — traced pass did not notice the planted "
          "mutation:")
    print(proc.stdout)
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traced-only", action="store_true",
                        help="run passes 1-3 only (used by the mutation "
                             "guard against a planted tree)")
    args = parser.parse_args(argv)

    failures = check_traced()
    failures += check_disarmed_ab()
    failures += check_determinism()
    if not args.traced_only:
        failures += check_mutation()
    if failures:
        print(f"FAIL: {failures} observability problem(s)")
        return 1
    print("OK: traces validate, disarmed runs are bit-identical, exports "
          "are deterministic")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
