"""Gate on cross-sweep dedup: shared points must never be recomputed.

Reads two ``repro sweep --json-out`` payloads from sweeps that share a
result store, where the second sweep's grid contains every point of the
first (the CI smoke runs a superset grid).  Fails (exit 1) if the second
sweep recomputed any of the shared points — i.e. if the content-addressed
store did not dedup them — or if it computed more than its new points.

Usage::

    python tools/check_dedup.py first.json second.json \
        --max-recomputed-shared 0
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("first_json")
    parser.add_argument("second_json")
    parser.add_argument("--shared", type=int, default=None,
                        help="points the sweeps share (default: all of the "
                             "first sweep's grid)")
    parser.add_argument("--max-recomputed-shared", type=int, default=0,
                        dest="max_recomputed",
                        help="tolerated shared-point recomputations")
    args = parser.parse_args(argv)
    first = json.loads(open(args.first_json).read())
    second = json.loads(open(args.second_json).read())
    shared = first["runs"] if args.shared is None else args.shared
    new_points = second["runs"] - shared
    recomputed_shared = max(0, second["computed"] - new_points)
    verdict = "ok" if recomputed_shared <= args.max_recomputed else "REGRESSED"
    print(
        f"{first.get('name')!r} ({first['runs']} points) then "
        f"{second.get('name')!r} ({second['runs']} points, {shared} shared): "
        f"reused {second['reused']}, computed {second['computed']}, "
        f"recomputed shared {recomputed_shared} "
        f"(limit {args.max_recomputed}) {verdict}"
    )
    return 1 if verdict == "REGRESSED" else 0


if __name__ == "__main__":
    sys.exit(main())
