"""CI gate for the chaos matrix (``tests/test_chaos.py``).

Two passes, mirroring ``tools/check_lint.py``'s philosophy that a guard
which never fires proves nothing:

1. **Matrix pass** — run the full fault-injection suite under multiple
   fault seeds (``REPRO_CHAOS_SEED``).  Every scenario must complete
   bit-identical to serial under every seed; a scenario that only passes
   under seed 0 is a flake wearing a determinism costume.
2. **Planted-mutation pass** — copy ``src/repro`` to a temp tree,
   disable requeue-on-death inside ``JobServer._requeue`` (a worker
   death now fails the sweep instead of re-queueing the job), and
   require the chaos suite to FAIL against the mutated tree.  If it
   still passes, the suite is vacuous — it would wave through a
   distributed layer that cannot survive a single worker crash.

Usage::

    python tools/check_chaos.py                # seeds 0,1 + mutation
    python tools/check_chaos.py --seeds 0      # single-seed quick pass
    python tools/check_chaos.py --skip-mutation
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: Wall-clock cap per pytest invocation.  A mutated tree may *hang*
#: instead of failing (a dropped job never completes the sweep); the cap
#: converts that into a detected failure instead of a stuck CI job.
SUITE_TIMEOUT_S = 420


def _run_suite(pythonpath: str, seed: int, select: str | None = None) -> int | None:
    """Exit code of one chaos-suite run (``None`` = timed out)."""
    cmd = [sys.executable, "-m", "pytest", "-q", "tests/test_chaos.py"]
    if select:
        cmd += ["-k", select]
    env = dict(os.environ)
    env["PYTHONPATH"] = pythonpath
    env["REPRO_CHAOS_SEED"] = str(seed)
    try:
        proc = subprocess.run(cmd, cwd=REPO, env=env, timeout=SUITE_TIMEOUT_S)
    except subprocess.TimeoutExpired:
        return None
    return proc.returncode


def check_matrix(seeds: list[int]) -> int:
    failures = 0
    for seed in seeds:
        code = _run_suite(str(REPO / "src"), seed)
        if code == 0:
            print(f"chaos matrix [seed {seed}]: ok")
        else:
            failures += 1
            state = "timed out" if code is None else f"exit {code}"
            print(f"chaos matrix [seed {seed}]: FAIL ({state})")
    return failures


def _plant_no_requeue(tree: Path) -> None:
    """Disable requeue-on-death: a worker death fails the sweep."""
    path = tree / "orchestrator" / "backends" / "server.py"
    text = path.read_text(encoding="utf-8")
    head, sep, tail = text.partition("def _requeue")
    marker = "        self._jobs.put(job)\n"
    assert sep and marker in tail, "requeue put() not found to disable"
    mutated = tail.replace(
        marker,
        '        self._fail(f"requeue disabled (planted mutation): '
        'point {job.index}")\n',
        1,
    )
    path.write_text(head + sep + mutated, encoding="utf-8")


def check_mutation() -> int:
    with tempfile.TemporaryDirectory(prefix="chaosmut-") as tmp:
        tree = Path(tmp) / "repro"
        shutil.copytree(SRC, tree, ignore=shutil.ignore_patterns("__pycache__"))
        _plant_no_requeue(tree)
        # The crash/reset scenarios exercise requeue directly; running the
        # focused subset keeps the mutation pass fast.
        code = _run_suite(
            tmp, seed=0, select="reset_mid_result or crash_mid_job"
        )
    if code == 0:
        print("mutation pass [no-requeue]: FAIL — the chaos suite passed "
              "against a tree that drops dead workers' jobs (vacuous suite)")
        return 1
    state = "timed out (counts as detected)" if code is None else f"exit {code}"
    print(f"mutation pass [no-requeue]: ok — suite failed as required ({state})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", default="0,1",
                        help="comma list of REPRO_CHAOS_SEED values")
    parser.add_argument("--skip-mutation", action="store_true",
                        help="matrix pass only (skip the vacuousness guard)")
    args = parser.parse_args(argv)
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]

    failures = check_matrix(seeds)
    if not args.skip_mutation:
        failures += check_mutation()
    if failures:
        print(f"FAIL: {failures} chaos-gate problem(s)")
        return 1
    print("OK: chaos matrix deterministic across seeds and non-vacuous")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
