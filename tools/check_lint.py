"""CI vacuousness gate for ``repro lint``.

A linter that never fires is indistinguishable from a correct tree, so
this gate proves every rule still bites.  It runs two passes:

1. **Clean pass** — the real ``src/repro`` tree must lint clean under the
   committed baseline (the same check ``repro lint`` performs; running it
   here keeps the guard self-contained).
2. **Planted-mutation pass** — for each rule, copy ``src/repro`` to a
   temp tree, plant one realistic violation (a dropped dirty mark, an
   unenforced timing field, a wall-clock read, a stray slot store, an
   undispatched protocol message), and require exactly that rule to fire
   on the mutated tree.

Usage::

    python tools/check_lint.py            # clean pass + all mutations
    python tools/check_lint.py --mypy     # also run the targeted mypy set

``--mypy`` is a no-op (with a notice) when mypy is not installed, so the
script stays runnable in the bare container; CI installs mypy and passes
the flag.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lint import CHECKERS, lint_tree

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Targeted mypy set (satellite d): the stable, annotation-complete
#: protocol/data modules other layers build on.
MYPY_TARGETS = (
    "src/repro/dram/timing.py",
    "src/repro/sim/request.py",
    "src/repro/orchestrator/hashing.py",
    "src/repro/orchestrator/backends/protocol.py",
)


def _mutate_dirty_flag(tree: Path) -> None:
    """Drop the dirty mark from the PRE issue primitive."""
    path = tree / "sim" / "controller.py"
    text = path.read_text(encoding="utf-8")
    head, sep, tail = text.partition("def issue_pre")
    marker = "        self._dirty = True\n"
    assert sep and marker in tail, "issue_pre dirty mark not found to remove"
    path.write_text(head + sep + tail.replace(marker, "", 1), encoding="utf-8")


def _mutate_timing(tree: Path) -> None:
    """Stop the auditor from enforcing tRTP."""
    path = tree / "sim" / "audit.py"
    text = path.read_text(encoding="utf-8")
    assert "trtp" in text, "audit.py no longer references trtp"
    path.write_text(text.replace("trtp", "ztrtp"), encoding="utf-8")


def _mutate_determinism(tree: Path) -> None:
    """Plant a wall-clock read in simulation logic."""
    path = tree / "sim" / "trace.py"
    text = path.read_text(encoding="utf-8")
    path.write_text(
        text
        + "\n\nimport time\n\n\ndef _lint_mut_wallclock() -> float:\n"
        + "    return time.time()\n",
        encoding="utf-8",
    )


def _mutate_slots(tree: Path) -> None:
    """Plant a slotted class that assigns an undeclared attribute."""
    path = tree / "sim" / "controller.py"
    text = path.read_text(encoding="utf-8")
    path.write_text(
        text
        + "\n\nclass _LintMutSlots:\n"
        + '    __slots__ = ("a",)\n\n'
        + "    def poke(self) -> None:\n"
        + "        self.b = 1\n",
        encoding="utf-8",
    )


def _mutate_protocol(tree: Path) -> None:
    """Register a message type neither endpoint implements."""
    path = tree / "orchestrator" / "backends" / "protocol.py"
    text = path.read_text(encoding="utf-8")
    anchor = '"shutdown": "server->worker",'
    assert anchor in text, "MESSAGE_TYPES anchor not found"
    path.write_text(
        text.replace(anchor, anchor + '\n    "rebalance": "server->worker",', 1),
        encoding="utf-8",
    )


def _mutate_timeouts(tree: Path) -> None:
    """Plant an unbounded protocol receive in the server endpoint."""
    path = tree / "orchestrator" / "backends" / "server.py"
    text = path.read_text(encoding="utf-8")
    path.write_text(
        text
        + "\n\ndef _lint_mut_unbounded(conn):\n"
        + "    return recv_msg(conn)\n",
        encoding="utf-8",
    )


def _mutate_stats_coverage(tree: Path) -> None:
    """Drop a ControllerStats counter from the metrics export table."""
    path = tree / "obs" / "metrics.py"
    text = path.read_text(encoding="utf-8")
    anchor = '"row_hits": '
    assert anchor in text, "CONTROLLER_METRICS row_hits entry not found"
    lines = [
        line for line in text.splitlines(keepends=True)
        if anchor not in line
    ]
    path.write_text("".join(lines), encoding="utf-8")


MUTATIONS = (
    ("dirty-flag", _mutate_dirty_flag),
    ("timing-coverage", _mutate_timing),
    ("determinism", _mutate_determinism),
    ("slots", _mutate_slots),
    ("protocol-dispatch", _mutate_protocol),
    ("protocol-timeouts", _mutate_timeouts),
    ("stats-coverage", _mutate_stats_coverage),
)


def check_clean() -> int:
    result = lint_tree()
    if result.clean:
        print(f"clean pass: ok ({result.files} files, "
              f"{len(result.rules)} rules)")
        return 0
    print(f"clean pass: FAIL — {len(result.findings)} finding(s) on the "
          "real tree:")
    for finding in result.findings:
        print(f"  {finding.render()}")
    return 1


def check_mutations() -> int:
    failures = 0
    for rule, mutate in MUTATIONS:
        with tempfile.TemporaryDirectory(prefix=f"lintmut-{rule}-") as tmp:
            tree = Path(tmp) / "repro"
            shutil.copytree(SRC, tree, ignore=shutil.ignore_patterns("__pycache__"))
            mutate(tree)
            result = lint_tree(root=tree, baseline=None)
            fired = sorted({f.rule for f in result.findings})
            if rule in fired:
                print(f"mutation pass [{rule}]: ok "
                      f"({len(result.findings)} finding(s))")
            else:
                failures += 1
                print(f"mutation pass [{rule}]: FAIL — planted violation "
                      f"not detected (rules fired: {fired or 'none'})")
    return failures


def check_mypy() -> int:
    try:
        import mypy  # noqa: F401
    except ImportError:
        print("mypy pass: skipped (mypy not installed in this environment)")
        return 0
    repo = Path(__file__).resolve().parent.parent
    cmd = [
        sys.executable, "-m", "mypy",
        "--config-file", str(repo / "mypy.ini"),
        *[str(repo / t) for t in MYPY_TARGETS],
    ]
    proc = subprocess.run(cmd, cwd=repo)
    status = "ok" if proc.returncode == 0 else f"FAIL (exit {proc.returncode})"
    print(f"mypy pass: {status} ({len(MYPY_TARGETS)} modules)")
    return 0 if proc.returncode == 0 else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mypy", action="store_true",
                        help="also type-check the targeted module set "
                             "(skipped when mypy is unavailable)")
    args = parser.parse_args(argv)

    assert len(MUTATIONS) == len(CHECKERS), (
        "every registered rule needs a planted mutation: "
        f"{sorted(CHECKERS)} vs {sorted(r for r, _ in MUTATIONS)}"
    )
    failures = check_clean()
    failures += check_mutations()
    if args.mypy:
        failures += check_mypy()
    if failures:
        print(f"FAIL: {failures} lint-gate problem(s)")
        return 1
    print("OK: tree is clean and every lint rule catches its planted violation")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
