"""Gate on the fig 12 speedup margin: HiRA vs baseline at high capacity.

Reads the JSON produced by ``repro sweep --json-out`` and fails (exit 1)
if HiRA's mean weighted speedup, normalized to the baseline at the same
capacity, falls below the required floor.  CI runs this after the
quick-mode margin smoke sweep so a scheduler or timing-model change that
erodes HiRA's margin over the baseline is caught on the PR.

Usage::

    python tools/check_fig12_margin.py fig12-margin.json \
        --hira HiRA-2 --baseline baseline --min-margin 1.08
"""

from __future__ import annotations

import argparse
import json
import sys


def margins(payload: dict, hira: str, baseline: str) -> dict[float, float]:
    """Per-capacity HiRA/baseline weighted-speedup ratios."""
    ws: dict[tuple[float, str], float] = {}
    for cell in payload["cells"]:
        coords = cell["coords"]
        capacity = float(coords.get("capacity_gbit", 0.0))
        ws[(capacity, coords["cfg"])] = cell["mean_ws"]
    out: dict[float, float] = {}
    for (capacity, cfg), value in ws.items():
        if cfg != hira:
            continue
        base = ws.get((capacity, baseline))
        if base is None:
            raise SystemExit(f"no {baseline!r} cell at {capacity} Gbit")
        out[capacity] = value / base
    if not out:
        raise SystemExit(f"no {hira!r} cells in {payload.get('name')!r}")
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path")
    parser.add_argument("--hira", default="HiRA-2")
    parser.add_argument("--baseline", default="baseline")
    parser.add_argument("--min-margin", type=float, default=1.08,
                        help="fail below this HiRA/baseline ratio")
    args = parser.parse_args(argv)
    payload = json.loads(open(args.json_path).read())
    failed = False
    for capacity, margin in sorted(margins(payload, args.hira, args.baseline).items()):
        verdict = "ok" if margin >= args.min_margin else "REGRESSED"
        if margin < args.min_margin:
            failed = True
        print(
            f"{args.hira} / {args.baseline} @ {capacity:.0f} Gbit: "
            f"{margin:.4f} (floor {args.min_margin:.2f}) {verdict}"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
