"""Tables 1 and 4: per-module HiRA coverage and normalized NRH.

Paper: coverage averages 25.0–38.4% per module (32% overall), normalized
RowHammer threshold ~1.9× (spread 1.09–2.58), and a 51.4% two-row refresh
latency reduction.  Rows are uniformly subsampled from the paper's
first/middle/last-2K tested sample (the real experiment tested every row
over days of FPGA time).
"""

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.dram.timing import hira_latency_reduction
from repro.experiments.coverage import coverage_distribution, tested_row_sample as row_sample
from repro.experiments.modules import TESTED_MODULES, build_module_chip
from repro.experiments.second_act import characterize_normalized_nrh

from benchmarks.conftest import emit, scale

ROW_STRIDE = scale(64, 16)
ROWS_A_STEP = scale(8, 2)
NRH_VICTIMS = scale(8, 48)


def characterize_module(module):
    chip = build_module_chip(module)
    rows = row_sample(chip.geometry, chunk=2048, stride=ROW_STRIDE)
    coverage = coverage_distribution(
        chip, 0, chip.timing.hira_t1, chip.timing.hira_t2,
        tested_rows=rows, rows_a=rows[::ROWS_A_STEP],
    )
    victims = rows[:: max(1, len(rows) // NRH_VICTIMS)][:NRH_VICTIMS]
    thresholds = characterize_normalized_nrh(chip, 0, victims)
    ratios = summarize([r.normalized for r in thresholds])
    return coverage, ratios


def build_table1() -> tuple[str, list]:
    rows = []
    records = []
    for module in TESTED_MODULES:
        coverage, ratios = characterize_module(module)
        records.append((module, coverage, ratios))
        rows.append(
            [
                module.label,
                module.module_vendor,
                f"{module.chip_capacity_gbit}Gb",
                module.die_rev,
                module.chip_org,
                module.date_code,
                f"{100 * coverage.minimum:.1f}%",
                f"{100 * coverage.average:.1f}%",
                f"{100 * coverage.maximum:.1f}%",
                f"{ratios.minimum:.2f}",
                f"{ratios.mean:.2f}",
                f"{ratios.maximum:.2f}",
            ]
        )
    table = format_table(
        [
            "Module", "Mfr", "Cap", "Die", "Org", "Date",
            "Cov min", "Cov avg", "Cov max",
            "NRH min", "NRH avg", "NRH max",
        ],
        rows,
        title=(
            "Tables 1/4: tested modules — HiRA coverage and normalized "
            f"RowHammer threshold (two-row refresh latency reduction: "
            f"{100 * hira_latency_reduction():.1f}%)"
        ),
    )
    return table, records


def test_table1_modules(benchmark):
    table, records = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    emit("table1_modules", table)
    for module, coverage, ratios in records:
        # Per-module averages land near the paper's Table 4 values.
        assert abs(coverage.average - module.target_coverage) < 0.09
        assert 1.5 < ratios.mean < 2.3
    assert hira_latency_reduction() == __import__("pytest").approx(0.514, abs=0.002)
