"""Table 2: HiRA-MC component area and access latency.

Paper values: Refresh Table 0.00031 mm²/0.07 ns, RefPtr Table
0.00683/0.12, PR-FIFO 0.00029/0.07, SPT 0.00180/0.09; overall 0.00923 mm²
(0.0023% of a 22 nm die) with a 6.31 ns worst-case query.
"""

from repro.analysis.tables import format_table
from repro.hwcost.report import (
    area_fraction_of_reference_die,
    component_estimates,
    overall_area_mm2,
    worst_case_query_latency_ns,
)

from benchmarks.conftest import emit


def build_table2() -> str:
    rows = []
    for est in component_estimates():
        rows.append(
            [
                est.array.name,
                f"{est.area_mm2:.5f}",
                f"{100 * est.area_mm2 / 400.0:.4f}%",
                f"{est.access_latency_ns:.2f} ns",
            ]
        )
    rows.append(
        [
            "Overall",
            f"{overall_area_mm2():.5f}",
            f"{100 * area_fraction_of_reference_die():.4f}%",
            f"{worst_case_query_latency_ns():.2f} ns (worst-case query)",
        ]
    )
    return format_table(
        ["HiRA-MC Component", "Area (mm^2)", "Area (%)", "Access Latency"],
        rows,
        title="Table 2: HiRA-MC hardware complexity (per DRAM rank, 22 nm)",
    )


def test_table2_hwcost(benchmark):
    table = benchmark(build_table2)
    emit("table2_hwcost", table)
    assert worst_case_query_latency_ns() < 14.5  # fits under tRP
    assert overall_area_mm2() < 0.012
