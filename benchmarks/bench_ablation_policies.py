"""Ablation: HiRA-MC's two parallelization classes in isolation.

DESIGN.md calls out the refresh-access vs refresh-refresh priority as a
design choice; this bench disables each class to quantify its
contribution.  Refresh-access matters for periodic refresh under demand
traffic; refresh-refresh matters when PARA floods the PR-FIFOs.
"""

from repro.analysis.tables import format_table
from repro.sim.config import SystemConfig

from benchmarks.conftest import average_ws_profiles, emit, streaming_mix

VARIANTS = (
    ("full HiRA-4", {}),
    ("no refresh-access", {"disable_access_parallelization": True}),
    ("no refresh-refresh", {"disable_refresh_parallelization": True}),
    (
        "neither (per-row solo)",
        {
            "disable_access_parallelization": True,
            "disable_refresh_parallelization": True,
        },
    ),
)


def build_ablation():
    rows = []
    values = {}
    for scenario, capacity, para in (
        ("periodic @128Gb", 128.0, None),
        ("PARA NRH=128 @8Gb", 8.0, 128.0),
    ):
        mix = streaming_mix()
        baseline = average_ws_profiles(
            SystemConfig(
                capacity_gbit=capacity, refresh_mode="baseline", para_nrh=para
            ),
            mix,
        )
        for label, flags in VARIANTS:
            ws = average_ws_profiles(
                SystemConfig(
                    capacity_gbit=capacity,
                    refresh_mode="hira",
                    tref_slack_acts=4,
                    para_nrh=para,
                    **flags,
                ),
                mix,
            )
            values[(scenario, label)] = ws / baseline
            rows.append([scenario, label, f"{ws / baseline:.3f}"])
    table = format_table(
        ["Scenario", "Variant", "WS vs Baseline/PARA"],
        rows,
        title="Ablation: HiRA-MC parallelization classes",
    )
    return table, values


def test_ablation_policies(benchmark):
    table, values = benchmark.pedantic(build_ablation, rounds=1, iterations=1)
    emit("ablation_policies", table)
    # The full policy is at least as good as the fully-disabled variant.
    for scenario in ("periodic @128Gb", "PARA NRH=128 @8Gb"):
        assert (
            values[(scenario, "full HiRA-4")]
            >= values[(scenario, "neither (per-row solo)")] - 0.02
        )
