"""Ablation: how HiRA's benefit depends on its coverage fraction.

The paper's evaluation assumes a refresh can be parallelized with 32% of
the rows in the same bank (§7, from the §4.2 measurement).  This ablation
sweeps that fraction.  Finding: HiRA's benefit *saturates* well below 32%
— with 256 subarrays per bank even 10% coverage leaves ~25 isolated
partner subarrays per demand row, so the Concurrent Refresh Finder almost
always finds a ride.  The paper's measured coverage is comfortably above
the point where it would start to matter.
"""

from repro.analysis.tables import format_table
from repro.sim.config import SystemConfig

from benchmarks.conftest import average_ws_profiles, emit, scale, streaming_mix

COVERAGES = scale((0.10, 0.32, 0.60), (0.05, 0.10, 0.20, 0.32, 0.45, 0.60, 0.80))
CAPACITY = 128.0


def build_ablation():
    mix = streaming_mix()
    baseline = average_ws_profiles(
        SystemConfig(capacity_gbit=CAPACITY, refresh_mode="baseline"), mix
    )
    rows = []
    values = {}
    for coverage in COVERAGES:
        ws = average_ws_profiles(
            SystemConfig(
                capacity_gbit=CAPACITY,
                refresh_mode="hira",
                tref_slack_acts=4,
                hira_coverage=coverage,
            ),
            mix,
        )
        values[coverage] = ws / baseline
        rows.append([f"{coverage:.2f}", f"{ws / baseline:.3f}"])
    table = format_table(
        ["HiRA coverage", "WS vs Baseline"],
        rows,
        title=f"Ablation: HiRA-4 at {CAPACITY:.0f} Gbit vs coverage fraction",
    )
    return table, values


def test_ablation_coverage(benchmark):
    table, values = benchmark.pedantic(build_ablation, rounds=1, iterations=1)
    emit("ablation_coverage", table)
    # Higher coverage never hurts (monotone within noise).
    assert values[COVERAGES[-1]] >= values[COVERAGES[0]] - 0.02
