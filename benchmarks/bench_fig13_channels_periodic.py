"""Figure 13: channel-count sweep with periodic refresh.

Paper: performance grows with channels for baseline and HiRA alike
(steeper from 1→4 than 4→8), and HiRA keeps a significant edge at every
channel count (8.1% for HiRA-2 over the baseline at 8 channels, 32 Gbit).
"""

from repro.analysis.tables import format_table
from repro.orchestrator import axis

from benchmarks.conftest import emit, figure_sweep, scale, variants

CHANNELS = (1, 2, 4, 8)
CAPACITIES = scale((32.0,), (2.0, 8.0, 32.0))
CONFIGS = (
    ("Baseline", "baseline", {}),
    ("HiRA-2", "hira", {"tref_slack_acts": 2}),
    ("HiRA-4", "hira", {"tref_slack_acts": 4}),
)
VARIANTS = variants(CONFIGS)


def build_fig13():
    sweep = figure_sweep(
        "fig13",
        axis("capacity_gbit", *CAPACITIES),
        axis("channels", *CHANNELS),
        axis("cfg", *VARIANTS),
    )
    results = {}
    for capacity in CAPACITIES:
        ref = sweep.mean_ws(capacity_gbit=capacity, channels=1, cfg="Baseline")
        for channels in CHANNELS:
            for label, __, __extra in CONFIGS:
                ws = sweep.mean_ws(capacity_gbit=capacity, channels=channels, cfg=label)
                results[(capacity, channels, label)] = ws / ref
    labels = [label for label, __, __ in CONFIGS]
    rows = [
        [f"{c:.0f}Gb", ch] + [f"{results[(c, ch, l)]:.3f}" for l in labels]
        for c in CAPACITIES
        for ch in CHANNELS
    ]
    table = format_table(
        ["Capacity", "Channels"] + labels,
        rows,
        title="Fig. 13: normalized weighted speedup vs channel count "
        "(periodic refresh; normalized to Baseline @ 1 channel)",
    )
    return table, results


def test_fig13_channels_periodic(benchmark):
    table, results = benchmark.pedantic(build_fig13, rounds=1, iterations=1)
    emit("fig13_channels_periodic", table)
    capacity = CAPACITIES[-1]
    # More channels help both schemes.
    assert results[(capacity, 8, "Baseline")] > results[(capacity, 1, "Baseline")]
    assert results[(capacity, 8, "HiRA-2")] > results[(capacity, 1, "HiRA-2")]
    # HiRA stays ahead of the baseline at every channel count.
    for channels in CHANNELS:
        assert results[(capacity, channels, "HiRA-2")] >= results[
            (capacity, channels, "Baseline")
        ] * 0.995
