"""Figure 5: RowHammer threshold distributions with and without HiRA.

Paper: 27.2K / 51.0K average absolute thresholds without / with HiRA
(Fig. 5a); normalized threshold 1.9× on average with >1.7× for 88.1% of
rows (Fig. 5b).
"""

from repro.analysis.stats import histogram, summarize
from repro.analysis.tables import format_table
from repro.experiments.coverage import tested_row_sample as row_sample
from repro.experiments.modules import TESTED_MODULES, build_module_chip
from repro.experiments.second_act import characterize_normalized_nrh

from benchmarks.conftest import emit, scale

N_VICTIMS = scale(36, 200)


def build_fig5():
    chip = build_module_chip(TESTED_MODULES[2])  # B0
    rows = row_sample(chip.geometry, chunk=2048, stride=32)
    victims = rows[:: max(1, len(rows) // N_VICTIMS)][:N_VICTIMS]
    results = characterize_normalized_nrh(chip, 0, victims)
    without = [r.threshold_without_hira for r in results]
    with_h = [r.threshold_with_hira for r in results]
    ratios = [r.normalized for r in results]

    hist_rows = []
    for label, values in (("without HiRA", without), ("with HiRA", with_h)):
        for lo, hi, frac in histogram(values, bins=8, lo=10_000, hi=90_000):
            hist_rows.append([label, f"{lo / 1000:.0f}K", f"{hi / 1000:.0f}K", f"{frac:.3f}"])
    table_a = format_table(
        ["arm", "bin lo", "bin hi", "fraction of rows"],
        hist_rows,
        title="Fig. 5a: absolute RowHammer threshold histograms",
    )
    ratio_rows = [
        [f"{lo:.2f}", f"{hi:.2f}", f"{frac:.3f}"]
        for lo, hi, frac in histogram(ratios, bins=8, lo=1.0, hi=3.0)
    ]
    table_b = format_table(
        ["ratio lo", "ratio hi", "fraction of rows"],
        ratio_rows,
        title="Fig. 5b: normalized RowHammer threshold histogram",
    )
    return table_a, table_b, without, with_h, ratios


def test_fig5_nrh_histogram(benchmark):
    table_a, table_b, without, with_h, ratios = benchmark.pedantic(
        build_fig5, rounds=1, iterations=1
    )
    emit("fig5_nrh_histogram", table_a + "\n\n" + table_b)

    wo, wi, ra = summarize(without), summarize(with_h), summarize(ratios)
    assert 22_000 < wo.mean < 33_000  # paper: 27.2K
    assert 40_000 < wi.mean < 62_000  # paper: 51.0K
    assert 1.7 < ra.mean < 2.1  # paper: 1.9×
    frac_above_17 = sum(1 for r in ratios if r > 1.7) / len(ratios)
    assert frac_above_17 > 0.6  # paper: 88.1%
