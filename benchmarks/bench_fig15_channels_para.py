"""Figure 15: channel-count sweep with PARA preventive refreshes.

Paper: performance grows with channels for PARA with and without HiRA
(fewer row conflicts → fewer activations → fewer preventive refreshes);
HiRA improves over PARA at every channel count, with the largest margins
at low RowHammer thresholds.
"""

from repro.analysis.tables import format_table
from repro.sim.config import SystemConfig

from benchmarks.conftest import average_ws, emit, scale

CHANNELS = (1, 2, 4, 8)
NRH_SWEEP = scale((1024, 64), (1024, 256, 64))
CONFIGS = (
    ("PARA", "baseline", {}),
    ("HiRA-2", "hira", {"tref_slack_acts": 2}),
    ("HiRA-4", "hira", {"tref_slack_acts": 4}),
)


def build_fig15():
    ref = average_ws(
        SystemConfig(capacity_gbit=8.0, channels=1, refresh_mode="baseline")
    )
    results = {}
    for nrh in NRH_SWEEP:
        for channels in CHANNELS:
            for label, mode, extra in CONFIGS:
                ws = average_ws(
                    SystemConfig(
                        capacity_gbit=8.0,
                        channels=channels,
                        refresh_mode=mode,
                        para_nrh=float(nrh),
                        **extra,
                    )
                )
                results[(nrh, channels, label)] = ws / ref
    labels = [label for label, __, __ in CONFIGS]
    rows = [
        [nrh, ch] + [f"{results[(nrh, ch, l)]:.3f}" for l in labels]
        for nrh in NRH_SWEEP
        for ch in CHANNELS
    ]
    table = format_table(
        ["NRH", "Channels"] + labels,
        rows,
        title="Fig. 15: normalized weighted speedup vs channel count (PARA; "
        "normalized to no-defense Baseline @ 1 channel)",
    )
    return table, results


def test_fig15_channels_para(benchmark):
    table, results = benchmark.pedantic(build_fig15, rounds=1, iterations=1)
    emit("fig15_channels_para", table)
    low_nrh = NRH_SWEEP[-1]
    # Channels help PARA-protected systems too.
    assert results[(low_nrh, 8, "PARA")] > results[(low_nrh, 1, "PARA")]
    # HiRA improves over PARA at every channel count at the low threshold.
    for channels in CHANNELS:
        assert results[(low_nrh, channels, "HiRA-4")] >= results[
            (low_nrh, channels, "PARA")
        ] * 0.99
