"""Figure 15: channel-count sweep with PARA preventive refreshes.

Paper: performance grows with channels for PARA with and without HiRA
(fewer row conflicts → fewer activations → fewer preventive refreshes);
HiRA improves over PARA at every channel count, with the largest margins
at low RowHammer thresholds.
"""

from repro.analysis.tables import format_table
from repro.orchestrator import Variant, axis

from benchmarks.conftest import emit, figure_sweep, scale, variants

CHANNELS = (1, 2, 4, 8)
NRH_SWEEP = scale((1024, 64), (1024, 256, 64))
CONFIGS = (
    ("PARA", "baseline", {}),
    ("HiRA-2", "hira", {"tref_slack_acts": 2}),
    ("HiRA-4", "hira", {"tref_slack_acts": 4}),
)
VARIANTS = variants(CONFIGS)


def build_fig15():
    ref_sweep = figure_sweep(
        "fig15-ref", axis("cfg", Variant.make("Baseline", refresh_mode="baseline"))
    )
    ref = ref_sweep.mean_ws(cfg="Baseline")
    sweep = figure_sweep(
        "fig15",
        axis("para_nrh", *(float(nrh) for nrh in NRH_SWEEP)),
        axis("channels", *CHANNELS),
        axis("cfg", *VARIANTS),
    )
    results = {}
    for nrh in NRH_SWEEP:
        for channels in CHANNELS:
            for label, __, __extra in CONFIGS:
                ws = sweep.mean_ws(para_nrh=float(nrh), channels=channels, cfg=label)
                results[(nrh, channels, label)] = ws / ref
    labels = [label for label, __, __ in CONFIGS]
    rows = [
        [nrh, ch] + [f"{results[(nrh, ch, l)]:.3f}" for l in labels]
        for nrh in NRH_SWEEP
        for ch in CHANNELS
    ]
    table = format_table(
        ["NRH", "Channels"] + labels,
        rows,
        title="Fig. 15: normalized weighted speedup vs channel count (PARA; "
        "normalized to no-defense Baseline @ 1 channel)",
    )
    return table, results


def test_fig15_channels_para(benchmark):
    table, results = benchmark.pedantic(build_fig15, rounds=1, iterations=1)
    emit("fig15_channels_para", table)
    low_nrh = NRH_SWEEP[-1]
    # Channels help PARA-protected systems too.
    assert results[(low_nrh, 8, "PARA")] > results[(low_nrh, 1, "PARA")]
    # HiRA improves over PARA at every channel count at the low threshold.
    for channels in CHANNELS:
        assert results[(low_nrh, channels, "HiRA-4")] >= results[
            (low_nrh, channels, "PARA")
        ] * 0.99
