"""Kernel throughput benchmark: events/sec on pinned seeded workloads.

Runs the quick-mode Fig. 12 single points (see
:mod:`repro.perf`) and writes ``BENCH_kernel.json`` next to the other
bench outputs, so the event-kernel's speed is tracked alongside the
figures it produces.  Set ``REPRO_PERF_FLOOR`` (events/sec) to turn the
run into a pass/fail smoke check — the CI ``kernel-perf-smoke`` job does
this with a floor ~20% under the measured post-optimization number.

The workloads are single-process and seeded: no multi-core gating is
needed (contrast ``bench_orchestrator.py``, whose parallel speedup
contract only holds when ``os.sched_getaffinity`` grants >= 2 CPUs).
"""

from __future__ import annotations

import os

from repro.analysis.tables import format_table
from repro.perf import measure_kernel, write_bench

from benchmarks.conftest import RESULTS_DIR, emit, scale

FLOOR = float(os.environ.get("REPRO_PERF_FLOOR", "0") or "0")


def build_kernel_perf():
    payload = measure_kernel(
        instr_budget=scale(200_000, 400_000), reps=scale(3, 5)
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench(payload, RESULTS_DIR / "BENCH_kernel.json")
    return payload


def test_kernel_perf(benchmark):
    payload = benchmark.pedantic(build_kernel_perf, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{row['wall_s']:.2f}",
            f"{row['events_per_sec']:,.0f}",
            f"{row['speedup_vs_pre_pr']:.2f}x" if "speedup_vs_pre_pr" in row else "-",
        ]
        for name, row in payload["workloads"].items()
    ]
    totals = payload["totals"]
    rows.append([
        "TOTAL",
        f"{totals['wall_s']:.2f}",
        f"{totals['events_per_sec']:,.0f}",
        f"{totals['speedup_vs_pre_pr']:.2f}x" if "speedup_vs_pre_pr" in totals else "-",
    ])
    emit(
        "kernel_perf",
        format_table(
            ["workload", "wall (s)", "events/s", "vs pre-opt"],
            rows,
            title=f"Event-kernel throughput ({payload['machine']['cpus']} CPU)",
        ),
    )
    # Sanity: every workload actually simulated work.
    for name, row in payload["workloads"].items():
        assert row["events"] > 0, name
        assert row["wall_s"] > 0, name
    if FLOOR:
        assert totals["events_per_sec"] >= FLOOR, (
            f"kernel throughput {totals['events_per_sec']:,.0f} events/s "
            f"fell below the smoke floor {FLOOR:,.0f}"
        )
