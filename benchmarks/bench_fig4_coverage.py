"""Figure 4: HiRA coverage across rows for t1 × t2 combinations.

Paper observations: (1) no zero-coverage rows at t1 ∈ {3, 4.5} ns for any
tested t2; (2) ~32% average coverage at t1 = 3, t2 ∈ {3, 4.5}; (3) zero-
coverage rows appear when t1 is 1.5 ns (sense amps not yet enabled) or
6 ns (precharge no longer cleanly interruptible).
"""

from repro.analysis.tables import format_table
from repro.experiments.coverage import coverage_distribution, tested_row_sample as row_sample
from repro.experiments.modules import TESTED_MODULES, build_module_chip

from benchmarks.conftest import WORKERS, emit, scale

T_VALUES_NS = (1.5, 3.0, 4.5, 6.0)
ROW_STRIDE = scale(192, 32)
ROWS_A_STEP = scale(12, 3)


def build_fig4():
    chip = build_module_chip(TESTED_MODULES[4])  # C0
    rows = row_sample(chip.geometry, chunk=2048, stride=ROW_STRIDE)
    rows_a = rows[::ROWS_A_STEP]
    table_rows = []
    grid = {}
    for t1 in T_VALUES_NS:
        for t2 in T_VALUES_NS:
            dist = coverage_distribution(
                chip, 0, int(t1 * 1_000), int(t2 * 1_000),
                tested_rows=rows, rows_a=rows_a,
                workers=WORKERS,
            )
            grid[(t1, t2)] = dist
            table_rows.append(
                [
                    f"{t1:.1f}", f"{t2:.1f}",
                    f"{dist.minimum:.3f}",
                    f"{dist.average:.3f}",
                    f"{dist.maximum:.3f}",
                ]
            )
    table = format_table(
        ["t1 (ns)", "t2 (ns)", "coverage min", "avg", "max"],
        table_rows,
        title="Fig. 4: HiRA coverage across tested rows vs (t1, t2)",
    )
    return table, grid


def test_fig4_coverage(benchmark):
    table, grid = benchmark.pedantic(build_fig4, rounds=1, iterations=1)
    emit("fig4_coverage", table)

    # Observation 1: no zero-coverage rows at t1 ∈ {3, 4.5} for any t2.
    for t1 in (3.0, 4.5):
        for t2 in T_VALUES_NS:
            assert grid[(t1, t2)].minimum > 0.0
    # Observation 2: ~32% average at the paper's best configurations.
    best = grid[(3.0, 3.0)]
    assert 0.2 < best.average < 0.45
    # Observation 3: zero-coverage rows at the t1 extremes.
    assert grid[(1.5, 3.0)].minimum == 0.0
    assert grid[(6.0, 3.0)].minimum == 0.0
    # Extremes are strictly worse on average than the centre.
    assert grid[(1.5, 3.0)].average < best.average
    assert grid[(6.0, 3.0)].average < best.average
