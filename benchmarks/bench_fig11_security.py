"""Figure 11: PARA's probability threshold and success probability.

(a) pth vs NRH for PARA-Legacy and tRefSlack ∈ {0, 2, 4, 8}·tRC;
(b) the overall RowHammer success probability obtained when PARA-Legacy's
pth values are used (rises above 1e-15 as NRH falls) vs the revisited
configuration (stays at the 1e-15 target).
"""

from repro.analysis.tables import format_table
from repro.rowhammer.security import (
    DEFAULT_TARGET,
    k_factor,
    legacy_pth,
    n_ref_slack_for,
    rowhammer_success_probability,
    solve_pth,
)

from benchmarks.conftest import emit

NRH_SWEEP = (1024, 512, 256, 128, 64)
SLACKS = (0, 2, 4, 8)
TRC_NS = 46.25


def build_fig11() -> tuple[str, str]:
    rows_a = []
    rows_b = []
    for nrh in NRH_SWEEP:
        pth_legacy = legacy_pth(nrh)
        pths = [solve_pth(nrh, n_ref_slack_for(s * TRC_NS)) for s in SLACKS]
        rows_a.append(
            [nrh, f"{pth_legacy:.4f}"] + [f"{p:.4f}" for p in pths]
        )
        # (b): pRH when PARA-Legacy's pth is used, and with revisited pths.
        prh_legacy = rowhammer_success_probability(pth_legacy, nrh)
        prh_revisited = [
            rowhammer_success_probability(p, nrh, n_ref_slack_for(s * TRC_NS))
            for p, s in zip(pths, SLACKS)
        ]
        rows_b.append(
            [nrh, f"{prh_legacy / 1e-15:.4f}"]
            + [f"{p / 1e-15:.4f}" for p in prh_revisited]
        )
    table_a = format_table(
        ["NRH", "PARA-Legacy pth"] + [f"slack={s}tRC" for s in SLACKS],
        rows_a,
        title="Fig. 11a: PARA probability threshold (pth) vs NRH",
    )
    table_b = format_table(
        ["NRH", "pRH(legacy)/1e-15"] + [f"slack={s}tRC /1e-15" for s in SLACKS],
        rows_b,
        title="Fig. 11b: overall RowHammer success probability (×1e-15)",
    )
    return table_a, table_b


def test_fig11_security(benchmark):
    table_a, table_b = benchmark(build_fig11)
    emit("fig11_security", table_a + "\n\n" + table_b)

    # Headline checks against the paper's quoted values.
    assert solve_pth(1024) < 0.08 and solve_pth(64) > 0.8
    assert k_factor(legacy_pth(1024), 1024) == __import__("pytest").approx(1.0331, abs=3e-3)
    assert k_factor(legacy_pth(64), 64) == __import__("pytest").approx(1.3212, abs=3e-3)
    # Revisited pths hold the target at every NRH; legacy pths exceed it.
    for nrh in NRH_SWEEP:
        assert rowhammer_success_probability(solve_pth(nrh), nrh) <= DEFAULT_TARGET * 1.001
        assert rowhammer_success_probability(legacy_pth(nrh), nrh) > DEFAULT_TARGET
