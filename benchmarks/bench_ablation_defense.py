"""Ablation: PreventiveRC with PARA vs a Graphene-like counter defense.

§5.1.2 claims HiRA-MC supports all controller-based preventive-refresh
mechanisms.  This bench runs both defenses under HiRA-4 at a low RowHammer
threshold: the counter-based tracker only refreshes genuinely hot rows, so
on benign (non-attack) workloads it generates far fewer preventive
refreshes than probabilistic PARA — the paper's §9 trade-off is hardware
scalability, not benign-workload overhead.
"""

from repro.analysis.tables import format_table
from repro.sim.config import SystemConfig

from benchmarks.conftest import average_ws, emit, run_config

NRH = 256.0


def build_comparison():
    baseline = average_ws(SystemConfig(capacity_gbit=8.0, refresh_mode="baseline"))
    rows = []
    values = {}
    for defense in ("para", "graphene"):
        cfg = SystemConfig(
            capacity_gbit=8.0,
            refresh_mode="hira",
            tref_slack_acts=4,
            para_nrh=NRH,
            defense=defense,
        )
        ws = average_ws(cfg)
        preventive = run_config(cfg, 0).stat_total("preventive_generated")
        values[defense] = (ws / baseline, preventive)
        rows.append([defense, f"{ws / baseline:.3f}", preventive])
    table = format_table(
        ["Defense", "WS vs no-defense baseline", "preventive refreshes (mix 0)"],
        rows,
        title=f"Ablation: PreventiveRC defenses under HiRA-4, NRH = {NRH:.0f}",
    )
    return table, values


def test_ablation_defense(benchmark):
    table, values = benchmark.pedantic(build_comparison, rounds=1, iterations=1)
    emit("ablation_defense", table)
    # Counter-based tracking fires only on hot rows: far fewer preventive
    # refreshes than probabilistic PARA on benign workloads.
    assert values["graphene"][1] < values["para"][1]
    assert values["graphene"][0] >= values["para"][0] - 0.02
