"""Figure 9: periodic-refresh overhead vs DRAM chip capacity.

(a) Weighted speedup normalized to the ideal No-Refresh system: the
baseline's REF overhead grows with capacity (26.3% at 128 Gbit in the
paper); HiRA recovers a substantial part of it.
(b) Normalized to the baseline: HiRA's improvement grows with capacity
(paper: 2.4% at 2 Gbit → 12.6% at 128 Gbit for HiRA-2), and
HiRA-2 ≈ HiRA-4 ≈ HiRA-8.

A ``refresh_granularity`` axis additionally sweeps every configuration
under DDR5-style same-bank refresh (REFsb): the baseline trades the
rank-wide tRFC block for per-bank tRFC_sb blocks, and HiRA's margin over
it collapses — the paper's gain comes from *sub-bank* (subarray-level)
refresh parallelization, which REFsb-granularity refresh cannot express.
"""

from repro.analysis.tables import format_table
from repro.orchestrator import Variant, axis

from benchmarks.conftest import emit, figure_sweep, scale, variants

CAPACITIES = scale((2.0, 8.0, 32.0, 128.0), (2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0))
CONFIGS = (
    ("Baseline", "baseline", {}),
    ("HiRA-0", "hira", {"tref_slack_acts": 0}),
    ("HiRA-2", "hira", {"tref_slack_acts": 2}),
    ("HiRA-4", "hira", {"tref_slack_acts": 4}),
    ("HiRA-8", "hira", {"tref_slack_acts": 8}),
)
VARIANTS = variants(CONFIGS)
GRANULARITIES = ("all_bank", "same_bank")


def build_fig9():
    # The No-Refresh ideal issues no REF/REFsb at all, so it is invariant
    # under the granularity axis: simulate it once per capacity × mix and
    # share the denominator across both granularities.
    ideal_result = figure_sweep(
        "fig9-ideal",
        axis("capacity_gbit", *CAPACITIES),
        axis("cfg", Variant.make("No Refresh", refresh_mode="none")),
    )
    result = figure_sweep(
        "fig9",
        axis("capacity_gbit", *CAPACITIES),
        axis("cfg", *VARIANTS),
        axis("refresh_granularity", *GRANULARITIES),
    )
    norm_to_ideal = {}
    norm_to_baseline = {}
    for gran in GRANULARITIES:
        for capacity in CAPACITIES:
            ideal = ideal_result.mean_ws(capacity_gbit=capacity, cfg="No Refresh")
            baseline = result.mean_ws(
                capacity_gbit=capacity, cfg="Baseline", refresh_granularity=gran
            )
            for label, __, __extra in CONFIGS:
                ws = result.mean_ws(
                    capacity_gbit=capacity, cfg=label, refresh_granularity=gran
                )
                norm_to_ideal[(capacity, label, gran)] = ws / ideal
                norm_to_baseline[(capacity, label, gran)] = ws / baseline
    labels = [label for label, __, __ in CONFIGS]
    tables = []
    for gran in GRANULARITIES:
        rows_a = [
            [f"{c:.0f}Gb"] + [f"{norm_to_ideal[(c, l, gran)]:.3f}" for l in labels]
            for c in CAPACITIES
        ]
        rows_b = [
            [f"{c:.0f}Gb"] + [f"{norm_to_baseline[(c, l, gran)]:.3f}" for l in labels]
            for c in CAPACITIES
        ]
        tables.append(format_table(
            ["Capacity"] + labels, rows_a,
            title=f"Fig. 9a ({gran}): weighted speedup normalized to No Refresh",
        ))
        tables.append(format_table(
            ["Capacity"] + labels, rows_b,
            title=f"Fig. 9b ({gran}): weighted speedup normalized to Baseline",
        ))
    return tables, norm_to_ideal, norm_to_baseline


def test_fig9_periodic_refresh(benchmark):
    tables, to_ideal, to_base = benchmark.pedantic(
        build_fig9, rounds=1, iterations=1
    )
    emit("fig9_periodic_refresh", "\n\n".join(tables))

    biggest = CAPACITIES[-1]
    smallest = CAPACITIES[0]
    ab, sb = GRANULARITIES
    # Baseline refresh overhead grows with capacity.
    assert to_ideal[(biggest, "Baseline", ab)] < to_ideal[(smallest, "Baseline", ab)]
    assert to_ideal[(biggest, "Baseline", ab)] < 0.92
    # HiRA-2 matches or beats the baseline at high capacity (the paper's
    # +12.6%; quick-mode 2-mix averages show a smaller but non-negative
    # margin — see EXPERIMENTS.md).
    assert to_base[(biggest, "HiRA-2", ab)] > 0.99
    # HiRA-2 and HiRA-4 track each other (paper: 2 ≈ 4 ≈ 8).
    assert abs(to_base[(biggest, "HiRA-2", ab)] - to_base[(biggest, "HiRA-4", ab)]) < 0.05
    # DDR5 REFsb granularity: the baseline's same-bank overhead stays in a
    # narrow band around its all-bank overhead (shorter per-bank blocks,
    # but row buffers are closed bank by bank instead of amortized once).
    assert abs(
        to_ideal[(biggest, "Baseline", sb)] - to_ideal[(biggest, "Baseline", ab)]
    ) < 0.07
    # The ablation headline: HiRA's margin needs sub-bank granularity.
    # Under REFsb-granularity refresh it collapses toward the baseline,
    # while staying at least neutral (tRefSlack scheduling never hurts).
    assert to_base[(biggest, "HiRA-2", ab)] > to_base[(biggest, "HiRA-2", sb)]
    assert to_base[(biggest, "HiRA-2", sb)] > 0.97
