"""Figure 9: periodic-refresh overhead vs DRAM chip capacity.

(a) Weighted speedup normalized to the ideal No-Refresh system: the
baseline's REF overhead grows with capacity (26.3% at 128 Gbit in the
paper); HiRA recovers a substantial part of it.
(b) Normalized to the baseline: HiRA's improvement grows with capacity
(paper: 2.4% at 2 Gbit → 12.6% at 128 Gbit for HiRA-2), and
HiRA-2 ≈ HiRA-4 ≈ HiRA-8.
"""

from repro.analysis.tables import format_table
from repro.orchestrator import Variant, axis

from benchmarks.conftest import emit, figure_sweep, scale, variants

CAPACITIES = scale((2.0, 8.0, 32.0, 128.0), (2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0))
CONFIGS = (
    ("Baseline", "baseline", {}),
    ("HiRA-0", "hira", {"tref_slack_acts": 0}),
    ("HiRA-2", "hira", {"tref_slack_acts": 2}),
    ("HiRA-4", "hira", {"tref_slack_acts": 4}),
    ("HiRA-8", "hira", {"tref_slack_acts": 8}),
)
VARIANTS = variants(CONFIGS) + (Variant.make("No Refresh", refresh_mode="none"),)


def build_fig9():
    result = figure_sweep(
        "fig9",
        axis("capacity_gbit", *CAPACITIES),
        axis("cfg", *VARIANTS),
    )
    norm_to_ideal = {}
    norm_to_baseline = {}
    for capacity in CAPACITIES:
        ideal = result.mean_ws(capacity_gbit=capacity, cfg="No Refresh")
        baseline = result.mean_ws(capacity_gbit=capacity, cfg="Baseline")
        for label, __, __extra in CONFIGS:
            ws = result.mean_ws(capacity_gbit=capacity, cfg=label)
            norm_to_ideal[(capacity, label)] = ws / ideal
            norm_to_baseline[(capacity, label)] = ws / baseline
    labels = [label for label, __, __ in CONFIGS]
    rows_a = [
        [f"{c:.0f}Gb"] + [f"{norm_to_ideal[(c, l)]:.3f}" for l in labels]
        for c in CAPACITIES
    ]
    rows_b = [
        [f"{c:.0f}Gb"] + [f"{norm_to_baseline[(c, l)]:.3f}" for l in labels]
        for c in CAPACITIES
    ]
    table_a = format_table(
        ["Capacity"] + labels, rows_a,
        title="Fig. 9a: weighted speedup normalized to No Refresh",
    )
    table_b = format_table(
        ["Capacity"] + labels, rows_b,
        title="Fig. 9b: weighted speedup normalized to Baseline",
    )
    return table_a, table_b, norm_to_ideal, norm_to_baseline


def test_fig9_periodic_refresh(benchmark):
    table_a, table_b, to_ideal, to_base = benchmark.pedantic(
        build_fig9, rounds=1, iterations=1
    )
    emit("fig9_periodic_refresh", table_a + "\n\n" + table_b)

    biggest = CAPACITIES[-1]
    smallest = CAPACITIES[0]
    # Baseline refresh overhead grows with capacity.
    assert to_ideal[(biggest, "Baseline")] < to_ideal[(smallest, "Baseline")]
    assert to_ideal[(biggest, "Baseline")] < 0.92
    # HiRA-2 matches or beats the baseline at high capacity (the paper's
    # +12.6%; quick-mode 2-mix averages show a smaller but non-negative
    # margin — see EXPERIMENTS.md).
    assert to_base[(biggest, "HiRA-2")] > 0.99
    # HiRA-2 and HiRA-4 track each other (paper: 2 ≈ 4 ≈ 8).
    assert abs(to_base[(biggest, "HiRA-2")] - to_base[(biggest, "HiRA-4")]) < 0.05
