"""Figure 12: PARA's performance with and without HiRA vs NRH.

(a) Normalized to a baseline with no RowHammer defense: PARA's overhead
grows steeply as the RowHammer threshold falls (paper: 29% at NRH = 1024,
96% at NRH = 64).
(b) Normalized to PARA-without-HiRA: HiRA's improvement grows with
vulnerability and with tRefSlack (paper at NRH = 64: HiRA-0 +0.6%,
HiRA-2 2.75×, HiRA-4 3.73×, HiRA-8 4.23×).
"""

from repro.analysis.tables import format_table
from repro.orchestrator import Variant, axis

from benchmarks.conftest import emit, figure_sweep, scale, variants

NRH_SWEEP = scale((1024, 256, 64), (1024, 512, 256, 128, 64))
CONFIGS = (
    ("PARA", "baseline", {}),
    ("HiRA-0", "hira", {"tref_slack_acts": 0}),
    ("HiRA-2", "hira", {"tref_slack_acts": 2}),
    ("HiRA-4", "hira", {"tref_slack_acts": 4}),
    ("HiRA-8", "hira", {"tref_slack_acts": 8}),
)
VARIANTS = variants(CONFIGS)


def build_fig12():
    ref = figure_sweep(
        "fig12-ref", axis("cfg", Variant.make("Baseline", refresh_mode="baseline"))
    )
    baseline = ref.mean_ws(cfg="Baseline")
    result = figure_sweep(
        "fig12",
        axis("para_nrh", *(float(nrh) for nrh in NRH_SWEEP)),
        axis("cfg", *VARIANTS),
    )
    to_baseline = {}
    to_para = {}
    for nrh in NRH_SWEEP:
        para_ws = result.mean_ws(para_nrh=float(nrh), cfg="PARA")
        for label, __, __extra in CONFIGS:
            ws = result.mean_ws(para_nrh=float(nrh), cfg=label)
            to_baseline[(nrh, label)] = ws / baseline
            to_para[(nrh, label)] = ws / para_ws
    labels = [label for label, __, __ in CONFIGS]
    rows_a = [
        [nrh] + [f"{to_baseline[(nrh, l)]:.3f}" for l in labels] for nrh in NRH_SWEEP
    ]
    rows_b = [
        [nrh] + [f"{to_para[(nrh, l)]:.3f}" for l in labels] for nrh in NRH_SWEEP
    ]
    table_a = format_table(
        ["NRH"] + labels, rows_a,
        title="Fig. 12a: weighted speedup normalized to no-defense baseline",
    )
    table_b = format_table(
        ["NRH"] + labels, rows_b,
        title="Fig. 12b: weighted speedup normalized to PARA (no HiRA)",
    )
    return table_a, table_b, to_baseline, to_para


def test_fig12_para_perf(benchmark):
    table_a, table_b, to_baseline, to_para = benchmark.pedantic(
        build_fig12, rounds=1, iterations=1
    )
    emit("fig12_para_perf", table_a + "\n\n" + table_b)

    hi, lo = NRH_SWEEP[0], NRH_SWEEP[-1]
    # PARA's overhead grows as NRH falls.
    assert to_baseline[(lo, "PARA")] < to_baseline[(hi, "PARA")]
    assert to_baseline[(lo, "PARA")] < 0.8
    # HiRA with slack beats plain PARA at the lowest threshold.  The
    # quick-mode 2-mix margin tightened when the timing model gained the
    # bank-group tRRD_L/tRRD_S split and tWR write recovery (both PARA
    # and HiRA pay the stricter gates; re-baselined at 1.011).
    assert to_para[(lo, "HiRA-4")] > 1.0
    # Slack does not hurt (quick-mode 2-mix noise allows a small wobble;
    # the paper's strict HiRA-0 < HiRA-2 < HiRA-4 ordering emerges over
    # the full 125-mix average).
    assert to_para[(lo, "HiRA-4")] >= to_para[(lo, "HiRA-0")] - 0.02
    # HiRA's improvement over PARA is larger at NRH=64 than at NRH=1024.
    assert to_para[(lo, "HiRA-4")] > to_para[(hi, "HiRA-4")] - 0.02
