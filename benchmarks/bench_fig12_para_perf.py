"""Figure 12: PARA's performance with and without HiRA vs NRH.

(a) Normalized to a baseline with no RowHammer defense: PARA's overhead
grows steeply as the RowHammer threshold falls (paper: 29% at NRH = 1024,
96% at NRH = 64).
(b) Normalized to PARA-without-HiRA: HiRA's improvement grows with
vulnerability and with tRefSlack (paper at NRH = 64: HiRA-0 +0.6%,
HiRA-2 2.75×, HiRA-4 3.73×, HiRA-8 4.23×).

A ``refresh_granularity`` axis additionally sweeps both parts under
DDR5-style same-bank refresh (REFsb): preventive (PARA) refreshes stay
row-granular in every mode, so HiRA's margin over PARA — which at low
NRH is dominated by preventive-refresh parallelization — must survive
the granularity switch.
"""

from repro.analysis.tables import format_table
from repro.orchestrator import Variant, axis

from benchmarks.conftest import emit, figure_sweep, scale, variants

NRH_SWEEP = scale((1024, 256, 64), (1024, 512, 256, 128, 64))
CONFIGS = (
    ("PARA", "baseline", {}),
    ("HiRA-0", "hira", {"tref_slack_acts": 0}),
    ("HiRA-2", "hira", {"tref_slack_acts": 2}),
    ("HiRA-4", "hira", {"tref_slack_acts": 4}),
    ("HiRA-8", "hira", {"tref_slack_acts": 8}),
)
VARIANTS = variants(CONFIGS)
GRANULARITIES = ("all_bank", "same_bank")


def build_fig12():
    ref = figure_sweep(
        "fig12-ref",
        axis("cfg", Variant.make("Baseline", refresh_mode="baseline")),
        axis("refresh_granularity", *GRANULARITIES),
    )
    # Part (a) normalizes each granularity's rows to the no-defense
    # baseline *at that granularity*, so the table isolates the defense
    # overhead from the granularity's own effect on the baseline.
    baseline = {
        gran: ref.mean_ws(cfg="Baseline", refresh_granularity=gran)
        for gran in GRANULARITIES
    }
    result = figure_sweep(
        "fig12",
        axis("para_nrh", *(float(nrh) for nrh in NRH_SWEEP)),
        axis("cfg", *VARIANTS),
        axis("refresh_granularity", *GRANULARITIES),
    )
    to_baseline = {}
    to_para = {}
    for gran in GRANULARITIES:
        for nrh in NRH_SWEEP:
            para_ws = result.mean_ws(
                para_nrh=float(nrh), cfg="PARA", refresh_granularity=gran
            )
            for label, __, __extra in CONFIGS:
                ws = result.mean_ws(
                    para_nrh=float(nrh), cfg=label, refresh_granularity=gran
                )
                to_baseline[(nrh, label, gran)] = ws / baseline[gran]
                to_para[(nrh, label, gran)] = ws / para_ws
    labels = [label for label, __, __ in CONFIGS]
    tables = []
    for gran in GRANULARITIES:
        rows_a = [
            [nrh] + [f"{to_baseline[(nrh, l, gran)]:.3f}" for l in labels]
            for nrh in NRH_SWEEP
        ]
        rows_b = [
            [nrh] + [f"{to_para[(nrh, l, gran)]:.3f}" for l in labels]
            for nrh in NRH_SWEEP
        ]
        tables.append(format_table(
            ["NRH"] + labels, rows_a,
            title=f"Fig. 12a ({gran}): weighted speedup normalized to "
                  "no-defense baseline",
        ))
        tables.append(format_table(
            ["NRH"] + labels, rows_b,
            title=f"Fig. 12b ({gran}): weighted speedup normalized to "
                  "PARA (no HiRA)",
        ))
    return tables, to_baseline, to_para


def test_fig12_para_perf(benchmark):
    tables, to_baseline, to_para = benchmark.pedantic(
        build_fig12, rounds=1, iterations=1
    )
    emit("fig12_para_perf", "\n\n".join(tables))

    hi, lo = NRH_SWEEP[0], NRH_SWEEP[-1]
    ab, sb = GRANULARITIES
    # PARA's overhead grows as NRH falls.
    assert to_baseline[(lo, "PARA", ab)] < to_baseline[(hi, "PARA", ab)]
    assert to_baseline[(lo, "PARA", ab)] < 0.8
    # HiRA with slack beats plain PARA at the lowest threshold.  The
    # quick-mode 2-mix margin tightened when the timing model gained the
    # bank-group tRRD_L/tRRD_S split and tWR write recovery (both PARA
    # and HiRA pay the stricter gates; re-baselined at 1.011).
    assert to_para[(lo, "HiRA-4", ab)] > 1.0
    # Slack does not hurt (quick-mode 2-mix noise allows a small wobble;
    # the paper's strict HiRA-0 < HiRA-2 < HiRA-4 ordering emerges over
    # the full 125-mix average).
    assert to_para[(lo, "HiRA-4", ab)] >= to_para[(lo, "HiRA-0", ab)] - 0.02
    # HiRA's improvement over PARA is larger at NRH=64 than at NRH=1024.
    assert to_para[(lo, "HiRA-4", ab)] > to_para[(hi, "HiRA-4", ab)] - 0.02
    # DDR5 REFsb granularity: at the lowest threshold the overhead is
    # dominated by preventive refreshes, which stay row-granular in every
    # mode — HiRA's margin over PARA must survive the granularity switch
    # (small 2-mix wobble allowed).
    assert to_para[(lo, "HiRA-4", sb)] > to_para[(lo, "HiRA-4", ab)] - 0.05
    assert to_para[(lo, "HiRA-4", sb)] > 0.98
