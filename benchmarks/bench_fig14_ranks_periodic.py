"""Figure 14: rank-count sweep with periodic refresh.

Paper: 1→2 ranks helps (rank-level parallelism), beyond 2 ranks the shared
command bus becomes the bottleneck and performance declines for baseline
and HiRA alike — yet HiRA keeps a significant edge (12.1% at 8 ranks,
32 Gbit).
"""

from repro.analysis.tables import format_table
from repro.orchestrator import axis

from benchmarks.conftest import emit, figure_sweep, scale, variants

RANKS = (1, 2, 4, 8)
CAPACITIES = scale((32.0,), (2.0, 8.0, 32.0))
CONFIGS = (
    ("Baseline", "baseline", {}),
    ("HiRA-2", "hira", {"tref_slack_acts": 2}),
    ("HiRA-4", "hira", {"tref_slack_acts": 4}),
)
VARIANTS = variants(CONFIGS)


def build_fig14():
    sweep = figure_sweep(
        "fig14",
        axis("capacity_gbit", *CAPACITIES),
        axis("ranks_per_channel", *RANKS),
        axis("cfg", *VARIANTS),
    )
    results = {}
    for capacity in CAPACITIES:
        ref = sweep.mean_ws(capacity_gbit=capacity, ranks_per_channel=1, cfg="Baseline")
        for ranks in RANKS:
            for label, __, __extra in CONFIGS:
                ws = sweep.mean_ws(
                    capacity_gbit=capacity, ranks_per_channel=ranks, cfg=label
                )
                results[(capacity, ranks, label)] = ws / ref
    labels = [label for label, __, __ in CONFIGS]
    rows = [
        [f"{c:.0f}Gb", r] + [f"{results[(c, r, l)]:.3f}" for l in labels]
        for c in CAPACITIES
        for r in RANKS
    ]
    table = format_table(
        ["Capacity", "Ranks"] + labels,
        rows,
        title="Fig. 14: normalized weighted speedup vs rank count "
        "(periodic refresh; normalized to Baseline @ 1 rank)",
    )
    return table, results


def test_fig14_ranks_periodic(benchmark):
    table, results = benchmark.pedantic(build_fig14, rounds=1, iterations=1)
    emit("fig14_ranks_periodic", table)
    capacity = CAPACITIES[-1]
    # Two ranks beat one (rank-level parallelism).
    assert results[(capacity, 2, "HiRA-2")] > results[(capacity, 1, "HiRA-2")]
    # HiRA keeps an edge over the baseline even at 8 ranks.
    assert results[(capacity, 8, "HiRA-2")] >= results[(capacity, 8, "Baseline")] * 0.995
