"""Figure 14: rank-count sweep with periodic refresh.

Paper: 1→2 ranks helps (rank-level parallelism), beyond 2 ranks the shared
command bus becomes the bottleneck and performance declines for baseline
and HiRA alike — yet HiRA keeps a significant edge (12.1% at 8 ranks,
32 Gbit).
"""

from repro.analysis.tables import format_table
from repro.sim.config import SystemConfig

from benchmarks.conftest import average_ws, emit, scale

RANKS = (1, 2, 4, 8)
CAPACITIES = scale((32.0,), (2.0, 8.0, 32.0))
CONFIGS = (
    ("Baseline", "baseline", {}),
    ("HiRA-2", "hira", {"tref_slack_acts": 2}),
    ("HiRA-4", "hira", {"tref_slack_acts": 4}),
)


def build_fig14():
    results = {}
    for capacity in CAPACITIES:
        ref = average_ws(
            SystemConfig(
                capacity_gbit=capacity, ranks_per_channel=1, refresh_mode="baseline"
            )
        )
        for ranks in RANKS:
            for label, mode, extra in CONFIGS:
                ws = average_ws(
                    SystemConfig(
                        capacity_gbit=capacity,
                        ranks_per_channel=ranks,
                        refresh_mode=mode,
                        **extra,
                    )
                )
                results[(capacity, ranks, label)] = ws / ref
    labels = [label for label, __, __ in CONFIGS]
    rows = [
        [f"{c:.0f}Gb", r] + [f"{results[(c, r, l)]:.3f}" for l in labels]
        for c in CAPACITIES
        for r in RANKS
    ]
    table = format_table(
        ["Capacity", "Ranks"] + labels,
        rows,
        title="Fig. 14: normalized weighted speedup vs rank count "
        "(periodic refresh; normalized to Baseline @ 1 rank)",
    )
    return table, results


def test_fig14_ranks_periodic(benchmark):
    table, results = benchmark.pedantic(build_fig14, rounds=1, iterations=1)
    emit("fig14_ranks_periodic", table)
    capacity = CAPACITIES[-1]
    # Two ranks beat one (rank-level parallelism).
    assert results[(capacity, 2, "HiRA-2")] > results[(capacity, 1, "HiRA-2")]
    # HiRA keeps an edge over the baseline even at 8 ranks.
    assert results[(capacity, 8, "HiRA-2")] >= results[(capacity, 8, "Baseline")] * 0.995
