"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and prints
the corresponding rows/series (also written to ``benchmarks/results/``).
Cycle-level benches are scaled down by default so the whole harness runs in
tens of minutes; set ``REPRO_FULL=1`` for paper-scale sweeps (more mixes,
longer instruction budgets, all configurations).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

from repro.orchestrator import Sweep, SweepResult, Variant, axis, mix_workloads, run_sweep
from repro.sim.config import SystemConfig
from repro.sim.system import SimResult, System
from repro.workloads.mixes import mix_for

FULL = os.environ.get("REPRO_FULL", "0") == "1"

RESULTS_DIR = Path(__file__).parent / "results"

#: Worker processes for orchestrated benches; None defers to the pool's
#: default (REPRO_WORKERS env override, else available cores capped at 8).
WORKERS = None

#: On-disk result store shared by all figure benches (REPRO_NO_CACHE=1
#: disables): re-running a figure with unchanged parameters replays cached
#: SimResults, and figures sharing grid cells (e.g. figs 12/13/15 baseline
#: points) compute each shared point exactly once across sweeps.
SWEEP_CACHE = (
    None if os.environ.get("REPRO_NO_CACHE", "0") == "1" else RESULTS_DIR / ".sweep-cache"
)

#: Execution backend for figure sweeps: unset → local process pool;
#: "serial" forces in-process; "socket" dispatches to `repro worker`
#: daemons (REPRO_SOCKET_HOST/PORT, REPRO_SPAWN_WORKERS configure it).
BACKEND = os.environ.get("REPRO_BACKEND") or None


def scale(quick, full):
    """Pick the quick or the paper-scale value of a knob."""
    return full if FULL else quick


#: Default sizing for cycle-level benches.
N_MIXES = scale(2, 15)
INSTR_BUDGET = scale(100_000, 400_000)
MAX_CYCLES = scale(10_000_000, 60_000_000)


def emit(name: str, text: str) -> None:
    """Print a result table (bypassing capture) and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}", file=sys.__stdout__, flush=True)


def run_config(
    config: SystemConfig,
    mix_id: int,
    instr_budget: int = None,
    max_cycles: int = None,
    seed_base: int = 100,
) -> SimResult:
    """One simulation run of a workload mix on a configuration."""
    mix = mix_for(mix_id, cores=config.cores)
    system = System(
        config, mix, seed=seed_base + mix_id, instr_budget=instr_budget or INSTR_BUDGET
    )
    return system.run(max_cycles=max_cycles or MAX_CYCLES)


def run_profiles(
    config: SystemConfig,
    profiles,
    seed: int,
    instr_budget: int = None,
    max_cycles: int = None,
) -> SimResult:
    """One run with an explicit profile list (for targeted ablations)."""
    system = System(
        config, profiles, seed=seed, instr_budget=instr_budget or INSTR_BUDGET
    )
    return system.run(max_cycles=max_cycles or MAX_CYCLES)


def average_ws_profiles(config: SystemConfig, profiles, n_seeds: int = None) -> float:
    """Average weighted speedup over seeds for a fixed profile mix."""
    n = n_seeds or N_MIXES
    total = 0.0
    for seed in range(n):
        total += run_profiles(config, profiles, seed=300 + seed).weighted_speedup
    return total / n


def streaming_mix(cores: int = 8):
    """A row-hit-friendly memory-bound mix: the bank-time-bound regime
    where HiRA's parallelization choices are clearly exposed (high-MPKI,
    high-locality streaming cores)."""
    from repro.sim.trace import TraceProfile

    return [
        TraceProfile("stream", mpki=20.0, row_locality=0.85, read_fraction=0.7)
    ] * cores


def average_ws(config: SystemConfig, n_mixes: int = None, **run_kwargs) -> float:
    """Average weighted speedup across workload mixes."""
    n = n_mixes or N_MIXES
    total = 0.0
    for mix_id in range(n):
        total += run_config(config, mix_id, **run_kwargs).weighted_speedup
    return total / n


def variants(configs) -> tuple[Variant, ...]:
    """Map (label, refresh_mode, extra-overrides) triples to sweep Variants."""
    return tuple(
        Variant.make(label, refresh_mode=mode, **extra) for label, mode, extra in configs
    )


def figure_sweep(name: str, *axes, n_mixes: int = None, base: SystemConfig = None,
                 instr_budget: int = None, max_cycles: int = None) -> SweepResult:
    """Run one figure's grid through the orchestrator (parallel + cached).

    Points are seeded exactly like the legacy hand-rolled loops
    (``seed = 100 + mix_id``), so orchestrated figures reproduce the same
    numbers the serial ``average_ws`` path produced.
    """
    sweep = Sweep(
        name=name,
        axes=tuple(axes),
        workloads=mix_workloads(n_mixes or N_MIXES),
        base=base or SystemConfig(),
        instr_budget=instr_budget or INSTR_BUDGET,
        max_cycles=max_cycles or MAX_CYCLES,
    )
    result = run_sweep(sweep, workers=WORKERS, cache=SWEEP_CACHE, backend=BACKEND)
    if SWEEP_CACHE is not None:
        # Incremental-regeneration telemetry: how much of the figure's grid
        # replayed from the shared store vs was dispatched to the backend.
        print(
            f"[sweep {name}] {result.reused} reused / {result.computed} "
            f"computed on the {result.backend} backend",
            file=sys.__stdout__, flush=True,
        )
    return result


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
