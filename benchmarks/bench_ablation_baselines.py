"""Ablation: HiRA vs the strongest scheduling-only baseline (§13).

The related work defers REF commands into idle time (elastic refresh
[161]); unlike HiRA it cannot *hide* refresh latency behind accesses, only
move it.  This bench quantifies the gap across capacities.
"""

from repro.analysis.tables import format_table
from repro.sim.config import SystemConfig

from benchmarks.conftest import average_ws, emit, scale

CAPACITIES = scale((8.0, 128.0), (2.0, 8.0, 32.0, 128.0))
MODES = (
    ("Baseline", "baseline", {}),
    ("Elastic", "elastic", {}),
    ("HiRA-4", "hira", {"tref_slack_acts": 4}),
)


def build_comparison():
    rows = []
    values = {}
    for capacity in CAPACITIES:
        ideal = average_ws(SystemConfig(capacity_gbit=capacity, refresh_mode="none"))
        for label, mode, extra in MODES:
            ws = average_ws(
                SystemConfig(capacity_gbit=capacity, refresh_mode=mode, **extra)
            )
            values[(capacity, label)] = ws / ideal
            rows.append([f"{capacity:.0f}Gb", label, f"{ws / ideal:.3f}"])
    table = format_table(
        ["Capacity", "Scheme", "WS vs No-Refresh"],
        rows,
        title="Ablation: refresh schemes vs the ideal No-Refresh system",
    )
    return table, values


def test_ablation_baselines(benchmark):
    table, values = benchmark.pedantic(build_comparison, rounds=1, iterations=1)
    emit("ablation_baselines", table)
    for capacity in CAPACITIES:
        # Elastic helps over plain REF (or at least doesn't hurt).
        assert values[(capacity, "Elastic")] >= values[(capacity, "Baseline")] - 0.02
