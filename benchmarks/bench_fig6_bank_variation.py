"""Figure 6: normalized RowHammer threshold across banks (A0, B0, C0).

Paper: normalized thresholds above 1.56× in every bank, per-bank averages
between 1.80× and 1.97×, overall 1.89×; and HiRA's pairable rows are
identical across all 16 banks (§4.4.1).
"""

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.experiments.bank_variation import (
    coverage_identical_across_banks,
    per_bank_normalized_nrh,
)
from repro.experiments.coverage import tested_row_sample as row_sample
from repro.experiments.modules import TESTED_MODULES, build_module_chip

from benchmarks.conftest import emit, scale

BANKS = scale([0, 3, 7, 11, 15], list(range(16)))
N_VICTIMS = scale(6, 24)


def build_fig6():
    rows_out = []
    bank_means = []
    for label in ("A0", "B0", "C0"):
        module = next(m for m in TESTED_MODULES if m.label == label)
        chip = build_module_chip(module)
        sample = row_sample(chip.geometry, chunk=2048, stride=64)
        victims = sample[:: max(1, len(sample) // N_VICTIMS)][:N_VICTIMS]
        by_bank = per_bank_normalized_nrh(chip, victims, banks=BANKS)
        for bank, results in by_bank.items():
            box = summarize([r.normalized for r in results])
            bank_means.append(box.mean)
            rows_out.append(
                [label, bank, f"{box.minimum:.2f}", f"{box.q1:.2f}",
                 f"{box.median:.2f}", f"{box.q3:.2f}", f"{box.maximum:.2f}",
                 f"{box.mean:.2f}"]
            )
    table = format_table(
        ["Module", "Bank", "min", "q1", "median", "q3", "max", "mean"],
        rows_out,
        title="Fig. 6: normalized RowHammer threshold per bank (with HiRA)",
    )
    return table, bank_means


def test_fig6_bank_variation(benchmark):
    table, bank_means = benchmark.pedantic(build_fig6, rounds=1, iterations=1)
    emit("fig6_bank_variation", table)
    overall = sum(bank_means) / len(bank_means)
    assert 1.7 < overall < 2.1  # paper: 1.89× across banks
    assert min(bank_means) > 1.5  # paper: > 1.56× everywhere
    assert max(bank_means) - min(bank_means) < 0.5


def test_fig6_pairs_identical_across_banks(benchmark):
    chip = build_module_chip(TESTED_MODULES[4])
    iso = chip.isolation
    geom = chip.geometry
    pairs = []
    for sa in range(0, geom.subarrays_per_bank, 9):
        partners = iso.partners(sa)
        if partners:
            pairs.append((geom.row_of(sa, 3), geom.row_of(partners[0], 4)))
        pairs.append((geom.row_of(sa, 3), geom.row_of((sa + 1) % geom.subarrays_per_bank, 4)))
    identical = benchmark.pedantic(
        coverage_identical_across_banks,
        args=(chip, pairs[: scale(4, 16)]),
        kwargs={"banks": BANKS},
        rounds=1,
        iterations=1,
    )
    assert identical
