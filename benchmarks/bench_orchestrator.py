"""Orchestrator benchmark: parallel sharding and warm-cache replay.

Runs a representative Fig. 9 capacity-sweep slice three ways — serial,
on a 4-worker pool, and replayed from a warm cache — and checks the
orchestrator's contract: identical results on every path, warm-cache
replay in under 10% of the cold time, and wall-clock speedup from
parallelism whenever the host actually has spare cores.
"""

from __future__ import annotations

import shutil
import time

from repro.analysis.tables import format_table
from repro.orchestrator import Sweep, Variant, axis, mix_workloads, result_to_dict, run_sweep
from repro.orchestrator.pool import available_cores

from benchmarks.conftest import RESULTS_DIR, emit, scale


#: Whether this process may actually run on >= 2 CPUs (sched_getaffinity,
#: not cpu_count: a cgroup-pinned container reports all host CPUs).
#: Wall-clock speedup assertions are only meaningful then — on a 1-CPU
#: runner multiprocessing works but cannot beat serial execution.
MULTICORE = available_cores() >= 2

N_WORKERS = 4
SWEEP = Sweep(
    name="orchestrator-bench",
    axes=(
        axis("capacity_gbit", *scale((8.0, 32.0), (2.0, 8.0, 32.0, 128.0))),
        axis(
            "cfg",
            Variant.make("Baseline", refresh_mode="baseline"),
            Variant.make("HiRA-2", refresh_mode="hira", tref_slack_acts=2),
        ),
    ),
    workloads=mix_workloads(scale(2, 4)),
    instr_budget=scale(50_000, 200_000),
)


def build_orchestrator_bench():
    cache_dir = RESULTS_DIR / ".orchestrator-bench-cache"
    shutil.rmtree(cache_dir, ignore_errors=True)

    t0 = time.perf_counter()
    serial = run_sweep(SWEEP, workers=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_sweep(SWEEP, workers=N_WORKERS, cache=cache_dir)
    t_parallel = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = run_sweep(SWEEP, workers=N_WORKERS, cache=cache_dir)
    t_warm = time.perf_counter() - t0

    shutil.rmtree(cache_dir, ignore_errors=True)
    return serial, parallel, warm, t_serial, t_parallel, t_warm


def test_orchestrator_speedup(benchmark):
    serial, parallel, warm, t_serial, t_parallel, t_warm = benchmark.pedantic(
        build_orchestrator_bench, rounds=1, iterations=1
    )
    cores = available_cores()
    table = format_table(
        ["path", "wall time (s)", "points", "executed", "cached"],
        [
            ["serial (1 worker)", f"{t_serial:.2f}", len(serial), len(serial), 0],
            [
                f"parallel ({N_WORKERS} workers)",
                f"{t_parallel:.2f}",
                len(parallel),
                parallel.cache_misses,
                parallel.cache_hits,
            ],
            ["warm cache", f"{t_warm:.2f}", len(warm), warm.cache_misses, warm.cache_hits],
        ],
        title=f"Orchestrator: {SWEEP.size}-point Fig. 9 slice on {cores} cores "
        f"(serial {t_serial:.2f}s → parallel {t_parallel:.2f}s → warm {t_warm:.2f}s)",
    )
    emit("orchestrator_speedup", table)

    # Contract 1: execution strategy never changes results (bit-identical).
    assert [result_to_dict(r) for r in serial.results] == [
        result_to_dict(r) for r in parallel.results
    ]
    assert [result_to_dict(r) for r in serial.results] == [
        result_to_dict(r) for r in warm.results
    ]
    # Contract 2: a warm cache replays the figure in <10% of the cold time.
    assert warm.cache_hits == len(warm)
    assert t_warm < 0.10 * t_parallel
    # Contract 3: sharding pays for itself — but only where the scheduler
    # can actually grant parallelism (gated on sched_getaffinity, not
    # cpu_count: a cgroup-pinned container reports all host CPUs).
    if MULTICORE:
        assert t_parallel < t_serial * 0.9
