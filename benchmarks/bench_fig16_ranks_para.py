"""Figure 16: rank-count sweep with PARA preventive refreshes.

Paper: 1→2 ranks helps; beyond 2 ranks the shared command bus erodes
HiRA's margin, but HiRA still improves over PARA substantially (30.5% for
HiRA-2 and 42.9% for HiRA-4 at 8 ranks, NRH = 64).
"""

from repro.analysis.tables import format_table
from repro.orchestrator import Variant, axis

from benchmarks.conftest import emit, figure_sweep, scale, variants

RANKS = (1, 2, 4, 8)
NRH_SWEEP = scale((1024, 64), (1024, 256, 64))
CONFIGS = (
    ("PARA", "baseline", {}),
    ("HiRA-2", "hira", {"tref_slack_acts": 2}),
    ("HiRA-4", "hira", {"tref_slack_acts": 4}),
)
VARIANTS = variants(CONFIGS)


def build_fig16():
    ref_sweep = figure_sweep(
        "fig16-ref", axis("cfg", Variant.make("Baseline", refresh_mode="baseline"))
    )
    ref = ref_sweep.mean_ws(cfg="Baseline")
    sweep = figure_sweep(
        "fig16",
        axis("para_nrh", *(float(nrh) for nrh in NRH_SWEEP)),
        axis("ranks_per_channel", *RANKS),
        axis("cfg", *VARIANTS),
    )
    results = {}
    for nrh in NRH_SWEEP:
        for ranks in RANKS:
            for label, __, __extra in CONFIGS:
                ws = sweep.mean_ws(
                    para_nrh=float(nrh), ranks_per_channel=ranks, cfg=label
                )
                results[(nrh, ranks, label)] = ws / ref
    labels = [label for label, __, __ in CONFIGS]
    rows = [
        [nrh, r] + [f"{results[(nrh, r, l)]:.3f}" for l in labels]
        for nrh in NRH_SWEEP
        for r in RANKS
    ]
    table = format_table(
        ["NRH", "Ranks"] + labels,
        rows,
        title="Fig. 16: normalized weighted speedup vs rank count (PARA; "
        "normalized to no-defense Baseline @ 1 rank)",
    )
    return table, results


def test_fig16_ranks_para(benchmark):
    table, results = benchmark.pedantic(build_fig16, rounds=1, iterations=1)
    emit("fig16_ranks_para", table)
    low_nrh = NRH_SWEEP[-1]
    # HiRA beats PARA at every rank count at the low threshold.
    for ranks in RANKS:
        assert results[(low_nrh, ranks, "HiRA-4")] >= results[
            (low_nrh, ranks, "PARA")
        ] * 0.99
