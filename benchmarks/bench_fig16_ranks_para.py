"""Figure 16: rank-count sweep with PARA preventive refreshes.

Paper: 1→2 ranks helps; beyond 2 ranks the shared command bus erodes
HiRA's margin, but HiRA still improves over PARA substantially (30.5% for
HiRA-2 and 42.9% for HiRA-4 at 8 ranks, NRH = 64).
"""

from repro.analysis.tables import format_table
from repro.sim.config import SystemConfig

from benchmarks.conftest import average_ws, emit, scale

RANKS = (1, 2, 4, 8)
NRH_SWEEP = scale((1024, 64), (1024, 256, 64))
CONFIGS = (
    ("PARA", "baseline", {}),
    ("HiRA-2", "hira", {"tref_slack_acts": 2}),
    ("HiRA-4", "hira", {"tref_slack_acts": 4}),
)


def build_fig16():
    ref = average_ws(
        SystemConfig(capacity_gbit=8.0, ranks_per_channel=1, refresh_mode="baseline")
    )
    results = {}
    for nrh in NRH_SWEEP:
        for ranks in RANKS:
            for label, mode, extra in CONFIGS:
                ws = average_ws(
                    SystemConfig(
                        capacity_gbit=8.0,
                        ranks_per_channel=ranks,
                        refresh_mode=mode,
                        para_nrh=float(nrh),
                        **extra,
                    )
                )
                results[(nrh, ranks, label)] = ws / ref
    labels = [label for label, __, __ in CONFIGS]
    rows = [
        [nrh, r] + [f"{results[(nrh, r, l)]:.3f}" for l in labels]
        for nrh in NRH_SWEEP
        for r in RANKS
    ]
    table = format_table(
        ["NRH", "Ranks"] + labels,
        rows,
        title="Fig. 16: normalized weighted speedup vs rank count (PARA; "
        "normalized to no-defense Baseline @ 1 rank)",
    )
    return table, results


def test_fig16_ranks_para(benchmark):
    table, results = benchmark.pedantic(build_fig16, rounds=1, iterations=1)
    emit("fig16_ranks_para", table)
    low_nrh = NRH_SWEEP[-1]
    # HiRA beats PARA at every rank count at the low threshold.
    for ranks in RANKS:
        assert results[(low_nrh, ranks, "HiRA-4")] >= results[
            (low_nrh, ranks, "PARA")
        ] * 0.99
