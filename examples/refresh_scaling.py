#!/usr/bin/env python3
"""Periodic-refresh scaling study (a miniature of Fig. 9).

Simulates an 8-core system over growing DRAM chip capacities and compares
three memory controllers: the ideal No-Refresh system, the conventional
rank-level REF baseline (tRFC scaled with density via Expression 1), and
HiRA-MC with tRefSlack = 2·tRC.

Run:  python examples/refresh_scaling.py
"""

from repro.analysis.tables import format_table
from repro.dram.timing import trfc_for_capacity_ns
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.mixes import mix_for

CAPACITIES = (8.0, 32.0, 128.0)
MIXES = 2
BUDGET = 100_000


def run(capacity: float, mode: str, **extra) -> float:
    total = 0.0
    for mix_id in range(MIXES):
        config = SystemConfig(capacity_gbit=capacity, refresh_mode=mode, **extra)
        system = System(config, mix_for(mix_id), seed=10 + mix_id, instr_budget=BUDGET)
        total += system.run(max_cycles=20_000_000).weighted_speedup
    return total / MIXES


def main() -> None:
    rows = []
    for capacity in CAPACITIES:
        ideal = run(capacity, "none")
        baseline = run(capacity, "baseline")
        hira = run(capacity, "hira", tref_slack_acts=2)
        rows.append(
            [
                f"{capacity:.0f} Gb",
                f"{trfc_for_capacity_ns(capacity):.0f} ns",
                f"{baseline / ideal:.3f}",
                f"{hira / ideal:.3f}",
                f"{hira / baseline:.3f}",
            ]
        )
    print(format_table(
        ["Chip capacity", "tRFC (Exp. 1)", "Baseline vs ideal",
         "HiRA-2 vs ideal", "HiRA-2 vs Baseline"],
        rows,
        title="Periodic refresh overhead vs DRAM density (mini Fig. 9)",
    ))
    print("\nThe baseline's REF blocking grows with density; HiRA-MC's "
          "per-row refreshes ride demand activations (refresh-access "
          "parallelization), recovering much of the loss.")


if __name__ == "__main__":
    main()
