#!/usr/bin/env python3
"""Quickstart: perform a HiRA operation on a simulated off-the-shelf chip.

Demonstrates the paper's core claim end to end:

1. Build a chip model of one of the tested SK Hynix DDR4 modules.
2. Initialize two rows in electrically isolated subarrays.
3. Issue HiRA's engineered ACT → (t1) → PRE → (t2) → ACT sequence.
4. Verify both rows are open, no data was corrupted, and the two-row
   refresh took 38 ns instead of the nominal 78.25 ns (−51.4%).

Run:  python examples/quickstart.py
"""

from repro.dram.timing import (
    hira_latency_reduction,
    hira_two_row_refresh_latency_ps,
    nominal_two_row_refresh_latency_ps,
)
from repro.experiments.modules import TESTED_MODULES, build_module_chip
from repro.softmc.host import SoftMCHost
from repro.softmc.patterns import DataPattern


def main() -> None:
    module = TESTED_MODULES[4]  # C0: SK Hynix HMAA4GU6AJR8N-XN
    chip = build_module_chip(module)
    host = SoftMCHost(chip)
    print(f"Chip under test: {chip.design.name}")
    print(f"  {chip.geometry.subarrays_per_bank} subarrays/bank, "
          f"{chip.geometry.rows_per_bank} rows/bank")

    # Pick two rows whose subarrays share no bitline or sense amplifier.
    bank = 0
    subarray_a = 2
    partners = chip.isolation.partners(subarray_a)
    if not partners:
        raise SystemExit("no isolated partner subarray found (unexpected)")
    row_a = chip.geometry.row_of(subarray_a, 100)
    row_b = chip.geometry.row_of(partners[0], 200)
    print(f"  RowA = {row_a} (subarray {subarray_a}), "
          f"RowB = {row_b} (subarray {partners[0]}; electrically isolated)")

    # Initialize with inverse checkerboard patterns (the hardest case).
    host.initialize(bank, row_a, DataPattern.CHECKERBOARD)
    host.initialize(bank, row_b, DataPattern.INV_CHECKERBOARD)

    # HiRA: ACT RowA, wait t1 = 3 ns, PRE, wait t2 = 3 ns, ACT RowB.
    host.hira(bank, row_a, row_b, close=False)
    print(f"\nAfter HiRA: {chip.open_row_count(bank)} rows concurrently open "
          f"in bank {bank} (RowA restoring while RowB activated)")

    open_row, data = chip.read_open_row(bank)
    print(f"Bank I/O serves RowB ({open_row}); first byte = 0x{data[0]:02X}")

    # One PRE closes both rows (paper footnote 1).
    tp = chip.timing
    host.run(host.program().pre(bank, wait_ps=tp.trp))
    host.advance(100_000)

    flips_a = host.compare_data(DataPattern.CHECKERBOARD, bank, row_a)
    flips_b = host.compare_data(DataPattern.INV_CHECKERBOARD, bank, row_b)
    print(f"\nBit flips after HiRA + readback: RowA={flips_a}, RowB={flips_b}")
    assert flips_a == 0 and flips_b == 0, "HiRA corrupted data (unexpected)"

    nominal = nominal_two_row_refresh_latency_ps() / 1_000
    hira = hira_two_row_refresh_latency_ps() / 1_000
    print(f"\nTwo-row refresh latency: {hira:.2f} ns with HiRA vs "
          f"{nominal:.2f} ns nominal "
          f"(-{100 * hira_latency_reduction():.1f}%)")
    print("OK: HiRA parallelized the two activations without data loss.")


if __name__ == "__main__":
    main()
