#!/usr/bin/env python3
"""A tour of HiRA-MC's internal components (Fig. 7).

Builds the controller structures directly — Refresh Table, RefPtr Table,
PR-FIFO, Subarray Pairs Table — and walks one refresh-access and one
refresh-refresh parallelization decision through the Concurrent Refresh
Finder, printing each step.  Ends with the §6 hardware-cost summary.

Run:  python examples/memory_controller_tour.py
"""

from repro.core.engine import HiraRefreshEngine
from repro.core.pr_fifo import PreventiveRequest, PrFifo
from repro.core.refresh_table import RefreshTable, RefreshTableEntry
from repro.core.refptr_table import RefPtrTable
from repro.core.hira_op import RefreshKind
from repro.dram.geometry import Address, Geometry
from repro.hwcost.report import (
    component_estimates,
    overall_area_mm2,
    worst_case_query_latency_ns,
)
from repro.sim.config import SystemConfig
from repro.sim.controller import MemoryController
from repro.sim.request import Request


def tour_tables() -> None:
    print("== Component tour ==")
    geom = Geometry()
    table = RefreshTable(capacity=68)
    table.insert(RefreshTableEntry(deadline=500, bank=3, kind=RefreshKind.PERIODIC))
    table.insert(RefreshTableEntry(deadline=200, bank=3, kind=RefreshKind.PREVENTIVE))
    print(f"Refresh Table: earliest entry for bank 3 -> "
          f"{table.earliest_for_bank(3).kind.name} @ deadline "
          f"{table.earliest_for_bank(3).deadline}")

    refptr = RefPtrTable(geom)
    first = refptr.advance(3, 10)
    second = refptr.advance(3, 10)
    print(f"RefPtr Table: subarray 10 of bank 3 refreshes rows {first}, "
          f"{second}, ... (pointer advances per refresh)")

    fifo = PrFifo(banks=geom.banks_per_rank, depth=4)
    fifo.push(3, PreventiveRequest(row=4242, deadline=900))
    print(f"PR-FIFO: bank 3 head -> victim row {fifo.head(3).row}, "
          f"deadline {fifo.head(3).deadline}")


def tour_decisions() -> None:
    print("\n== Concurrent Refresh Finder in action ==")
    config = SystemConfig(refresh_mode="hira", tref_slack_acts=8)
    engine = HiraRefreshEngine(tref_slack_acts=8)
    mc = MemoryController(0, config, engine)
    engine.para = None

    # Let one periodic refresh request accumulate for bank 0.
    horizon = int(config.per_bank_refresh_interval_cycles) + 5
    engine._advance_generation(horizon)
    print(f"PeriodicRC generated {mc.stats.periodic_generated} requests in "
          f"the first {horizon} cycles (one per bank, staggered)")

    # Case 1: a demand ACT arrives — ride the refresh on it.
    demand = Request(
        addr=Address(bank=0, row=1234, col=0), line=0, is_write=False,
        core_id=0, arrival_cycle=horizon,
    )
    refresh_row = engine.on_act(demand, horizon)
    sa_demand = engine.spt.subarray_of_row(1234)
    sa_refresh = engine.spt.subarray_of_row(refresh_row)
    print(f"Case 1 (refresh-access): demand ACT to row 1234 (subarray "
          f"{sa_demand}) carries a refresh of row {refresh_row} (subarray "
          f"{sa_refresh}); isolated = "
          f"{engine.spt.isolated(sa_demand, sa_refresh)}")
    mc.issue_hira_act(0, 0, refresh_row, 1234, horizon)
    print(f"  -> HiRA ACT issued; demand activation effectively delayed by "
          f"t1+t2 = {mc.hira_gap_c} cycles instead of a full "
          f"tRC = {mc.trc_c} cycles for a separate refresh")

    # Case 2: no demand arrives; two queued refreshes pair at the deadline.
    engine2 = HiraRefreshEngine(tref_slack_acts=0)
    mc2 = MemoryController(0, config, engine2)
    engine2.para = None
    engine2.para = None
    from repro.core.pr_fifo import PreventiveRequest as PR

    engine2._advance_generation(int(config.per_bank_refresh_interval_cycles) + 5)
    engine2.pr[0].push(0, PR(row=engine2.spt.geometry.row_of(40, 7), deadline=0))
    engine2._perform_due_refresh(0, 0, now=horizon)
    kind = ("refresh-refresh pair" if mc2.stats.hira_refresh_parallelized
            else "solo refresh")
    print(f"Case 2 (deadline): performed a {kind} "
          f"(pairs={mc2.stats.hira_refresh_parallelized}, "
          f"solos={mc2.stats.solo_refreshes})")


def tour_cost() -> None:
    print("\n== Hardware cost (Table 2) ==")
    for est in component_estimates():
        print(f"  {est.array.name:28s} {est.area_mm2:.5f} mm^2   "
              f"{est.access_latency_ns:.2f} ns")
    print(f"  Overall: {overall_area_mm2():.5f} mm^2 per rank; worst-case "
          f"query {worst_case_query_latency_ns():.2f} ns (< tRP = 14.5 ns)")


def main() -> None:
    tour_tables()
    tour_decisions()
    tour_cost()


if __name__ == "__main__":
    main()
