#!/usr/bin/env python3
"""RowHammer-preventive refresh with HiRA (a miniature of §9).

Shows the two halves of the paper's RowHammer story:

1. The *security analysis* (§9.1): configuring PARA's probability
   threshold with the revisited model (Expressions 2–9), including the
   extra aggressiveness HiRA-MC's tRefSlack queueing requires.
2. The *performance* effect (§9.2): PARA's preventive refreshes are
   expensive at low RowHammer thresholds; HiRA-MC parallelizes them with
   accesses and with each other.

Run:  python examples/rowhammer_defense.py
"""

from repro.analysis.tables import format_table
from repro.rowhammer.security import (
    k_factor,
    legacy_pth,
    n_ref_slack_for,
    rowhammer_success_probability,
    solve_pth,
)
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.mixes import mix_for

TRC_NS = 46.25


def security_table() -> None:
    rows = []
    for nrh in (1024, 256, 64):
        legacy = legacy_pth(nrh)
        revisited = solve_pth(nrh)
        with_slack = solve_pth(nrh, n_ref_slack_for(4 * TRC_NS))
        rows.append(
            [
                nrh,
                f"{legacy:.4f}",
                f"{rowhammer_success_probability(legacy, nrh) / 1e-15:.3f}",
                f"{revisited:.4f}",
                f"{with_slack:.4f}",
                f"{k_factor(legacy, nrh):.4f}",
            ]
        )
    print(format_table(
        ["NRH", "legacy pth", "pRH(legacy)/1e-15", "revisited pth",
         "pth @ slack 4tRC", "k (Exp. 9)"],
        rows,
        title="PARA configuration: legacy vs revisited (Fig. 11)",
    ))


def performance_point(nrh: float = 128.0) -> None:
    mix = mix_for(1)
    results = {}
    for label, mode, extra in (
        ("no defense", "baseline", {"para_nrh": None}),
        ("PARA", "baseline", {"para_nrh": nrh}),
        ("PARA + HiRA-4", "hira", {"para_nrh": nrh, "tref_slack_acts": 4}),
    ):
        config = SystemConfig(capacity_gbit=8.0, refresh_mode=mode, **extra)
        system = System(config, mix, seed=21, instr_budget=100_000)
        results[label] = system.run(max_cycles=20_000_000)
    base = results["no defense"].weighted_speedup
    print(f"\nPerformance at NRH = {nrh:.0f} (one workload mix):")
    for label, res in results.items():
        extras = ""
        if label != "no defense":
            extras = (f"  [preventive={res.stat_total('preventive_generated')}"
                      f", rides={res.stat_total('hira_access_parallelized')}"
                      f", pairs={res.stat_total('hira_refresh_parallelized')}]")
        print(f"  {label:15s}: normalized WS = "
              f"{res.weighted_speedup / base:.3f}{extras}")


def main() -> None:
    security_table()
    performance_point()
    print("\nHiRA-MC queues each preventive refresh with a deadline "
          "(tRefSlack) and rides it on a demand activation or pairs it "
          "with another refresh — recovering much of PARA's overhead "
          "without weakening the 1e-15 security target.")


if __name__ == "__main__":
    main()
