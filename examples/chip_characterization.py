#!/usr/bin/env python3
"""Characterize a DRAM module like §4 does (Tables 1/4 for one module).

Runs Algorithm 1 (HiRA coverage) and Algorithm 2 (second-row-activation
verification via RowHammer thresholds) on a simulated module, including the
internal-row-mapping reverse engineering step, and prints the module's
Table 4 row.  Also shows why the coverage result is only trustworthy on
designs that actually perform the second ACT, by repeating Algorithm 2 on a
Samsung-like design that silently ignores HiRA's violating PRE.

Run:  python examples/chip_characterization.py [module-label]
"""

import sys

from repro.analysis.stats import summarize
from repro.chip.vendor import VendorClass
from repro.experiments.coverage import coverage_distribution, tested_row_sample
from repro.experiments.modules import (
    TESTED_MODULES,
    build_module_chip,
    build_non_hira_chip,
)
from repro.experiments.second_act import characterize_normalized_nrh
from repro.rowhammer.mapping import find_aggressors
from repro.softmc.host import SoftMCHost


def main() -> None:
    label = sys.argv[1] if len(sys.argv) > 1 else "C0"
    module = next((m for m in TESTED_MODULES if m.label == label), None)
    if module is None:
        raise SystemExit(f"unknown module {label!r}; choose from "
                         f"{[m.label for m in TESTED_MODULES]}")
    chip = build_module_chip(module)
    host = SoftMCHost(chip)
    print(f"Module {module.label}: {module.module_vendor} "
          f"{module.chip_identifier} ({module.chip_capacity_gbit}Gb "
          f"{module.die_rev}-die {module.chip_org}, week {module.date_code})")

    # Step 0: reverse engineer the internal row mapping for one victim,
    # exactly as the real methodology does with single-sided hammering.
    victim = chip.geometry.row_of(2, 64)
    aggressors = find_aggressors(host, 0, victim, search_radius=8)
    print(f"\nReverse-engineered aggressors of logical row {victim}: "
          f"{aggressors} (ground truth: "
          f"{sorted(chip.design.aggressors_for_victim(victim))})")

    # Algorithm 1: HiRA coverage over a subsample of the tested rows.
    rows = tested_row_sample(chip.geometry, chunk=2048, stride=64)
    coverage = coverage_distribution(
        chip, 0, chip.timing.hira_t1, chip.timing.hira_t2,
        tested_rows=rows, rows_a=rows[::12],
    )
    print(f"\nAlgorithm 1 — HiRA coverage at t1 = t2 = 3 ns:")
    print(f"  min {100 * coverage.minimum:.1f}%  "
          f"avg {100 * coverage.average:.1f}%  "
          f"max {100 * coverage.maximum:.1f}%  "
          f"(Table 4 target avg: {100 * module.target_coverage:.1f}%)")

    # Algorithm 2: does the chip actually perform the second activation?
    victims = rows[:: max(1, len(rows) // 8)][:8]
    results = characterize_normalized_nrh(chip, 0, victims)
    ratios = summarize([r.normalized for r in results])
    without = summarize([float(r.threshold_without_hira) for r in results])
    print(f"\nAlgorithm 2 — RowHammer threshold with vs without HiRA:")
    print(f"  absolute threshold without HiRA: {without.mean / 1000:.1f}K "
          f"(paper: ~27.2K)")
    print(f"  normalized threshold: min {ratios.minimum:.2f} "
          f"mean {ratios.mean:.2f} max {ratios.maximum:.2f} (paper: ~1.9x)")

    # Contrast: a design that ignores the violating command sequence.
    samsung = build_non_hira_chip(VendorClass.SAMSUNG_LIKE)
    s_victims = [samsung.geometry.row_of(2, 64)]
    s_results = characterize_normalized_nrh(samsung, 0, s_victims)
    print(f"\nSamsung-like design (ignores HiRA's early PRE): normalized "
          f"threshold = {s_results[0].normalized:.2f} — the second ACT is "
          f"ignored, so the victim is never refreshed (§12).")


if __name__ == "__main__":
    main()
