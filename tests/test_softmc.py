"""SoftMC host, command programs, and data patterns."""

import numpy as np
import pytest

from repro.dram.commands import CommandKind
from repro.dram.errors import TimingViolation
from repro.softmc.patterns import ALL_PATTERNS, DataPattern
from repro.softmc.program import Program


class TestPatterns:
    def test_four_patterns(self):
        assert len(ALL_PATTERNS) == 4
        assert {p.byte for p in ALL_PATTERNS} == {0xFF, 0x00, 0xAA, 0x55}

    def test_inverses_are_involutions(self):
        for pattern in ALL_PATTERNS:
            assert pattern.inverse.inverse is pattern
            assert pattern.inverse.byte == (~pattern.byte) & 0xFF

    def test_fill(self):
        arr = DataPattern.CHECKERBOARD.fill(16)
        assert arr.dtype == np.uint8
        assert np.all(arr == 0xAA)

    def test_count_bitflips_zero_on_match(self):
        arr = DataPattern.ALL_ONES.fill(64)
        assert DataPattern.ALL_ONES.count_bitflips(arr) == 0

    def test_count_bitflips_counts_each_bit(self):
        arr = DataPattern.ALL_ZEROS.fill(8)
        arr[3] = 0b0000_0101
        assert DataPattern.ALL_ZEROS.count_bitflips(arr) == 2


class TestProgram:
    def test_waits_accumulate(self):
        prog = Program()
        prog.act(0, 1, wait_ps=3_000).pre(0, wait_ps=3_000).act(0, 2, wait_ps=32_000)
        times = [cmd.time_ps for cmd in prog]
        assert times == [0, 3_000, 6_000]
        assert prog.cursor_ps == 38_000

    def test_hira_builder_matches_manual(self):
        manual = Program().act(0, 1, 3_000).pre(0, 3_000).act(0, 2, 32_000)
        built = Program().hira(0, 1, 2, t1_ps=3_000, t2_ps=3_000, settle_ps=32_000)
        assert list(manual) == list(built)

    def test_negative_wait_rejected(self):
        with pytest.raises(ValueError):
            Program().act(0, 1, wait_ps=-1)

    def test_wait_instruction(self):
        prog = Program().wait(10_000)
        assert prog.cursor_ps == 10_000
        assert len(prog) == 0

    def test_wr_with_fill_meta(self):
        prog = Program().wr(0, 0, wait_ps=1_500, fill=0xAA)
        assert prog.commands[0].meta == {"fill": 0xAA}

    def test_start_offset(self):
        prog = Program(start_ps=5_000).act(0, 1, wait_ps=1_500)
        assert prog.commands[0].time_ps == 5_000


class TestHost:
    def test_slot_spacing_enforced(self, host):
        prog = host.program()
        prog.act(0, 1, wait_ps=500)  # below the 1.5 ns slot
        prog.pre(0, wait_ps=1_500)
        with pytest.raises(TimingViolation):
            host.run(prog)

    def test_time_advances_across_programs(self, host):
        t0 = host.time_ps
        host.initialize(0, 3, DataPattern.ALL_ONES)
        assert host.time_ps > t0

    def test_compare_data_detects_mismatch(self, host):
        host.initialize(0, 3, DataPattern.ALL_ONES)
        assert host.compare_data(DataPattern.ALL_ZEROS, 0, 3) == 8 * host.chip.geometry.row_bits // 8

    def test_activate_refresh_preserves_data(self, host):
        host.initialize(0, 9, DataPattern.CHECKERBOARD)
        host.activate_refresh(0, 9)
        assert host.compare_data(DataPattern.CHECKERBOARD, 0, 9) == 0

    def test_advance_rejects_negative(self, host):
        with pytest.raises(ValueError):
            host.advance(-5)
