"""Cross-module integration: the full pipelines the benchmarks rely on."""

import pytest

from repro.analysis.stats import summarize
from repro.experiments.coverage import coverage_distribution, tested_row_sample as row_sample
from repro.experiments.modules import TESTED_MODULES, build_module_chip
from repro.experiments.second_act import characterize_normalized_nrh
from repro.rowhammer.security import solve_pth
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.mixes import mix_for


class TestCharacterizationPipeline:
    """Tables 1/4 end to end on one module (subsampled)."""

    @pytest.fixture(scope="class")
    def module_chip(self):
        return build_module_chip(TESTED_MODULES[4])  # C0

    def test_coverage_near_module_target(self, module_chip):
        rows = row_sample(module_chip.geometry, chunk=2048, stride=128)
        dist = coverage_distribution(
            module_chip, 0, 3_000, 3_000, tested_rows=rows, rows_a=rows[::6]
        )
        assert dist.average == pytest.approx(
            TESTED_MODULES[4].target_coverage, abs=0.08
        )
        assert dist.minimum > 0.0  # no zero-coverage rows at t1 = 3 ns

    def test_normalized_nrh_near_1_9(self, module_chip):
        rows = row_sample(module_chip.geometry, chunk=2048, stride=512)[:12]
        results = characterize_normalized_nrh(module_chip, 0, rows)
        ratios = [r.normalized for r in results]
        box = summarize(ratios)
        assert 1.6 < box.mean < 2.2
        without = summarize([r.threshold_without_hira for r in results])
        assert 18_000 < without.mean < 40_000  # ~27.2K in the paper


class TestPerformancePipeline:
    """Figure 9/12 data points end to end (scaled down)."""

    def test_capacity_point_ordering(self):
        from repro.sim.trace import TraceProfile

        # A row-hit-friendly memory-bound mix at 128 Gbit: the regime where
        # Fig. 9's ordering (baseline < HiRA ≤ No-Refresh) is unambiguous.
        mix = [
            TraceProfile("stream", mpki=20.0, row_locality=0.85, read_fraction=0.7)
        ] * 8
        results = {}
        for mode, extra in (
            ("none", {}),
            ("baseline", {}),
            ("hira", {"tref_slack_acts": 2}),
        ):
            cfg = SystemConfig(capacity_gbit=128.0, refresh_mode=mode, **extra)
            # A long enough run that several tREFI windows elapse; short
            # runs under-charge the baseline (its first REF lands at tREFI
            # while HiRA refreshes from cycle zero).
            results[mode] = System(cfg, mix, seed=5, instr_budget=150_000).run(
                max_cycles=8_000_000
            )
        assert (
            results["baseline"].weighted_speedup
            < results["hira"].weighted_speedup
            <= results["none"].weighted_speedup * 1.02
        )

    def test_para_point_ordering(self):
        mix = mix_for(2)
        nrh = 128.0
        para_cfg = SystemConfig(capacity_gbit=8.0, refresh_mode="baseline", para_nrh=nrh)
        hira_cfg = SystemConfig(
            capacity_gbit=8.0, refresh_mode="hira", para_nrh=nrh, tref_slack_acts=4
        )
        para = System(para_cfg, mix, seed=6, instr_budget=40_000).run(max_cycles=8_000_000)
        hira = System(hira_cfg, mix, seed=6, instr_budget=40_000).run(max_cycles=8_000_000)
        assert hira.weighted_speedup > para.weighted_speedup

    def test_para_pth_respects_slack_configuration(self):
        cfg = SystemConfig(refresh_mode="hira", para_nrh=128.0, tref_slack_acts=8)
        system = System(cfg, mix_for(0), seed=1, instr_budget=1_000)
        engine = system.controllers[0].engine
        expected = solve_pth(128.0, 8.0)
        assert engine.para.pth == pytest.approx(expected, rel=1e-6)
