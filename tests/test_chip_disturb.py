"""RowHammer disturbance accumulation and restore semantics."""

import pytest

from repro.chip.disturb import DisturbState
from repro.chip.variation import DesignVariation, VariationModel


@pytest.fixture()
def state():
    return DisturbState(VariationModel(DesignVariation(), chip_seed=9))


def timing_of(state, bank=0, row=10):
    return state.variation.row_timing(bank, row)


class TestAccumulation:
    def test_hammer_adds_counts(self, state):
        state.hammer(0, [10, 12], count=100)
        assert state.disturbance(0, 10) == 100
        assert state.disturbance(0, 12) == 100
        assert state.disturbance(0, 11) == 0

    def test_peak_tracks_maximum(self, state):
        state.hammer(0, [10], count=50)
        state.on_restore(0, 10, timing_of(state), fraction=1.0)
        assert state.peak_disturbance(0, 10) <= 50
        state.hammer(0, [10], count=10)
        assert state.peak_disturbance(0, 10) >= state.disturbance(0, 10)

    def test_write_resets_everything(self, state):
        state.hammer(0, [10], count=99_999)
        state.on_write(0, 10)
        assert state.disturbance(0, 10) == 0
        assert state.peak_disturbance(0, 10) == 0


class TestFlips:
    def test_no_flips_below_threshold(self, state):
        t = timing_of(state)
        state.hammer(0, 10 * [10], count=1)  # tiny
        assert state.flips_on_sense(0, 10, t) == 0

    def test_flips_at_large_peak(self, state):
        t = timing_of(state)
        state.hammer(0, [10], count=int(t.nrh * 2))
        assert state.flips_on_sense(0, 10, t) >= 1

    def test_more_excess_more_flips(self, state):
        t = timing_of(state)
        state.hammer(0, [10], count=int(t.nrh * 1.2))
        few = state.flips_on_sense(0, 10, t)
        state.hammer(0, [10], count=int(t.nrh * 4))
        many = state.flips_on_sense(0, 10, t)
        assert many >= few

    def test_untouched_row_never_flips(self, state):
        assert state.flips_on_sense(0, 777, timing_of(state, row=777)) == 0


class TestRestore:
    def test_full_restore_reduces_disturbance(self, state):
        t = timing_of(state)
        state.hammer(0, [10], count=10_000)
        state.on_restore(0, 10, t, fraction=1.0)
        assert state.disturbance(0, 10) < 10_000

    def test_restore_of_clean_row_keeps_reference_state(self, state):
        t = timing_of(state)
        state.on_restore(0, 10, t, fraction=1.0)
        # Boost margin scales with erased disturbance: nothing to erase.
        assert state.disturbance(0, 10) == pytest.approx(0.0, abs=1e-9)

    def test_partial_restore_weaker_than_full(self, state):
        t = timing_of(state)
        state.hammer(0, [10], count=10_000)
        state.on_restore(0, 10, t, fraction=0.5)
        partial = state.disturbance(0, 10)
        state.on_write(0, 10)
        state.hammer(0, [10], count=10_000)
        state.on_restore(0, 10, t, fraction=1.0)
        full = state.disturbance(0, 10)
        assert full <= partial

    def test_restore_missing_row_is_noop(self, state):
        state.on_restore(0, 555, timing_of(state, row=555), fraction=1.0)
        assert state.disturbance(0, 555) == 0

    def test_restore_clamped_above_margin_floor(self, state):
        t = timing_of(state)
        for __ in range(20):
            state.on_restore(0, 10, t, fraction=1.0)
        assert state.disturbance(0, 10) >= -0.6 * t.nrh - 1e-9
