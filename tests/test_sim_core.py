"""Core model: window blocking, request flow, completion, IPC."""

import pytest

from repro.sim.core import CoreModel
from repro.sim.trace import TraceGenerator, TraceProfile


def make_core(mpki=20.0, budget=1_000, window=128, mshr=16, ipc=10.66):
    profile = TraceProfile("t", mpki=mpki, row_locality=0.5)
    return CoreModel(
        core_id=0,
        trace=TraceGenerator(profile, 128, seed=1),
        instr_budget=budget,
        instr_per_mc_cycle=ipc,
        instr_window=window,
        mshr=mshr,
    )


class TestIssueFlow:
    def test_first_request_available(self):
        core = make_core()
        ready = core.ready_cycle(0)
        assert ready is not None

    def test_take_without_pending_raises(self):
        core = make_core()
        core.ready_cycle(0)
        core.take_request(0)
        core._pending = None
        core._instr_issued = core.instr_budget  # force exhaustion
        with pytest.raises(RuntimeError):
            core.take_request(0)

    def test_reads_return_rob_entry_writes_dont(self):
        core = make_core(budget=100_000)
        seen_read = seen_write = False
        now = 0
        while not (seen_read and seen_write):
            ready = core.ready_cycle(now)
            assert ready is not None
            now = max(now, ready)
            __, is_write = core.peek_pending()
            entry = core.take_request(now)
            if is_write:
                assert entry is None
                seen_write = True
            else:
                assert entry is not None
                seen_read = True
                core.on_read_complete(entry, now + 40)
                now += 40

    def test_mshr_blocks_after_limit(self):
        core = make_core(budget=100_000, mshr=2, window=10_000)
        now = 0
        entries = []
        issued = 0
        while issued < 60:
            ready = core.ready_cycle(now)
            if ready is None:
                break  # blocked with unknown completion
            now = max(now, ready)
            __, is_write = core.peek_pending()
            entry = core.take_request(now)
            if entry is not None:
                entries.append(entry)
            issued += 1
        outstanding = [e for e in entries if e.complete_cycle is None]
        assert len(outstanding) <= 2

    def test_window_blocks_run_ahead(self):
        core = make_core(budget=100_000, mshr=64, window=32)
        now = 0
        entries = []
        for __ in range(200):
            ready = core.ready_cycle(now)
            if ready is None:
                break
            now = max(now, ready)
            entry = core.take_request(now)
            if entry is not None:
                entries.append(entry)
        open_entries = [e for e in entries if e.complete_cycle is None]
        if open_entries:
            span = core._instr_issued - open_entries[0].instr_index
            assert span <= 32 + 60  # window plus one gap of slack


class TestCompletionAndFinish:
    def test_finishes_after_budget(self):
        core = make_core(budget=500)
        now = 0
        while not core.done:
            ready = core.ready_cycle(now)
            if ready is None:
                if core.done:
                    break
                pending = [e for e in core._outstanding if e.complete_cycle is None]
                assert pending, "blocked with nothing outstanding"
                core.on_read_complete(pending[0], now + 10)
                now += 10
                continue
            now = max(now, ready)
            entry = core.take_request(now)
            if entry is not None:
                core.on_read_complete(entry, now + 30)
        assert core.done
        assert core.finish_cycle is not None and core.finish_cycle > 0
        assert core.instructions_retired == 500

    def test_ipc_positive_and_bounded(self):
        core = make_core(budget=500)
        now = 0
        while not core.done:
            ready = core.ready_cycle(now)
            if ready is None:
                pending = [e for e in core._outstanding if e.complete_cycle is None]
                if not pending:
                    break
                core.on_read_complete(pending[0], now + 10)
                now += 10
                continue
            now = max(now, ready)
            entry = core.take_request(now)
            if entry is not None:
                core.on_read_complete(entry, now + 30)
        ipc = core.ipc()
        assert 0 < ipc <= core.instr_per_cycle

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            make_core(budget=0)
