"""Functional LLC model: LRU, writebacks, hit statistics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cache import Cache, CacheConfig


@pytest.fixture()
def tiny():
    # 4 sets × 2 ways.
    return Cache(CacheConfig(size_bytes=8 * 64, ways=2, line_bytes=64))


class TestBasics:
    def test_cold_miss_fills(self, tiny):
        transactions = tiny.access(0, is_write=False)
        assert transactions == [(0, False)]
        assert tiny.misses == 1 and tiny.hits == 0

    def test_hit_after_fill(self, tiny):
        tiny.access(0, False)
        assert tiny.access(0, False) == []
        assert tiny.hits == 1

    def test_lru_eviction(self, tiny):
        tiny.access(0, False)   # set 0
        tiny.access(4, False)   # set 0 (4 % 4 == 0)
        tiny.access(8, False)   # evicts line 0
        assert not tiny.contains(0)
        assert tiny.contains(4) and tiny.contains(8)

    def test_hit_refreshes_lru(self, tiny):
        tiny.access(0, False)
        tiny.access(4, False)
        tiny.access(0, False)   # 0 becomes MRU
        tiny.access(8, False)   # evicts 4, not 0
        assert tiny.contains(0)
        assert not tiny.contains(4)

    def test_dirty_eviction_writes_back(self, tiny):
        tiny.access(0, True)
        tiny.access(4, False)
        transactions = tiny.access(8, False)
        assert (0, True) in transactions
        assert tiny.writebacks == 1

    def test_clean_eviction_silent(self, tiny):
        tiny.access(0, False)
        tiny.access(4, False)
        transactions = tiny.access(8, False)
        assert transactions == [(8, False)]

    def test_write_hit_marks_dirty(self, tiny):
        tiny.access(0, False)
        tiny.access(0, True)   # hit, now dirty
        tiny.access(4, False)
        transactions = tiny.access(8, False)
        assert (0, True) in transactions

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=64, ways=8, line_bytes=64).sets

    def test_hit_rate(self, tiny):
        tiny.access(0, False)
        tiny.access(0, False)
        assert tiny.hit_rate == pytest.approx(0.5)


@settings(max_examples=30)
@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), min_size=1, max_size=300))
def test_occupancy_never_exceeds_ways(accesses):
    cache = Cache(CacheConfig(size_bytes=16 * 64, ways=4, line_bytes=64))
    for line, is_write in accesses:
        cache.access(line, is_write)
    for cache_set in cache._sets:
        assert len(cache_set) <= cache.config.ways


@settings(max_examples=30)
@given(st.lists(st.tuples(st.integers(0, 31), st.booleans()), min_size=1, max_size=200))
def test_fill_count_equals_misses(accesses):
    cache = Cache(CacheConfig(size_bytes=8 * 64, ways=2, line_bytes=64))
    fills = 0
    for line, is_write in accesses:
        fills += sum(1 for __, w in cache.access(line, is_write) if not w)
    assert fills == cache.misses
