"""Timing parameters, the tRFC scaling model, and HiRA latency identities."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.dram.timing import (
    DDR4_2400,
    TimingParams,
    hira_latency_reduction,
    hira_two_row_refresh_latency_ps,
    nominal_two_row_refresh_latency_ps,
    ns,
    projected_rows_per_bank,
    refresh_rows_per_ref,
    rows_per_bank_for_capacity,
    timing_for_capacity,
    trfc_for_capacity_ns,
)


class TestPreset:
    def test_ddr4_2400_paper_values(self):
        assert DDR4_2400.tras == 32_000
        assert DDR4_2400.trp == 14_250
        assert DDR4_2400.trc == 46_250
        assert DDR4_2400.trefi == 7_800_000
        assert DDR4_2400.hira_t1 == 3_000
        assert DDR4_2400.hira_t2 == 3_000

    def test_trc_consistency_enforced(self):
        with pytest.raises(ValueError):
            TimingParams(trc=ns(40.0))  # < tRAS + tRP

    def test_positive_fields_enforced(self):
        with pytest.raises(ValueError):
            TimingParams(trcd=0)

    @pytest.mark.parametrize("name", ["tcl", "tbl", "hira_t1", "hira_t2"])
    def test_data_path_and_hira_fields_must_be_positive(self, name):
        # tbl=0 would silently make every data-bus reservation zero-length
        # (disabling tRTW/tWTR gating); zero CAS latency or HiRA phase
        # times are equally nonsensical.
        with pytest.raises(ValueError, match=name):
            TimingParams(**{name: 0})

    def test_to_cycles_rounds_up(self):
        tp = DDR4_2400
        assert tp.to_cycles(tp.tck) == 1
        assert tp.to_cycles(tp.tck + 1) == 2
        assert tp.to_cycles(tp.trc) == math.ceil(46_250 / 833)

    def test_with_trfc_and_with_hira_copies(self):
        tp = DDR4_2400.with_trfc(ns(500.0))
        assert tp.trfc == 500_000
        assert DDR4_2400.trfc == 350_000
        tp2 = DDR4_2400.with_hira(1_500, 4_500)
        assert (tp2.hira_t1, tp2.hira_t2) == (1_500, 4_500)


class TestLatencyIdentities:
    def test_nominal_two_row_refresh_is_78_25_ns(self):
        assert nominal_two_row_refresh_latency_ps() == ns(78.25)

    def test_hira_two_row_refresh_is_38_ns(self):
        assert hira_two_row_refresh_latency_ps() == ns(38.0)

    def test_latency_reduction_51_4_percent(self):
        assert hira_latency_reduction() == pytest.approx(0.514, abs=0.002)

    def test_access_after_refresh_is_6_ns(self):
        assert DDR4_2400.hira_op_ps == ns(6.0)


class TestTrfcScaling:
    def test_expression_1_examples(self):
        # tRFC = 110 × C^0.6
        assert trfc_for_capacity_ns(1.0) == pytest.approx(110.0)
        assert trfc_for_capacity_ns(8.0) == pytest.approx(110.0 * 8**0.6)
        assert trfc_for_capacity_ns(128.0) == pytest.approx(110.0 * 128**0.6)

    def test_monotonic_in_capacity(self):
        values = [trfc_for_capacity_ns(c) for c in (2, 4, 8, 16, 32, 64, 128)]
        assert values == sorted(values)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            trfc_for_capacity_ns(0.0)

    def test_timing_for_capacity_sets_trfc(self):
        tp = timing_for_capacity(32.0)
        assert tp.trfc == round(trfc_for_capacity_ns(32.0) * 1_000)
        assert tp.tras == DDR4_2400.tras


class TestRowScaling:
    def test_table3_anchor_64k_rows_at_8gbit(self):
        assert rows_per_bank_for_capacity(8.0) == 65_536
        assert projected_rows_per_bank(8.0) == 65_536

    def test_projection_is_sqrt(self):
        assert projected_rows_per_bank(32.0) == 131_072
        assert projected_rows_per_bank(128.0) == 262_144
        assert projected_rows_per_bank(2.0) == 32_768

    def test_projection_rounds_to_subarrays(self):
        assert projected_rows_per_bank(3.0) % 512 == 0

    def test_refresh_rows_per_ref_is_8_at_64k(self):
        # 64K rows, 8K REFs per 64 ms window → 8 rows per REF per bank.
        assert refresh_rows_per_ref(65_536, ns(64e6), ns(7_800.0)) == pytest.approx(
            8.0, rel=0.01
        )


@given(st.floats(min_value=0.5, max_value=512.0))
def test_trfc_scaling_power_law(capacity):
    doubled = trfc_for_capacity_ns(capacity * 2)
    single = trfc_for_capacity_ns(capacity)
    assert doubled / single == pytest.approx(2**0.6, rel=1e-9)


@given(st.floats(min_value=0.5, max_value=512.0))
def test_projected_rows_monotone(capacity):
    assert projected_rows_per_bank(capacity * 2) >= projected_rows_per_bank(capacity)
