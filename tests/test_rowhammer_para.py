"""The PARA mechanism object."""

import numpy as np
import pytest

from repro.rowhammer.para import Para
from repro.rowhammer.security import solve_pth


def make(pth, seed=1):
    return Para(pth=pth, rng=np.random.default_rng(seed))


class TestDraws:
    def test_pth_zero_never_fires(self):
        para = make(0.0)
        assert all(
            para.preventive_refresh_target(100, 1_000) is None for __ in range(200)
        )

    def test_pth_one_always_fires_adjacent(self):
        para = make(1.0)
        for __ in range(200):
            victim = para.preventive_refresh_target(100, 1_000)
            assert victim in (99, 101)

    def test_rate_matches_pth(self):
        para = make(0.3)
        fired = sum(
            para.preventive_refresh_target(50, 1_000) is not None
            for __ in range(20_000)
        )
        assert fired / 20_000 == pytest.approx(0.3, abs=0.02)

    def test_both_sides_chosen(self):
        para = make(1.0)
        sides = {para.preventive_refresh_target(100, 1_000) for __ in range(100)}
        assert sides == {99, 101}

    def test_edge_rows_clamped(self):
        para = make(1.0)
        for __ in range(50):
            assert para.preventive_refresh_target(0, 1_000) == 1
            assert para.preventive_refresh_target(999, 1_000) == 998

    def test_invalid_pth(self):
        with pytest.raises(ValueError):
            make(1.5)


class TestConfiguredFor:
    def test_uses_security_solver(self):
        para = Para.configured_for(nrh=128)
        assert para.pth == pytest.approx(solve_pth(128), abs=1e-9)

    def test_slack_increases_pth(self):
        base = Para.configured_for(nrh=128, tref_slack_ns=0.0)
        slack = Para.configured_for(nrh=128, tref_slack_ns=8 * 46.25)
        assert slack.pth > base.pth

    def test_lower_nrh_higher_pth(self):
        assert Para.configured_for(nrh=64).pth > Para.configured_for(nrh=1024).pth
