"""DRAM geometry, addresses, and capacity-derived geometries."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.errors import GeometryError
from repro.dram.geometry import Address, Geometry, geometry_for_capacity


class TestGeometry:
    def test_table3_defaults(self):
        geom = Geometry()
        assert geom.banks_per_rank == 16
        assert geom.rows_per_bank == 65_536
        assert geom.row_bits == 8_192  # 1 KiB chip rows

    def test_subarray_row_roundtrip(self):
        geom = Geometry()
        for row in (0, 511, 512, 65_535):
            sa = geom.subarray_of_row(row)
            offset = geom.row_within_subarray(row)
            assert geom.row_of(sa, offset) == row

    def test_row_bounds_checked(self):
        geom = Geometry()
        with pytest.raises(GeometryError):
            geom.subarray_of_row(geom.rows_per_bank)
        with pytest.raises(GeometryError):
            geom.row_of(geom.subarrays_per_bank, 0)

    def test_invalid_config_rejected(self):
        with pytest.raises(GeometryError):
            Geometry(channels=0)

    def test_bankgroup_of(self):
        geom = Geometry()
        assert geom.bankgroup_of(0) == 0
        assert geom.bankgroup_of(5) == 1
        assert geom.bankgroup_of(15) == 3

    def test_capacity_bits(self):
        geom = Geometry()  # 16 banks × 64K rows × 8192 bits = 8 Gbit
        assert geom.capacity_bits_per_chip == 8 * (1 << 30)


class TestAddress:
    def test_validate_accepts_in_range(self):
        geom = Geometry()
        Address(bank=15, row=65_535, col=127).validate(geom)

    def test_validate_rejects_out_of_range(self):
        geom = Geometry()
        with pytest.raises(GeometryError):
            Address(bank=16).validate(geom)
        with pytest.raises(GeometryError):
            Address(col=128).validate(geom)

    def test_bank_key(self):
        assert Address(channel=1, rank=2, bank=3).bank_key() == (1, 2, 3)


class TestGeometryForCapacity:
    def test_eight_gbit_matches_table3(self):
        geom = geometry_for_capacity(8.0)
        assert geom.rows_per_bank == 65_536
        assert geom.banks_per_rank == 16

    def test_sqrt_scaling(self):
        assert geometry_for_capacity(32.0).rows_per_bank == 131_072
        assert geometry_for_capacity(2.0).rows_per_bank == 32_768

    def test_channel_rank_overrides(self):
        geom = geometry_for_capacity(8.0, channels=4, ranks_per_channel=2)
        assert geom.channels == 4
        assert geom.ranks_per_channel == 2


@given(
    st.integers(min_value=0, max_value=65_535),
)
def test_subarray_decomposition_total(row):
    geom = Geometry()
    sa = geom.subarray_of_row(row)
    offset = geom.row_within_subarray(row)
    assert 0 <= sa < geom.subarrays_per_bank
    assert 0 <= offset < geom.rows_per_subarray
    assert sa * geom.rows_per_subarray + offset == row
