"""Regression tests for the bugs the first ``repro lint`` run surfaced.

The dirty-flag rule found four places where a refresh engine mutated
deadline-bearing scheduling state without invalidating the memoized
``next_event`` (the rank-drain block in the baseline and elastic engines,
HiRA's ``_refresh_active`` chokepoint, and the elastic same-bank
heap->deferred promotion); the protocol-dispatch rule found that the
worker entered its job loop on *any* non-reject registration reply.  Each
test here pins the fixed behavior so the lint rules are backed by
runtime evidence, not just static cleanliness.
"""

import socket

import pytest

from repro.core.engine import HiraRefreshEngine
from repro.orchestrator.backends.protocol import recv_msg, send_msg
from repro.orchestrator.backends.worker import WorkerRejected, run_session
from repro.sim.config import SystemConfig
from repro.sim.controller import BaselineRefreshEngine, MemoryController
from repro.sim.elastic import ElasticRefreshEngine


def make_mc(engine, **overrides):
    config = SystemConfig(**overrides)
    mc = MemoryController(0, config, engine)
    engine.para = None
    return mc


class TestDirtyFlagFixes:
    def test_baseline_rank_drain_block_marks_dirty(self):
        """Entering the REF drain (blocking a rank) must wake next_event."""
        mc = make_mc(BaselineRefreshEngine(), refresh_mode="baseline")
        mc.issue_act(0, 0, 5, 0)  # open a bank: PRE is tRAS-gated, so
        rank = mc.ranks[0]        # urgent() can only block, not issue
        rank.ref_due = 1
        mc._dirty = False
        issued = mc.engine.urgent(2)
        assert not issued  # nothing issuable yet (tRAS still elapsing)
        assert 0 in mc.blocked_ranks
        assert mc._dirty, "blocking a rank must invalidate the memo"

    def test_baseline_block_does_not_remark_when_already_blocked(self):
        mc = make_mc(BaselineRefreshEngine(), refresh_mode="baseline")
        mc.issue_act(0, 0, 5, 0)
        mc.ranks[0].ref_due = 1
        mc.engine.urgent(2)
        mc._dirty = False
        mc.engine.urgent(3)  # rank already blocked: no state change
        assert not mc._dirty

    def test_elastic_committed_rank_block_marks_dirty(self):
        mc = make_mc(ElasticRefreshEngine(), refresh_mode="elastic")
        mc.issue_act(0, 0, 5, 0)
        rank = mc.ranks[0]
        rank.ref_due = 1
        mc.engine._committed[0] = True  # already committed: only the
        mc._dirty = False               # blocked-rank add can mark
        issued = mc.engine.urgent(2)
        assert not issued
        assert 0 in mc.blocked_ranks
        assert mc._dirty

    def test_hira_refresh_active_marks_dirty(self):
        mc = make_mc(
            HiraRefreshEngine(), refresh_mode="hira", capacity_gbit=8.0
        )
        mc._dirty = False
        mc.engine._refresh_active(0, 0)
        assert mc._dirty, (
            "recomputing a bank's deadline-set membership feeds next_event "
            "and must invalidate the memo"
        )

    def test_elastic_sb_promote_move_marks_dirty(self):
        mc = make_mc(
            ElasticRefreshEngine(),
            refresh_mode="elastic",
            refresh_granularity="same_bank",
        )
        engine = mc.engine
        assert engine._sb_heap, "same-bank attach seeds the due heap"
        now = engine._sb_heap[0][0] + 1  # first entry is due
        mc._dirty = False
        engine._sb_promote(now)
        assert not engine._sb_heap or engine._sb_heap[0][0] > now
        assert mc._dirty, "heap->deferred moves must invalidate the memo"

    def test_elastic_sb_promote_noop_stays_clean(self):
        mc = make_mc(
            ElasticRefreshEngine(),
            refresh_mode="elastic",
            refresh_granularity="same_bank",
        )
        engine = mc.engine
        mc._dirty = False
        engine._sb_promote(0)  # nothing due at cycle 0
        assert not mc._dirty


class TestWorkerRegistrationReply:
    """run_session must not enter the job loop without a real welcome."""

    def _session(self, reply: dict):
        ours, theirs = socket.socketpair()
        try:
            send_msg(theirs, reply)
            result = run_session(ours, heartbeat_interval=60.0)
            hello = recv_msg(theirs)
            assert hello is not None and hello["type"] == "hello"
            return result
        finally:
            ours.close()
            theirs.close()

    def test_shutdown_as_first_reply_is_phantom_session(self):
        # A worker racing a closing server receives the broadcast shutdown
        # as its registration reply; that must read as "no session" (the
        # daemon reconnects), not as a rejection that kills it.
        assert self._session({"type": "shutdown"}) is None

    def test_garbage_reply_is_phantom_session(self):
        assert self._session({"type": "bogus", "x": 1}) is None

    def test_reject_still_raises(self):
        with pytest.raises(WorkerRejected, match="incompatible"):
            self._session({"type": "reject", "reason": "incompatible"})
