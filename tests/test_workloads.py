"""Workload profiles and multiprogrammed mixes."""

import pytest

from repro.workloads.mixes import INTENSIVE_MPKI, make_mixes, mix_for
from repro.workloads.spec import SPEC_PROFILES, profile_by_name


class TestProfiles:
    def test_all_profiles_valid(self):
        for profile in SPEC_PROFILES:
            assert profile.mpki > 0
            assert 0 <= profile.row_locality < 1
            assert profile.name.endswith("-like")

    def test_intensity_spectrum(self):
        mpkis = [p.mpki for p in SPEC_PROFILES]
        assert max(mpkis) > 25  # mcf-class
        assert min(mpkis) < 1  # compute-bound class

    def test_profile_by_name(self):
        assert profile_by_name("mcf-like").mpki == pytest.approx(33.0)
        with pytest.raises(KeyError):
            profile_by_name("nonexistent")


class TestMixes:
    def test_125_mixes_of_8(self):
        mixes = make_mixes()
        assert len(mixes) == 125
        assert all(len(mix) == 8 for mix in mixes)

    def test_deterministic(self):
        assert [p.name for p in mix_for(7)] == [p.name for p in mix_for(7)]

    def test_mixes_differ(self):
        names = {tuple(p.name for p in mix_for(i)) for i in range(20)}
        assert len(names) > 15

    def test_intensive_pool_filtered(self):
        for mix in make_mixes(count=10, intensive=True):
            assert all(p.mpki >= INTENSIVE_MPKI for p in mix)

    def test_full_pool_includes_light(self):
        mixes = make_mixes(count=40, intensive=False)
        assert any(p.mpki < INTENSIVE_MPKI for mix in mixes for p in mix)
