"""DDR4 command construction and validation."""

import pytest

from repro.dram.commands import Command, CommandKind


class TestCommandKind:
    def test_act_targets_row_and_bank(self):
        assert CommandKind.ACT.targets_row()
        assert CommandKind.ACT.targets_bank()

    def test_pre_carries_no_row(self):
        # Load-bearing for HiRA: PRE closes every wordline in the bank.
        assert not CommandKind.PRE.targets_row()
        assert CommandKind.PRE.targets_bank()

    def test_column_access_classification(self):
        assert CommandKind.RD.is_column_access()
        assert CommandKind.WR.is_column_access()
        assert not CommandKind.ACT.is_column_access()
        assert not CommandKind.REF.is_column_access()

    def test_ref_is_rank_level(self):
        assert not CommandKind.REF.targets_bank()


class TestCommand:
    def test_act_requires_row(self):
        with pytest.raises(ValueError):
            Command(kind=CommandKind.ACT, time_ps=0, bank=0)

    def test_rd_requires_col(self):
        with pytest.raises(ValueError):
            Command(kind=CommandKind.RD, time_ps=0, bank=0)

    def test_pre_requires_bank(self):
        with pytest.raises(ValueError):
            Command(kind=CommandKind.PRE, time_ps=0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Command(kind=CommandKind.REF, time_ps=-1)

    def test_valid_act(self):
        cmd = Command(kind=CommandKind.ACT, time_ps=1_500, bank=3, row=42)
        assert cmd.bank == 3 and cmd.row == 42

    def test_describe_renders_fields(self):
        cmd = Command(kind=CommandKind.ACT, time_ps=1_500, bank=3, row=42)
        text = cmd.describe()
        assert "@1500ps" in text and "ACT" in text and "b3" in text and "r42" in text

    def test_meta_not_part_of_equality(self):
        a = Command(kind=CommandKind.PRE, time_ps=5, bank=0, meta={"x": 1})
        b = Command(kind=CommandKind.PRE, time_ps=5, bank=0, meta={"y": 2})
        assert a == b
