"""Subarray isolation map: structure, symmetry, calibration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chip.isolation import IsolationMap


@pytest.fixture(scope="module")
def iso():
    return IsolationMap(subarrays=64, design_seed=11, target_coverage=0.32)


class TestStructure:
    def test_irreflexive(self, iso):
        assert all(not iso.isolated(sa, sa) for sa in range(64))

    def test_symmetric(self, iso):
        for a in range(64):
            for b in range(64):
                assert iso.isolated(a, b) == iso.isolated(b, a)

    def test_open_bitline_neighbours_never_isolated(self, iso):
        for sa in range(63):
            assert not iso.isolated(sa, sa + 1)

    def test_deterministic_rebuild(self):
        a = IsolationMap(subarrays=64, design_seed=11, target_coverage=0.32)
        b = IsolationMap(subarrays=64, design_seed=11, target_coverage=0.32)
        for sa in range(64):
            assert a.partners(sa) == b.partners(sa)

    def test_different_seeds_differ(self):
        a = IsolationMap(subarrays=64, design_seed=1, target_coverage=0.32)
        b = IsolationMap(subarrays=64, design_seed=2, target_coverage=0.32)
        assert any(a.partners(sa) != b.partners(sa) for sa in range(64))


class TestCalibration:
    @pytest.mark.parametrize("target", [0.25, 0.32, 0.38])
    def test_average_coverage_near_target(self, target):
        iso = IsolationMap(subarrays=64, design_seed=5, target_coverage=target)
        assert iso.average_coverage() == pytest.approx(target, abs=0.06)

    def test_rejects_invalid_target(self):
        with pytest.raises(ValueError):
            IsolationMap(subarrays=64, design_seed=1, target_coverage=0.0)

    def test_rejects_tiny_banks(self):
        with pytest.raises(ValueError):
            IsolationMap(subarrays=2, design_seed=1, target_coverage=0.3)

    def test_large_bank_subsampled_calibration(self):
        # 1024 subarrays triggers the capped calibration sample.
        iso = IsolationMap(subarrays=1024, design_seed=3, target_coverage=0.32)
        assert iso.average_coverage() == pytest.approx(0.32, abs=0.08)


class TestQueries:
    def test_partners_listed_are_isolated(self, iso):
        for sa in (0, 17, 63):
            for partner in iso.partners(sa):
                assert iso.isolated(sa, partner)

    def test_coverage_of_subarray(self, iso):
        candidates = list(range(64))
        value = iso.coverage_of_subarray(0, candidates)
        expected = len(iso.partners(0)) / 64
        assert value == pytest.approx(expected)

    def test_coverage_of_empty_candidates(self, iso):
        assert iso.coverage_of_subarray(0, []) == 0.0


@settings(max_examples=25)
@given(
    seed=st.integers(min_value=0, max_value=1_000),
    target=st.floats(min_value=0.15, max_value=0.5),
)
def test_map_always_symmetric_and_irreflexive(seed, target):
    iso = IsolationMap(subarrays=32, design_seed=seed, target_coverage=target)
    for a in range(32):
        assert not iso.isolated(a, a)
        for b in range(a + 1, 32):
            assert iso.isolated(a, b) == iso.isolated(b, a)
