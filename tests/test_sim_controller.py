"""Memory controller: DDR4 timing legality, FR-FCFS, refresh engines."""

import pytest

from repro.dram.geometry import Address
from repro.sim.config import SystemConfig
from repro.sim.controller import (
    BaselineRefreshEngine,
    MemoryController,
    NoRefreshEngine,
)
from repro.sim.request import Request


def make_mc(mode="none", **overrides):
    config = SystemConfig(refresh_mode="baseline" if mode == "baseline" else "none", **overrides)
    engine = BaselineRefreshEngine() if mode == "baseline" else NoRefreshEngine()
    mc = MemoryController(0, config, engine)
    engine.para = None
    return mc


def req(row=0, bank=0, col=0, is_write=False, cycle=0, core=0):
    return Request(
        addr=Address(channel=0, rank=0, bank=bank, row=row, col=col),
        line=0,
        is_write=is_write,
        core_id=core,
        arrival_cycle=cycle,
    )


def run_until(mc, limit):
    """Drive the controller cycle by cycle up to ``limit``."""
    trace = []
    for cycle in range(limit):
        before = (mc.stats.acts, mc.stats.pres, mc.stats.reads_served, mc.stats.refs)
        if mc.schedule(cycle):
            after = (mc.stats.acts, mc.stats.pres, mc.stats.reads_served, mc.stats.refs)
            trace.append((cycle, before, after))
    return trace


class TestTimingLegality:
    def test_read_waits_trcd_after_act(self):
        mc = make_mc()
        mc.enqueue(req(row=7))
        events = run_until(mc, 100)
        act_cycle = events[0][0]
        read_cycle = next(c for c, b, a in events if a[2] > b[2])
        assert read_cycle - act_cycle >= mc.trcd_c

    def test_act_act_same_bank_waits_trc(self):
        mc = make_mc()
        mc.enqueue(req(row=1))
        mc.enqueue(req(row=2))  # conflict: same bank, different row
        events = run_until(mc, 300)
        acts = [c for c, b, a in events if a[0] > b[0]]
        assert len(acts) == 2
        assert acts[1] - acts[0] >= mc.trc_c

    def test_pre_respects_tras(self):
        mc = make_mc()
        mc.enqueue(req(row=1))
        mc.enqueue(req(row=2))
        events = run_until(mc, 300)
        act0 = next(c for c, b, a in events if a[0] > b[0])
        pre0 = next(c for c, b, a in events if a[1] > b[1])
        assert pre0 - act0 >= mc.tras_c

    def test_faw_limits_burst_of_acts(self):
        mc = make_mc()
        for bank in range(8):
            mc.enqueue(req(row=1, bank=bank))
        events = run_until(mc, 200)
        acts = [c for c, b, a in events if a[0] > b[0]]
        for i in range(4, len(acts)):
            assert acts[i] - acts[i - 4] >= mc.tfaw_c

    def test_one_command_per_cycle(self):
        mc = make_mc()
        for bank in range(4):
            mc.enqueue(req(row=1, bank=bank))
        events = run_until(mc, 100)
        cycles = [c for c, __, __ in events]
        assert len(cycles) == len(set(cycles))


class TestFrFcfs:
    def test_row_hit_prioritized_over_older_miss(self):
        mc = make_mc()
        mc.enqueue(req(row=1, bank=0, col=0))
        run_until(mc, 40)  # opens row 1 and serves it
        # Now: older request to a different row vs younger row hit.
        mc.enqueue(req(row=9, bank=0, col=1, cycle=50))
        mc.enqueue(req(row=1, bank=0, col=2, cycle=51))
        events = run_until(mc, 400)
        reads = [c for c, b, a in events if a[2] > b[2]]
        # The row hit (row 1) is served before row 9's activation completes.
        assert mc.stats.reads_served == 3
        pres = [c for c, b, a in events if a[1] > b[1]]
        assert reads[0] < pres[0]

    def test_open_row_policy_keeps_row_open(self):
        mc = make_mc()
        mc.enqueue(req(row=3, col=0))
        run_until(mc, 60)
        assert mc.bank(0, 0).open_row == 3

    def test_write_drain_hysteresis(self):
        mc = make_mc()
        for i in range(50):
            mc.enqueue(req(row=i % 3, col=i, is_write=True))
        run_until(mc, 3_000)
        assert mc.stats.writes_served > 0

    def test_queue_capacity(self):
        mc = make_mc()
        accepted = sum(mc.enqueue(req(row=i, col=i)) for i in range(80))
        assert accepted == mc.config.read_queue_depth
        assert mc.stats.queue_full_rejections == 80 - accepted


class TestBaselineRefresh:
    def test_ref_issued_every_trefi(self):
        mc = make_mc(mode="baseline")
        limit = mc.trefi_c * 3 + 100
        for cycle in range(0, limit, 1):
            mc.schedule(cycle)
        assert mc.stats.refs == 3

    def test_rank_blocked_during_trfc(self):
        mc = make_mc(mode="baseline")
        for cycle in range(mc.trefi_c + 10):
            mc.schedule(cycle)
        assert mc.stats.refs == 1
        mc.enqueue(req(row=5))
        start = mc.trefi_c + 10
        events = []
        for cycle in range(start, start + mc.trfc_c + 200):
            if mc.schedule(cycle):
                events.append(cycle)
        first_act = events[0]
        assert first_act >= mc.trefi_c + mc.trfc_c

    def test_ref_advances_same_bank_refresh_gate(self):
        # The REF/REFsb interlock: a rank-wide REF occupies the rank's
        # refresh control, so the same-bank refresh gate must move past
        # the tRFC busy window — not just every bank's next_act.
        mc = make_mc(mode="baseline")
        rank = mc.ranks[0]
        mc.issue_ref(0, 1_000)
        assert rank.busy_until == 1_000 + mc.trfc_c
        assert rank.next_refsb >= 1_000 + mc.trfc_c

    def test_ref_precharges_open_banks_first(self):
        mc = make_mc(mode="baseline")
        mc.enqueue(req(row=5))
        for cycle in range(60):
            mc.schedule(cycle)
        assert mc.bank(0, 0).open_row == 5
        for cycle in range(60, mc.trefi_c + mc.trp_c + 120):
            mc.schedule(cycle)
        assert mc.stats.refs == 1
        assert mc.bank(0, 0).open_row is None


class TestHiraPrimitives:
    def test_hira_act_delays_activation_by_gap(self):
        mc = make_mc()
        mc.issue_hira_act(0, 0, refresh_row=100, target_row=5, now=10)
        bank = mc.bank(0, 0)
        assert bank.open_row == 5
        assert bank.next_rdwr == 10 + mc.hira_gap_c + mc.trcd_c
        assert mc.stats.hira_access_parallelized == 1

    def test_hira_refresh_pair_busy_time(self):
        mc = make_mc()
        mc.issue_hira_refresh_pair(0, 0, now=0)
        bank = mc.bank(0, 0)
        expected_close = mc.hira_gap_c + mc.tras_c
        assert bank.next_act == expected_close + mc.trp_c
        # 38 ns + tRP at paper defaults: strictly less than two solo passes.
        assert bank.next_act < 2 * (mc.tras_c + mc.trp_c)

    def test_solo_refresh_busy_time(self):
        mc = make_mc()
        mc.issue_solo_refresh(0, 0, now=0)
        assert mc.bank(0, 0).next_act == mc.tras_c + mc.trp_c
        assert mc.stats.solo_refreshes == 1
