"""Weighted speedup and companion metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.metrics import (
    alone_ipc_estimate,
    geomean,
    harmonic_speedup,
    weighted_speedup,
)


class TestWeightedSpeedup:
    def test_identity_when_shared_equals_alone(self):
        assert weighted_speedup([1.0, 2.0], [1.0, 2.0]) == pytest.approx(2.0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([], [])

    def test_nonpositive_alone_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [0.0])


class TestHarmonic:
    def test_equal_speedups(self):
        assert harmonic_speedup([0.5, 0.5], [1.0, 1.0]) == pytest.approx(0.5)

    def test_zero_shared_gives_zero(self):
        assert harmonic_speedup([0.0, 1.0], [1.0, 1.0]) == 0.0

    def test_harmonic_below_arithmetic(self):
        shared, alone = [0.2, 0.9], [1.0, 1.0]
        arithmetic = weighted_speedup(shared, alone) / 2
        assert harmonic_speedup(shared, alone) <= arithmetic + 1e-12


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])


class TestAloneEstimate:
    def test_memory_intensity_lowers_ipc(self):
        light = alone_ipc_estimate(1.0, 10.0)
        heavy = alone_ipc_estimate(30.0, 10.0)
        assert heavy < light

    def test_bounded_by_peak(self):
        assert alone_ipc_estimate(0.001, 10.0) <= 10.0

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            alone_ipc_estimate(10.0, 0.0)


@given(
    st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=8),
)
def test_ws_monotone_in_each_core(ipcs):
    alone = [10.0] * len(ipcs)
    base = weighted_speedup(ipcs, alone)
    boosted = list(ipcs)
    boosted[0] *= 2
    assert weighted_speedup(boosted, alone) > base
