"""Deterministic sim tracing (src/repro/obs/tracer.py).

The contract under test: arming a :class:`SimTracer` never changes the
simulation (disarmed runs are bit-identical), its export is byte-stable
across repeated runs *and* across execution backends (cycle-stamped,
never wall-clocked), the Chrome trace-event JSON validates, and the
never-dropped aggregate counters survive ring-buffer overflow.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.tracer import (
    DECISION_KINDS,
    STALL_REASONS,
    SimTracer,
    attach_tracers,
    trace_json,
    validate_chrome_trace,
)
from repro.orchestrator import result_to_dict
from repro.orchestrator.execute import TRACE_DIR_ENV
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.mixes import mix_for

BUDGET = 4_000


def _run(overrides: dict, *, trace: bool = True, seed: int = 5):
    config = SystemConfig(**overrides)
    system = System(
        config, mix_for(0, cores=config.cores), seed=seed, instr_budget=BUDGET
    )
    tracers = attach_tracers(system) if trace else []
    result = system.run()
    return system, tracers, result


MODES = [
    dict(refresh_mode="baseline"),
    dict(refresh_mode="elastic", refresh_granularity="same_bank"),
    dict(refresh_mode="hira", tref_slack_acts=2),
]


@pytest.mark.parametrize("overrides", MODES, ids=lambda o: o["refresh_mode"])
def test_armed_run_is_bit_identical_to_disarmed(overrides):
    __, __, armed = _run(overrides, trace=True)
    __, __, plain = _run(overrides, trace=False)
    assert json.dumps(result_to_dict(armed), sort_keys=True) == json.dumps(
        result_to_dict(plain), sort_keys=True
    )


@pytest.mark.parametrize("overrides", MODES, ids=lambda o: o["refresh_mode"])
def test_trace_export_is_byte_identical_across_runs(overrides):
    first = [trace_json(t.export()) for t in _run(overrides)[1]]
    second = [trace_json(t.export()) for t in _run(overrides)[1]]
    assert first == second
    assert all(first)


@pytest.mark.parametrize("overrides", MODES, ids=lambda o: o["refresh_mode"])
def test_chrome_trace_schema_validates(overrides):
    __, tracers, __ = _run(overrides)
    for tracer in tracers:
        payload = tracer.export()
        assert validate_chrome_trace(payload) == []
        # The canonical form is loadable JSON with the same content.
        assert json.loads(trace_json(payload)) == payload


def test_validator_catches_planted_problems():
    __, tracers, __ = _run(MODES[0])
    payload = tracers[0].export()
    good = json.loads(trace_json(payload))
    bad = json.loads(trace_json(payload))
    bad["traceEvents"][0]["ph"] = "X"
    assert validate_chrome_trace(good) == []
    assert validate_chrome_trace(bad)
    bad2 = json.loads(trace_json(payload))
    del bad2["traceEvents"]
    assert validate_chrome_trace(bad2)


def test_command_counts_match_controller_stats():
    __, tracers, result = _run(dict(refresh_mode="hira", tref_slack_acts=2))
    for tracer, stats in zip(tracers, result.controller_stats):
        n = tracer.command_counts
        assert (
            n["ACT"] + 2 * n["HIRA_ACT"] + 2 * n["HIRA_PAIR"] + n["SOLO_REF"]
            == stats.acts
        )
        assert n["RD"] == stats.reads_served
        assert n["WR"] == stats.writes_served
        assert n["REF"] == stats.refs


def test_stalls_and_decisions_use_known_vocabulary():
    __, tracers, __ = _run(dict(refresh_mode="hira", tref_slack_acts=2))
    stall_reasons = set()
    decisions = set()
    for tracer in tracers:
        stall_reasons |= set(tracer.stall_counts)
        decisions |= set(tracer.decision_counts)
    assert stall_reasons and stall_reasons <= set(STALL_REASONS)
    assert decisions and decisions <= set(DECISION_KINDS)
    # The HiRA engine's signature decisions must appear.
    assert "pair" in decisions or "pull-forward" in decisions


def test_ring_buffer_bounds_events_but_not_counters():
    config = SystemConfig(refresh_mode="baseline")
    system = System(config, mix_for(0), seed=5, instr_budget=BUDGET)
    small = [SimTracer(mc, capacity=64) for mc in system.controllers]
    system.run()
    for tracer in small:
        assert len(tracer._events) <= 64
        assert tracer.events_total > 64  # this workload overflows the ring
        assert tracer.dropped == tracer.events_total - len(tracer._events)
        # Aggregates are never dropped: the command counters still sum to
        # more events than the ring holds.
        assert sum(tracer.command_counts.values()) > 64
        payload = tracer.export()
        assert payload["otherData"]["dropped"] == tracer.dropped
        assert validate_chrome_trace(payload) == []


def test_summary_reports_histograms():
    __, tracers, __ = _run(dict(refresh_mode="baseline"))
    summary = tracers[0].summary()
    assert summary["commands"]
    assert summary["queue_depth"]
    assert summary["bank_acts"]
    assert all(":" in key for key in summary["bank_acts"])


# ----------------------------------------------------------------------
# Cross-backend determinism via REPRO_TRACE_DIR
# ----------------------------------------------------------------------
def _sweep():
    from repro.orchestrator import Sweep, Variant, axis, mix_workloads

    return Sweep(
        name="trace-x",
        axes=(axis("cfg", Variant.make("baseline", refresh_mode="baseline")),),
        workloads=mix_workloads(1),
        base=SystemConfig(),
        instr_budget=BUDGET,
    )


def _traced_sweep_files(backend, trace_dir, monkeypatch) -> dict[str, bytes]:
    from repro.orchestrator import run_sweep

    monkeypatch.setenv(TRACE_DIR_ENV, str(trace_dir))
    run_sweep(_sweep(), backend=backend, cache=None)
    files = {
        name: (trace_dir / name).read_bytes()
        for name in os.listdir(trace_dir)
        if name.endswith(".trace.json")
    }
    assert files, f"backend {backend!r} wrote no traces"
    return files


@pytest.mark.parametrize("other", ["local", "socket"])
def test_trace_files_identical_across_backends(other, tmp_path, monkeypatch):
    serial = _traced_sweep_files("serial", tmp_path / "serial", monkeypatch)
    if other == "local":
        got = _traced_sweep_files("local", tmp_path / "local", monkeypatch)
    else:
        from repro.orchestrator.backends import SocketBackend

        # Spawned workers inherit the environment at spawn time, so the
        # trace dir must be armed before the backend launches them.
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path / "socket"))
        backend = SocketBackend(port=0, spawn_workers=1)
        try:
            got = _traced_sweep_files(backend, tmp_path / "socket", monkeypatch)
        finally:
            backend.close()
    assert got == serial  # same filenames (content-keyed), same bytes


def test_execute_point_writes_no_traces_when_disarmed(tmp_path, monkeypatch):
    from repro.orchestrator import run_sweep

    monkeypatch.delenv(TRACE_DIR_ENV, raising=False)
    run_sweep(_sweep(), backend="serial", cache=None)
    assert not list(tmp_path.iterdir())
