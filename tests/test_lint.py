"""Unit suite for ``repro lint`` (src/repro/lint).

Each rule gets one *bad* fixture (a planted violation it must flag) and
one *good* fixture (idiomatic code it must pass) under
``tests/lint_fixtures/``, mirroring real repo paths so the file-anchored
rules (dirty-flag targets, protocol endpoints, timing surfaces) engage.
The suite also locks the suppression/baseline workflow, the JSON report
shape, and — most importantly — a no-false-positive run over the real
``src/repro`` tree.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.lint import CHECKERS, DEFAULT_ROOT, lint_tree
from repro.lint.core import LintUsageError, run_lint

FIXTURES = Path(__file__).parent / "lint_fixtures"

CASES = [
    ("dirty-flag", "dirty_flag_bad", "dirty_flag_good"),
    ("timing-coverage", "timing_bad", "timing_good"),
    ("determinism", "determinism_bad", "determinism_good"),
    ("slots", "slots_bad", "slots_good"),
    ("protocol-dispatch", "protocol_bad", "protocol_good"),
    ("stats-coverage", "stats_coverage_bad", "stats_coverage_good"),
]


def _run(root: Path, rules: list[str], baseline: Path | None = None):
    return run_lint(root, CHECKERS, rules=rules, baseline_path=baseline)


# ----------------------------------------------------------------------
# Per-rule bad/good fixtures
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule,bad,good", CASES, ids=[c[0] for c in CASES])
def test_rule_flags_bad_fixture(rule, bad, good):
    result = _run(FIXTURES / bad, [rule])
    assert not result.clean, f"{rule} missed its planted violation"
    assert {f.rule for f in result.findings} == {rule}
    for finding in result.findings:
        assert finding.path and finding.line >= 1
        assert finding.message


@pytest.mark.parametrize("rule,bad,good", CASES, ids=[c[0] for c in CASES])
def test_rule_passes_good_fixture(rule, bad, good):
    result = _run(FIXTURES / good, [rule])
    assert result.clean, [f.render() for f in result.findings]


def test_dirty_flag_finding_details():
    result = _run(FIXTURES / "dirty_flag_bad", ["dirty-flag"])
    (finding,) = result.findings
    assert finding.symbol == "MemoryController.issue_col"
    assert "bus_next" in finding.message


def test_timing_coverage_flags_all_three_surfaces():
    result = _run(FIXTURES / "timing_bad", ["timing-coverage"])
    messages = [f.message for f in result.findings]
    assert len(messages) == 3  # gating + auditor + oracle, tfoo only
    assert all(f.symbol == "tfoo" for f in result.findings)
    assert any("controller gating" in m for m in messages)
    assert any("auditor check" in m for m in messages)
    assert any("oracle rule generation" in m for m in messages)


def test_stats_coverage_flags_both_directions():
    result = _run(FIXTURES / "stats_coverage_bad", ["stats-coverage"])
    symbols = {f.symbol for f in result.findings}
    # Missing export is anchored to the dataclass, stale entry to the table.
    assert symbols == {"ControllerStats.acts", "CONTROLLER_METRICS['row_hits']"}
    by_symbol = {f.symbol: f for f in result.findings}
    assert by_symbol["ControllerStats.acts"].path == "sim/controller.py"
    assert by_symbol["CONTROLLER_METRICS['row_hits']"].path == "obs/metrics.py"


def test_protocol_dispatch_names_missing_arm():
    result = _run(FIXTURES / "protocol_bad", ["protocol-dispatch"])
    (finding,) = result.findings
    assert finding.symbol == "job"
    assert finding.path == "orchestrator/backends/worker.py"


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule,bad,good", CASES, ids=[c[0] for c in CASES])
def test_inline_suppression_silences_each_rule(rule, bad, good, tmp_path):
    root = tmp_path / bad
    shutil.copytree(FIXTURES / bad, root)
    before = _run(root, [rule])
    assert before.findings
    by_file: dict[str, set[int]] = {}
    for finding in before.findings:
        by_file.setdefault(finding.path, set()).add(finding.line)
    for rel, lines in by_file.items():
        path = root / rel
        text = path.read_text(encoding="utf-8").splitlines()
        for line in lines:
            text[line - 1] += "  # repro-lint: disable=all"
        path.write_text("\n".join(text) + "\n", encoding="utf-8")
    after = _run(root, [rule])
    assert after.clean, [f.render() for f in after.findings]
    assert after.suppressed == len(before.findings)


def test_suppression_is_rule_specific(tmp_path):
    root = tmp_path / "tree"
    shutil.copytree(FIXTURES / "dirty_flag_bad", root)
    path = root / "sim" / "controller.py"
    result = _run(root, ["dirty-flag"])
    line = result.findings[0].line
    text = path.read_text(encoding="utf-8").splitlines()
    text[line - 1] += "  # repro-lint: disable=timing-coverage"
    path.write_text("\n".join(text) + "\n", encoding="utf-8")
    # Disabling a *different* rule must not silence the finding.
    assert not _run(root, ["dirty-flag"]).clean


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def _baseline_file(tmp_path: Path, entries: list[dict]) -> Path:
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 1, "entries": entries}))
    return path


def test_baseline_grandfathers_matching_findings(tmp_path):
    findings = _run(FIXTURES / "protocol_bad", ["protocol-dispatch"]).findings
    baseline = _baseline_file(
        tmp_path,
        [
            {
                "rule": f.rule,
                "path": f.path,
                "symbol": f.symbol,
                "reason": "fixture: grandfathered for the baseline test",
            }
            for f in findings
        ],
    )
    result = _run(FIXTURES / "protocol_bad", ["protocol-dispatch"], baseline)
    assert result.clean
    assert result.baselined == len(findings)


def test_stale_baseline_entry_is_a_finding(tmp_path):
    baseline = _baseline_file(
        tmp_path,
        [
            {
                "rule": "dirty-flag",
                "path": "sim/controller.py",
                "symbol": "Ghost.method",
                "reason": "matches nothing",
            }
        ],
    )
    result = _run(FIXTURES / "dirty_flag_good", ["dirty-flag"], baseline)
    assert not result.clean
    assert result.findings[0].rule == "stale-baseline"


def test_baseline_entry_without_reason_is_usage_error(tmp_path):
    baseline = _baseline_file(
        tmp_path,
        [{"rule": "dirty-flag", "path": "sim/controller.py", "symbol": "X.y"}],
    )
    with pytest.raises(LintUsageError, match="justification"):
        _run(FIXTURES / "dirty_flag_good", ["dirty-flag"], baseline)


def test_committed_baseline_is_empty():
    # The repo policy: fix findings, don't accumulate grandfathered debt.
    data = json.loads(
        (DEFAULT_ROOT / "lint" / "baseline.json").read_text(encoding="utf-8")
    )
    assert data["entries"] == []


# ----------------------------------------------------------------------
# Engine behavior
# ----------------------------------------------------------------------
def test_unknown_rule_is_usage_error():
    with pytest.raises(LintUsageError, match="unknown rule"):
        _run(FIXTURES / "dirty_flag_good", ["no-such-rule"])


def test_missing_root_is_usage_error(tmp_path):
    with pytest.raises(LintUsageError):
        _run(tmp_path / "nope", ["dirty-flag"])


def test_syntax_error_in_tree_is_usage_error(tmp_path):
    root = tmp_path / "tree"
    (root / "sim").mkdir(parents=True)
    (root / "sim" / "broken.py").write_text("def oops(:\n")
    with pytest.raises(LintUsageError):
        _run(root, ["dirty-flag"])


def test_json_report_shape():
    result = _run(FIXTURES / "determinism_bad", ["determinism"])
    payload = result.to_json()
    assert payload["version"] == 1
    assert payload["rules"] == ["determinism"]
    assert payload["clean"] is False
    assert isinstance(payload["files"], int)
    assert isinstance(payload["suppressed"], int)
    assert isinstance(payload["baselined"], int)
    for row in payload["findings"]:
        assert set(row) == {"rule", "path", "line", "symbol", "message"}


def test_findings_sorted_by_location():
    result = _run(FIXTURES / "determinism_bad", ["determinism"])
    keys = [(f.path, f.line, f.rule, f.symbol) for f in result.findings]
    assert keys == sorted(keys)


# ----------------------------------------------------------------------
# The real tree
# ----------------------------------------------------------------------
def test_real_tree_is_clean():
    """No false positives on src/repro — the same gate CI runs."""
    result = lint_tree()
    assert result.clean, [f.render() for f in result.findings]


def test_registry_names_match_modules():
    for name, module in CHECKERS.items():
        assert module.NAME == name
        assert module.DESCRIPTION
        assert callable(module.check)
