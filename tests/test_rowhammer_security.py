"""The revisited PARA security analysis (Expressions 2–9, §9.1)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.rowhammer.security import (
    DEFAULT_TARGET,
    k_factor,
    legacy_pth,
    legacy_success_probability,
    log_rowhammer_success_probability,
    max_failed_attempts,
    n_ref_slack_for,
    rowhammer_success_probability,
    solve_pth,
)


class TestLegacy:
    def test_legacy_pth_at_nrh_64_is_0_8341(self):
        # §9.1.3 quotes 0.8341 for NRH = 64.
        assert legacy_pth(64) == pytest.approx(0.8341, abs=1e-3)

    def test_legacy_pth_at_nrh_128_is_0_4730(self):
        assert legacy_pth(128) == pytest.approx(0.4730, abs=1e-3)

    def test_legacy_probability_identity(self):
        pth = legacy_pth(256)
        assert legacy_success_probability(pth, 256) == pytest.approx(
            DEFAULT_TARGET, rel=1e-6
        )


class TestKFactor:
    """Expression 9's published k values."""

    def test_k_at_nrh_1024(self):
        assert k_factor(legacy_pth(1024), 1024) == pytest.approx(1.0331, abs=2e-3)

    def test_k_at_nrh_64(self):
        assert k_factor(legacy_pth(64), 64) == pytest.approx(1.3212, abs=2e-3)

    def test_k_grows_as_vulnerability_worsens(self):
        ks = [k_factor(legacy_pth(n), n) for n in (1024, 512, 256, 128, 64)]
        assert ks == sorted(ks)

    def test_old_chips_negligible_k(self):
        # §9.1.3: NRH = 50K, pth = 0.001 → k ≈ 1.0005.
        assert k_factor(0.001, 50_000) == pytest.approx(1.0005, abs=2e-4)


class TestSolver:
    def test_pth_examples_from_fig_11a(self):
        # "pth increases from 0.068 to 0.860 when NRH reduces 1024 → 64".
        assert solve_pth(1024) == pytest.approx(0.068, abs=0.004)
        assert solve_pth(64) == pytest.approx(0.86, abs=0.03)

    def test_pth_grows_with_slack(self):
        for nrh in (64, 128, 512):
            values = [
                solve_pth(nrh, n_ref_slack_for(s * 46.25)) for s in (0, 2, 4, 8)
            ]
            assert values == sorted(values)
            assert values[0] < values[-1]

    def test_nrh_128_slack_range_matches_paper(self):
        # §9.1.3: pth ≈ 0.48 / 0.49 / 0.50 / 0.52 for slack 0/2/4/8 · tRC.
        values = [solve_pth(128, n_ref_slack_for(s * 46.25)) for s in (0, 2, 4, 8)]
        assert values[0] == pytest.approx(0.48, abs=0.02)
        assert values[-1] == pytest.approx(0.52, abs=0.03)

    def test_solution_meets_target(self):
        for nrh in (64, 100, 256, 1024, 4096):
            pth = solve_pth(nrh)
            assert rowhammer_success_probability(pth, nrh) <= DEFAULT_TARGET * 1.001

    def test_solver_raises_when_unreachable(self):
        with pytest.raises(ValueError):
            solve_pth(2, target=1e-30)


class TestExpressionStructure:
    def test_nf_max_formula(self):
        # Expression 7 with defaults: (tREFW/tRC − NRH − NRefSlack)/2.
        expected = int((64e6 / 46.25 - 1024) / 2)
        assert max_failed_attempts(1024) == expected

    def test_nf_max_with_slack_smaller(self):
        assert max_failed_attempts(1024, n_ref_slack_for(8 * 46.25)) < max_failed_attempts(1024)

    def test_probability_decreasing_in_pth(self):
        probs = [rowhammer_success_probability(p, 128) for p in (0.1, 0.3, 0.5, 0.9)]
        assert probs == sorted(probs, reverse=True)

    def test_slack_increases_success_probability(self):
        base = log_rowhammer_success_probability(0.5, 128, 0)
        slack = log_rowhammer_success_probability(0.5, 128, 8)
        assert slack > base

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            rowhammer_success_probability(0.0, 128)
        with pytest.raises(ValueError):
            rowhammer_success_probability(0.5, -1)
        with pytest.raises(ValueError):
            n_ref_slack_for(-1.0)


@settings(max_examples=40)
@given(
    # Below NRH ≈ 51 even pth = 1 cannot reach 1e-15 (each side refreshed
    # with at most pth/2 = 0.5 per activation); the paper sweeps NRH ≥ 64.
    nrh=st.integers(min_value=64, max_value=100_000),
    slack_acts=st.integers(min_value=0, max_value=8),
)
def test_solver_always_meets_target(nrh, slack_acts):
    pth = solve_pth(nrh, float(slack_acts))
    log_p = log_rowhammer_success_probability(pth, nrh, float(slack_acts))
    assert log_p <= math.log(DEFAULT_TARGET) + 1e-6


@settings(max_examples=40)
@given(
    pth=st.floats(min_value=1e-4, max_value=0.999),
    nrh=st.integers(min_value=32, max_value=10_000),
)
def test_revisited_probability_at_least_legacy(pth, nrh):
    """k ≥ 1: the legacy model always underestimates the attack (Exp. 9)."""
    assert k_factor(pth, nrh) >= 1.0 - 1e-9
