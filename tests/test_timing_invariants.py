"""Property-style audits: no engine may break DRAM timing invariants.

Each test builds a system with a :class:`CommandAuditor` on every channel,
drives it with randomized traces, and asserts the recorded command stream
holds tRC / tRRD_L / tRRD_S / tFAW / tRP / tRAS / tWR / tRFC and the
refresh-deadline rules.  This is the guard rail for the paper's
Case-1/Case-2 parallelization: HiRA may only violate tRC *inside* its own
engineered ACT-PRE-ACT sequence, never anywhere else.
"""

from __future__ import annotations

import pytest

from repro.sim.audit import CommandAuditor, attach_auditors
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.sim.trace import TraceProfile
from repro.workloads.mixes import mix_for


def random_mix(seed: int, cores: int = 8) -> list[TraceProfile]:
    """A randomized (but seeded) trace mix spanning intensity regimes."""
    import numpy as np

    rng = np.random.default_rng(seed)
    return [
        TraceProfile(
            name=f"r{seed}-{i}",
            mpki=float(rng.uniform(2.0, 40.0)),
            row_locality=float(rng.uniform(0.3, 0.95)),
            read_fraction=float(rng.uniform(0.5, 0.9)),
            working_set_rows=int(rng.integers(256, 8192)),
        )
        for i in range(cores)
    ]


def run_audited(config: SystemConfig, mix, seed: int, instr: int = 12_000):
    system = System(config, mix, seed=seed, instr_budget=instr)
    auditors = attach_auditors(system)
    result = system.run(max_cycles=3_000_000)
    assert result.finished
    return result, auditors


def assert_clean(auditors) -> None:
    problems = [p for a in auditors for p in a.violations()]
    assert problems == [], "\n".join(problems[:10])


ENGINE_CONFIGS = [
    pytest.param(SystemConfig(refresh_mode="none"), id="none"),
    pytest.param(SystemConfig(refresh_mode="baseline"), id="baseline"),
    pytest.param(SystemConfig(refresh_mode="elastic"), id="elastic"),
    pytest.param(SystemConfig(refresh_mode="hira", tref_slack_acts=2), id="hira-2"),
    pytest.param(SystemConfig(refresh_mode="hira", tref_slack_acts=8), id="hira-8"),
    pytest.param(
        SystemConfig(refresh_mode="baseline", para_nrh=64.0), id="baseline-para64"
    ),
    pytest.param(SystemConfig(refresh_mode="hira", para_nrh=64.0), id="hira-para64"),
    pytest.param(SystemConfig(refresh_mode="none", para_nrh=128.0), id="none-para128"),
    # DDR5-style same-bank refresh (REFsb): every REF-owing engine must
    # hold the per-bank tRFC_sb/tREFSB_GAP rules on top of everything else.
    pytest.param(
        SystemConfig(refresh_mode="baseline", refresh_granularity="same_bank"),
        id="baseline-sb",
    ),
    pytest.param(
        SystemConfig(refresh_mode="elastic", refresh_granularity="same_bank"),
        id="elastic-sb",
    ),
    pytest.param(
        SystemConfig(
            refresh_mode="hira", refresh_granularity="same_bank", tref_slack_acts=2
        ),
        id="hira-sb-2",
    ),
    pytest.param(
        SystemConfig(
            refresh_mode="hira", refresh_granularity="same_bank", para_nrh=64.0
        ),
        id="hira-sb-para64",
    ),
]


class TestEnginesHoldInvariants:
    @pytest.mark.parametrize("config", ENGINE_CONFIGS)
    @pytest.mark.parametrize("trace_seed", [7, 23])
    def test_randomized_traces(self, config, trace_seed):
        __, auditors = run_audited(config, random_mix(trace_seed), seed=trace_seed)
        assert_clean(auditors)

    def test_spec_mix(self):
        config = SystemConfig(refresh_mode="hira", tref_slack_acts=4)
        __, auditors = run_audited(config, mix_for(2), seed=42)
        assert_clean(auditors)

    def test_multi_rank_multi_channel(self):
        config = SystemConfig(
            refresh_mode="hira", channels=2, ranks_per_channel=2, tref_slack_acts=4
        )
        __, auditors = run_audited(config, random_mix(5), seed=5)
        assert len(auditors) == 2
        assert_clean(auditors)

    def test_high_capacity_refresh_pressure(self):
        config = SystemConfig(refresh_mode="hira", capacity_gbit=128.0)
        __, auditors = run_audited(config, random_mix(9), seed=9)
        assert_clean(auditors)

    @pytest.mark.parametrize("mode", ["baseline", "elastic", "hira"])
    def test_write_heavy_traces_hold_twr(self, mode):
        # Low read fractions force write drains: every PRE after a write
        # burst must wait out tWR on the new auditor.
        mix = [
            TraceProfile(
                f"wr{i}", mpki=30.0, row_locality=0.4, read_fraction=0.25,
                working_set_rows=2048,
            )
            for i in range(8)
        ]
        config = SystemConfig(refresh_mode=mode)
        result, auditors = run_audited(config, mix, seed=31)
        assert result.stat_total("writes_served") > 0
        assert any(r.kind == "WR" for a in auditors for r in a.records)
        assert_clean(auditors)

    @pytest.mark.parametrize("mode", ["baseline", "elastic", "hira"])
    def test_same_bank_engines_issue_refsb(self, mode):
        config = SystemConfig(refresh_mode=mode, refresh_granularity="same_bank")
        result, auditors = run_audited(config, random_mix(19), seed=19)
        # REFsb replaces the rank-wide REF entirely in same-bank mode.
        assert result.stat_total("refs_sb") > 0
        assert result.stat_total("refs") == 0
        assert any(r.kind == "REFSB" for a in auditors for r in a.records)
        assert_clean(auditors)

    @pytest.mark.parametrize("mode", ["baseline", "elastic", "hira"])
    @pytest.mark.parametrize("trace_seed", [41, 43])
    def test_bankgroup_spacing_randomized(self, mode, trace_seed):
        # Same-group ACT pairs must be spaced by tRRD_L, cross-group by
        # tRRD_S — recomputed here independently of the auditor so a bug
        # in the auditor's own bookkeeping cannot hide one in the
        # scheduler.
        config = SystemConfig(refresh_mode=mode)
        __, auditors = run_audited(config, random_mix(trace_seed), seed=trace_seed)
        assert_clean(auditors)
        for auditor in auditors:
            groups = auditor.banks_per_bankgroup
            acts = sorted(
                (r for r in auditor.records if r.kind == "ACT" and r.tag != "hira2"),
                key=lambda r: r.cycle,
            )
            by_rank: dict[int, object] = {}
            by_group: dict[tuple[int, int], object] = {}
            for rec in acts:
                prev = by_rank.get(rec.rank)
                if prev is not None:
                    assert rec.cycle - prev.cycle >= auditor.trrd_s_c, (rec, prev)
                group_key = (rec.rank, rec.bank // groups)
                prev_group = by_group.get(group_key)
                if prev_group is not None:
                    assert rec.cycle - prev_group.cycle >= auditor.trrd_l_c, (
                        rec, prev_group,
                    )
                by_rank[rec.rank] = rec
                by_group[group_key] = rec


class TestRefreshProgress:
    """The deadline side: engines must refresh, not just avoid violations."""

    def test_baseline_ref_survives_saturating_demand(self):
        # Round-robin row misses keep every bank busy; the REF drain must
        # still win (it defers demand per rank) or rows silently decay.
        mix = [
            TraceProfile(
                "miss", mpki=45.0, row_locality=0.05, read_fraction=0.9,
                working_set_rows=16384,
            )
        ] * 8
        for mode in ("baseline", "elastic"):
            config = SystemConfig(refresh_mode=mode)
            system = System(config, mix, seed=4, instr_budget=40_000)
            auditors = attach_auditors(system)
            result = system.run(max_cycles=6_000_000)
            trefi_c = auditors[0].trefi_c
            elapsed_trefis = result.cycles / trefi_c
            assert result.stat_total("refs") >= int(elapsed_trefis) - 1, mode
            assert_clean(auditors)

    def test_auditor_flags_missing_refs(self):
        config = SystemConfig(refresh_mode="baseline")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        auditor = CommandAuditor(system.controllers[0])
        # A long command stream with no REF at all (the starved case).
        span = 10 * auditor.trefi_c
        auditor.on_act(0, 0, 0, 1)
        auditor.on_pre(auditor.tras_c, 0, 0)
        auditor.on_act(span, 0, 0, 2)
        problems = auditor.violations()
        assert any("no REF" in p for p in problems)

    def test_baseline_ref_cadence(self):
        config = SystemConfig(refresh_mode="baseline")
        result, auditors = run_audited(config, random_mix(3), seed=3, instr=30_000)
        mc = None  # auditors carry the controller
        refs = result.stat_total("refs")
        expected = result.cycles / auditors[0].trefi_c
        assert refs >= int(expected) - 1

    def test_hira_meets_deadlines_with_slack(self):
        config = SystemConfig(refresh_mode="hira", tref_slack_acts=4)
        result, auditors = run_audited(config, random_mix(11), seed=11, instr=30_000)
        assert result.stat_total("deadline_misses") == 0
        assert (
            result.stat_total("solo_refreshes")
            + result.stat_total("hira_access_parallelized")
            + result.stat_total("hira_refresh_parallelized")
            > 0
        )

    def test_same_bank_cadence_survives_saturating_demand(self):
        # Same-bank refresh must keep every bank's tREFI cadence even when
        # round-robin row misses keep all banks busy: the per-bank drain
        # (blocked_banks) defers demand to the one bank being refreshed.
        mix = [
            TraceProfile(
                "miss", mpki=45.0, row_locality=0.05, read_fraction=0.9,
                working_set_rows=16384,
            )
        ] * 8
        for mode, postpone_slack in (("baseline", 1), ("elastic", 9)):
            config = SystemConfig(
                refresh_mode=mode, refresh_granularity="same_bank"
            )
            system = System(config, mix, seed=4, instr_budget=40_000)
            auditors = attach_auditors(system)
            result = system.run(max_cycles=6_000_000)
            trefi_c = auditors[0].trefi_c
            banks = config.geometry.banks_per_rank
            # One REFsb per bank per tREFI; elastic may defer each bank's
            # REFsb by up to the 8-command postponement budget.
            expected = result.cycles / trefi_c * banks
            assert result.stat_total("refs_sb") >= int(expected) - postpone_slack * banks, mode
            assert_clean(auditors)

    def test_hira_same_bank_meets_deadlines_with_slack(self):
        config = SystemConfig(
            refresh_mode="hira", refresh_granularity="same_bank",
            tref_slack_acts=4,
        )
        result, auditors = run_audited(config, random_mix(11), seed=11, instr=30_000)
        assert result.stat_total("deadline_misses") == 0
        assert result.stat_total("refs_sb") > 0
        assert_clean(auditors)

    def test_hira_refreshes_at_generated_rate(self):
        config = SystemConfig(refresh_mode="hira", tref_slack_acts=4)
        system = System(config, random_mix(13), seed=13, instr_budget=30_000)
        result = system.run(max_cycles=3_000_000)
        engine = system.controllers[0].engine
        generated = result.stat_total("periodic_generated")
        performed = (
            result.stat_total("solo_refreshes")
            + result.stat_total("hira_access_parallelized")
            + 2 * result.stat_total("hira_refresh_parallelized")
        )
        # Everything generated is either performed or still pending within
        # its slack window.
        assert performed + engine.pending_periodic() + engine.pending_preventive() >= generated


class TestAuditorMechanics:
    def test_detects_planted_trc_violation(self):
        config = SystemConfig(refresh_mode="none")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        auditor = CommandAuditor(system.controllers[0])
        auditor.on_act(1000, 0, 0, 7)
        auditor.on_act(1010, 0, 0, 9)  # same bank, far below tRC
        auditor.on_act(1012, 0, 1, 3)  # other bank, below tRRD
        problems = auditor.violations()
        assert any("tRC" in p for p in problems)
        assert any("tRRD" in p for p in problems)

    def test_detects_planted_trrd_l_violation(self):
        # Same-bank-group ACTs at tRRD_S spacing satisfy the short but not
        # the long parameter.
        config = SystemConfig(refresh_mode="none")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        auditor = CommandAuditor(system.controllers[0])
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_act(1000 + auditor.trrd_s_c, 0, 1, 6)  # bank 1: same group
        problems = auditor.violations()
        assert any("tRRD_L" in p for p in problems)
        assert not any("tRRD_S" in p for p in problems)

    def test_cross_group_acts_at_trrd_s_are_legal(self):
        config = SystemConfig(refresh_mode="none")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        mc = system.controllers[0]
        auditor = CommandAuditor(mc)
        bank_cross = mc.config.geometry.banks_per_bankgroup  # first bank of group 1
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_act(1000 + auditor.trrd_s_c, 0, bank_cross, 6)
        assert auditor.violations() == []

    def test_detects_planted_trcd_violation(self):
        config = SystemConfig(refresh_mode="none")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        auditor = CommandAuditor(system.controllers[0])
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_col(1000 + auditor.trcd_c - 1, 0, 0, is_write=False)
        assert any("tRCD" in p for p in auditor.violations())

    def test_col_at_trcd_boundary_is_legal(self):
        config = SystemConfig(refresh_mode="none")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        auditor = CommandAuditor(system.controllers[0])
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_col(1000 + auditor.trcd_c, 0, 0, is_write=False)
        assert auditor.violations() == []

    def test_detects_read_during_ref(self):
        config = SystemConfig(refresh_mode="baseline")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        auditor = CommandAuditor(system.controllers[0])
        auditor.on_ref(1000, 0)
        auditor.on_col(1005, 0, 0, is_write=False)
        assert any(
            "RD to rank 0 during REF" in p for p in auditor.violations()
        )

    def test_detects_planted_twr_violation(self):
        config = SystemConfig(refresh_mode="none")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        auditor = CommandAuditor(system.controllers[0])
        auditor.on_act(1000, 0, 0, 5)
        wr = 1000 + system.controllers[0].trcd_c
        auditor.on_col(wr, 0, 0, is_write=True)
        burst_end = wr + auditor.tcwl_c + auditor.tbl_c
        auditor.on_pre(burst_end + auditor.twr_c - 1, 0, 0)  # one cycle early
        problems = auditor.violations()
        assert any("tWR" in p for p in problems)

    def test_pre_at_twr_boundary_is_legal(self):
        config = SystemConfig(refresh_mode="none")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        auditor = CommandAuditor(system.controllers[0])
        auditor.on_act(1000, 0, 0, 5)
        wr = 1000 + system.controllers[0].trcd_c
        auditor.on_col(wr, 0, 0, is_write=True)
        burst_end = wr + auditor.tcwl_c + auditor.tbl_c
        auditor.on_pre(max(burst_end + auditor.twr_c, 1000 + auditor.tras_c), 0, 0)
        assert auditor.violations() == []

    def test_detects_planted_trtp_violation(self):
        config = SystemConfig(refresh_mode="none")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        auditor = CommandAuditor(system.controllers[0])
        auditor.on_act(1000, 0, 0, 5)
        rd = 1000 + auditor.tras_c  # tRAS already satisfied at the PRE below
        auditor.on_col(rd, 0, 0, is_write=False)
        auditor.on_pre(rd + auditor.trtp_c - 1, 0, 0)  # one cycle early
        problems = auditor.violations()
        assert any("tRTP" in p for p in problems)

    def test_pre_at_trtp_boundary_is_legal(self):
        config = SystemConfig(refresh_mode="none")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        auditor = CommandAuditor(system.controllers[0])
        auditor.on_act(1000, 0, 0, 5)
        rd = 1000 + auditor.tras_c
        auditor.on_col(rd, 0, 0, is_write=False)
        auditor.on_pre(rd + auditor.trtp_c, 0, 0)
        assert auditor.violations() == []

    def test_detects_planted_data_bus_conflict(self):
        # Two reads on different banks one cycle apart: their tBL-long
        # bursts (each starting tCL after the command) must overlap.
        config = SystemConfig(refresh_mode="none")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        mc = system.controllers[0]
        auditor = CommandAuditor(mc)
        bank_cross = mc.config.geometry.banks_per_bankgroup
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_act(1000 + auditor.trrd_s_c, 0, bank_cross, 6)
        rd = 1000 + mc.trcd_c
        auditor.on_col(rd, 0, 0, is_write=False)
        auditor.on_col(rd + 1, 0, bank_cross, is_write=False)
        problems = auditor.violations()
        assert any("data-bus conflict" in p for p in problems)

    def test_detects_read_write_data_bus_conflict(self):
        # tCL > tCWL: a WR issued right after a RD bursts *earlier*, so the
        # ordering-aware check must still catch the overlap.
        config = SystemConfig(refresh_mode="none")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        mc = system.controllers[0]
        auditor = CommandAuditor(mc)
        bank_cross = mc.config.geometry.banks_per_bankgroup
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_act(1000 + auditor.trrd_s_c, 0, bank_cross, 6)
        rd = 1000 + mc.trcd_c
        auditor.on_col(rd, 0, 0, is_write=False)
        # tCL - tCWL cycles later the WR burst would abut the RD burst; a
        # couple of cycles after that it lands mid-burst.
        wr = rd + (auditor.tcl_c - auditor.tcwl_c) + auditor.tbl_c - 2
        auditor.on_col(wr, 0, bank_cross, is_write=True)
        problems = auditor.violations()
        assert any("data-bus conflict" in p for p in problems)

    def test_back_to_back_bursts_are_legal(self):
        config = SystemConfig(refresh_mode="none")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        mc = system.controllers[0]
        auditor = CommandAuditor(mc)
        bank_cross = mc.config.geometry.banks_per_bankgroup
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_act(1000 + auditor.trrd_s_c, 0, bank_cross, 6)
        rd = 1000 + mc.trcd_c
        auditor.on_col(rd, 0, 0, is_write=False)
        auditor.on_col(rd + auditor.tbl_c, 0, bank_cross, is_write=False)
        assert auditor.violations() == []

    def test_detects_planted_tfaw_violation(self):
        config = SystemConfig(refresh_mode="none")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        mc = system.controllers[0]
        auditor = CommandAuditor(mc)
        for i in range(5):  # five ACTs, tRRD-spaced, inside one tFAW window
            auditor.on_act(1000 + i * mc.trrd_s_c, 0, i, 3)
        problems = auditor.violations()
        assert any("tFAW" in p for p in problems)

    def test_detects_ref_during_restore(self):
        config = SystemConfig(refresh_mode="baseline")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        mc = system.controllers[0]
        auditor = CommandAuditor(mc)
        auditor.on_solo_refresh(1000, 0, 2, close=1000 + mc.tras_c)
        auditor.on_ref(1005, 0)  # bank 2 is still restoring
        problems = auditor.violations()
        assert any("open banks" in p for p in problems)

    def _bus_auditor(self):
        config = SystemConfig(refresh_mode="none")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        mc = system.controllers[0]
        return mc, CommandAuditor(mc)

    def test_detects_planted_trtw_violation(self):
        # A WR burst starting one cycle inside the read→write turnaround
        # window: no raw overlap, but the bus had no time to change
        # direction.
        mc, auditor = self._bus_auditor()
        bank_cross = mc.config.geometry.banks_per_bankgroup
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_act(1000 + auditor.trrd_s_c, 0, bank_cross, 6)
        rd = 1000 + mc.trcd_c
        auditor.on_col(rd, 0, 0, is_write=False)
        rd_end = rd + auditor.tcl_c + auditor.tbl_c
        wr = rd_end + auditor.trtw_c - 1 - auditor.tcwl_c
        auditor.on_col(wr, 0, bank_cross, is_write=True)
        problems = auditor.violations()
        assert any("tRTW" in p for p in problems)
        assert not any("data-bus conflict" in p for p in problems)

    def test_wr_burst_at_trtw_boundary_is_legal(self):
        mc, auditor = self._bus_auditor()
        bank_cross = mc.config.geometry.banks_per_bankgroup
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_act(1000 + auditor.trrd_s_c, 0, bank_cross, 6)
        rd = 1000 + mc.trcd_c
        auditor.on_col(rd, 0, 0, is_write=False)
        rd_end = rd + auditor.tcl_c + auditor.tbl_c
        auditor.on_col(rd_end + auditor.trtw_c - auditor.tcwl_c, 0, bank_cross,
                       is_write=True)
        assert auditor.violations() == []

    def test_detects_planted_twtr_violation(self):
        mc, auditor = self._bus_auditor()
        bank_cross = mc.config.geometry.banks_per_bankgroup
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_act(1000 + auditor.trrd_s_c, 0, bank_cross, 6)
        wr = 1000 + mc.trcd_c
        auditor.on_col(wr, 0, 0, is_write=True)
        wr_end = wr + auditor.tcwl_c + auditor.tbl_c
        rd = wr_end + auditor.twtr_c - 1 - auditor.tcl_c
        auditor.on_col(rd, 0, bank_cross, is_write=False)
        problems = auditor.violations()
        assert any("tWTR" in p for p in problems)
        assert not any("data-bus conflict" in p for p in problems)

    def test_rd_burst_at_twtr_boundary_is_legal(self):
        mc, auditor = self._bus_auditor()
        bank_cross = mc.config.geometry.banks_per_bankgroup
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_act(1000 + auditor.trrd_s_c, 0, bank_cross, 6)
        wr = 1000 + mc.trcd_c
        auditor.on_col(wr, 0, 0, is_write=True)
        wr_end = wr + auditor.tcwl_c + auditor.tbl_c
        auditor.on_col(wr_end + auditor.twtr_c - auditor.tcl_c, 0, bank_cross,
                       is_write=False)
        assert auditor.violations() == []

    def test_same_direction_bursts_need_no_turnaround(self):
        # Back-to-back same-direction bursts abut exactly: the turnaround
        # gap applies only across a direction change.
        mc, auditor = self._bus_auditor()
        bank_cross = mc.config.geometry.banks_per_bankgroup
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_act(1000 + auditor.trrd_s_c, 0, bank_cross, 6)
        rd = 1000 + mc.trcd_c
        auditor.on_col(rd, 0, 0, is_write=False)
        auditor.on_col(rd + auditor.tbl_c, 0, bank_cross, is_write=False)
        assert auditor.violations() == []

    def test_attaching_auditor_does_not_change_results(self):
        config = SystemConfig(refresh_mode="hira", para_nrh=256.0)
        mix = random_mix(17)
        bare = System(config, mix, seed=17, instr_budget=10_000).run()
        audited_system = System(config, mix, seed=17, instr_budget=10_000)
        attach_auditors(audited_system)
        audited = audited_system.run()
        assert bare.cycles == audited.cycles
        assert bare.ipcs == audited.ipcs


class TestRefsbAuditorMechanics:
    """Planted violations and boundaries for DDR5 same-bank refresh."""

    def _auditor(self, granularity="all_bank", mode="none"):
        config = SystemConfig(refresh_mode=mode, refresh_granularity=granularity)
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        mc = system.controllers[0]
        return mc, CommandAuditor(mc)

    def test_detects_refsb_to_open_bank(self):
        __, auditor = self._auditor()
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_refsb(1010, 0, 0)
        assert any("REFsb to open bank" in p for p in auditor.violations())

    def test_detects_refsb_inside_trp(self):
        __, auditor = self._auditor()
        auditor.on_act(1000, 0, 0, 5)
        pre = 1000 + auditor.tras_c
        auditor.on_pre(pre, 0, 0)
        auditor.on_refsb(pre + auditor.trp_c - 1, 0, 0)  # one cycle early
        assert any(
            "REFsb" in p and "after PRE" in p for p in auditor.violations()
        )

    def test_refsb_at_trp_boundary_is_legal(self):
        __, auditor = self._auditor()
        auditor.on_act(1000, 0, 0, 5)
        pre = 1000 + auditor.tras_c
        auditor.on_pre(pre, 0, 0)
        auditor.on_refsb(pre + auditor.trp_c, 0, 0)
        assert auditor.violations() == []

    def test_detects_act_during_refsb(self):
        __, auditor = self._auditor()
        auditor.on_refsb(1000, 0, 0)
        auditor.on_act(1000 + auditor.trfc_sb_c - 1, 0, 0, 5)  # one early
        assert any("during REFsb" in p for p in auditor.violations())

    def test_act_at_trfc_sb_boundary_is_legal(self):
        __, auditor = self._auditor()
        auditor.on_refsb(1000, 0, 0)
        auditor.on_act(1000 + auditor.trfc_sb_c, 0, 0, 5)
        assert auditor.violations() == []

    def test_sibling_bank_act_during_refsb_is_legal(self):
        # The whole point of REFsb: only the refreshed bank is busy.
        __, auditor = self._auditor()
        auditor.on_refsb(1000, 0, 0)
        auditor.on_act(1005, 0, 4, 5)  # other bank group, other bank
        assert auditor.violations() == []

    def test_detects_trefsb_gap_violation(self):
        __, auditor = self._auditor()
        auditor.on_refsb(1000, 0, 0)
        auditor.on_refsb(1000 + auditor.trefsb_gap_c - 1, 0, 1)  # one early
        assert any("tREFSB_GAP" in p for p in auditor.violations())

    def test_refsb_at_trefsb_gap_boundary_is_legal(self):
        __, auditor = self._auditor()
        auditor.on_refsb(1000, 0, 0)
        auditor.on_refsb(1000 + auditor.trefsb_gap_c, 0, 1)
        assert auditor.violations() == []

    def test_detects_refsb_during_ref(self):
        # The interlock's other direction: a same-bank refresh inside a
        # rank-wide tRFC busy window.
        __, auditor = self._auditor(mode="baseline")
        auditor.on_ref(1000, 0)
        auditor.on_refsb(1000 + auditor.trfc_c - 1, 0, 0)  # one cycle early
        assert any(
            "REFsb to rank 0 during REF" in p for p in auditor.violations()
        )

    def test_refsb_at_trfc_boundary_is_legal(self):
        __, auditor = self._auditor()
        auditor.on_ref(1000, 0)
        auditor.on_refsb(1000 + auditor.trfc_c, 0, 0)
        assert auditor.violations() == []

    def test_detects_ref_during_refsb(self):
        __, auditor = self._auditor(mode="baseline")
        auditor.on_refsb(1000, 0, 2)
        auditor.on_ref(1005, 0)
        assert any("REFsb in flight" in p for p in auditor.violations())

    def test_detects_per_bank_cadence_gap(self):
        __, auditor = self._auditor()
        auditor.on_refsb(0, 0, 3)
        auditor.on_refsb(10 * auditor.trefi_c, 0, 3)
        assert any(
            "refresh deadline violation on bank" in p
            for p in auditor.violations()
        )

    def test_detects_starved_bank_in_same_bank_mode(self):
        # A long same-bank-mode stream with no REFsb at all: every bank of
        # the rank must be flagged from the stream bounds.
        __, auditor = self._auditor(granularity="same_bank", mode="baseline")
        span = 10 * auditor.trefi_c
        auditor.on_act(0, 0, 0, 1)
        auditor.on_pre(auditor.tras_c, 0, 0)
        auditor.on_act(span, 0, 0, 2)
        problems = auditor.violations()
        starved = [p for p in problems if "no REFsb issued" in p]
        assert len(starved) == auditor.banks_per_rank


class TestPairingPolicy:
    """The ACT-bandwidth-aware Concurrent Refresh Finder (Fig. 8 Case 2)."""

    def _saturated_system(self):
        from repro.dram.geometry import Address
        from repro.sim.request import Request

        config = SystemConfig(refresh_mode="hira", tref_slack_acts=2)
        mix = [
            TraceProfile("idle", mpki=1.0, row_locality=0.5, read_fraction=1.0)
        ] * 8
        system = System(config, mix, seed=1, instr_budget=1_000)
        mc = system.controllers[0]
        engine = mc.engine
        now = 10_000
        # Only our synthetic request exists: silence periodic generation.
        engine._gen_heap.clear()
        state = engine._periodic[(0, 0)]
        state.pending.append(now - engine.slack_c)  # deadline == now: due
        engine._active.add((0, 0))
        demand = Request(
            addr=Address(channel=0, rank=0, bank=0, row=5, col=0),
            line=0, is_write=False, core_id=0, arrival_cycle=now,
        )
        return system, mc, engine, state, demand, now

    def _saturate_rank(self, mc, now):
        # Two recent ACTs to other bank groups: pressure hits 0.5 (the
        # highest level at which a two-ACT pair is still tFAW-legal)
        # without gating bank 0 on tRRD_L.
        spread = mc.banks_per_bankgroup
        mc._record_act(0, spread, now - mc.tfaw_c + 2)
        mc._record_act(0, 2 * spread, now - mc.tfaw_c + 2 + mc.trrd_s_c)

    def test_saturated_rank_with_waiting_demand_pairs(self):
        __, mc, engine, state, demand, now = self._saturated_system()
        self._saturate_rank(mc, now)
        mc.enqueue(demand)
        assert mc.act_pressure(0, now) >= engine.pressure_threshold
        assert engine.urgent(now)
        assert mc.stats.hira_refresh_parallelized == 1
        assert mc.stats.solo_refreshes == 0
        assert state.credit == 1  # the partner came from the future stream

    def test_idle_rank_does_not_pull_forward(self):
        __, mc, engine, state, demand, now = self._saturated_system()
        mc.enqueue(demand)  # demand alone is not enough
        assert mc.act_pressure(0, now) < engine.pressure_threshold
        assert engine.urgent(now)
        assert mc.stats.hira_refresh_parallelized == 0
        assert mc.stats.solo_refreshes == 1
        assert state.credit == 0

    def test_saturated_rank_without_demand_stays_solo(self):
        __, mc, engine, state, __demand, now = self._saturated_system()
        self._saturate_rank(mc, now)
        assert engine.urgent(now)
        assert mc.stats.hira_refresh_parallelized == 0
        assert mc.stats.solo_refreshes == 1
        assert state.credit == 0

    def test_pulled_forward_credit_cancels_next_generation(self):
        __, mc, engine, state, demand, now = self._saturated_system()
        self._saturate_rank(mc, now)
        mc.enqueue(demand)
        assert engine.urgent(now)
        assert state.credit == 1
        generated_before = mc.stats.periodic_generated
        import heapq

        state.next_gen = now + 1
        heapq.heappush(engine._gen_heap, (now + 1, 0, 0))
        engine._advance_generation(now + 1)
        # The credited generation is consumed, not queued.
        assert state.credit == 0
        assert not state.pending
        assert mc.stats.periodic_generated == generated_before

    def test_spilled_preventive_keeps_original_deadline(self):
        from repro.core.pr_fifo import PreventiveRequest

        __, mc, engine, state, __demand, now = self._saturated_system()
        state.pending.clear()
        far = now + 10_000
        for i in range(engine.pr_fifo_depth):  # fill bank 0's PR-FIFO
            assert engine.pr[0].push(0, PreventiveRequest(row=100 + i, deadline=far))
        spill_deadline = far - 1
        engine._requeue_row(0, 0, 999, spill_deadline)
        assert list(engine._preventive) == [(0, 0, 999, spill_deadline)]
        # Free a slot: the next urgent() re-admits the spilled request
        # with its original deadline, not a fresh now + slack stamp.
        engine.pr[0].pop(0)
        engine.urgent(now)
        assert not engine._preventive
        for __ in range(engine.pr_fifo_depth - 1):
            engine.pr[0].pop(0)
        readmitted = engine.pr[0].head(0)
        assert readmitted.row == 999
        assert readmitted.deadline == spill_deadline

    def test_spill_readmission_skips_blocked_banks(self):
        from repro.core.pr_fifo import PreventiveRequest

        __, mc, engine, state, __demand, now = self._saturated_system()
        state.pending.clear()
        far = now + 10_000
        for i in range(engine.pr_fifo_depth):  # bank 0's FIFO stays full
            assert engine.pr[0].push(0, PreventiveRequest(row=100 + i, deadline=far))
        engine._queue_preventive(0, 0, 999, far - 2)  # blocked bank first
        engine._queue_preventive(0, 1, 888, far - 1)  # free bank behind it
        assert engine.urgent(now)
        # Bank 1's spill was re-admitted (original deadline intact) even
        # though bank 0's sat ahead of it; bank 0's was serviced
        # opportunistically by the overflow path.
        readmitted = engine.pr[0].head(1)
        assert readmitted.row == 888
        assert readmitted.deadline == far - 1
        assert not engine._preventive
        assert mc.stats.solo_refreshes == 1

    def test_demand_act_under_pressure_defers_periodic_riding(self):
        __, mc, engine, state, demand, now = self._saturated_system()
        # Give the periodic request ample slack so riding is optional.
        state.pending.clear()
        state.pending.append(now + 10 * mc.trc_c)
        self._saturate_rank(mc, now)
        assert engine.on_act(demand, now) is None  # slot saved for a pair
        assert state.pending  # request still queued
        # The same request rides a demand ACT when the rank is idle.
        mc.ranks[0].faw.clear()
        assert engine.on_act(demand, now) is not None
