"""Property-style audits: no engine may break DRAM timing invariants.

Each test builds a system with a :class:`CommandAuditor` on every channel,
drives it with randomized traces, and asserts the recorded command stream
holds tRC / tRRD / tFAW / tRP / tRAS / tRFC and the refresh-deadline
rules.  This is the guard rail for the paper's Case-1/Case-2
parallelization: HiRA may only violate tRC *inside* its own engineered
ACT-PRE-ACT sequence, never anywhere else.
"""

from __future__ import annotations

import pytest

from repro.sim.audit import CommandAuditor, attach_auditors
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.sim.trace import TraceProfile
from repro.workloads.mixes import mix_for


def random_mix(seed: int, cores: int = 8) -> list[TraceProfile]:
    """A randomized (but seeded) trace mix spanning intensity regimes."""
    import numpy as np

    rng = np.random.default_rng(seed)
    return [
        TraceProfile(
            name=f"r{seed}-{i}",
            mpki=float(rng.uniform(2.0, 40.0)),
            row_locality=float(rng.uniform(0.3, 0.95)),
            read_fraction=float(rng.uniform(0.5, 0.9)),
            working_set_rows=int(rng.integers(256, 8192)),
        )
        for i in range(cores)
    ]


def run_audited(config: SystemConfig, mix, seed: int, instr: int = 12_000):
    system = System(config, mix, seed=seed, instr_budget=instr)
    auditors = attach_auditors(system)
    result = system.run(max_cycles=3_000_000)
    assert result.finished
    return result, auditors


def assert_clean(auditors) -> None:
    problems = [p for a in auditors for p in a.violations()]
    assert problems == [], "\n".join(problems[:10])


ENGINE_CONFIGS = [
    pytest.param(SystemConfig(refresh_mode="none"), id="none"),
    pytest.param(SystemConfig(refresh_mode="baseline"), id="baseline"),
    pytest.param(SystemConfig(refresh_mode="elastic"), id="elastic"),
    pytest.param(SystemConfig(refresh_mode="hira", tref_slack_acts=2), id="hira-2"),
    pytest.param(SystemConfig(refresh_mode="hira", tref_slack_acts=8), id="hira-8"),
    pytest.param(
        SystemConfig(refresh_mode="baseline", para_nrh=64.0), id="baseline-para64"
    ),
    pytest.param(SystemConfig(refresh_mode="hira", para_nrh=64.0), id="hira-para64"),
    pytest.param(SystemConfig(refresh_mode="none", para_nrh=128.0), id="none-para128"),
]


class TestEnginesHoldInvariants:
    @pytest.mark.parametrize("config", ENGINE_CONFIGS)
    @pytest.mark.parametrize("trace_seed", [7, 23])
    def test_randomized_traces(self, config, trace_seed):
        __, auditors = run_audited(config, random_mix(trace_seed), seed=trace_seed)
        assert_clean(auditors)

    def test_spec_mix(self):
        config = SystemConfig(refresh_mode="hira", tref_slack_acts=4)
        __, auditors = run_audited(config, mix_for(2), seed=42)
        assert_clean(auditors)

    def test_multi_rank_multi_channel(self):
        config = SystemConfig(
            refresh_mode="hira", channels=2, ranks_per_channel=2, tref_slack_acts=4
        )
        __, auditors = run_audited(config, random_mix(5), seed=5)
        assert len(auditors) == 2
        assert_clean(auditors)

    def test_high_capacity_refresh_pressure(self):
        config = SystemConfig(refresh_mode="hira", capacity_gbit=128.0)
        __, auditors = run_audited(config, random_mix(9), seed=9)
        assert_clean(auditors)


class TestRefreshProgress:
    """The deadline side: engines must refresh, not just avoid violations."""

    def test_baseline_ref_survives_saturating_demand(self):
        # Round-robin row misses keep every bank busy; the REF drain must
        # still win (it defers demand per rank) or rows silently decay.
        mix = [
            TraceProfile(
                "miss", mpki=45.0, row_locality=0.05, read_fraction=0.9,
                working_set_rows=16384,
            )
        ] * 8
        for mode in ("baseline", "elastic"):
            config = SystemConfig(refresh_mode=mode)
            system = System(config, mix, seed=4, instr_budget=40_000)
            auditors = attach_auditors(system)
            result = system.run(max_cycles=6_000_000)
            trefi_c = auditors[0].trefi_c
            elapsed_trefis = result.cycles / trefi_c
            assert result.stat_total("refs") >= int(elapsed_trefis) - 1, mode
            assert_clean(auditors)

    def test_auditor_flags_missing_refs(self):
        config = SystemConfig(refresh_mode="baseline")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        auditor = CommandAuditor(system.controllers[0])
        # A long command stream with no REF at all (the starved case).
        span = 10 * auditor.trefi_c
        auditor.on_act(0, 0, 0, 1)
        auditor.on_pre(auditor.tras_c, 0, 0)
        auditor.on_act(span, 0, 0, 2)
        problems = auditor.violations()
        assert any("no REF" in p for p in problems)

    def test_baseline_ref_cadence(self):
        config = SystemConfig(refresh_mode="baseline")
        result, auditors = run_audited(config, random_mix(3), seed=3, instr=30_000)
        mc = None  # auditors carry the controller
        refs = result.stat_total("refs")
        expected = result.cycles / auditors[0].trefi_c
        assert refs >= int(expected) - 1

    def test_hira_meets_deadlines_with_slack(self):
        config = SystemConfig(refresh_mode="hira", tref_slack_acts=4)
        result, auditors = run_audited(config, random_mix(11), seed=11, instr=30_000)
        assert result.stat_total("deadline_misses") == 0
        assert (
            result.stat_total("solo_refreshes")
            + result.stat_total("hira_access_parallelized")
            + result.stat_total("hira_refresh_parallelized")
            > 0
        )

    def test_hira_refreshes_at_generated_rate(self):
        config = SystemConfig(refresh_mode="hira", tref_slack_acts=4)
        system = System(config, random_mix(13), seed=13, instr_budget=30_000)
        result = system.run(max_cycles=3_000_000)
        engine = system.controllers[0].engine
        generated = result.stat_total("periodic_generated")
        performed = (
            result.stat_total("solo_refreshes")
            + result.stat_total("hira_access_parallelized")
            + 2 * result.stat_total("hira_refresh_parallelized")
        )
        # Everything generated is either performed or still pending within
        # its slack window.
        assert performed + engine.pending_periodic() + engine.pending_preventive() >= generated


class TestAuditorMechanics:
    def test_detects_planted_trc_violation(self):
        config = SystemConfig(refresh_mode="none")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        auditor = CommandAuditor(system.controllers[0])
        auditor.on_act(1000, 0, 0, 7)
        auditor.on_act(1010, 0, 0, 9)  # same bank, far below tRC
        auditor.on_act(1012, 0, 1, 3)  # other bank, below tRRD
        problems = auditor.violations()
        assert any("tRC" in p for p in problems)
        assert any("tRRD" in p for p in problems)

    def test_detects_planted_tfaw_violation(self):
        config = SystemConfig(refresh_mode="none")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        mc = system.controllers[0]
        auditor = CommandAuditor(mc)
        for i in range(5):  # five ACTs, tRRD-spaced, inside one tFAW window
            auditor.on_act(1000 + i * mc.trrd_c, 0, i, 3)
        problems = auditor.violations()
        assert any("tFAW" in p for p in problems)

    def test_detects_ref_during_restore(self):
        config = SystemConfig(refresh_mode="baseline")
        system = System(config, random_mix(1), seed=1, instr_budget=2_000)
        mc = system.controllers[0]
        auditor = CommandAuditor(mc)
        auditor.on_solo_refresh(1000, 0, 2, close=1000 + mc.tras_c)
        auditor.on_ref(1005, 0)  # bank 2 is still restoring
        problems = auditor.violations()
        assert any("open banks" in p for p in problems)

    def test_attaching_auditor_does_not_change_results(self):
        config = SystemConfig(refresh_mode="hira", para_nrh=256.0)
        mix = random_mix(17)
        bare = System(config, mix, seed=17, instr_budget=10_000).run()
        audited_system = System(config, mix, seed=17, instr_budget=10_000)
        attach_auditors(audited_system)
        audited = audited_system.run()
        assert bare.cycles == audited.cycles
        assert bare.ipcs == audited.ipcs
