"""End-to-end system runs: small but real simulations."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.sim.trace import TraceProfile
from repro.workloads.mixes import mix_for


def small_mix(cores=8, mpki=15.0, locality=0.7):
    return [
        TraceProfile("t%d" % i, mpki=mpki, row_locality=locality)
        for i in range(cores)
    ]


def run(mode="none", budget=8_000, mix=None, **overrides):
    config = SystemConfig(refresh_mode=mode, **overrides)
    system = System(config, mix or small_mix(config.cores), seed=3, instr_budget=budget)
    return system.run(max_cycles=3_000_000)


class TestBasicRuns:
    def test_completes_and_counts(self):
        res = run()
        assert res.finished
        assert res.stat_total("reads_served") > 0
        assert all(ipc > 0 for ipc in res.ipcs)
        assert all(n == 8_000 for n in res.instructions)

    def test_profile_count_validated(self):
        config = SystemConfig()
        with pytest.raises(ValueError):
            System(config, small_mix(cores=3), seed=1)

    def test_deterministic(self):
        a = run()
        b = run()
        assert a.cycles == b.cycles
        assert a.ipcs == b.ipcs

    def test_seeds_change_outcome(self):
        config = SystemConfig(refresh_mode="none")
        r1 = System(config, small_mix(), seed=1, instr_budget=8_000).run()
        r2 = System(config, small_mix(), seed=2, instr_budget=8_000).run()
        assert r1.cycles != r2.cycles


class TestConfigOrdering:
    def test_refresh_costs_performance(self):
        ideal = run(mode="none", budget=40_000, capacity_gbit=32.0)
        baseline = run(mode="baseline", budget=40_000, capacity_gbit=32.0)
        assert baseline.weighted_speedup < ideal.weighted_speedup

    def test_hira_recovers_some_overhead(self):
        mix = small_mix(mpki=18.0, locality=0.8)
        ideal = run(mode="none", budget=60_000, capacity_gbit=128.0, mix=mix)
        baseline = run(mode="baseline", budget=60_000, capacity_gbit=128.0, mix=mix)
        hira = run(
            mode="hira", budget=60_000, capacity_gbit=128.0, tref_slack_acts=2, mix=mix
        )
        assert baseline.weighted_speedup < hira.weighted_speedup <= ideal.weighted_speedup * 1.02

    def test_hira_uses_parallelization(self):
        res = run(mode="hira", budget=40_000, capacity_gbit=32.0, tref_slack_acts=4)
        assert res.stat_total("hira_access_parallelized") > 0

    def test_more_channels_not_slower(self):
        mix = small_mix(mpki=25.0, locality=0.6)
        one = run(mode="baseline", budget=30_000, channels=1, mix=mix)
        four = run(mode="baseline", budget=30_000, channels=4, mix=mix)
        assert four.weighted_speedup >= one.weighted_speedup

    def test_para_costs_performance(self):
        mix = small_mix(mpki=18.0, locality=0.8)
        clean = run(mode="baseline", budget=30_000, mix=mix)
        para = run(mode="baseline", budget=30_000, para_nrh=128.0, mix=mix)
        assert para.weighted_speedup < clean.weighted_speedup
        assert para.stat_total("preventive_generated") > 0

    def test_pth_override(self):
        mix = small_mix()
        res = run(mode="baseline", budget=10_000, para_pth_override=0.5, mix=mix)
        assert res.stat_total("preventive_generated") > 0


class TestWithRealMixes:
    def test_random_mix_runs(self):
        res = run(mode="hira", budget=10_000, mix=mix_for(3), tref_slack_acts=2)
        assert res.finished

    def test_unfinished_run_reports(self):
        config = SystemConfig(refresh_mode="none")
        system = System(config, small_mix(), seed=1, instr_budget=10_000_000)
        res = system.run(max_cycles=5_000)
        assert not res.finished
        assert res.cycles >= 5_000
