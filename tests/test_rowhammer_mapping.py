"""Reverse engineering the internal row mapping (§4.3 footnote 8)."""

from repro.rowhammer.mapping import find_aggressors, find_victims


class TestScrambling:
    def test_xor_mapping_is_involution(self, chip):
        design = chip.design
        for row in (0, 5, 130, 1_000):
            assert design.physical_to_logical(design.logical_to_physical(row)) == row

    def test_neighbors_stay_in_subarray(self, chip):
        design = chip.design
        for row in range(0, chip.geometry.rows_per_bank, 97):
            sa = chip.geometry.subarray_of_row(row)
            for neighbor in design.aggressors_for_victim(row):
                assert chip.geometry.subarray_of_row(neighbor) == sa

    def test_scrambled_rows_not_logically_adjacent(self, chip):
        # With a non-trivial XOR mask at least some victims have
        # non-±1 logical aggressors.
        nontrivial = False
        for row in range(10, 100):
            aggressors = chip.design.aggressors_for_victim(row)
            if aggressors and any(abs(a - row) != 1 for a in aggressors):
                nontrivial = True
        assert nontrivial


class TestReverseEngineering:
    def test_find_aggressors_matches_ground_truth(self, chip, host):
        victim = chip.geometry.row_of(1, 20)
        expected = sorted(chip.design.aggressors_for_victim(victim))
        found = sorted(find_aggressors(host, 0, victim, search_radius=8))
        assert found == expected

    def test_find_victims_matches_ground_truth(self, chip, host):
        aggressor = chip.geometry.row_of(1, 40)
        sa_base = 1 * chip.geometry.rows_per_subarray
        candidates = list(range(sa_base + 30, sa_base + 55))
        found = sorted(find_victims(host, 0, aggressor, candidates))
        expected = sorted(
            v
            for v in candidates
            if aggressor in chip.design.aggressors_for_victim(v)
        )
        assert found == expected
