"""The sweep orchestrator: expansion, hashing, caching, parallel equality."""

from __future__ import annotations

import pytest

from repro.orchestrator import (
    ResultCache,
    Sweep,
    Variant,
    Workload,
    axis,
    config_hash,
    mix_workloads,
    parallel_map,
    profile_workloads,
    result_from_dict,
    result_to_dict,
    run_sweep,
)
from repro.sim.config import SystemConfig
from repro.sim.trace import TraceProfile


def tiny_profiles(cores: int = 8) -> list[TraceProfile]:
    return [TraceProfile("t%d" % i, mpki=18.0, row_locality=0.7) for i in range(cores)]


def tiny_sweep(instr: int = 6_000, **kwargs) -> Sweep:
    defaults = dict(
        name="tiny",
        axes=(
            axis(
                "cfg",
                Variant.make("Baseline", refresh_mode="baseline"),
                Variant.make("HiRA-2", refresh_mode="hira", tref_slack_acts=2),
            ),
        ),
        workloads=profile_workloads(tiny_profiles(), count=2),
        instr_budget=instr,
        max_cycles=2_000_000,
    )
    defaults.update(kwargs)
    return Sweep(**defaults)


class TestSweepExpansion:
    def test_grid_size_and_order(self):
        sweep = Sweep(
            name="grid",
            axes=(
                axis("capacity_gbit", 2.0, 8.0, 32.0),
                axis("cfg", Variant.make("Baseline", refresh_mode="baseline")),
            ),
            workloads=mix_workloads(2),
        )
        points = sweep.expand()
        assert sweep.size == len(points) == 3 * 1 * 2
        # Row-major: capacity varies slowest, workload fastest.
        assert [p.coord("capacity_gbit") for p in points] == [2.0, 2.0, 8.0, 8.0, 32.0, 32.0]
        assert [p.coord("workload") for p in points] == ["mix0", "mix1"] * 3

    def test_variant_overrides_apply(self):
        sweep = tiny_sweep()
        points = sweep.expand()
        byname = {p.coord("cfg"): p for p in points}
        assert byname["Baseline"].config.refresh_mode == "baseline"
        assert byname["HiRA-2"].config.refresh_mode == "hira"
        assert byname["HiRA-2"].config.tref_slack_acts == 2

    def test_mix_workload_seeds_match_legacy_loops(self):
        # The legacy bench loops ran mix_id with seed 100 + mix_id.
        for i, workload in enumerate(mix_workloads(3)):
            assert workload.seed == 100 + i
            assert workload.mix_id == i

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            Workload(label="bad", seed=1)  # neither mix nor profiles
        with pytest.raises(ValueError):
            Workload(label="bad", seed=1, mix_id=0, profiles=tuple(tiny_profiles()))

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError):
            Sweep(
                name="dup",
                axes=(axis("capacity_gbit", 2.0), axis("capacity_gbit", 8.0)),
                workloads=mix_workloads(1),
            )


class TestConfigHashing:
    def test_equal_configs_equal_hash(self):
        a = SystemConfig(capacity_gbit=32.0, refresh_mode="hira")
        b = SystemConfig(capacity_gbit=32.0, refresh_mode="hira")
        assert a is not b
        assert config_hash(a) == config_hash(b)

    def test_any_knob_changes_hash(self):
        base = SystemConfig()
        assert config_hash(base) != config_hash(base.variant(refresh_mode="hira"))
        assert config_hash(base) != config_hash(base.variant(tref_slack_acts=4))
        assert config_hash(base) != config_hash(base.variant(capacity_gbit=32.0))

    def test_hash_is_stable_across_sessions(self):
        # A pinned digest: changing SystemConfig fields, the canonical
        # serialization, or SCHEMA_VERSION invalidates on-disk caches, and
        # this test documents that event.  Update the literal only when
        # the cache format is intentionally broken.
        assert config_hash({"probe": 1}) == "1c651a1a70bd3b11cbb6"

    def test_point_keys_unique_across_grid(self):
        points = tiny_sweep().expand()
        keys = [p.key for p in points]
        assert len(set(keys)) == len(keys)


class TestCache:
    def test_cold_then_warm(self, tmp_path):
        sweep = tiny_sweep()
        cold = run_sweep(sweep, workers=1, cache=tmp_path / "c")
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(cold)
        warm = run_sweep(sweep, workers=1, cache=tmp_path / "c")
        assert warm.cache_hits == len(warm)
        for (pa, ra), (pb, rb) in zip(cold, warm):
            assert pa.key == pb.key
            assert result_to_dict(ra) == result_to_dict(rb)

    def test_result_roundtrip_bit_exact(self, tmp_path):
        sweep = tiny_sweep()
        result = run_sweep(sweep, workers=1).results[0]
        assert result_to_dict(result_from_dict(result_to_dict(result))) == result_to_dict(result)

    def test_changed_budget_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        run_sweep(tiny_sweep(), workers=1, cache=cache)
        changed = run_sweep(tiny_sweep(instr=7_000), workers=1, cache=cache)
        assert changed.cache_hits == 0

    def test_truncated_entry_reads_as_miss_and_heals(self, tmp_path):
        # A crash mid-write (or disk corruption) must never poison a sweep:
        # the torn entry reads as a miss, is evicted, and the point re-runs.
        cache = ResultCache(tmp_path / "c")
        sweep = tiny_sweep()
        cold = run_sweep(sweep, workers=1, cache=cache)
        victim_key = sweep.expand()[0].key
        victim = cache.path_for(victim_key)
        full = victim.read_text()
        victim.write_text(full[: len(full) // 2])  # half-written JSON
        healed = run_sweep(sweep, workers=1, cache=cache)
        assert healed.cache_misses == 1
        assert healed.cache_hits == len(healed) - 1
        assert [result_to_dict(r) for r in healed.results] == [
            result_to_dict(r) for r in cold.results
        ]
        # The carcass was evicted and replaced by the re-run's entry.
        assert victim.exists()
        assert run_sweep(sweep, workers=1, cache=cache).cache_hits == len(cold)

    def test_wrong_shape_entry_reads_as_miss(self, tmp_path):
        # Valid JSON that is not a cache entry (schema drift, partial
        # corruption past the fingerprint) must also read as a miss.
        cache = ResultCache(tmp_path / "c")
        sweep = tiny_sweep()
        run_sweep(sweep, workers=1, cache=cache)
        key = sweep.expand()[0].key
        path = cache.path_for(key)
        import json

        body = json.loads(path.read_text())
        del body["result"]["ipcs"]  # fingerprint intact, payload mangled
        path.write_text(json.dumps(body))
        assert cache.get(key) is None
        assert not path.exists()  # evicted
        path.write_text(json.dumps([1, 2, 3]))  # not even a dict
        assert cache.get(key) is None


class TestParallelEquality:
    def test_serial_and_parallel_bit_identical(self):
        sweep = tiny_sweep()
        serial = run_sweep(sweep, workers=1)
        parallel = run_sweep(sweep, workers=4)
        assert parallel.workers == 4
        assert [result_to_dict(r) for r in serial.results] == [
            result_to_dict(r) for r in parallel.results
        ]

    def test_parallel_map_preserves_order(self):
        assert parallel_map(_square, list(range(20)), workers=3) == [
            n * n for n in range(20)
        ]

    def test_mean_ws_filters(self):
        result = run_sweep(tiny_sweep(), workers=1)
        per_cfg = [result.mean_ws(cfg=label) for label in ("Baseline", "HiRA-2")]
        assert all(ws > 0 for ws in per_cfg)
        with pytest.raises(KeyError):
            result.mean_ws(cfg="nope")
        one = result.select(cfg="Baseline", workload="seed0")
        assert len(one) == 1


def _square(n: int) -> int:
    return n * n


class TestExperimentParallelism:
    def test_coverage_workers_match_serial(self):
        from repro.chip.chip_model import DramChip
        from repro.chip.design import make_design
        from repro.chip.vendor import VendorClass
        from repro.experiments.coverage import coverage_distribution, tested_row_sample

        design = make_design(
            name="orch-test",
            vendor=VendorClass.HYNIX_LIKE,
            subarrays_per_bank=8,
            rows_per_subarray=64,
            design_seed=11,
        )
        rows = tested_row_sample(DramChip(design, chip_seed=2).geometry, chunk=64, stride=16)
        serial = coverage_distribution(
            DramChip(design, chip_seed=2), 0, 3_000, 3_000,
            tested_rows=rows, rows_a=rows[::4], workers=1,
        )
        sharded = coverage_distribution(
            DramChip(design, chip_seed=2), 0, 3_000, 3_000,
            tested_rows=rows, rows_a=rows[::4], workers=3,
        )
        assert serial.coverages == sharded.coverages
