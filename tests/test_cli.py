"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.mode == "hira" and args.capacity == 8.0

    def test_security_args(self):
        args = build_parser().parse_args(["security", "--nrh", "64", "--slack", "4"])
        assert args.nrh == 64.0 and args.slack == 4


class TestCommands:
    def test_security_command(self, capsys):
        assert main(["security", "--nrh", "128"]) == 0
        out = capsys.readouterr().out
        assert "PARA-Legacy pth" in out and "0.47" in out

    def test_simulate_command(self, capsys):
        assert main([
            "simulate", "--mode", "hira", "--capacity", "8",
            "--instructions", "5000",
        ]) == 0
        out = capsys.readouterr().out
        assert "weighted speedup" in out

    def test_characterize_unknown_module(self, capsys):
        assert main(["characterize", "--module", "ZZ"]) == 2

    def test_characterize_command(self, capsys):
        assert main([
            "characterize", "--module", "A0", "--stride", "256",
            "--rows-a-step", "24", "--victims", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "HiRA coverage" in out and "normalized NRH" in out
