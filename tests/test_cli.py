"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.mode == "hira" and args.capacity == 8.0

    def test_security_args(self):
        args = build_parser().parse_args(["security", "--nrh", "64", "--slack", "4"])
        assert args.nrh == 64.0 and args.slack == 4


class TestCommands:
    def test_security_command(self, capsys):
        assert main(["security", "--nrh", "128"]) == 0
        out = capsys.readouterr().out
        assert "PARA-Legacy pth" in out and "0.47" in out

    def test_simulate_command(self, capsys):
        assert main([
            "simulate", "--mode", "hira", "--capacity", "8",
            "--instructions", "5000",
        ]) == 0
        out = capsys.readouterr().out
        assert "weighted speedup" in out

    def test_characterize_unknown_module(self, capsys):
        assert main(["characterize", "--module", "ZZ"]) == 2

    def test_characterize_command(self, capsys):
        assert main([
            "characterize", "--module", "A0", "--stride", "256",
            "--rows-a-step", "24", "--victims", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "HiRA coverage" in out and "normalized NRH" in out

    def test_sweep_json_out_and_margin_check(self, capsys, tmp_path):
        json_path = tmp_path / "margin.json"
        assert main([
            "sweep", "--name", "t", "--modes", "baseline,hira", "--slacks", "2",
            "--capacities", "8", "--mixes", "1", "--instructions", "5000",
            "--workers", "1", "--no-cache", "--json-out", str(json_path),
        ]) == 0
        capsys.readouterr()
        import json

        payload = json.loads(json_path.read_text())
        cfgs = {cell["coords"]["cfg"] for cell in payload["cells"]}
        assert cfgs == {"baseline", "HiRA-2"}
        assert all(cell["mean_ws"] > 0 for cell in payload["cells"])

        import subprocess
        import sys

        # A floor of 0 always passes; an absurd floor must fail.
        from pathlib import Path

        script = str(Path(__file__).resolve().parent.parent / "tools" / "check_fig12_margin.py")
        ok = subprocess.run(
            [sys.executable, script, str(json_path), "--min-margin", "0.0"],
            capture_output=True, text=True,
        )
        assert ok.returncode == 0, ok.stdout + ok.stderr
        bad = subprocess.run(
            [sys.executable, script, str(json_path), "--min-margin", "99.0"],
            capture_output=True, text=True,
        )
        assert bad.returncode == 1
        assert "REGRESSED" in bad.stdout
