"""Command-line interface."""

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.mode == "hira" and args.capacity == 8.0

    def test_security_args(self):
        args = build_parser().parse_args(["security", "--nrh", "64", "--slack", "4"])
        assert args.nrh == 64.0 and args.slack == 4

    def test_sweep_backend_args(self):
        args = build_parser().parse_args([
            "sweep", "--backend", "socket", "--port", "7000",
            "--spawn-workers", "2", "--incremental",
        ])
        assert args.backend == "socket" and args.port == 7000
        assert args.spawn_workers == 2 and args.incremental
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--backend", "mainframe"])

    def test_audit_args(self):
        args = build_parser().parse_args([
            "audit", "--mode", "baseline", "--granularity", "same_bank",
            "--oracle", "--export-log", "log.json", "--rules-out", "rules.json",
        ])
        assert args.mode == "baseline" and args.granularity == "same_bank"
        assert args.oracle and args.export_log == "log.json"
        assert args.rules_out == "rules.json"

    def test_worker_args(self):
        args = build_parser().parse_args([
            "worker", "--port", "7000", "--max-sessions", "1",
            "--connect-timeout", "5",
        ])
        assert args.port == 7000 and args.max_sessions == 1
        assert args.connect_timeout == 5.0


class TestLintCommand:
    """`repro lint`: exit codes 0/1/2, JSON schema, suppression, baseline."""

    FIXTURES = Path(__file__).parent / "lint_fixtures"

    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_findings_exit_one(self, capsys):
        root = str(self.FIXTURES / "dirty_flag_bad")
        assert main(["lint", "--root", root, "--rules", "dirty-flag"]) == 1
        out = capsys.readouterr().out
        assert "[dirty-flag]" in out and "finding" in out

    def test_usage_error_exits_two(self, capsys):
        assert main(["lint", "--rules", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().out

    def test_json_report_schema(self, capsys):
        root = str(self.FIXTURES / "protocol_bad")
        code = main([
            "lint", "--root", root, "--rules", "protocol-dispatch", "--json",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["clean"] is False
        assert set(payload) == {
            "version", "root", "rules", "files", "findings",
            "suppressed", "baselined", "clean",
        }
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "symbol", "message"}
        assert finding["rule"] == "protocol-dispatch"

    def test_json_clean_tree(self, capsys):
        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True and payload["findings"] == []

    def test_suppression_honored(self, tmp_path, capsys):
        root = tmp_path / "tree"
        shutil.copytree(self.FIXTURES / "determinism_bad", root)
        assert main([
            "lint", "--root", str(root), "--rules", "determinism",
        ]) == 1
        findings = [
            line for line in capsys.readouterr().out.splitlines()
            if "[determinism]" in line
        ]
        path = root / "sim" / "clock.py"
        lines = path.read_text(encoding="utf-8").splitlines()
        for row in findings:
            lineno = int(row.split(":")[1])
            lines[lineno - 1] += "  # repro-lint: disable=determinism"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert main([
            "lint", "--root", str(root), "--rules", "determinism",
        ]) == 0
        assert f"{len(findings)} suppressed" in capsys.readouterr().out

    def test_baseline_honored(self, tmp_path, capsys):
        root = str(self.FIXTURES / "protocol_bad")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "protocol-dispatch",
                "path": "orchestrator/backends/worker.py",
                "symbol": "job",
                "reason": "fixture: exercising the CLI baseline path",
            }],
        }))
        assert main([
            "lint", "--root", root, "--rules", "protocol-dispatch",
            "--baseline", str(baseline),
        ]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "slots", "path": "sim/cache.py"}],
        }))
        assert main(["lint", "--baseline", str(baseline)]) == 2
        assert "justification" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("dirty-flag", "timing-coverage", "determinism",
                     "slots", "protocol-dispatch"):
            assert rule in out


class TestCommands:
    def test_security_command(self, capsys):
        assert main(["security", "--nrh", "128"]) == 0
        out = capsys.readouterr().out
        assert "PARA-Legacy pth" in out and "0.47" in out

    def test_simulate_command(self, capsys):
        assert main([
            "simulate", "--mode", "hira", "--capacity", "8",
            "--instructions", "5000",
        ]) == 0
        out = capsys.readouterr().out
        assert "weighted speedup" in out

    def test_audit_command_with_oracle(self, capsys, tmp_path):
        import json

        log = tmp_path / "audit.json"
        rules = tmp_path / "rules.json"
        assert main([
            "audit", "--mode", "hira", "--granularity", "same_bank",
            "--instructions", "3000", "--oracle",
            "--export-log", str(log), "--rules-out", str(rules),
        ]) == 0
        out = capsys.readouterr().out
        assert "OK: command stream clean under auditor + oracle" in out
        payload = json.loads(log.read_text())
        assert payload["records"]
        from repro.sim.audit import records_from_log
        from repro.sim.oracle import RuleTable, TimingOracle, table_for_log

        assert TimingOracle(table_for_log(payload)).check(
            records_from_log(payload)
        ) == []
        table = RuleTable.from_json(json.loads(rules.read_text()))
        assert table.pair_rules

    def test_characterize_unknown_module(self, capsys):
        assert main(["characterize", "--module", "ZZ"]) == 2

    def test_characterize_command(self, capsys):
        assert main([
            "characterize", "--module", "A0", "--stride", "256",
            "--rows-a-step", "24", "--victims", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "HiRA coverage" in out and "normalized NRH" in out

    def test_sweep_json_out_and_margin_check(self, capsys, tmp_path):
        json_path = tmp_path / "margin.json"
        assert main([
            "sweep", "--name", "t", "--modes", "baseline,hira", "--slacks", "2",
            "--capacities", "8", "--mixes", "1", "--instructions", "5000",
            "--workers", "1", "--no-cache", "--json-out", str(json_path),
        ]) == 0
        capsys.readouterr()
        import json

        payload = json.loads(json_path.read_text())
        cfgs = {cell["coords"]["cfg"] for cell in payload["cells"]}
        assert cfgs == {"baseline", "HiRA-2"}
        assert all(cell["mean_ws"] > 0 for cell in payload["cells"])

        import subprocess
        import sys

        # A floor of 0 always passes; an absurd floor must fail.
        from pathlib import Path

        script = str(Path(__file__).resolve().parent.parent / "tools" / "check_fig12_margin.py")
        ok = subprocess.run(
            [sys.executable, script, str(json_path), "--min-margin", "0.0"],
            capture_output=True, text=True,
        )
        assert ok.returncode == 0, ok.stdout + ok.stderr
        bad = subprocess.run(
            [sys.executable, script, str(json_path), "--min-margin", "99.0"],
            capture_output=True, text=True,
        )
        assert bad.returncode == 1
        assert "REGRESSED" in bad.stdout

    def test_incremental_requires_store(self, capsys):
        assert main([
            "sweep", "--mixes", "1", "--instructions", "5000",
            "--no-cache", "--incremental",
        ]) == 2
        assert "--incremental" in capsys.readouterr().out

    def test_sweep_socket_backend_with_worker_thread(self, capsys, tmp_path):
        # The full CLI path: `repro sweep --backend socket` against an
        # in-process worker, then an overlapping incremental re-run that
        # must reuse every shared point (cross-sweep dedup telemetry).
        import json
        import threading

        from repro.orchestrator.backends.worker import serve

        json1 = tmp_path / "one.json"
        json2 = tmp_path / "two.json"
        store = str(tmp_path / "store")
        port = _free_port()
        worker = threading.Thread(
            target=serve, args=("127.0.0.1", port),
            kwargs=dict(connect_timeout=60.0, max_sessions=2,
                        heartbeat_interval=0.2),
            daemon=True,
        )
        worker.start()
        assert main([
            "sweep", "--name", "one", "--modes", "baseline", "--capacities", "8",
            "--mixes", "1", "--instructions", "5000", "--cache-dir", store,
            "--backend", "socket", "--port", str(port),
            "--json-out", str(json1),
        ]) == 0
        assert main([
            "sweep", "--name", "two", "--modes", "baseline",
            "--capacities", "8,32", "--mixes", "1", "--instructions", "5000",
            "--cache-dir", store, "--backend", "socket", "--port", str(port),
            "--incremental", "--json-out", str(json2),
        ]) == 0
        out = capsys.readouterr().out
        assert "incremental: 2 points: 1 reused from the store, 1 to compute" in out
        worker.join(timeout=15)
        one = json.loads(json1.read_text())
        two = json.loads(json2.read_text())
        assert one["backend"] == two["backend"] == "socket"
        assert (one["reused"], one["computed"]) == (0, 1)
        # The shared 8 Gbit point was NOT recomputed by the second sweep.
        assert (two["reused"], two["computed"]) == (1, 1)


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]
