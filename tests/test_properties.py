"""Cross-module property-based tests (hypothesis) on core invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chip.chip_model import DramChip
from repro.chip.design import make_design
from repro.dram.geometry import Geometry
from repro.sim.addressing import AddressMapper
from repro.softmc.host import SoftMCHost
from repro.softmc.patterns import ALL_PATTERNS
from repro.softmc.program import Program

_DESIGN = make_design(subarrays_per_bank=8, rows_per_subarray=64, design_seed=21)


@settings(max_examples=20, deadline=None)
@given(
    rows=st.lists(st.integers(min_value=0, max_value=511), min_size=1, max_size=5, unique=True),
    pattern_idx=st.integers(min_value=0, max_value=3),
    bank=st.integers(min_value=0, max_value=15),
)
def test_nominal_timing_never_corrupts(rows, pattern_idx, bank):
    """Legal JEDEC sequences preserve every row's data, always.

    This is the safety property HiRA deliberately walks the edge of: the
    chip model must only corrupt data when timing is actually violated.
    """
    chip = DramChip(_DESIGN, chip_seed=77)
    host = SoftMCHost(chip)
    pattern = ALL_PATTERNS[pattern_idx]
    for row in rows:
        host.initialize(bank, row, pattern)
    for row in rows:
        host.activate_refresh(bank, row)
    for row in rows:
        assert host.compare_data(pattern, bank, row) == 0


@settings(max_examples=30, deadline=None)
@given(
    offsets=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=20),
    waits=st.lists(st.integers(min_value=1_500, max_value=50_000), min_size=1, max_size=20),
)
def test_program_times_strictly_monotonic(offsets, waits):
    prog = Program()
    for i, (offset, wait) in enumerate(zip(offsets, waits)):
        if i % 2 == 0:
            prog.act(0, offset, wait_ps=wait)
        else:
            prog.pre(0, wait_ps=wait)
    times = [cmd.time_ps for cmd in prog]
    assert times == sorted(times)
    assert prog.cursor_ps >= (times[-1] if times else 0)


@settings(max_examples=30, deadline=None)
@given(
    channels=st.integers(min_value=1, max_value=4),
    ranks=st.integers(min_value=1, max_value=4),
    line=st.integers(min_value=0, max_value=1 << 34),
)
def test_mapper_bijective_across_geometries(channels, ranks, line):
    geom = Geometry(
        channels=channels,
        ranks_per_channel=ranks,
        subarrays_per_bank=16,
        rows_per_subarray=128,
    )
    mapper = AddressMapper(geom)
    total = (
        geom.channels
        * geom.ranks_per_channel
        * geom.banks_per_rank
        * geom.rows_per_bank
        * geom.columns_per_row
    )
    line %= total
    addr = mapper.decode(line)
    addr.validate(geom)
    assert mapper.encode(addr) == line


@settings(max_examples=15, deadline=None)
@given(
    sa_a=st.integers(min_value=0, max_value=7),
    sa_b=st.integers(min_value=0, max_value=7),
    off_a=st.integers(min_value=0, max_value=63),
    off_b=st.integers(min_value=0, max_value=63),
)
def test_hira_outcome_matches_isolation_map(sa_a, sa_b, off_a, off_b):
    """Algorithm 1's verdict equals the design's isolation ground truth.

    For any row pair (different rows), HiRA at the calibrated t1 = t2 =
    3 ns preserves data iff the isolation map declares the subarrays
    electrically isolated.
    """
    chip = DramChip(_DESIGN, chip_seed=78)
    host = SoftMCHost(chip)
    row_a = chip.geometry.row_of(sa_a, off_a)
    row_b = chip.geometry.row_of(sa_b, off_b)
    if row_a == row_b:
        return
    from repro.experiments.coverage import pair_passes

    passed = pair_passes(host, 0, row_a, row_b, t1_ps=3_000, t2_ps=3_000)
    assert passed == chip.isolation.isolated(sa_a, sa_b)


@pytest.mark.parametrize("mode", ["baseline", "elastic", "hira"])
@pytest.mark.parametrize("granularity", ["all_bank", "same_bank"])
@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=9_999),
    read_fraction=st.floats(min_value=0.3, max_value=0.8),
    mpki=st.floats(min_value=8.0, max_value=40.0),
    locality=st.floats(min_value=0.2, max_value=0.9),
)
def test_turnaround_and_refsb_recomputed_from_audit_log(
    mode, granularity, seed, read_fraction, mpki, locality
):
    """Differential audit: fuzzed mixed read/write traces across every
    engine × refresh granularity, checked three ways — the auditor's
    ``violations()``, the declarative rule-table oracle, and the
    tRTW/tWTR/REFsb constraints recomputed inline below.  Any
    two-out-of-three disagreement fails: a bug shared by the controller
    and auditor (one codebase) cannot hide from the oracle, and a bug in
    the auditor cannot hide one in the scheduler.  Bounded examples:
    2-core, small budgets (1-CPU box).
    """
    from repro.sim.audit import attach_auditors
    from repro.sim.config import SystemConfig
    from repro.sim.oracle import oracle_for_config
    from repro.sim.system import System
    from repro.sim.trace import TraceProfile

    config = SystemConfig(
        refresh_mode=mode, refresh_granularity=granularity, cores=2
    )
    profiles = [
        TraceProfile(
            f"fz{seed}-{i}",
            mpki=mpki,
            row_locality=locality,
            read_fraction=read_fraction,
            working_set_rows=2048,
        )
        for i in range(2)
    ]
    system = System(config, profiles, seed=seed, instr_budget=2_500)
    auditors = attach_auditors(system)
    result = system.run(max_cycles=2_000_000)
    assert result.finished
    far_past = -1 << 60
    oracle = oracle_for_config(config)
    for auditor in auditors:
        assert auditor.violations() == []
        assert oracle.check_messages(auditor.records) == []
        records = sorted(auditor.records, key=lambda r: r.cycle)
        # Data-bus occupancy + turnaround, recomputed from RD/WR records.
        bursts = sorted(
            (r.cycle + (auditor.tcwl_c if r.kind == "WR" else auditor.tcl_c), r.kind)
            for r in records
            if r.kind in ("RD", "WR")
        )
        for (start0, kind0), (start1, kind1) in zip(bursts, bursts[1:]):
            gap = 0
            if kind0 != kind1:
                gap = auditor.trtw_c if kind0 == "RD" else auditor.twtr_c
            assert start1 >= start0 + auditor.tbl_c + gap, (
                f"{kind0}@{start0} -> {kind1}@{start1} breaks "
                f"tBL+{'tRTW' if kind0 == 'RD' else 'tWTR'}"
            )
        # REFsb busy windows, target-precharged rule, and rank spacing.
        open_row: dict[tuple, bool] = {}
        last_pre: dict[tuple, int] = {}
        refsb_busy: dict[tuple, int] = {}
        last_refsb_rank: dict[int, int] = {}
        for r in records:
            key = (r.rank, r.bank)
            if r.kind == "ACT":
                assert r.cycle >= refsb_busy.get(key, far_past), (
                    f"ACT@{r.cycle} inside REFsb busy window of {key}"
                )
                open_row[key] = True
            elif r.kind == "PRE":
                open_row[key] = False
                last_pre[key] = r.cycle
            elif r.kind in ("RD", "WR"):
                assert r.cycle >= refsb_busy.get(key, far_past)
            elif r.kind == "REFSB":
                assert granularity == "same_bank"
                assert not open_row.get(key, False), (
                    f"REFSB@{r.cycle} to open bank {key}"
                )
                assert r.cycle - last_pre.get(key, far_past) >= auditor.trp_c
                assert r.cycle >= refsb_busy.get(key, far_past)
                previous = last_refsb_rank.get(r.rank)
                if previous is not None:
                    assert r.cycle - previous >= auditor.trefsb_gap_c
                last_refsb_rank[r.rank] = r.cycle
                refsb_busy[key] = r.cycle + auditor.trfc_sb_c
            elif r.kind == "REF":
                assert granularity == "all_bank"
                for (rank, bank), busy in refsb_busy.items():
                    if rank == r.rank:
                        assert r.cycle >= busy
                for bank_key in open_row:
                    if bank_key[0] == r.rank:
                        open_row[bank_key] = False
                        last_pre[bank_key] = max(
                            last_pre.get(bank_key, far_past), r.cycle
                        )
        if granularity == "same_bank" and result.cycles > auditor.trefi_c:
            # The staggered per-bank cadence must actually produce REFsb.
            assert any(r.kind == "REFSB" for r in records)


@settings(max_examples=10, deadline=None)
@given(count=st.integers(min_value=0, max_value=5_000))
def test_disturbance_linear_in_hammer_count(count):
    chip = DramChip(_DESIGN, chip_seed=79)
    victim = chip.geometry.row_of(2, 10)
    aggressors = chip.design.aggressors_for_victim(victim)
    if len(aggressors) != 2:
        return
    chip.bulk_hammer(0, aggressors, count)
    phys = chip.design.logical_to_physical(victim)
    assert chip.disturb.disturbance(0, phys) == 2 * count
