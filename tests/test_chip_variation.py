"""Per-row variation: determinism, calibrated windows, distributions."""

import pytest

from repro.chip.variation import DesignVariation, VariationModel


@pytest.fixture(scope="module")
def model():
    return VariationModel(DesignVariation(), chip_seed=42)


class TestDeterminism:
    def test_same_row_same_sample(self, model):
        a = model.row_timing(0, 100)
        b = VariationModel(DesignVariation(), chip_seed=42).row_timing(0, 100)
        assert a == b

    def test_caching_returns_same_object(self, model):
        assert model.row_timing(1, 5) is model.row_timing(1, 5)

    def test_rows_differ(self, model):
        timings = {model.row_timing(0, r).sa_enable_ps for r in range(50)}
        assert len(timings) > 10

    def test_chip_seeds_differ(self):
        a = VariationModel(DesignVariation(), chip_seed=1).row_timing(0, 0)
        b = VariationModel(DesignVariation(), chip_seed=2).row_timing(0, 0)
        assert a != b


class TestCalibratedWindows:
    """The Fig. 4 feasibility structure (§4.2)."""

    def test_all_rows_work_at_t1_3ns_and_4_5ns(self, model):
        for row in range(300):
            t = model.row_timing(0, row)
            assert t.t1_window_ok(3_000, checkerboard=True)
            assert t.t1_window_ok(4_500, checkerboard=True)

    def test_some_rows_fail_at_t1_1_5ns(self, model):
        results = [model.row_timing(0, r).t1_window_ok(1_500, False) for r in range(300)]
        assert any(results) and not all(results)

    def test_some_rows_fail_at_t1_6ns(self, model):
        results = [model.row_timing(0, r).t1_window_ok(6_000, False) for r in range(300)]
        assert any(results) and not all(results)

    def test_tested_t2_always_interrupts(self, model):
        # All tested t2 values (≤ 6 ns) are below every wordline window.
        for row in range(300):
            t = model.row_timing(0, row)
            for t2 in (1_500, 3_000, 4_500, 6_000):
                assert t.t2_interrupts(t2)

    def test_tested_t2_always_isolates_io(self, model):
        for row in range(300):
            t = model.row_timing(0, row)
            assert t.t2_isolates_io(1_500)

    def test_checkerboard_needs_more_margin(self, model):
        p = DesignVariation()
        for row in range(300):
            t = model.row_timing(0, row)
            boundary = t.sa_enable_ps + t.checkerboard_margin_ps - 1
            assert not t.t1_window_ok(boundary, checkerboard=True)
            if boundary >= t.sa_enable_ps:
                assert t.t1_window_ok(boundary, checkerboard=False) or boundary < t.sa_enable_ps


class TestDistributions:
    def test_nrh_within_clips(self, model):
        p = DesignVariation()
        for row in range(200):
            nrh = model.row_timing(0, row).nrh
            assert p.nrh_lo <= nrh <= p.nrh_hi

    def test_intrinsic_nrh_mean_near_54k(self, model):
        # Measured (double-sided) threshold is about half of this: ~27.2K.
        values = [model.row_timing(0, r).nrh for r in range(500)]
        mean = sum(values) / len(values)
        assert 45_000 < mean < 65_000

    def test_restore_needed_within_tras(self, model):
        for row in range(200):
            t = model.row_timing(0, row)
            assert t.restore_needed_ps(32_000) <= 32_000
            assert t.restore_needed_ps(32_000) >= 0.8 * 32_000

    def test_run_noise_centered_on_one(self, model):
        values = [model.run_noise(0, 7, run) for run in range(400)]
        mean = sum(values) / len(values)
        assert mean == pytest.approx(1.0, abs=0.05)
