"""Extensions beyond the paper's headline results: Graphene-like tracking,
elastic refresh, and the DDR5 preset."""

import pytest

from repro.dram.timing import DDR4_2400, DDR5_4800
from repro.rowhammer.graphene import GrapheneTracker
from repro.sim.config import SystemConfig
from repro.sim.elastic import ElasticRefreshEngine
from repro.sim.system import System
from repro.workloads.mixes import mix_for


class TestGrapheneTracker:
    def test_hot_row_detected(self):
        tracker = GrapheneTracker(threshold=100, entries=8)
        fired = None
        for __ in range(150):
            fired = tracker.observe(42) or fired
        assert fired == 42

    def test_counter_resets_after_trigger(self):
        tracker = GrapheneTracker(threshold=10, entries=8)
        for __ in range(10):
            result = tracker.observe(7)
        assert result == 7
        assert tracker.estimated_count(7) == tracker.spillover

    def test_cold_rows_never_trigger(self):
        tracker = GrapheneTracker(threshold=50, entries=4)
        for row in range(1_000):
            assert tracker.observe(row) is None

    def test_heavy_hitter_guarantee(self):
        """A row with > total/(entries+1) activations is always tracked."""
        tracker = GrapheneTracker(threshold=10_000, entries=4)
        for i in range(500):
            tracker.observe(1)  # heavy
            tracker.observe(100 + i)  # noise, all distinct
        assert tracker.estimated_count(1) >= 500 - tracker.spillover
        assert 1 in tracker.counters

    def test_configured_for_slack_reduces_threshold(self):
        base = GrapheneTracker.configured_for(nrh=1_024)
        slack = GrapheneTracker.configured_for(nrh=1_024, tref_slack_acts=8)
        assert slack.threshold == base.threshold - 8

    def test_table_grows_as_nrh_falls(self):
        big = GrapheneTracker.configured_for(nrh=4_096)
        small = GrapheneTracker.configured_for(nrh=256)
        assert small.entries > big.entries
        assert small.table_bits > big.table_bits

    def test_unprotectable_threshold_rejected(self):
        with pytest.raises(ValueError):
            GrapheneTracker.configured_for(nrh=8, tref_slack_acts=8)

    def test_reset_window(self):
        tracker = GrapheneTracker(threshold=10, entries=4)
        for __ in range(5):
            tracker.observe(3)
        tracker.reset_window()
        assert tracker.estimated_count(3) == 0
        assert tracker.activations_seen == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GrapheneTracker(threshold=0, entries=4)
        with pytest.raises(ValueError):
            GrapheneTracker(threshold=10, entries=0)


class TestElasticRefresh:
    def _run(self, mode, budget=40_000):
        cfg = SystemConfig(capacity_gbit=32.0, refresh_mode=mode)
        return System(cfg, mix_for(0), seed=1, instr_budget=budget).run(
            max_cycles=6_000_000
        )

    def test_elastic_mode_accepted(self):
        assert SystemConfig(refresh_mode="elastic").refresh_mode == "elastic"

    def test_elastic_at_least_as_good_as_baseline(self):
        elastic = self._run("elastic")
        baseline = self._run("baseline")
        assert elastic.weighted_speedup >= baseline.weighted_speedup * 0.99

    def test_refreshes_still_happen_under_load(self):
        res = self._run("elastic", budget=80_000)
        assert res.stat_total("refs") > 0

    def test_postponement_budget_validated(self):
        with pytest.raises(ValueError):
            ElasticRefreshEngine(max_postponed=-1)


class TestDdr5Preset:
    def test_refresh_rate_doubled(self):
        assert DDR5_4800.trefw == DDR4_2400.trefw // 2
        assert DDR5_4800.trefi == DDR4_2400.trefi // 2

    def test_faster_clock(self):
        assert DDR5_4800.tck < DDR4_2400.tck

    def test_hira_identity_holds_on_ddr5(self):
        from repro.dram.timing import (
            hira_two_row_refresh_latency_ps,
            nominal_two_row_refresh_latency_ps,
        )

        assert hira_two_row_refresh_latency_ps(DDR5_4800) < (
            nominal_two_row_refresh_latency_ps(DDR5_4800)
        )

    def test_system_runs_on_ddr5(self):
        cfg = SystemConfig(
            capacity_gbit=16.0, refresh_mode="hira", timing=DDR5_4800
        )
        res = System(cfg, mix_for(1), seed=2, instr_budget=20_000).run(
            max_cycles=6_000_000
        )
        assert res.finished


class TestGrapheneDefenseIntegration:
    def test_defense_config_validated(self):
        with pytest.raises(ValueError):
            SystemConfig(defense="unknown")

    def test_graphene_triggers_on_hot_row(self):
        from repro.rowhammer.defense import GrapheneDefense

        defense = GrapheneDefense(nrh=256, tref_slack_acts=0)
        victims = []
        for __ in range(200):
            victim = defense.preventive_refresh_target(500, 1_000, bank_key=(0, 1))
            if victim is not None:
                victims.append(victim)
        # Both neighbours eventually refreshed (threshold 64 = 256/4).
        assert 499 in victims and 501 in victims

    def test_graphene_idle_on_cold_stream(self):
        from repro.rowhammer.defense import GrapheneDefense

        defense = GrapheneDefense(nrh=256)
        for row in range(500):
            assert defense.preventive_refresh_target(row, 10_000, bank_key=(0, 0)) is None

    def test_graphene_per_bank_state(self):
        from repro.rowhammer.defense import GrapheneDefense

        defense = GrapheneDefense(nrh=256)
        for __ in range(40):
            defense.preventive_refresh_target(5, 1_000, bank_key=(0, 0))
        # Same row in a different bank has its own counter.
        tracker_a = defense._trackers[(0, 0)]
        assert (0, 1) not in defense._trackers
        assert tracker_a.estimated_count(5) >= 40 - tracker_a.spillover

    def test_system_runs_with_graphene(self):
        cfg = SystemConfig(
            capacity_gbit=8.0, refresh_mode="hira", para_nrh=512.0,
            defense="graphene", tref_slack_acts=2,
        )
        res = System(cfg, mix_for(0), seed=3, instr_budget=20_000).run(
            max_cycles=8_000_000
        )
        assert res.finished
