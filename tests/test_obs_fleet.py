"""Fleet telemetry: FleetStatus lifecycle, status files, `repro status`.

The contract: lifecycle events fold into deterministic job counts, the
status file is written atomically and round-trips through
:func:`load_status`, heartbeat chatter is rate-limited while lifecycle
edges force a write, a ``None`` path makes every write a no-op, and the
``repro status`` subcommand renders both the snapshot and the journal
progress.  Telemetry must never break a sweep, so the unwritable-path
case is exercised too.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.fleet import (
    FleetStatus,
    JOB_EVENTS,
    journal_progress,
    load_status,
    render_status,
)


def _drive(status: FleetStatus) -> None:
    """A representative sweep: 3 jobs, one retry, one quarantine."""
    status.sweep_started("demo", points=5, reused=2, todo=3, workers=2)
    status.worker_seen("w1")
    status.worker_seen("w2")
    for index in range(3):
        status.job_dispatched(str(index), "w1")
    status.worker_heartbeat("w1")
    status.job_retried("1", attempts=2)
    status.job_speculated("2")
    status.worker_quarantined("w2")
    for label in ("p0", "p1", "p2"):
        status.point_done(label)
    status.sweep_finished("socket", 1.25)


def test_lifecycle_folds_into_job_counts(tmp_path):
    status = FleetStatus(tmp_path / "status.json")
    _drive(status)
    assert status.job_counts() == {
        "queued": 3,
        "dispatched": 3,
        "retried": 1,
        "speculated": 1,
        "quarantined": 1,
        "done": 3,
    }
    assert tuple(status.job_counts()) == JOB_EVENTS


def test_snapshot_round_trips_through_status_file(tmp_path):
    path = tmp_path / "status.json"
    status = FleetStatus(path)
    _drive(status)
    loaded = load_status(path)
    assert loaded is not None
    assert loaded["kind"] == "repro-fleet-status"
    assert loaded["sweep"]["name"] == "demo"
    assert loaded["sweep"]["state"] == "finished"
    assert loaded["sweep"]["done"] == 3
    assert loaded["backend"] == "socket"
    assert loaded["jobs"] == status.job_counts()
    assert set(loaded["workers"]) == {"w1", "w2"}
    assert loaded["workers"]["w1"]["age_s"] >= 0
    assert loaded["quarantined"] == ["w2"]
    assert "fleet_jobs_total" in loaded["metrics"]


def test_none_path_is_a_no_op(tmp_path):
    status = FleetStatus(None)
    _drive(status)  # must not raise, must not write anywhere
    assert status.job_counts()["done"] == 3
    assert not list(tmp_path.iterdir())


def test_unwritable_path_never_raises(tmp_path):
    # Telemetry is best-effort: a doomed status path must not break the
    # producer (run_sweep / JobServer call these mid-dispatch).
    doomed = tmp_path / "not-a-dir"
    doomed.write_text("plain file, not a directory")
    status = FleetStatus(doomed / "status.json")
    _drive(status)
    assert status.job_counts()["done"] == 3


def test_heartbeats_are_rate_limited_but_edges_force_writes(tmp_path):
    path = tmp_path / "status.json"
    status = FleetStatus(path, min_interval_s=3600)
    status.sweep_started("demo", points=1, reused=0, todo=1, workers=1)
    first = path.read_bytes()
    # Heartbeat chatter inside the interval is coalesced away.
    for __ in range(50):
        status.worker_heartbeat("w1")
    assert path.read_bytes() == first
    # A lifecycle edge forces the write regardless of the interval.
    status.sweep_finished("serial", 0.5)
    assert json.loads(path.read_text())["sweep"]["state"] == "finished"


def test_load_status_absent_or_corrupt(tmp_path):
    assert load_status(tmp_path / "missing.json") is None
    bad = tmp_path / "torn.json"
    bad.write_text('{"kind": "repro-fleet-st')
    assert load_status(bad) is None


def test_render_status_mentions_everything(tmp_path):
    path = tmp_path / "status.json"
    status = FleetStatus(path)
    _drive(status)
    text = render_status(load_status(path), [])
    assert "sweep demo: finished" in text
    assert "backend: socket" in text
    assert "retried 1" in text and "quarantined 1" in text
    assert "w1" in text and "w2" in text
    assert "quarantined: w2" in text
    assert render_status(None, []) == "no status snapshot found"


def test_journal_progress_reads_the_store(tmp_path):
    from repro.orchestrator.journal import SweepJournal

    journal_dir = tmp_path / "journals"
    journal_dir.mkdir()
    with SweepJournal(journal_dir / "demo.jsonl") as journal:
        journal.begin("demo", points=2, fingerprint="f" * 8)
        journal.record_done(0, "k0")
    states = journal_progress(tmp_path)
    assert len(states) == 1
    assert states[0].done == 1
    assert "interrupted" in states[0].describe()
    assert journal_progress(tmp_path / "nowhere") == []
    text = render_status(None, states)
    assert "journals:" in text and "demo" in text


# ----------------------------------------------------------------------
# End to end: sweep --status-file, then the `repro status` subcommand
# ----------------------------------------------------------------------
def _run_cli(argv, capsys) -> tuple[int, str]:
    from repro.cli import main

    code = main(argv)
    return code, capsys.readouterr().out


def test_status_cli_end_to_end(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code, out = _run_cli(
        [
            "sweep", "--name", "fleet-e2e", "--modes", "baseline",
            "--mixes", "1", "--instructions", "2000", "--backend", "serial",
            "--cache-dir", str(tmp_path / "store"),
            "--status-file", str(tmp_path / "status.json"),
        ],
        capsys,
    )
    assert code == 0
    assert "status file:" in out

    code, out = _run_cli(
        [
            "status", "--status-file", str(tmp_path / "status.json"),
            "--store", str(tmp_path / "store"),
        ],
        capsys,
    )
    assert code == 0
    assert "sweep fleet-e2e: finished" in out
    assert "jobs:" in out
    assert "journals:" in out and "complete" in out


def test_status_cli_exits_nonzero_when_nothing_to_report(tmp_path, capsys):
    code, out = _run_cli(
        [
            "status", "--status-file", str(tmp_path / "missing.json"),
            "--store", str(tmp_path / "missing-store"),
        ],
        capsys,
    )
    assert code == 1
    assert "no status snapshot found" in out


def test_sweep_json_out_carries_telemetry_and_fleet(tmp_path, capsys):
    out_path = tmp_path / "sweep.json"
    code, __ = _run_cli(
        [
            "sweep", "--name", "fleet-json", "--modes", "baseline",
            "--mixes", "1", "--instructions", "2000", "--backend", "serial",
            "--cache-dir", str(tmp_path / "store"),
            "--status-file", str(tmp_path / "status.json"),
            "--json-out", str(out_path),
        ],
        capsys,
    )
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert "telemetry" in payload
    assert payload["fleet"]["done"] == 1
    assert payload["elapsed_s"] >= 0


# ----------------------------------------------------------------------
# Resume accounting: done/todo must stay truthful across replays
# ----------------------------------------------------------------------
def test_resumed_half_done_sweep_renders_consistent_progress(tmp_path):
    """Resuming a half-done sweep replays the stored half; the rendered
    line must count only newly computed points against ``todo`` — never
    ``done > todo``, never double-counting journal-replayed points."""
    from repro.orchestrator.runner import run_sweep
    from repro.orchestrator.sweep import Sweep, Variant, axis, profile_workloads
    from repro.sim.trace import TraceProfile

    profiles = [
        TraceProfile(f"t{i}", mpki=18.0, row_locality=0.7) for i in range(8)
    ]

    def sweep_for(*variants):
        return Sweep(
            name="resume-demo",
            axes=(axis("cfg", *variants),),
            workloads=profile_workloads(profiles, count=1),
            instr_budget=2_000,
            max_cycles=2_000_000,
        )

    base = Variant.make("Baseline", refresh_mode="baseline")
    hira = Variant.make("HiRA-2", refresh_mode="hira", tref_slack_acts=2)
    store = tmp_path / "store"
    # The interrupted first run computed only half the grid.
    run_sweep(sweep_for(base), backend="serial", cache=store)
    # The resumed run replays that half from the store, computes the rest.
    path = tmp_path / "status.json"
    status = FleetStatus(path)
    run_sweep(sweep_for(base, hira), backend="serial", cache=store, status=status)
    text = render_status(load_status(path), [])
    assert (
        "sweep resume-demo: finished, 1/1 computed "
        "(1 replayed from the store, 2 points total)"
    ) in text


def test_point_done_is_idempotent_per_label(tmp_path):
    """A retried/speculated job can complete the same point twice; the
    second completion must not push ``done`` past ``todo``."""
    path = tmp_path / "status.json"
    status = FleetStatus(path)
    status.sweep_started("demo", points=4, reused=2, todo=2, workers=1)
    status.point_done("p0")
    status.point_done("p0")  # speculated duplicate of the same point
    status.point_done("p1")
    assert status.sweep["done"] == 2
    assert status.job_counts()["done"] == 2
    status.sweep_finished("serial", 0.5)
    text = render_status(load_status(path), [])
    assert "2/2 computed (2 replayed from the store, 4 points total)" in text


def test_journal_fingerprint_change_resets_done_count(tmp_path):
    """Points journaled under a stale source fingerprint are recomputed,
    not replayed — they must not count toward the latest run (the old
    behavior reported e.g. "10/6 points journaled")."""
    from repro.orchestrator.journal import SweepJournal

    journal_dir = tmp_path / "journals"
    journal_dir.mkdir()
    with SweepJournal(journal_dir / "demo.jsonl") as journal:
        journal.begin("demo", points=6, fingerprint="a" * 8)
        for i in range(4):
            journal.record_done(i, f"old-k{i}")
        # Source changed between runs: everything recomputes under new keys.
        journal.begin("demo", points=6, fingerprint="b" * 8)
        for i in range(6):
            journal.record_done(i, f"new-k{i}")
        journal.complete()
    state = journal_progress(tmp_path)[0]
    assert state.done == 6  # not 10: stale-fingerprint points dropped
    assert state.describe().startswith("6/6 points journaled")
    assert state.runs == 2 and state.complete
