def run(sock, send, recv):
    send(sock, {"type": "hello"})
    msg = recv(sock)
    if msg.get("type") == "job":
        return msg["payload"]
    return None
