"""Fixture: a slotted class assigning an attribute it never declared."""


class Entry:
    __slots__ = ("row",)

    def __init__(self, row):
        self.row = row

    def poke(self):
        # BAD: 'hits' is not in __slots__ — AttributeError at runtime.
        self.hits = 1
