"""Fixture: a scheduling-state mutation that never marks the memo dirty."""


class MemoryController:
    def mark_dirty(self):
        self._dirty = True

    def issue_col(self, now):
        # BAD: bus_next moves but the next_event memo is never invalidated.
        self.bus_next = now + 4
        return True
