class CommandAuditor:
    def __init__(self, timing):
        self.trcd = timing.trcd

    def check(self, rec, prev):
        return rec.cycle - prev.cycle >= self.trcd
