class MemoryController:
    def __init__(self, timing):
        # Constructor conversions are dead gating: reading tfoo here must
        # NOT count as enforcement.
        self.tfoo_c = timing.tfoo

    def act_ok(self, bank, now):
        return now >= bank.next_act and now >= self.timing.trcd_c
