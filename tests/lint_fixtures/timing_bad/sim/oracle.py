def build_rule_table(timing):
    return [("tRCD", timing.trcd)]
