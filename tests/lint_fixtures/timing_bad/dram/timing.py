"""Fixture: ``tfoo`` is declared but never enforced anywhere."""


class TimingParams:
    trcd: int = 10
    tfoo: int = 5
