"""Fixture: both metrics tables cover every stats field exactly."""

CONTROLLER_METRICS = {
    "reads_served": ("sim_reads_served_total", "Reads served"),
    "acts": ("sim_acts_total", "ACT commands issued"),
}

CHIP_METRICS = {
    "acts": ("chip_acts_total", "ACTs applied by the chip model"),
}
