"""Fixture: stats dataclass fully mirrored by the metrics table."""

from dataclasses import dataclass


@dataclass(slots=True)
class ControllerStats:
    reads_served: int = 0
    acts: int = 0
