"""Fixture: chip stats dataclass fully mirrored by the metrics table."""

from dataclasses import dataclass


@dataclass
class ChipStats:
    acts: int = 0
