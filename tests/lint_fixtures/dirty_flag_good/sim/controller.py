"""Fixture: every mutation path marks, including the boolean-flag idiom."""


class MemoryController:
    def mark_dirty(self):
        self._dirty = True

    def issue_col(self, now):
        self.bus_next = now + 4
        self._dirty = True
        return True

    def promote(self):
        promoted = False
        while self.read_q:
            self.read_q.pop()
            promoted = True
        if promoted:
            self.mark_dirty()

    def block(self, rank):
        if rank not in self.blocked_ranks:
            self.blocked_ranks.add(rank)
            self.mark_dirty()
