"""Fixture: slot stores resolve through inheritance, dataclasses and
properties; an unslotted class is exempt (it has a __dict__)."""

from dataclasses import dataclass


class Base:
    __slots__ = ("a",)


class Child(Base):
    __slots__ = ("b", "_c")

    def fill(self):
        self.a = 1
        self.b = 2
        self.c = 3

    @property
    def c(self):
        return self._c

    @c.setter
    def c(self, value):
        self._c = value


@dataclass(slots=True)
class Rec:
    x: int = 0

    def bump(self):
        self.x += 1


class Loose:
    def anything(self):
        self.whatever = 1
