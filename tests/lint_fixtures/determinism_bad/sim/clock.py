"""Fixture: wall-clock, forbidden import, unseeded RNG, raw set iteration."""

import random
import time

import numpy as np


class Sampler:
    def __init__(self):
        self.pending_rows = set()

    def stamp(self):
        return time.time()

    def draw(self):
        rng = np.random.default_rng()
        return rng.random() + random.random()

    def order(self):
        return [row for row in self.pending_rows]

    def ident(self, obj):
        return id(obj)
