"""Fixture: both fields are enforced on all three surfaces."""


class TimingParams:
    trcd: int = 10
    tfoo: int = 5
