class MemoryController:
    def act_ok(self, bank, now):
        return now >= bank.next_act and now >= self.timing.trcd_c

    def col_ok(self, bank, now):
        # Cycle-domain twin (tfoo_c) counts as reading tfoo.
        return now >= bank.busy_until + self.timing.tfoo_c
