class CommandAuditor:
    def __init__(self, timing):
        self.trcd = timing.trcd
        self.tfoo = timing.tfoo

    def check(self, rec, prev):
        if rec.cycle - prev.cycle < self.trcd:
            return False
        return rec.cycle - prev.cycle >= self.tfoo
