def run(sock, send, recv):
    send(sock, {"type": "hello"})
    # BAD: no dispatch arm for "job" — the server's payload is dropped.
    return recv(sock)
