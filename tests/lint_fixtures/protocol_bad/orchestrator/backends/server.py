def handle(sock, msg, send):
    if msg.get("type") == "hello":
        send(sock, {"type": "job", "payload": 1})
