MESSAGE_TYPES: dict[str, str] = {
    "hello": "worker->server",
    "job": "server->worker",
}
